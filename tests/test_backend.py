"""Backend registry + segmented pairwise tree reduction pins.

The backend layer's whole contract is a single sentence: every backend's
``segmented_pairwise_sum`` is **bit-identical** to contiguous-slice
``ndarray.sum``, and a backend that cannot honour that is *unavailable*,
never silently substituted.  This suite pins both halves — the NumPy
tree against ``ndarray.sum`` over adversarial segment layouts (empty,
length-1, lane-boundary, power-of-two, deep-recursion, ``-0.0``-laced),
and the registry's selection/failure behaviour (env default, unknown
names, unavailable optional wheels).  The partition-build entry points
(``prefix_table`` / ``next_cut_map`` / ``lift_cuts``) carry the same
contract and are pinned NumPy == optional backend on the same bytes.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    BackendUnavailableError,
    PAIRWISE_BLOCKSIZE,
    available_backends,
    backend_unavailable_reason,
    default_backend_name,
    get_backend,
    lift_cuts,
    next_cut_map,
    prefix_table,
    segmented_pairwise_sum,
)
from repro.errors import ConfigurationError


def _reference(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment contiguous-slice ``ndarray.sum`` — the golden model."""
    return np.stack(
        [
            values[..., lo:hi].sum(axis=-1)
            for lo, hi in zip(offsets, offsets[1:])
        ],
        axis=-1,
    )


def _random_layout(rng, n_segments):
    """Segment lengths biased toward the tree's structural boundaries."""
    special = np.array(
        [0, 0, 1, 1, 2, 7, 8, 9, 16, 64, 127, 128, 129, 256, 512]
    )
    lengths = np.where(
        rng.uniform(size=n_segments) < 0.6,
        rng.choice(special, size=n_segments),
        rng.integers(0, 700, size=n_segments),
    )
    return np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)


class TestPairwiseTreeBitwise:
    """The tree reduction is ``ndarray.sum``, bit for bit."""

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_layouts_match_ndarray_sum(self, seed):
        rng = np.random.default_rng(seed)
        offsets = _random_layout(rng, int(rng.integers(1, 40)))
        total = int(offsets[-1])
        values = rng.normal(size=total) * np.exp(
            rng.uniform(-8.0, 8.0, total)
        )
        values[rng.uniform(size=total) < 0.05] = -0.0
        got = segmented_pairwise_sum(values, offsets)
        want = _reference(values, offsets)
        assert got.tobytes() == want.tobytes()

    def test_empty_segments(self):
        """Empty segments sum to +0.0 exactly, like ``ndarray.sum``."""
        values = np.array([1.0, -2.0, 3.0])
        offsets = np.array([0, 0, 2, 2, 3, 3])
        got = segmented_pairwise_sum(values, offsets)
        want = _reference(values, offsets)
        assert got.tobytes() == want.tobytes()
        assert np.copysign(1.0, got[0]) == 1.0  # +0.0, not -0.0

    def test_length_one_segments_match_ndarray_sum(self):
        """Length-1 segments follow ``ndarray.sum``'s zero-init
        accumulator: ``sum([-0.0])`` is ``+0.0``, not a pass-through."""
        values = np.array([-0.0, 5.0, -0.0, 1.0e-300])
        offsets = np.arange(5)
        got = segmented_pairwise_sum(values, offsets)
        want = _reference(values, offsets)
        assert got.tobytes() == want.tobytes()
        assert np.copysign(1.0, got[0]) == 1.0

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64, 128, 256, 1024])
    def test_power_of_two_segments(self, n):
        rng = np.random.default_rng(n)
        values = rng.normal(size=3 * n) * np.exp(
            rng.uniform(-6.0, 6.0, 3 * n)
        )
        offsets = np.array([0, n, 2 * n, 3 * n])
        got = segmented_pairwise_sum(values, offsets)
        want = _reference(values, offsets)
        assert got.tobytes() == want.tobytes()

    def test_blocksize_straddling_segments(self):
        """Lengths bracketing the recursion leaf must hit both paths."""
        lengths = [
            PAIRWISE_BLOCKSIZE - 1,
            PAIRWISE_BLOCKSIZE,
            PAIRWISE_BLOCKSIZE + 1,
            2 * PAIRWISE_BLOCKSIZE + 5,
        ]
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        rng = np.random.default_rng(7)
        values = rng.normal(size=int(offsets[-1]))
        got = segmented_pairwise_sum(values, offsets)
        want = _reference(values, offsets)
        assert got.tobytes() == want.tobytes()

    def test_stacked_rows_reduce_along_last_axis(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(4, 100))
        offsets = np.array([0, 0, 1, 9, 50, 100])
        got = segmented_pairwise_sum(values, offsets)
        want = _reference(values, offsets)
        assert got.shape == (4, 5)
        assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize(
        "offsets",
        [
            np.array([], dtype=np.int64),
            np.array([[0, 1]]),
            np.array([0, 5, 3]),
            np.array([-1, 2]),
            np.array([0, 99]),
        ],
    )
    def test_rejects_malformed_offsets(self, offsets):
        with pytest.raises(ConfigurationError):
            segmented_pairwise_sum(np.ones(4), offsets)


class TestBackendRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert backend_unavailable_reason("numpy") is None
        assert get_backend("numpy").name == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("fortran")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            backend_unavailable_reason("fortran")

    def test_default_backend_tracks_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend_name() == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "numba")
        assert default_backend_name() == "numba"
        monkeypatch.setenv(BACKEND_ENV_VAR, "  ")
        assert default_backend_name() == "numpy"

    def test_unavailable_backend_raises_not_degrades(self):
        """A named-but-absent backend must raise, never fall back."""
        for name in ("numba", "cupy"):
            reason = backend_unavailable_reason(name)
            if reason is None:
                continue  # wheel present on this host: covered below
            with pytest.raises(BackendUnavailableError, match=name):
                get_backend(name)

    def test_backend_names_cover_factories(self):
        assert set(BACKEND_NAMES) == {"numpy", "numba", "cupy"}


@pytest.mark.parametrize("name", ["numba", "cupy"])
class TestOptionalBackendParity:
    """When an optional wheel is present, hold it to the same bit."""

    def test_optional_backend_matches_numpy(self, name):
        if backend_unavailable_reason(name) is not None:
            pytest.skip(f"backend {name!r} not available on this host")
        rng = np.random.default_rng(2018)
        offsets = _random_layout(rng, 25)
        values = rng.normal(size=int(offsets[-1]))
        got = segmented_pairwise_sum(values, offsets, backend=name)
        want = segmented_pairwise_sum(values, offsets, backend="numpy")
        assert np.asarray(got).tobytes() == want.tobytes()

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_partition_build_matches_numpy(self, name, seed):
        """The three partition-build stages yield identical bytes on
        every backend, including zero-current flat runs and lane counts
        spanning [1, N]."""
        if backend_unavailable_reason(name) is not None:
            pytest.skip(f"backend {name!r} not available on this host")
        rng = np.random.default_rng(seed)
        n_cases, n_modules, n_lanes = 5, 24, 12
        rows = np.abs(rng.normal(size=(n_cases, n_modules))) * np.exp(
            rng.uniform(-4.0, 4.0, (n_cases, n_modules))
        )
        rows[0, 5:13] = 0.0  # a zero-current flat run mid-row
        rows[3, :4] = 0.0  # and one at the start
        flat_rows = (rows == 0.0).any(axis=1)
        row_of = rng.integers(0, n_cases, size=n_lanes)
        counts = rng.integers(1, n_modules + 1, size=n_lanes)

        prefix_want = prefix_table(rows, backend="numpy")
        prefix_got = np.asarray(prefix_table(rows, backend=name))
        assert prefix_got.tobytes() == prefix_want.tobytes()

        ideals = prefix_want[row_of, -1] / counts
        next_want = next_cut_map(
            prefix_want, row_of, ideals, flat_rows, backend="numpy"
        )
        next_got = np.asarray(
            next_cut_map(prefix_want, row_of, ideals, flat_rows, backend=name)
        )
        assert next_got.tobytes() == next_want.tobytes()

        n_lift = int(counts.max())
        cuts_want = lift_cuts(next_want, counts, n_lift, backend="numpy")
        cuts_got = np.asarray(
            lift_cuts(next_want, counts, n_lift, backend=name)
        )
        assert cuts_got.tobytes() == cuts_want.tobytes()
