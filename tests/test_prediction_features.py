"""Tests for repro.prediction.features."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.features import Standardizer, lag_matrix, pooled_lag_matrix


class TestLagMatrix:
    def test_shapes(self):
        x, y = lag_matrix(np.arange(10.0), lags=3)
        assert x.shape == (7, 3)
        assert y.shape == (7,)

    def test_contents_oldest_first(self):
        x, y = lag_matrix(np.array([0.0, 1.0, 2.0, 3.0]), lags=2)
        assert x[0].tolist() == [0.0, 1.0]
        assert y[0] == 2.0
        assert x[-1].tolist() == [1.0, 2.0]
        assert y[-1] == 3.0

    def test_minimum_length(self):
        x, y = lag_matrix(np.array([1.0, 2.0]), lags=1)
        assert x.shape == (1, 1)

    def test_too_short_raises(self):
        with pytest.raises(PredictionError):
            lag_matrix(np.array([1.0, 2.0]), lags=2)

    def test_rejects_zero_lags(self):
        with pytest.raises(PredictionError):
            lag_matrix(np.arange(5.0), lags=0)

    def test_rejects_2d(self):
        with pytest.raises(PredictionError):
            lag_matrix(np.zeros((4, 2)), lags=1)


class TestPooledLagMatrix:
    def test_pools_columns(self):
        history = np.column_stack([np.arange(6.0), np.arange(6.0) * 10])
        x, y = pooled_lag_matrix(history, lags=2)
        assert x.shape == (8, 2)  # (6-2) rows * 2 modules
        assert y.shape == (8,)

    def test_column_relationship_preserved(self):
        """Each pooled row's target continues its own module's series."""
        history = np.column_stack([np.arange(6.0), 100.0 + np.arange(6.0)])
        x, y = pooled_lag_matrix(history, lags=2)
        for row, target in zip(x, y):
            assert target == pytest.approx(row[-1] + 1.0)

    def test_1d_input_falls_back(self):
        series = np.arange(8.0)
        x1, y1 = pooled_lag_matrix(series, lags=3)
        x2, y2 = lag_matrix(series, lags=3)
        assert np.array_equal(x1, x2)
        assert np.array_equal(y1, y2)

    def test_too_short_raises(self):
        with pytest.raises(PredictionError):
            pooled_lag_matrix(np.zeros((2, 4)), lags=2)


class TestStandardizer:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(50.0, 5.0, size=(200, 3))
        scaler = Standardizer().fit(data)
        scaled = scaler.transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_roundtrip(self, rng):
        data = rng.normal(50.0, 5.0, size=(50, 2))
        scaler = Standardizer().fit(data)
        assert np.allclose(scaler.inverse(scaler.transform(data)), data)

    def test_constant_column_safe(self):
        data = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        scaler = Standardizer().fit(data)
        scaled = scaler.transform(data)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_use_before_fit_raises(self):
        with pytest.raises(PredictionError):
            Standardizer().transform(np.zeros((2, 2)))

    def test_fitted_flag(self):
        scaler = Standardizer()
        assert not scaler.fitted
        scaler.fit(np.zeros((3, 1)))
        assert scaler.fitted

    def test_empty_raises(self):
        with pytest.raises(PredictionError):
            Standardizer().fit(np.array([]))
