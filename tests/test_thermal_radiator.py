"""Tests for repro.thermal.radiator (paper Eq. 1 and module placement)."""

import numpy as np
import pytest

from repro.errors import ModelParameterError
from repro.thermal.coolant import AIR, ETHYLENE_GLYCOL_50_50
from repro.thermal.heat_exchanger import CrossFlowHeatExchanger, UAModel
from repro.thermal.radiator import (
    Radiator,
    RadiatorGeometry,
    surface_temperature_profile,
)


def make_radiator(preheat: float = 0.0) -> Radiator:
    geometry = RadiatorGeometry(path_length_m=2.0, n_rows=10)
    ua = UAModel(5000.0, 2200.0, 0.30, 0.70)
    return Radiator(
        geometry, CrossFlowHeatExchanger(ua), ETHYLENE_GLYCOL_50_50, AIR,
        sink_preheat_fraction=preheat,
    )


class TestSurfaceProfile:
    """Equation (1): T(d) = (Th,i - Tc,a) e^{-K d / Cc} + Tc,a."""

    def test_entrance_value(self):
        d = np.array([0.0])
        assert surface_temperature_profile(95.0, 40.0, 1.2, d)[0] == pytest.approx(95.0)

    def test_asymptote(self):
        d = np.array([1000.0])
        assert surface_temperature_profile(95.0, 40.0, 1.2, d)[0] == pytest.approx(40.0)

    def test_exact_formula(self):
        d = np.array([0.7])
        value = surface_temperature_profile(95.0, 40.0, 1.2, d)[0]
        assert value == pytest.approx((95.0 - 40.0) * np.exp(-1.2 * 0.7) + 40.0)

    def test_monotonically_decreasing(self):
        d = np.linspace(0.0, 2.0, 50)
        profile = surface_temperature_profile(95.0, 40.0, 1.2, d)
        assert np.all(np.diff(profile) < 0.0)

    def test_zero_decay_is_flat(self):
        d = np.linspace(0.0, 2.0, 5)
        profile = surface_temperature_profile(95.0, 40.0, 0.0, d)
        assert np.allclose(profile, 95.0)

    def test_rejects_negative_decay(self):
        with pytest.raises(ModelParameterError):
            surface_temperature_profile(95.0, 40.0, -0.1, np.array([0.5]))


class TestGeometry:
    def test_module_positions_count_and_range(self):
        geometry = RadiatorGeometry(path_length_m=2.0)
        pos = geometry.module_positions(100)
        assert pos.shape == (100,)
        assert 0.0 < pos[0] < pos[-1] < 2.0

    def test_positions_centered(self):
        geometry = RadiatorGeometry(path_length_m=1.0)
        pos = geometry.module_positions(4)
        assert pos == pytest.approx([0.125, 0.375, 0.625, 0.875])

    def test_rejects_zero_modules(self):
        with pytest.raises(ModelParameterError):
            RadiatorGeometry(path_length_m=1.0).module_positions(0)

    def test_rejects_zero_length(self):
        with pytest.raises(ModelParameterError):
            RadiatorGeometry(path_length_m=0.0)


class TestOperatingPoint:
    def test_surface_matches_eq1(self):
        radiator = make_radiator()
        op = radiator.operating_point(92.0, 0.3, 25.0, 0.7, 10)
        positions = radiator.geometry.module_positions(10)
        expected = surface_temperature_profile(
            92.0, op.solution.cold_mean_c, op.decay_per_m, positions
        )
        assert op.surface_temps_c == pytest.approx(expected)

    def test_decay_constant_definition(self):
        """decay = UA / (L * C_c), with K = UA per unit length."""
        radiator = make_radiator()
        op = radiator.operating_point(92.0, 0.3, 25.0, 0.7, 10)
        expected = op.solution.ua_w_k / (2.0 * op.solution.cold_capacity_w_k)
        assert op.decay_per_m == pytest.approx(expected)

    def test_paper_assumption_sink_at_ambient(self):
        radiator = make_radiator(preheat=0.0)
        op = radiator.operating_point(92.0, 0.3, 25.0, 0.7, 10)
        assert np.allclose(op.sink_temps_c, 25.0)
        assert op.delta_t_k == pytest.approx(op.surface_temps_c - 25.0)

    def test_preheat_gradient_reduces_tail_delta_t(self):
        flat = make_radiator(preheat=0.0).operating_point(92.0, 0.3, 25.0, 0.7, 10)
        graded = make_radiator(preheat=0.6).operating_point(92.0, 0.3, 25.0, 0.7, 10)
        # First module nearly unaffected, last module much cooler drive.
        assert graded.delta_t_k[0] == pytest.approx(flat.delta_t_k[0], rel=0.05)
        assert graded.delta_t_k[-1] < flat.delta_t_k[-1] - 5.0

    def test_sink_gradient_monotonic(self):
        op = make_radiator(preheat=0.5).operating_point(92.0, 0.3, 25.0, 0.7, 10)
        assert np.all(np.diff(op.sink_temps_c) > 0.0)
        assert op.sink_temps_c[0] >= 25.0

    def test_delta_t_mostly_positive_in_operating_band(self):
        """Strong preheat may push the last few modules slightly negative
        (duct air accumulates heat faster than the surface decays) —
        that is physically real and the electrical model handles it;
        the bulk of the chain must stay positive."""
        op = make_radiator(preheat=0.65).operating_point(90.0, 0.15, 25.0, 0.5, 100)
        assert np.all(op.delta_t_k[:90] > 0.0)
        assert np.all(op.delta_t_k > -5.0)
        assert op.delta_t_k[0] > 40.0

    def test_steeper_profile_at_lower_airflow(self):
        radiator = make_radiator()
        slow = radiator.operating_point(92.0, 0.3, 25.0, 0.4, 10)
        fast = radiator.operating_point(92.0, 0.3, 25.0, 1.4, 10)
        assert slow.decay_per_m > fast.decay_per_m

    def test_coolant_outlet_exposed(self):
        radiator = make_radiator()
        op = radiator.operating_point(92.0, 0.3, 25.0, 0.7, 10)
        assert op.coolant_outlet_c == pytest.approx(op.solution.hot_outlet_c)
        assert op.coolant_outlet_c < 92.0

    def test_rejects_bad_preheat(self):
        with pytest.raises(ModelParameterError):
            make_radiator(preheat=1.5)


class TestColdStartRegime:
    """Coolant at/below ambient: the radiator is inactive, not an error."""

    def test_zero_duty_below_ambient(self):
        op = make_radiator().operating_point(20.0, 0.2, 25.0, 0.5, 10)
        assert op.solution.duty_w == 0.0
        assert op.solution.effectiveness == 0.0

    def test_flat_profile_at_coolant_temperature(self):
        op = make_radiator().operating_point(20.0, 0.2, 25.0, 0.5, 10)
        assert np.allclose(op.surface_temps_c, 20.0)
        assert np.allclose(op.sink_temps_c, 25.0)
        assert np.allclose(op.delta_t_k, -5.0)

    def test_exactly_ambient_is_inactive(self):
        op = make_radiator().operating_point(25.0, 0.2, 25.0, 0.5, 10)
        assert op.solution.duty_w == 0.0

    def test_just_above_threshold_is_active(self):
        op = make_radiator().operating_point(26.0, 0.2, 25.0, 0.5, 10)
        assert op.solution.duty_w > 0.0

    def test_capacities_still_reported(self):
        op = make_radiator().operating_point(20.0, 0.2, 25.0, 0.5, 10)
        assert op.solution.hot_capacity_w_k > 0.0
        assert op.solution.cold_capacity_w_k > 0.0
        assert op.solution.ua_w_k > 0.0
