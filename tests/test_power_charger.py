"""Tests for repro.power.charger."""

import pytest

from repro.power.battery import LeadAcidBattery
from repro.power.charger import TEGCharger
from repro.power.converter import BuckBoostConverter
from repro.power.mppt import PerturbObserveMPPT


class TestDeliveredAtMPP:
    def test_applies_converter_curve(self, small_array):
        charger = TEGCharger()
        mpp = small_array.configured_mpp([0, 5, 10, 15])
        expected = charger.converter.output_power(mpp.power_w, mpp.voltage_v)
        assert charger.delivered_at_mpp(mpp) == pytest.approx(expected)

    def test_voltage_preference_changes_ranking(self, small_array):
        """Two configs with similar raw power rank differently after the
        converter — the effect INOR's n-range exists to exploit."""
        charger = TEGCharger()
        few_groups = small_array.configured_mpp([0, 10])          # low voltage
        many_groups = small_array.configured_mpp(list(range(0, 20, 2)))
        raw_ratio = few_groups.power_w / many_groups.power_w
        delivered_ratio = charger.delivered_at_mpp(few_groups) / charger.delivered_at_mpp(
            many_groups
        )
        assert delivered_ratio != pytest.approx(raw_ratio, rel=1e-3)

    def test_preferred_window_delegates(self):
        charger = TEGCharger()
        assert charger.preferred_voltage_window(0.03) == pytest.approx(
            charger.converter.preferred_voltage_window(0.03)
        )


class TestStep:
    def test_exact_tracking_uses_analytic_mpp(self, small_array):
        charger = TEGCharger(exact_tracking=True)
        report = charger.step(small_array, [0, 5, 10, 15], dt_s=0.5)
        mpp = small_array.configured_mpp([0, 5, 10, 15])
        assert report.array_power_w == pytest.approx(mpp.power_w)
        assert report.array_voltage_v == pytest.approx(mpp.voltage_v)
        assert report.mppt_iterations == 0

    def test_po_tracking_close_to_exact(self, small_array):
        exact = TEGCharger(exact_tracking=True)
        tracked = TEGCharger(
            exact_tracking=False,
            mppt=PerturbObserveMPPT(initial_step_a=0.3, min_step_a=1e-4),
        )
        starts = [0, 5, 10, 15]
        exact_report = exact.step(small_array, starts, dt_s=0.5)
        tracked_report = tracked.step(small_array, starts, dt_s=0.5)
        assert tracked_report.array_power_w == pytest.approx(
            exact_report.array_power_w, rel=1e-3
        )
        assert tracked_report.mppt_iterations > 0

    def test_battery_accepts_delivered(self, small_array):
        battery = LeadAcidBattery()
        charger = TEGCharger(battery=battery)
        report = charger.step(small_array, [0, 5, 10, 15], dt_s=2.0)
        assert report.accepted_power_w == pytest.approx(report.delivered_power_w)
        assert battery.absorbed_energy_j == pytest.approx(
            report.accepted_power_w * 2.0
        )

    def test_no_battery_passthrough(self, small_array):
        charger = TEGCharger(battery=None)
        report = charger.step(small_array, [0, 5, 10, 15], dt_s=0.5)
        assert report.accepted_power_w == report.delivered_power_w

    def test_delivered_below_array_power(self, small_array):
        report = TEGCharger().step(small_array, [0, 5, 10, 15], dt_s=0.5)
        assert report.delivered_power_w < report.array_power_w

    def test_efficiency_reported(self, small_array):
        report = TEGCharger().step(small_array, [0, 5, 10, 15], dt_s=0.5)
        converter = BuckBoostConverter()
        assert report.conversion_efficiency == pytest.approx(
            converter.efficiency(report.array_voltage_v)
        )
