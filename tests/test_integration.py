"""End-to-end integration tests: the paper's experiment in miniature.

These run the complete pipeline — synthetic drive, engine/coolant loop,
radiator, TEG array, charger, all four policies — on a shortened trace
and assert the *shape* of the paper's results (orderings and rough
factors), which is exactly what EXPERIMENTS.md checks at full scale.
"""

import numpy as np
import pytest

from repro.sim.scenario import default_scenario


@pytest.fixture(scope="module")
def scenario():
    return default_scenario(duration_s=120.0, seed=2018, n_modules=100)


@pytest.fixture(scope="module")
def all_results(scenario):
    simulator = scenario.make_simulator()
    return {
        name: simulator.run(policy, scenario.make_charger())
        for name, policy in scenario.make_policies().items()
    }


class TestTableOneShape:
    def test_energy_ordering(self, all_results):
        """DNOR > INOR > Baseline and EHTR > Baseline (Table I)."""
        assert (
            all_results["DNOR"].energy_output_j
            > all_results["INOR"].energy_output_j
            > all_results["Baseline"].energy_output_j
        )
        assert (
            all_results["EHTR"].energy_output_j
            > all_results["Baseline"].energy_output_j
        )

    def test_inor_vs_ehtr_close(self, all_results):
        """The two near-optimal periodic schemes are within a few %."""
        ratio = (
            all_results["INOR"].energy_output_j
            / all_results["EHTR"].energy_output_j
        )
        assert 0.97 < ratio < 1.08

    def test_dnor_over_baseline_scale(self, all_results):
        """Paper: +30%. Shape check: clearly double-digit improvement."""
        gain = (
            all_results["DNOR"].energy_output_j
            / all_results["Baseline"].energy_output_j
        )
        assert gain > 1.12

    def test_overhead_ordering(self, all_results):
        """DNOR's switching bill is orders of magnitude below the
        periodic schemes' (the paper's ~100x claim)."""
        assert all_results["DNOR"].switch_overhead_j * 5 < all_results[
            "INOR"
        ].switch_overhead_j
        assert all_results["EHTR"].switch_overhead_j >= all_results[
            "INOR"
        ].switch_overhead_j * 0.9

    def test_runtime_ordering(self, all_results):
        """EHTR is the slow one; DNOR amortises below INOR."""
        assert (
            all_results["EHTR"].average_runtime_ms
            > 5 * all_results["INOR"].average_runtime_ms
        )
        assert (
            all_results["DNOR"].average_runtime_ms
            <= all_results["INOR"].average_runtime_ms * 1.5
        )


class TestFigSevenShape:
    def test_reconfig_schemes_track_ideal(self, all_results):
        for scheme in ("DNOR", "INOR", "EHTR"):
            assert float(all_results[scheme].ratio_to_ideal().mean()) > 0.85

    def test_baseline_markedly_lower(self, all_results):
        baseline = float(all_results["Baseline"].ratio_to_ideal().mean())
        dnor = float(all_results["DNOR"].ratio_to_ideal().mean())
        assert baseline < dnor - 0.10

    def test_ratios_below_one(self, all_results):
        for result in all_results.values():
            assert np.all(result.ratio_to_ideal() <= 1.0 + 1e-9)

    def test_dnor_switch_points_sparse(self, all_results):
        """The paper marks only a handful of DNOR switch points."""
        n_epochs = 120 / 2.0  # one decision per t_p + 1 = 2 s
        assert all_results["DNOR"].switch_count < n_epochs / 3


class TestEnergyAccounting:
    def test_net_energy_consistency(self, all_results):
        for result in all_results.values():
            assert result.energy_output_j == pytest.approx(
                result.delivered_energy_j - result.switch_overhead_j
            )

    def test_net_power_series_integrates_to_net_energy(self, all_results):
        for result in all_results.values():
            integrated = float(result.net_power_w().sum() * result.dt_s)
            assert integrated == pytest.approx(result.energy_output_j, rel=1e-9)

    def test_battery_absorbs_delivered_energy(self, scenario):
        simulator = scenario.make_simulator()
        charger = scenario.make_charger(with_battery=True)
        result = simulator.run(scenario.make_baseline_policy(), charger)
        assert charger.battery.absorbed_energy_j == pytest.approx(
            result.delivered_energy_j, rel=1e-6
        )


class TestCrossSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 99])
    def test_orderings_hold_across_seeds(self, seed):
        scenario = default_scenario(duration_s=60.0, seed=seed, n_modules=100)
        simulator = scenario.make_simulator()
        dnor = simulator.run(scenario.make_dnor_policy(), scenario.make_charger())
        inor = simulator.run(scenario.make_inor_policy(), scenario.make_charger())
        base = simulator.run(
            scenario.make_baseline_policy(), scenario.make_charger()
        )
        assert dnor.energy_output_j > base.energy_output_j
        assert inor.energy_output_j > base.energy_output_j
        assert dnor.switch_overhead_j < inor.switch_overhead_j / 3
