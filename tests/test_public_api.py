"""Public API surface tests."""

import importlib

import pytest

import repro


class TestPackageMetadata:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_paper_identity(self):
        assert "Thermoelectric" in repro.PAPER_TITLE
        assert repro.PAPER_VENUE == "DATE 2018"
        assert repro.PAPER_ARXIV == "1804.01574"


class TestAllExports:
    def test_every_name_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_all_sorted_unique(self):
        assert len(set(repro.__all__)) == len(repro.__all__)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.teg",
            "repro.thermal",
            "repro.vehicle",
            "repro.power",
            "repro.prediction",
            "repro.sim",
        ],
    )
    def test_subpackage_all_resolvable(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for exc in (
            repro.ConfigurationError,
            repro.ModelParameterError,
            repro.PredictionError,
            repro.SimulationError,
        ):
            assert issubclass(exc, repro.TegkitError)

    def test_base_is_exception(self):
        assert issubclass(repro.TegkitError, Exception)


class TestDocstrings:
    @pytest.mark.parametrize(
        "obj_name",
        [
            "TEGArray",
            "TEGCharger",
            "ArrayConfiguration",
            "SwitchingOverheadModel",
            "MLRPredictor",
            "HarvestSimulator",
            "inor",
            "ehtr",
            "default_scenario",
            "porter_ii_trace",
        ],
    )
    def test_public_objects_documented(self, obj_name):
        obj = getattr(repro, obj_name)
        assert obj.__doc__ and len(obj.__doc__.strip()) > 20
