"""Property-based tests for the prediction stack."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.prediction.baselines import DriftPredictor, PersistencePredictor
from repro.prediction.features import pooled_lag_matrix
from repro.prediction.metrics import mae, mape, rmse
from repro.prediction.mlr import MLRPredictor


class TestMLRProperties:
    @given(
        st.floats(-0.9, 0.9),
        st.floats(-0.5, 0.5),
        st.floats(50.0, 100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_stable_ar2_process(self, a1, a2, level):
        """MLR fitted on a noiseless AR(2) series reproduces its next
        samples exactly (the model class contains the truth)."""
        assume(abs(a2) < 1.0 - abs(a1))  # stationarity triangle
        n = 160
        x = np.empty(n)
        x[0], x[1] = level, level + 1.0
        for t in range(2, n):
            x[t] = level + a1 * (x[t - 1] - level) + a2 * (x[t - 2] - level)
        spread = np.abs(x - level).max()
        assume(spread > 1e-3)  # skip degenerate collapses

        predictor = MLRPredictor(lags=3, train_window=None).fit(x)
        forecast = predictor.forecast(x, 2)
        x_next1 = level + a1 * (x[-1] - level) + a2 * (x[-2] - level)
        x_next2 = level + a1 * (x_next1 - level) + a2 * (x[-1] - level)
        assert np.isclose(forecast[0], x_next1, rtol=1e-6, atol=1e-6 * spread + 1e-9)
        assert np.isclose(forecast[1], x_next2, rtol=1e-6, atol=1e-6 * spread + 1e-9)

    @given(st.integers(2, 6), st.integers(12, 40), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_pooled_matrix_shape_invariant(self, lags, rows, cols):
        assume(rows > lags)
        history = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        x, y = pooled_lag_matrix(history, lags)
        assert x.shape == ((rows - lags) * cols, lags)
        assert y.shape == ((rows - lags) * cols,)


class TestMetricProperties:
    @given(
        st.lists(st.floats(10.0, 200.0), min_size=2, max_size=30),
        st.floats(-5.0, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_mape_shift_invariance_scale(self, values, shift):
        """Constant multiplicative error k gives MAPE = |k - 1| * 100."""
        actual = np.asarray(values)
        factor = 1.0 + shift / 100.0
        assert mape(actual, actual * factor) == np.float64(
            abs(shift)
        ).round(6) or np.isclose(
            mape(actual, actual * factor), abs(shift), rtol=1e-9, atol=1e-9
        )

    @given(st.lists(st.floats(-50.0, 50.0), min_size=2, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_rmse_dominates_mae(self, values):
        actual = np.zeros(len(values))
        forecast = np.asarray(values)
        assert rmse(actual + 100.0, forecast + 100.0) >= mae(
            actual + 100.0, forecast + 100.0
        ) - 1e-12


class TestBaselineProperties:
    @given(st.lists(st.floats(50.0, 150.0), min_size=5, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_persistence_forecast_constant(self, values):
        series = np.asarray(values)
        predictor = PersistencePredictor().fit(series)
        forecast = predictor.forecast(series, 4)
        assert np.all(forecast == series[-1])

    @given(
        st.floats(50.0, 150.0),
        st.floats(-2.0, 2.0),
        st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_drift_exact_on_affine_series(self, start, slope, horizon):
        series = start + slope * np.arange(30.0)
        predictor = DriftPredictor().fit(series)
        forecast = predictor.forecast(series, horizon)
        expected = series[-1] + slope * np.arange(1, horizon + 1)
        assert np.allclose(forecast, expected, rtol=1e-9, atol=1e-7)
