"""Tests for repro.prediction.baselines."""

import numpy as np
import pytest

from repro.prediction.baselines import DriftPredictor, PersistencePredictor
from repro.prediction.mlr import MLRPredictor


def ramp_history(n_rows=40, n_modules=3):
    t = np.arange(n_rows, dtype=float)[:, None]
    return 60.0 + 0.1 * t + np.linspace(0, 10, n_modules)[None, :]


class TestPersistence:
    def test_holds_last_value(self):
        history = ramp_history()
        predictor = PersistencePredictor().fit(history)
        forecast = predictor.forecast(history, 3)
        for row in forecast:
            assert np.allclose(row, history[-1])

    def test_name(self):
        assert PersistencePredictor().name == "Persist"


class TestDrift:
    def test_extrapolates_linearly(self):
        history = ramp_history()
        predictor = DriftPredictor().fit(history)
        forecast = predictor.forecast(history, 4)
        for k, row in enumerate(forecast, start=1):
            assert np.allclose(row, history[-1] + 0.1 * k)

    def test_constant_series_stays(self):
        history = np.full((20, 2), 88.0)
        predictor = DriftPredictor().fit(history)
        assert np.allclose(predictor.forecast(history, 3), 88.0)

    def test_name(self):
        assert DriftPredictor().name == "Drift"


class TestBaselinesVsMLR:
    def test_mlr_beats_persistence_on_trend(self):
        """On a trending series, persistence lags; MLR must not."""
        history = ramp_history(200)
        actual_next = history[-1] + 0.1

        persist = PersistencePredictor().fit(history).forecast(history, 1)[0]
        mlr = MLRPredictor(lags=3).fit(history).forecast(history, 1)[0]

        persist_err = np.abs(persist - actual_next).max()
        mlr_err = np.abs(mlr - actual_next).max()
        assert mlr_err < persist_err

    def test_drift_exact_on_linear_mlr_matches(self):
        history = ramp_history(200)
        actual_next = history[-1] + 0.1
        drift = DriftPredictor().fit(history).forecast(history, 1)[0]
        assert np.allclose(drift, actual_next)
