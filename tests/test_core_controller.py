"""Tests for repro.core.controller — the policy layer."""

import numpy as np
import pytest

from repro.core.baseline import grid_for_square_array
from repro.core.controller import DNORPolicy, PeriodicPolicy, StaticPolicy
from repro.core.dnor import DNORPlanner
from repro.core.overhead import SwitchingOverheadModel
from repro.errors import ConfigurationError
from repro.power.charger import TEGCharger
from repro.prediction.mlr import MLRPredictor
from repro.teg.datasheet import TGM_199_1_4_0_8


def gradient_temps(n_modules=16, level=50.0) -> np.ndarray:
    return 25.0 + 10.0 + level * np.exp(-2.0 * np.linspace(0, 1, n_modules))


class TestStaticPolicy:
    def test_applies_once(self):
        config = grid_for_square_array(16)
        policy = StaticPolicy(config)
        first = policy.decide(0.0, gradient_temps(), 25.0)
        second = policy.decide(0.5, gradient_temps(), 25.0)
        assert first == config
        assert second is None

    def test_reset_reapplies(self):
        policy = StaticPolicy(grid_for_square_array(16))
        policy.decide(0.0, gradient_temps(), 25.0)
        policy.reset()
        assert policy.decide(0.0, gradient_temps(), 25.0) is not None

    def test_name_default(self):
        assert StaticPolicy(grid_for_square_array(16)).name == "Baseline"


class TestPeriodicPolicy:
    def test_runs_at_period(self):
        policy = PeriodicPolicy(TGM_199_1_4_0_8, "inor", period_s=1.0)
        assert policy.decide(0.0, gradient_temps(), 25.0) is not None
        assert policy.decide(0.5, gradient_temps(), 25.0) is None
        assert policy.decide(1.0, gradient_temps(), 25.0) is not None

    def test_inor_name(self):
        assert PeriodicPolicy(TGM_199_1_4_0_8, "inor").name == "INOR"

    def test_ehtr_name(self):
        assert PeriodicPolicy(TGM_199_1_4_0_8, "ehtr").name == "EHTR"

    def test_ehtr_produces_config(self):
        policy = PeriodicPolicy(TGM_199_1_4_0_8, "ehtr")
        config = policy.decide(0.0, gradient_temps(), 25.0)
        assert config is not None
        assert config.n_modules == 16

    def test_inor_uses_charger_window(self):
        charger = TEGCharger()
        policy = PeriodicPolicy(TGM_199_1_4_0_8, "inor", charger=charger)
        config = policy.decide(0.0, gradient_temps(64), 25.0)
        # 64 modules, mean EMF ~2 V: converter window forces well under
        # 64 groups.
        assert config.n_groups < 40

    def test_reset_restarts_clock(self):
        policy = PeriodicPolicy(TGM_199_1_4_0_8, "inor", period_s=10.0)
        policy.decide(0.0, gradient_temps(), 25.0)
        policy.reset()
        assert policy.decide(0.0, gradient_temps(), 25.0) is not None

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            PeriodicPolicy(TGM_199_1_4_0_8, "magic")

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicPolicy(TGM_199_1_4_0_8, "inor", period_s=0.0)


class TestDNORPolicy:
    def make_policy(self, tp_seconds=1.0) -> DNORPolicy:
        planner = DNORPlanner(
            module=TGM_199_1_4_0_8,
            charger=TEGCharger(),
            overhead=SwitchingOverheadModel(),
            predictor=MLRPredictor(lags=4, train_window=120),
            tp_seconds=tp_seconds,
            sample_dt_s=0.5,
        )
        return DNORPolicy(planner)

    def test_first_decision_applies_config(self):
        policy = self.make_policy()
        config = policy.decide(0.0, gradient_temps(), 25.0)
        assert config is not None

    def test_epoch_spacing(self):
        """Decisions every t_p + 1 seconds; in between, None."""
        policy = self.make_policy(tp_seconds=1.0)
        policy.decide(0.0, gradient_temps(), 25.0)
        decisions_before_epoch = [
            policy.decide(t, gradient_temps(), 25.0) for t in (0.5, 1.0, 1.5)
        ]
        assert all(d is None for d in decisions_before_epoch)
        assert len(policy.decisions) == 1
        policy.decide(2.0, gradient_temps(), 25.0)
        assert len(policy.decisions) == 2

    def test_steady_temps_no_further_switches(self):
        policy = self.make_policy()
        for k in range(40):
            policy.decide(k * 0.5, gradient_temps(), 25.0)
        assert len(policy.switch_times_s) == 1  # only the initial adoption

    def test_history_buffer_feeds_predictor(self):
        policy = self.make_policy()
        for k in range(30):
            policy.decide(k * 0.5, gradient_temps(), 25.0)
        last = policy.decisions[-1]
        # With 30 rows of history, the epochs after warm-up must not
        # fall back to persistence.
        assert not last.used_fallback_forecast or len(policy.decisions) <= 2

    def test_reset_clears_everything(self):
        policy = self.make_policy()
        policy.decide(0.0, gradient_temps(), 25.0)
        policy.reset()
        assert policy.decisions == ()
        assert policy.switch_times_s == ()
        assert policy.decide(0.0, gradient_temps(), 25.0) is not None

    def test_name(self):
        assert self.make_policy().name == "DNOR"

    def test_rejects_tiny_history_buffer(self):
        planner = self.make_policy().planner
        with pytest.raises(ConfigurationError):
            DNORPolicy(planner, history_rows=1)
