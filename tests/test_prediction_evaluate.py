"""Tests for repro.prediction.evaluate (the Fig. 5 procedure)."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.evaluate import walk_forward_evaluation
from repro.prediction.mlr import MLRPredictor


def history_matrix(n_rows=200, n_modules=3) -> np.ndarray:
    t = np.arange(n_rows, dtype=float)[:, None]
    return 80.0 + 4.0 * np.sin(2 * np.pi * t / 90.0) + np.linspace(0, 5, n_modules)


class TestWalkForward:
    def test_series_length(self):
        history = history_matrix()
        ev = walk_forward_evaluation(
            MLRPredictor(lags=4), history, horizon_steps=2, warmup_rows=60, stride=5
        )
        expected = len(range(60, history.shape[0] - 2, 5))
        assert ev.mape_series_pct.shape == (expected,)
        assert ev.eval_times_idx.shape == (expected,)

    def test_aggregates_consistent(self):
        ev = walk_forward_evaluation(
            MLRPredictor(lags=4), history_matrix(), horizon_steps=2, warmup_rows=60
        )
        assert ev.mean_mape_pct == pytest.approx(float(ev.mape_series_pct.mean()))
        assert ev.max_mape_pct == pytest.approx(float(ev.mape_series_pct.max()))

    def test_errors_small_on_smooth_series(self):
        ev = walk_forward_evaluation(
            MLRPredictor(lags=4), history_matrix(), horizon_steps=2, warmup_rows=60
        )
        assert ev.mean_mape_pct < 0.1

    def test_refit_every_reduces_fit_calls(self):
        slow_fit_counter = {"n": 0}

        class Counting(MLRPredictor):
            def _fit_impl(self, history):
                slow_fit_counter["n"] += 1
                super()._fit_impl(history)

        walk_forward_evaluation(
            Counting(lags=4),
            history_matrix(),
            horizon_steps=2,
            warmup_rows=60,
            stride=2,
            refit_every=10,
        )
        first = slow_fit_counter["n"]
        slow_fit_counter["n"] = 0
        walk_forward_evaluation(
            Counting(lags=4),
            history_matrix(),
            horizon_steps=2,
            warmup_rows=60,
            stride=2,
            refit_every=1,
        )
        assert first < slow_fit_counter["n"]

    def test_timing_fields_populated(self):
        ev = walk_forward_evaluation(
            MLRPredictor(lags=4), history_matrix(), horizon_steps=1, warmup_rows=60
        )
        assert ev.mean_fit_seconds > 0.0
        assert ev.mean_forecast_seconds > 0.0

    def test_predictor_name_recorded(self):
        ev = walk_forward_evaluation(
            MLRPredictor(), history_matrix(), horizon_steps=1, warmup_rows=60
        )
        assert ev.predictor_name == "MLR"

    def test_history_too_short_raises(self):
        with pytest.raises(PredictionError):
            walk_forward_evaluation(
                MLRPredictor(), history_matrix(50), horizon_steps=2, warmup_rows=60
            )

    def test_bad_stride_raises(self):
        with pytest.raises(PredictionError):
            walk_forward_evaluation(
                MLRPredictor(), history_matrix(), horizon_steps=2, warmup_rows=60,
                stride=0,
            )

    def test_warmup_must_cover_lags(self):
        with pytest.raises(PredictionError):
            walk_forward_evaluation(
                MLRPredictor(lags=10), history_matrix(), horizon_steps=2,
                warmup_rows=5,
            )
