"""Incremental predictor refits (LagSeriesPredictor.partial_fit).

The windowed normal-equation update in :class:`MLRPredictor` must be
*exact*: sliding the training window by rank add/evict updates gives
the same model a fresh full :meth:`fit` over the same window would.
Pinned bitwise on integer-valued histories (every gram entry is an
integer product, exact in float64) and to tight float tolerance on
real-valued data, where the only divergence is normal-equation
conditioning noise.
"""

import numpy as np
import pytest
from numpy.testing import assert_allclose

from repro.errors import PredictionError
from repro.prediction.baselines import PersistencePredictor
from repro.prediction.mlr import MLRPredictor


def _integer_history(rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(-40, 95, size=(rows, cols)).astype(float)


def _real_history(rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(rows)[:, None]
    phase = rng.uniform(0.0, 2 * np.pi, size=(1, cols))
    return (
        60.0
        + 20.0 * np.sin(0.07 * t + phase)
        + rng.normal(0.0, 0.8, size=(rows, cols))
    )


def _model_state(predictor):
    return predictor.coefficients, predictor.intercept


class TestExactness:
    def test_streamed_equals_full_fit_bitwise_integer(self):
        """Chunked partial_fit == fresh fit on the same window, bitwise,
        through many window slides and evictions."""
        history = _integer_history(400, 3)
        window = 60
        streamed = MLRPredictor(lags=4, train_window=window)
        for lo in range(0, 400, 7):
            chunk = history[lo : lo + 7]
            try:
                streamed.partial_fit(chunk)
            except PredictionError:
                continue  # stream still shorter than lags+1
            reference = MLRPredictor(lags=4, train_window=window)
            reference.fit(history[: lo + chunk.shape[0]])
            coef_s, int_s = _model_state(streamed)
            coef_r, int_r = _model_state(reference)
            assert np.array_equal(coef_s, coef_r), f"rows<={lo + 7}"
            assert int_s == int_r, f"rows<={lo + 7}"

    @pytest.mark.parametrize("chunk_size", (1, 5, 24))
    def test_streamed_equals_full_fit_real_data(self, chunk_size):
        history = _real_history(300, 4)
        window = 80
        streamed = MLRPredictor(lags=4, train_window=window)
        fed = 0
        while fed < 300:
            chunk = history[fed : fed + chunk_size]
            fed += chunk.shape[0]
            try:
                streamed.partial_fit(chunk)
            except PredictionError:
                continue
        reference = MLRPredictor(lags=4, train_window=window)
        reference.fit(history)
        coef_s, int_s = _model_state(streamed)
        coef_r, int_r = _model_state(reference)
        # Not bitwise on real data: the incremental gram accumulates
        # rounding that a fresh rebuild does not.  1e-7 relative is
        # far below any decision-relevant signal.
        assert_allclose(coef_s, coef_r, rtol=1.0e-7, atol=1.0e-10)
        assert_allclose(int_s, int_r, rtol=1.0e-6, atol=1.0e-7)

    def test_forecast_matches_full_fit_bitwise(self):
        history = _integer_history(200, 5, seed=3)
        streamed = MLRPredictor(lags=4, train_window=96)
        for lo in range(0, 200, 10):
            try:
                streamed.partial_fit(history[lo : lo + 10])
            except PredictionError:
                continue
        reference = MLRPredictor(lags=4, train_window=96)
        reference.fit(history)
        assert np.array_equal(
            streamed.forecast(history, 3), reference.forecast(history, 3)
        )


class TestStreamProtocol:
    def test_too_short_stream_raises_but_retains_rows(self):
        predictor = MLRPredictor(lags=4, train_window=50)
        with pytest.raises(PredictionError, match="too short"):
            predictor.partial_fit(np.ones((2, 3)))
        # The buffered rows count toward the next call.
        predictor.partial_fit(_integer_history(8, 3))
        assert predictor.coefficients.shape == (4,)

    def test_width_change_raises(self):
        predictor = MLRPredictor(lags=2, train_window=50)
        predictor.partial_fit(_integer_history(10, 3))
        with pytest.raises(PredictionError, match="reset_partial"):
            predictor.partial_fit(np.ones((4, 5)))

    def test_reset_partial_clears_stream(self):
        predictor = MLRPredictor(lags=2, train_window=50)
        predictor.partial_fit(_integer_history(10, 3))
        predictor.reset_partial()
        # After a reset a narrow chunk must be too short again (the old
        # buffered rows are gone), not silently concatenated.
        with pytest.raises(PredictionError, match="too short"):
            predictor.partial_fit(np.ones((2, 3)))

    def test_full_fit_starts_fresh_stream(self):
        predictor = MLRPredictor(lags=2, train_window=50)
        predictor.partial_fit(_integer_history(10, 3))
        predictor.fit(_integer_history(30, 3, seed=9))
        with pytest.raises(PredictionError, match="too short"):
            predictor.partial_fit(np.ones((1, 3)))

    def test_1d_chunk_is_a_column(self):
        predictor = MLRPredictor(lags=2, train_window=50)
        predictor.partial_fit(np.arange(12.0))
        reference = MLRPredictor(lags=2, train_window=50)
        reference.fit(np.arange(12.0).reshape(-1, 1))
        assert np.array_equal(
            predictor.coefficients, reference.coefficients
        )

    def test_non_finite_chunk_rejected(self):
        predictor = MLRPredictor(lags=2, train_window=50)
        bad = _integer_history(10, 2)
        bad[3, 1] = np.nan
        with pytest.raises(PredictionError):
            predictor.partial_fit(bad)

    def test_base_class_default_refit_path(self):
        """Predictors without an incremental kernel fall back to a full
        refit over the streamed window — same interface, same model."""
        streamed = PersistencePredictor()
        history = _integer_history(40, 3, seed=7)
        streamed.partial_fit(history)
        reference = PersistencePredictor()
        reference.fit(history)
        assert np.array_equal(
            streamed.forecast(history, 2), reference.forecast(history, 2)
        )


class TestCost:
    def test_incremental_update_touches_only_edges(self):
        """The update cost is O(chunk), not O(window): pin by counting
        rows through the lag-matrix builder."""
        import repro.prediction.mlr as mlr_module

        calls = []
        original = mlr_module.pooled_lag_matrix

        def counting(history, lags):
            calls.append(history.shape[0])
            return original(history, lags)

        predictor = MLRPredictor(lags=4, train_window=200)
        predictor.partial_fit(_integer_history(220, 3))
        mlr_module.pooled_lag_matrix = counting
        try:
            calls.clear()
            predictor.partial_fit(_integer_history(5, 3, seed=1))
        finally:
            mlr_module.pooled_lag_matrix = original
        # One add block (5 new + 4 lags) and one evict block (5 + 4):
        # no call sees anywhere near the 200-row window.
        assert calls, "partial_fit bypassed the lag-matrix builder"
        assert max(calls) <= 9 + 4
