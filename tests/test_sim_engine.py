"""Tests for the layered simulation engine.

Covers the three layers introduced by the batch-engine refactor:

* trace-level physics precompute (``solve_trace`` / ``TracePhysics``)
  against the per-sample scalar path,
* the batched step loop against the pre-refactor reference loop,
* the :class:`ExperimentRunner` fan-out against direct sequential
  runs — pinned *bit-identical* on a seeded scenario, for every
  executor.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.power.charger import TEGCharger
from repro.power.converter import BuckBoostConverter
from repro.sim.engine import (
    ExperimentCase,
    ExperimentCollation,
    ExperimentRunner,
    grid_cases,
    run_case,
)
from repro.sim.physics import TracePhysics
from repro.sim.results import SimulationResult
from repro.sim.scenario import (
    build_named_scenario,
    default_registry,
    default_scenario,
    fault_injected_trace,
)
from repro.sim.simulator import HarvestSimulator
from repro.teg.array import TEGArray


@pytest.fixture(scope="module")
def scenario():
    """Pinned seeded scenario: deterministic scanner + overhead bills."""
    return default_scenario(
        duration_s=30.0, seed=5, n_modules=25, nominal_compute_s=1.0e-3
    )


@pytest.fixture(scope="module")
def physics(scenario):
    return TracePhysics.compute(
        scenario.trace, scenario.radiator, scenario.module, scenario.n_modules
    )


SERIES_FIELDS = (
    "delivered_power_w",
    "gross_power_w",
    "array_voltage_v",
    "ideal_power_w",
    "n_groups_series",
    "time_s",
)


def assert_results_bit_identical(a, b):
    for field in SERIES_FIELDS:
        assert np.array_equal(getattr(a, field), getattr(b, field)), field
    assert a.switch_times_s == b.switch_times_s
    assert len(a.overhead_events) == len(b.overhead_events)
    for ea, eb in zip(a.overhead_events, b.overhead_events):
        assert ea.time_s == eb.time_s
        assert ea.energy_j == eb.energy_j
        assert ea.toggles == eb.toggles


class TestSolveTraceAgreement:
    def test_matches_per_sample_operating_point(self, scenario):
        trace = scenario.trace
        sol = scenario.radiator.solve_trace(
            trace.coolant_inlet_c,
            trace.coolant_flow_kg_s,
            trace.ambient_c,
            trace.air_flow_kg_s,
            scenario.n_modules,
        )
        assert sol.n_samples == trace.n_samples
        assert sol.n_modules == scenario.n_modules
        for i in range(trace.n_samples):
            op = scenario.radiator.operating_point(
                float(trace.coolant_inlet_c[i]),
                float(trace.coolant_flow_kg_s[i]),
                float(trace.ambient_c[i]),
                float(trace.air_flow_kg_s[i]),
                scenario.n_modules,
            )
            np.testing.assert_allclose(
                sol.delta_t_k[i], op.delta_t_k, rtol=1e-12, atol=1e-12
            )
            np.testing.assert_allclose(
                sol.surface_temps_c[i], op.surface_temps_c, rtol=1e-12
            )
            assert sol.decay_per_m[i] == pytest.approx(op.decay_per_m, rel=1e-12)
            assert sol.exchanger.duty_w[i] == pytest.approx(
                op.solution.duty_w, rel=1e-12, abs=1e-9
            )

    def test_cold_start_rows_match_degenerate_path(self):
        scenario = build_named_scenario("cold-start", duration_s=30.0)
        trace = scenario.trace
        sol = scenario.radiator.solve_trace(
            trace.coolant_inlet_c,
            trace.coolant_flow_kg_s,
            trace.ambient_c,
            trace.air_flow_kg_s,
            scenario.n_modules,
        )
        assert not sol.active.all()  # the soak starts below ambient + 0.05
        i = int(np.flatnonzero(~sol.active)[0])
        op = scenario.radiator.operating_point(
            float(trace.coolant_inlet_c[i]),
            float(trace.coolant_flow_kg_s[i]),
            float(trace.ambient_c[i]),
            float(trace.air_flow_kg_s[i]),
            scenario.n_modules,
        )
        assert np.array_equal(sol.delta_t_k[i], op.delta_t_k)
        assert sol.exchanger.duty_w[i] == 0.0

    def test_operating_point_reconstruction(self, scenario, physics):
        op = physics.true_solution.operating_point(3)
        assert op.delta_t_k.shape == (scenario.n_modules,)
        assert op.coolant_outlet_c == pytest.approx(
            float(physics.true_solution.exchanger.hot_outlet_c[3])
        )


class TestTracePhysics:
    def test_sensed_solve_skipped_when_noiseless(self, scenario):
        trace = scenario.trace
        noiseless = dataclasses.replace(
            trace,
            coolant_inlet_sensed_c=trace.coolant_inlet_c,
            coolant_flow_sensed_kg_s=trace.coolant_flow_kg_s,
        )
        physics = TracePhysics.compute(
            noiseless, scenario.radiator, scenario.module, scenario.n_modules
        )
        assert physics.noiseless
        assert physics.sensed_solution is physics.true_solution

    def test_noisy_trace_solves_twice(self, physics):
        assert not physics.noiseless
        assert physics.sensed_solution is not physics.true_solution

    def test_ideal_matches_array_path(self, scenario, physics):
        array = TEGArray(scenario.module, scenario.n_modules)
        for i in (0, 7, physics.n_samples - 1):
            array.set_delta_t(physics.true_delta_t_k[i])
            assert physics.ideal_power_w[i] == array.ideal_power()

    def test_emf_matches_array_path(self, scenario, physics):
        array = TEGArray(scenario.module, scenario.n_modules)
        array.set_delta_t(physics.true_delta_t_k[4])
        assert np.array_equal(physics.emf_true[4], array.emf_vector())


class TestBatchedVsReference:
    @pytest.mark.parametrize("policy", ["Baseline", "INOR", "DNOR"])
    def test_engines_agree(self, scenario, policy):
        def run(engine):
            simulator = HarvestSimulator(
                trace=scenario.trace,
                boundary=scenario.boundary,
                module=scenario.module,
                n_modules=scenario.n_modules,
                overhead=scenario.overhead,
                scanner=scenario.make_scanner(),
                nominal_compute_s=scenario.nominal_compute_s,
                engine=engine,
            )
            return simulator.run(
                scenario.make_policies()[policy], scenario.make_charger()
            )

        batched = run("batched")
        reference = run("reference")
        # The reference loop computes the thermal chain with scalar
        # libm calls, so agreement is ULP-level, not bitwise.
        for field in SERIES_FIELDS:
            np.testing.assert_allclose(
                getattr(batched, field),
                getattr(reference, field),
                rtol=1e-9,
                atol=1e-9,
            )
        assert batched.switch_count == reference.switch_count
        assert batched.switch_overhead_j == pytest.approx(
            reference.switch_overhead_j, rel=1e-9
        )

    def test_po_tracking_fallback(self, scenario):
        simulator = scenario.make_simulator()
        result = simulator.run(
            scenario.make_baseline_policy(), TEGCharger(exact_tracking=False)
        )
        exact = simulator.run(
            scenario.make_baseline_policy(), TEGCharger(exact_tracking=True)
        )
        # P&O maximises *array* power; after the converter's
        # voltage-dependent efficiency its delivered energy can land a
        # hair above or below the exact-MPP loop.
        ratio = result.delivered_energy_j / exact.delivered_energy_j
        assert 0.99 < ratio < 1.01

    def test_battery_state_replayed(self, scenario):
        charger = scenario.make_charger(with_battery=True)
        simulator = scenario.make_simulator()
        simulator.run(scenario.make_baseline_policy(), charger)
        assert charger.battery is not None
        assert charger.battery.absorbed_energy_j > 0.0

    def test_battery_not_double_charged_with_po_tracking(self, scenario):
        """The P&O fallback charges the battery inside charger.step;
        the replay pass must not bill it a second time."""
        from repro.power.battery import LeadAcidBattery

        def run(engine):
            charger = TEGCharger(
                exact_tracking=False, battery=LeadAcidBattery()
            )
            simulator = HarvestSimulator(
                trace=scenario.trace,
                boundary=scenario.boundary,
                module=scenario.module,
                n_modules=scenario.n_modules,
                scanner=scenario.make_scanner(),
                nominal_compute_s=1.0e-3,
                engine=engine,
            )
            simulator.run(scenario.make_baseline_policy(), charger)
            return charger.battery.absorbed_energy_j

        assert run("batched") == pytest.approx(run("reference"), rel=1e-9)

    def test_physics_cached_across_runs(self, scenario):
        simulator = scenario.make_simulator()
        simulator.run(scenario.make_baseline_policy(), scenario.make_charger())
        first = simulator.physics
        simulator.run(scenario.make_inor_policy(), scenario.make_charger())
        assert simulator.physics is first

    def test_rejects_unknown_engine(self, scenario):
        with pytest.raises(SimulationError):
            HarvestSimulator(
                trace=scenario.trace,
                boundary=scenario.boundary,
                module=scenario.module,
                n_modules=scenario.n_modules,
                engine="warp",
            )

    def test_rejects_mismatched_physics(self, scenario, physics):
        other = default_scenario(duration_s=20.0, seed=6, n_modules=25)
        with pytest.raises(SimulationError):
            HarvestSimulator(
                trace=other.trace,
                boundary=other.boundary,
                module=other.module,
                n_modules=other.n_modules,
                physics=physics,
            )


class TestExperimentRunnerEquivalence:
    """The acceptance pin: the batch layer reproduces sequential runs
    bit-identically on a seeded scenario, for every executor."""

    @pytest.fixture(scope="class")
    def sequential(self, scenario):
        results = {}
        for policy in ("DNOR", "INOR", "Baseline"):
            simulator = scenario.make_simulator()
            results[policy] = simulator.run(
                scenario.make_policies()[policy], scenario.make_charger()
            )
        return results

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_bit_identical_to_sequential(self, scenario, sequential, executor):
        cases = grid_cases([scenario], ["DNOR", "INOR", "Baseline"])
        collation = ExperimentRunner(
            cases, executor=executor, max_workers=2
        ).run()
        assert len(collation) == 3
        for case in cases:
            assert_results_bit_identical(
                collation[case.name], sequential[case.policy]
            )

    def test_grid_axes_and_names(self, scenario):
        cases = grid_cases(
            [scenario],
            ["Baseline"],
            n_modules=[16, 25],
            scanner_noise_std_k=[0.0, 0.5],
        )
        assert len(cases) == 4
        names = [c.name for c in cases]
        assert f"{scenario.trace.name}/N=16/noise=0K/Baseline" in names
        noisy = next(c for c in cases if "noise=0.5K" in c.name)
        assert noisy.scenario.scanner_noise_std_k == 0.5
        assert noisy.scenario.n_modules in (16, 25)

    def test_duplicate_names_rejected(self, scenario):
        case = ExperimentCase(name="x", scenario=scenario, policy="Baseline")
        with pytest.raises(SimulationError):
            ExperimentRunner([case, case])

    def test_unknown_policy_rejected(self, scenario):
        case = ExperimentCase(name="x", scenario=scenario, policy="MAGIC")
        with pytest.raises(SimulationError):
            run_case(case)

    def test_unknown_executor_rejected(self, scenario):
        case = ExperimentCase(name="x", scenario=scenario, policy="Baseline")
        with pytest.raises(SimulationError):
            ExperimentRunner([case], executor="gpu")

    def test_collation_accessors(self, scenario):
        cases = grid_cases([scenario], ["Baseline", "INOR"])
        collation = ExperimentRunner(cases, executor="serial").run()
        assert "Energy Output (J)" in collation.tables()
        rows = collation.summary_rows()
        assert {row["policy"] for row in rows} == {"Baseline", "INOR"}
        assert "energy_output_j" in collation.to_json()
        pairs = list(collation)  # iterable: (case, result) pairs
        assert len(pairs) == 2
        assert pairs[0][0] is cases[0]
        with pytest.raises(KeyError):
            collation["nope"]

    def test_failed_case_names_itself(self, scenario, physics):
        """One bad cell in a pooled/sharded grid must say which case it
        was: the worker's traceback surfaces far from the submission
        site."""
        other = default_scenario(duration_s=20.0, seed=6, n_modules=25)
        case = ExperimentCase(
            name="porter/bad-cell", scenario=other, policy="Baseline"
        )
        with pytest.raises(SimulationError, match="case 'porter/bad-cell' failed"):
            run_case(case, physics=physics)  # physics of another scenario
        try:
            run_case(case, physics=physics)
        except SimulationError as exc:
            assert exc.__cause__ is not None  # original error chained

    def test_collation_json_sanitises_non_finite(self, scenario):
        """NaN/Inf summary values must serialise as null, not as the
        non-standard NaN/Infinity tokens strict parsers reject."""
        import json as json_mod

        case = ExperimentCase(name="x/Baseline", scenario=scenario, policy="Baseline")
        n = 4
        result = SimulationResult(
            scheme="Baseline",
            time_s=np.arange(n) * 0.5,
            gross_power_w=np.full(n, np.nan),
            delivered_power_w=np.full(n, np.nan),
            ideal_power_w=np.full(n, np.inf),
            array_voltage_v=np.zeros(n),
            runtime_s=np.zeros(n),
            overhead_events=(),
            switch_times_s=(),
            n_groups_series=np.ones(n, dtype=np.int64),
        )
        collation = ExperimentCollation(cases=(case,), results=(result,))
        text = collation.to_json()
        rows = json_mod.loads(text)  # strict parse must succeed
        assert rows[0]["energy_output_j"] is None
        assert "NaN" not in text and "Infinity" not in text

    def test_registry_scenarios_are_deterministic(self):
        """Registry builders pin nominal_compute_s, so repeated DNOR
        runs are bit-identical (the engine's reproducibility contract
        for everything users can build by name)."""

        def run_once():
            scenario = build_named_scenario(
                "porter-ii", duration_s=15.0, n_modules=25
            )
            assert scenario.nominal_compute_s is not None
            return scenario.make_simulator().run(
                scenario.make_dnor_policy(), scenario.make_charger()
            )

        a, b = run_once(), run_once()
        assert np.array_equal(a.delivered_power_w, b.delivered_power_w)
        assert a.switch_overhead_j == b.switch_overhead_j


class TestBatchedPowerMath:
    def test_converter_batch_matches_scalar(self):
        converter = BuckBoostConverter()
        rng = np.random.default_rng(3)
        power = rng.uniform(-5.0, 120.0, 400)
        voltage = rng.uniform(-2.0, 60.0, 400)
        batch = converter.output_power_batch(power, voltage)
        scalar = np.array(
            [
                converter.output_power(float(p), float(v))
                for p, v in zip(power, voltage)
            ]
        )
        assert np.array_equal(batch, scalar)

    def test_efficiency_batch_matches_scalar(self):
        converter = BuckBoostConverter()
        voltages = np.array([-1.0, 0.0, 0.5, 5.0, 14.5, 40.0, 200.0])
        batch = converter.efficiency_batch(voltages)
        scalar = np.array([converter.efficiency(float(v)) for v in voltages])
        assert np.array_equal(batch, scalar)

    def test_charger_delivered_batch(self):
        charger = TEGCharger()
        power = np.array([0.0, 10.0, 50.0])
        voltage = np.array([5.0, 15.0, 30.0])
        assert np.array_equal(
            charger.delivered_batch(power, voltage),
            charger.converter.output_power_batch(power, voltage),
        )


class TestScenarioRegistry:
    def test_registry_names(self):
        names = default_registry().names()
        assert names == (
            "porter-ii",
            "nedc-drive",
            "cold-start",
            "industrial-boiler",
            "fault-injection",
            "exhaust-gas",
            "finite-coupling",
            "segmented-exhaust",
            "steel-hybrid",
        )

    def test_build_overrides(self):
        scenario = build_named_scenario(
            "porter-ii", duration_s=20.0, seed=9, n_modules=16
        )
        assert scenario.n_modules == 16
        assert scenario.trace.duration_s == pytest.approx(20.0)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            build_named_scenario("warp-core")

    def test_boiler_scenario_is_hot_and_square(self):
        scenario = build_named_scenario("industrial-boiler", duration_s=30.0)
        assert scenario.n_modules == 144  # perfect square: baseline valid
        assert scenario.trace.coolant_inlet_c.mean() > 120.0
        # The bank actually harvests.
        result = scenario.make_simulator().run(
            scenario.make_baseline_policy(), scenario.make_charger()
        )
        assert result.energy_output_j > 0.0

    def test_fault_injection_leaves_truth_untouched(self):
        base = build_named_scenario("porter-ii", duration_s=20.0)
        faulty = build_named_scenario("fault-injection", duration_s=20.0)
        assert np.array_equal(
            base.trace.coolant_inlet_c, faulty.trace.coolant_inlet_c
        )
        assert not np.array_equal(
            base.trace.coolant_inlet_sensed_c,
            faulty.trace.coolant_inlet_sensed_c,
        )
        assert faulty.scanner_noise_std_k == 0.5

    def test_fault_injected_trace_has_stuck_episodes(self):
        base = build_named_scenario("porter-ii", duration_s=60.0).trace
        faulty = fault_injected_trace(base, seed=1, stuck_probability=0.2)
        diffs = np.diff(faulty.coolant_inlet_sensed_c)
        assert np.any(diffs == 0.0)  # frozen readings exist

    def test_nedc_scenario_builds(self):
        scenario = build_named_scenario("nedc-drive", duration_s=40.0, seed=3)
        assert scenario.trace.n_samples == 81
        assert scenario.trace.name.startswith("nedc-")
