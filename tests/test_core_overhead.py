"""Tests for repro.core.overhead — the switching bill."""

import pytest

from repro.core.overhead import SwitchingOverheadModel
from repro.units import ModelParameterError


class TestTiming:
    def test_interruption_excludes_compute(self):
        model = SwitchingOverheadModel(
            sensing_delay_s=5e-3, reconfiguration_delay_s=12e-3, mppt_settle_s=8e-3
        )
        assert model.interruption_s() == pytest.approx(25e-3)

    def test_downtime_adds_compute(self):
        model = SwitchingOverheadModel()
        assert model.downtime_s(40e-3) == pytest.approx(
            model.interruption_s() + 40e-3
        )

    def test_downtime_rejects_negative_compute(self):
        with pytest.raises(ModelParameterError):
            SwitchingOverheadModel().downtime_s(-1e-3)


class TestEventEnergy:
    def test_components(self):
        model = SwitchingOverheadModel(
            sensing_delay_s=5e-3,
            reconfiguration_delay_s=10e-3,
            mppt_settle_s=5e-3,
            per_toggle_energy_j=1e-3,
            compute_staleness_factor=0.1,
        )
        energy = model.event_energy_j(power_w=50.0, compute_time_s=40e-3, toggles=30)
        expected = 50.0 * 20e-3 + 50.0 * 40e-3 * 0.1 + 30 * 1e-3
        assert energy == pytest.approx(expected)

    def test_zero_power_only_toggles(self):
        model = SwitchingOverheadModel(per_toggle_energy_j=2e-4)
        assert model.event_energy_j(0.0, 1e-3, 10) == pytest.approx(2e-3)

    def test_compute_charged_below_full_power(self):
        """The Table-I pin: EHTR's 33 ms extra compute must cost far
        less than 33 ms of full output power."""
        model = SwitchingOverheadModel()
        base = model.event_energy_j(50.0, 4e-3, 0)
        heavy = model.event_energy_j(50.0, 37e-3, 0)
        assert heavy - base < 50.0 * 33e-3 * 0.5
        assert heavy > base

    def test_paper_scale_per_event(self):
        """~1600 events at ~50 W must land near the paper's ~2 kJ."""
        model = SwitchingOverheadModel()
        per_event = model.event_energy_j(power_w=50.0, compute_time_s=0.5e-3, toggles=60)
        assert 1600 * per_event == pytest.approx(2035.0, rel=0.25)

    def test_rejects_negative_toggles(self):
        with pytest.raises(ValueError):
            SwitchingOverheadModel().event_energy_j(50.0, 1e-3, -1)

    def test_rejects_negative_power(self):
        with pytest.raises(ModelParameterError):
            SwitchingOverheadModel().event_energy_j(-1.0, 1e-3, 1)


class TestEventRecord:
    def test_fields(self):
        model = SwitchingOverheadModel()
        event = model.event(time_s=12.5, power_w=45.0, compute_time_s=2e-3, toggles=12)
        assert event.time_s == 12.5
        assert event.toggles == 12
        assert event.compute_time_s == 2e-3
        assert event.downtime_s == pytest.approx(model.downtime_s(2e-3))
        assert event.energy_j == pytest.approx(
            model.event_energy_j(45.0, 2e-3, 12)
        )

    def test_model_validates_parameters(self):
        with pytest.raises(ModelParameterError):
            SwitchingOverheadModel(sensing_delay_s=-1.0)
