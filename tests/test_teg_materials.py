"""Tests for repro.teg.materials."""

import pytest

import math

import numpy as np

from repro.errors import ModelParameterError
from repro.teg.materials import (
    BISMUTH_TELLURIDE,
    BISMUTH_TELLURIDE_REALISTIC,
    DRIFT_CLAMP_FLOOR,
    NOMINAL_BISMUTH_RESISTANCE_OHM,
    NOMINAL_BISMUTH_SEEBECK_V_PER_K,
    REFERENCE_TEMPERATURE_C,
    CoupleMaterial,
)


class TestCoupleMaterialValidation:
    def test_valid_material_constructs(self):
        mat = CoupleMaterial(seebeck_v_per_k=4e-4, resistance_ohm=1e-2)
        assert mat.seebeck_v_per_k == 4e-4

    def test_rejects_negative_seebeck(self):
        with pytest.raises(ModelParameterError):
            CoupleMaterial(seebeck_v_per_k=-4e-4, resistance_ohm=1e-2)

    def test_rejects_zero_resistance(self):
        with pytest.raises(ModelParameterError):
            CoupleMaterial(seebeck_v_per_k=4e-4, resistance_ohm=0.0)

    def test_rejects_negative_thermal_conductance(self):
        with pytest.raises(ModelParameterError):
            CoupleMaterial(
                seebeck_v_per_k=4e-4,
                resistance_ohm=1e-2,
                thermal_conductance_w_per_k=-1.0,
            )

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            BISMUTH_TELLURIDE.seebeck_v_per_k = 1.0


class TestTemperatureDrift:
    def test_constant_material_ignores_temperature(self):
        assert BISMUTH_TELLURIDE.seebeck_at(150.0) == BISMUTH_TELLURIDE.seebeck_v_per_k
        assert BISMUTH_TELLURIDE.resistance_at(150.0) == BISMUTH_TELLURIDE.resistance_ohm

    def test_reference_temperature_is_nominal(self):
        mat = BISMUTH_TELLURIDE_REALISTIC
        assert mat.seebeck_at(REFERENCE_TEMPERATURE_C) == pytest.approx(mat.seebeck_v_per_k)
        assert mat.resistance_at(REFERENCE_TEMPERATURE_C) == pytest.approx(mat.resistance_ohm)

    def test_drift_increases_with_temperature(self):
        mat = BISMUTH_TELLURIDE_REALISTIC
        assert mat.seebeck_at(80.0) > mat.seebeck_v_per_k
        assert mat.resistance_at(80.0) > mat.resistance_ohm

    def test_drift_clamped_at_low_extremes(self):
        mat = CoupleMaterial(
            seebeck_v_per_k=4e-4,
            resistance_ohm=1e-2,
            seebeck_temp_coeff_per_k=0.1,
            resistance_temp_coeff_per_k=0.1,
        )
        # Far below reference, the linear law would go negative; it must
        # clamp at 10% of nominal instead.
        assert mat.seebeck_at(-100.0) == pytest.approx(0.1 * 4e-4)
        assert mat.resistance_at(-100.0) == pytest.approx(0.1 * 1e-2)


class TestNamedMaterials:
    def test_bismuth_telluride_order_of_magnitude(self):
        # A Bi2Te3 couple is a few hundred microvolts per kelvin.
        assert 1e-4 < BISMUTH_TELLURIDE.seebeck_v_per_k < 1e-3

    def test_tgm199_module_level_figures(self):
        # 199 couples must give the TGM-199-1.4-0.8 datasheet scale:
        # ~12.8 V open-circuit at dT = 170 K, ~3 Ohm internal.
        emf = BISMUTH_TELLURIDE.seebeck_v_per_k * 199 * 170.0
        resistance = BISMUTH_TELLURIDE.resistance_ohm * 199
        assert emf == pytest.approx(12.8, rel=0.05)
        assert resistance == pytest.approx(2.9, rel=0.05)


class TestTempCoefficientValidation:
    def test_rejects_nan_seebeck_coeff(self):
        with pytest.raises(ModelParameterError, match="finite"):
            CoupleMaterial(
                seebeck_v_per_k=4e-4,
                resistance_ohm=1e-2,
                seebeck_temp_coeff_per_k=math.nan,
            )

    def test_rejects_infinite_resistance_coeff(self):
        with pytest.raises(ModelParameterError, match="finite"):
            CoupleMaterial(
                seebeck_v_per_k=4e-4,
                resistance_ohm=1e-2,
                resistance_temp_coeff_per_k=math.inf,
            )

    def test_negative_finite_coeffs_are_allowed(self):
        mat = CoupleMaterial(
            seebeck_v_per_k=4e-4,
            resistance_ohm=1e-2,
            seebeck_temp_coeff_per_k=-1e-3,
            resistance_temp_coeff_per_k=-1e-3,
        )
        assert mat.seebeck_at(80.0) < mat.seebeck_v_per_k


class TestDriftClampFloor:
    """The 10% floor: pathological mean temperatures must never flip
    the EMF sign or drive the resistance to zero."""

    MAT = CoupleMaterial(
        seebeck_v_per_k=4e-4,
        resistance_ohm=1e-2,
        seebeck_temp_coeff_per_k=0.05,
        resistance_temp_coeff_per_k=0.05,
    )

    def test_floor_is_ten_percent(self):
        assert DRIFT_CLAMP_FLOOR == 0.1

    def test_clamp_applies_symmetrically_to_both_properties(self):
        # At -200 degC the linear scale is far below zero for both.
        assert self.MAT.seebeck_at(-200.0) == DRIFT_CLAMP_FLOOR * 4e-4
        assert self.MAT.resistance_at(-200.0) == DRIFT_CLAMP_FLOOR * 1e-2

    def test_sign_never_flips_over_a_huge_range(self):
        temps = np.linspace(-500.0, 1500.0, 401)
        assert np.all(self.MAT.seebeck_at(temps) > 0.0)
        assert np.all(self.MAT.resistance_at(temps) > 0.0)

    def test_clamp_is_elementwise_over_arrays(self):
        temps = np.array([-300.0, REFERENCE_TEMPERATURE_C, 100.0])
        seebeck = self.MAT.seebeck_at(temps)
        assert seebeck.shape == temps.shape
        assert seebeck[0] == DRIFT_CLAMP_FLOOR * 4e-4
        assert seebeck[1] == 4e-4
        assert seebeck[2] > 4e-4

    def test_unclamped_region_is_plain_linear_law(self):
        temp = 60.0
        expected = 4e-4 * (1.0 + 0.05 * (temp - REFERENCE_TEMPERATURE_C))
        assert self.MAT.seebeck_at(temp) == pytest.approx(expected)


class TestNominalConstantsSingleSource:
    def test_named_material_uses_the_shared_constants(self):
        assert BISMUTH_TELLURIDE.seebeck_v_per_k == (
            NOMINAL_BISMUTH_SEEBECK_V_PER_K
        )
        assert BISMUTH_TELLURIDE.resistance_ohm == (
            NOMINAL_BISMUTH_RESISTANCE_OHM
        )

    def test_datasheet_catalog_shares_the_constants(self):
        from repro.teg.datasheet import (
            TGM_127_1_0_0_8,
            TGM_199_1_4_0_8,
            TGM_287_1_0_1_5,
        )

        for module in (TGM_127_1_0_0_8, TGM_199_1_4_0_8, TGM_287_1_0_1_5):
            assert module.material.seebeck_v_per_k == (
                NOMINAL_BISMUTH_SEEBECK_V_PER_K
            )
