"""Tests for repro.teg.materials."""

import pytest

from repro.errors import ModelParameterError
from repro.teg.materials import (
    BISMUTH_TELLURIDE,
    BISMUTH_TELLURIDE_REALISTIC,
    REFERENCE_TEMPERATURE_C,
    CoupleMaterial,
)


class TestCoupleMaterialValidation:
    def test_valid_material_constructs(self):
        mat = CoupleMaterial(seebeck_v_per_k=4e-4, resistance_ohm=1e-2)
        assert mat.seebeck_v_per_k == 4e-4

    def test_rejects_negative_seebeck(self):
        with pytest.raises(ModelParameterError):
            CoupleMaterial(seebeck_v_per_k=-4e-4, resistance_ohm=1e-2)

    def test_rejects_zero_resistance(self):
        with pytest.raises(ModelParameterError):
            CoupleMaterial(seebeck_v_per_k=4e-4, resistance_ohm=0.0)

    def test_rejects_negative_thermal_conductance(self):
        with pytest.raises(ModelParameterError):
            CoupleMaterial(
                seebeck_v_per_k=4e-4,
                resistance_ohm=1e-2,
                thermal_conductance_w_per_k=-1.0,
            )

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            BISMUTH_TELLURIDE.seebeck_v_per_k = 1.0


class TestTemperatureDrift:
    def test_constant_material_ignores_temperature(self):
        assert BISMUTH_TELLURIDE.seebeck_at(150.0) == BISMUTH_TELLURIDE.seebeck_v_per_k
        assert BISMUTH_TELLURIDE.resistance_at(150.0) == BISMUTH_TELLURIDE.resistance_ohm

    def test_reference_temperature_is_nominal(self):
        mat = BISMUTH_TELLURIDE_REALISTIC
        assert mat.seebeck_at(REFERENCE_TEMPERATURE_C) == pytest.approx(mat.seebeck_v_per_k)
        assert mat.resistance_at(REFERENCE_TEMPERATURE_C) == pytest.approx(mat.resistance_ohm)

    def test_drift_increases_with_temperature(self):
        mat = BISMUTH_TELLURIDE_REALISTIC
        assert mat.seebeck_at(80.0) > mat.seebeck_v_per_k
        assert mat.resistance_at(80.0) > mat.resistance_ohm

    def test_drift_clamped_at_low_extremes(self):
        mat = CoupleMaterial(
            seebeck_v_per_k=4e-4,
            resistance_ohm=1e-2,
            seebeck_temp_coeff_per_k=0.1,
            resistance_temp_coeff_per_k=0.1,
        )
        # Far below reference, the linear law would go negative; it must
        # clamp at 10% of nominal instead.
        assert mat.seebeck_at(-100.0) == pytest.approx(0.1 * 4e-4)
        assert mat.resistance_at(-100.0) == pytest.approx(0.1 * 1e-2)


class TestNamedMaterials:
    def test_bismuth_telluride_order_of_magnitude(self):
        # A Bi2Te3 couple is a few hundred microvolts per kelvin.
        assert 1e-4 < BISMUTH_TELLURIDE.seebeck_v_per_k < 1e-3

    def test_tgm199_module_level_figures(self):
        # 199 couples must give the TGM-199-1.4-0.8 datasheet scale:
        # ~12.8 V open-circuit at dT = 170 K, ~3 Ohm internal.
        emf = BISMUTH_TELLURIDE.seebeck_v_per_k * 199 * 170.0
        resistance = BISMUTH_TELLURIDE.resistance_ohm * 199
        assert emf == pytest.approx(12.8, rel=0.05)
        assert resistance == pytest.approx(2.9, rel=0.05)
