"""Scenario configuration variants and factory behaviour."""

import numpy as np
import pytest

from repro.prediction.baselines import PersistencePredictor
from repro.sim.scenario import default_scenario


class TestDefaultScenario:
    def test_paper_defaults(self):
        scenario = default_scenario(duration_s=20.0)
        assert scenario.n_modules == 100
        assert scenario.module.name == "TGM-199-1.4-0.8"
        assert scenario.control_period_s == 0.5
        assert scenario.tp_seconds == 1.0

    def test_duration_controls_trace(self):
        scenario = default_scenario(duration_s=30.0)
        assert scenario.trace.duration_s == pytest.approx(30.0)

    def test_seed_controls_trace(self):
        a = default_scenario(duration_s=20.0, seed=1)
        b = default_scenario(duration_s=20.0, seed=1)
        c = default_scenario(duration_s=20.0, seed=2)
        assert np.array_equal(a.trace.coolant_inlet_c, b.trace.coolant_inlet_c)
        assert not np.allclose(a.trace.coolant_inlet_c, c.trace.coolant_inlet_c)

    def test_tp_override(self):
        scenario = default_scenario(duration_s=20.0, tp_seconds=3.0)
        policy = scenario.make_dnor_policy()
        assert policy.planner.tp_seconds == 3.0
        assert policy.planner.epoch_seconds == 4.0

    def test_nominal_compute_propagates(self):
        scenario = default_scenario(duration_s=20.0, nominal_compute_s=2e-3)
        simulator = scenario.make_simulator()
        assert simulator._nominal_compute_s == 2e-3


class TestFactoryIsolation:
    def test_policies_are_fresh_instances(self):
        scenario = default_scenario(duration_s=20.0, n_modules=25)
        first = scenario.make_policies()
        second = scenario.make_policies()
        for name in first:
            assert first[name] is not second[name]

    def test_custom_predictor_injected(self):
        scenario = default_scenario(duration_s=20.0, n_modules=25)
        predictor = PersistencePredictor()
        policy = scenario.make_dnor_policy(predictor=predictor)
        assert policy.planner.predictor is predictor

    def test_baseline_requires_square_array(self):
        scenario = default_scenario(duration_s=20.0, n_modules=50)
        with pytest.raises(Exception):
            scenario.make_baseline_policy()

    def test_inor_policy_period_matches_scenario(self):
        scenario = default_scenario(duration_s=20.0)
        assert scenario.make_inor_policy().period_s == scenario.control_period_s


class TestDNORWithNaivePredictor:
    def test_closed_loop_runs(self):
        """DNOR must function with any LagSeriesPredictor."""
        scenario = default_scenario(duration_s=20.0, n_modules=25)
        simulator = scenario.make_simulator()
        policy = scenario.make_dnor_policy(predictor=PersistencePredictor())
        result = simulator.run(policy, scenario.make_charger())
        assert result.energy_output_j > 0.0
