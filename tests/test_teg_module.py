"""Tests for repro.teg.module (paper Eq. 2 and Fig. 1)."""

import numpy as np
import pytest

from repro.errors import ModelParameterError
from repro.teg.datasheet import TGM_199_1_4_0_8
from repro.teg.materials import BISMUTH_TELLURIDE_REALISTIC, CoupleMaterial
from repro.teg.module import TEGModule

MODULE = TGM_199_1_4_0_8


class TestConstruction:
    def test_rejects_zero_couples(self):
        with pytest.raises(ModelParameterError):
            TEGModule("bad", MODULE.material, 0)

    def test_rejects_fractional_couples(self):
        with pytest.raises(ModelParameterError):
            TEGModule("bad", MODULE.material, 10.5)


class TestEquationTwo:
    """The paper's Eq. (2): E = alpha * dT * N_cpl."""

    def test_emf_linear_in_delta_t(self):
        assert MODULE.open_circuit_voltage(40.0) == pytest.approx(
            2.0 * MODULE.open_circuit_voltage(20.0)
        )

    def test_emf_formula(self):
        expected = MODULE.material.seebeck_v_per_k * 50.0 * MODULE.n_couples
        assert MODULE.open_circuit_voltage(50.0) == pytest.approx(expected)

    def test_zero_delta_t_gives_zero_emf(self):
        assert MODULE.open_circuit_voltage(0.0) == 0.0

    def test_negative_delta_t_gives_negative_emf(self):
        assert MODULE.open_circuit_voltage(-10.0) < 0.0

    def test_internal_resistance_scales_with_couples(self):
        expected = MODULE.material.resistance_ohm * MODULE.n_couples
        assert MODULE.internal_resistance() == pytest.approx(expected)

    def test_power_at_load_matches_equation(self):
        # P = (E / (R + R_L))^2 * R_L, verbatim Eq. (2).
        delta_t, load = 45.0, 3.3
        emf = MODULE.open_circuit_voltage(delta_t)
        resistance = MODULE.internal_resistance()
        current = emf / (resistance + load)
        assert MODULE.power_at_load(load, delta_t) == pytest.approx(
            current * current * load
        )

    def test_power_at_load_rejects_nonpositive_load(self):
        with pytest.raises(ModelParameterError):
            MODULE.power_at_load(0.0, 40.0)


class TestOperatingPoints:
    def test_voltage_current_inverse(self):
        delta_t = 37.0
        current = 0.6
        voltage = MODULE.voltage_at_current(current, delta_t)
        assert MODULE.current_at_voltage(voltage, delta_t) == pytest.approx(current)

    def test_short_circuit_current(self):
        delta_t = 42.0
        isc = MODULE.short_circuit_current(delta_t)
        assert MODULE.voltage_at_current(isc, delta_t) == pytest.approx(0.0)

    def test_open_circuit_zero_current(self):
        delta_t = 42.0
        voc = MODULE.open_circuit_voltage(delta_t)
        assert MODULE.current_at_voltage(voc, delta_t) == pytest.approx(0.0)


class TestMPP:
    def test_mpp_at_half_open_circuit(self):
        delta_t = 55.0
        mpp = MODULE.mpp(delta_t)
        assert mpp.voltage_v == pytest.approx(MODULE.open_circuit_voltage(delta_t) / 2)

    def test_mpp_power_formula(self):
        delta_t = 55.0
        emf = MODULE.open_circuit_voltage(delta_t)
        assert MODULE.mpp_power(delta_t) == pytest.approx(
            emf * emf / (4 * MODULE.internal_resistance())
        )

    def test_mpp_current_is_half_short_circuit(self):
        delta_t = 55.0
        assert MODULE.mpp_current(delta_t) == pytest.approx(
            MODULE.short_circuit_current(delta_t) / 2
        )

    def test_mpp_power_consistent_with_v_times_i(self):
        mpp = MODULE.mpp(48.0)
        assert mpp.power_w == pytest.approx(mpp.voltage_v * mpp.current_a)

    def test_mpp_dominates_curve(self):
        """No point on the P-V curve beats the analytic MPP."""
        delta_t = 60.0
        voltage, power = MODULE.pv_curve(delta_t, 501)
        assert power.max() <= MODULE.mpp_power(delta_t) * (1 + 1e-9)

    def test_matched_load_attains_mpp(self):
        delta_t = 60.0
        assert MODULE.power_at_load(
            MODULE.internal_resistance(), delta_t
        ) == pytest.approx(MODULE.mpp_power(delta_t))

    def test_mpp_power_grows_quadratically_with_delta_t(self):
        assert MODULE.mpp_power(80.0) == pytest.approx(4.0 * MODULE.mpp_power(40.0))


class TestCurves:
    def test_iv_curve_endpoints(self):
        delta_t = 30.0
        voltage, current = MODULE.iv_curve(delta_t, 11)
        assert voltage[0] == 0.0
        assert voltage[-1] == pytest.approx(MODULE.open_circuit_voltage(delta_t))
        assert current[0] == pytest.approx(MODULE.short_circuit_current(delta_t))
        assert current[-1] == pytest.approx(0.0)

    def test_iv_curve_is_linear(self):
        voltage, current = MODULE.iv_curve(40.0, 21)
        slopes = np.diff(current) / np.diff(voltage)
        assert np.allclose(slopes, slopes[0])

    def test_pv_curve_is_concave_parabola(self):
        voltage, power = MODULE.pv_curve(40.0, 101)
        second_diff = np.diff(power, 2)
        assert np.all(second_diff < 0)

    def test_curve_rejects_single_point(self):
        with pytest.raises(ModelParameterError):
            MODULE.iv_curve(40.0, 1)

    def test_curves_share_voltage_axis(self):
        v1, _ = MODULE.iv_curve(40.0, 31)
        v2, _ = MODULE.pv_curve(40.0, 31)
        assert np.array_equal(v1, v2)


class TestTemperatureDriftPath:
    def test_mean_temp_changes_emf_for_drifting_material(self):
        material = CoupleMaterial(
            seebeck_v_per_k=4e-4,
            resistance_ohm=1e-2,
            seebeck_temp_coeff_per_k=1e-3,
        )
        module = TEGModule("drift", material, 100)
        cool = module.open_circuit_voltage(40.0, mean_temp_c=25.0)
        hot = module.open_circuit_voltage(40.0, mean_temp_c=75.0)
        assert hot > cool


class TestOperatingPointDriftConsistency:
    """Regression: the I-V operating-point helpers used to drop the
    drift model — EMF was evaluated at the mean junction temperature
    but the internal resistance stayed nominal.  Both must move
    together for a drifting material."""

    MODULE = TEGModule("drift", BISMUTH_TELLURIDE_REALISTIC, 199)
    DT = 60.0
    MEAN = 110.0

    def _drifted_thevenin(self):
        emf = self.MODULE.open_circuit_voltage(self.DT, self.MEAN)
        resistance = self.MODULE.internal_resistance(self.MEAN)
        assert resistance != self.MODULE.internal_resistance()
        return emf, resistance

    def test_current_at_voltage_uses_drifted_resistance(self):
        emf, resistance = self._drifted_thevenin()
        terminal = emf / 2.0
        assert self.MODULE.current_at_voltage(
            terminal, self.DT, self.MEAN
        ) == pytest.approx((emf - terminal) / resistance)

    def test_voltage_at_current_uses_drifted_resistance(self):
        emf, resistance = self._drifted_thevenin()
        current = emf / (4.0 * resistance)
        assert self.MODULE.voltage_at_current(
            current, self.DT, self.MEAN
        ) == pytest.approx(emf - current * resistance)

    def test_power_at_current_is_consistent_with_voltage(self):
        current = 0.7
        assert self.MODULE.power_at_current(
            current, self.DT, self.MEAN
        ) == pytest.approx(
            self.MODULE.voltage_at_current(current, self.DT, self.MEAN)
            * current
        )

    def test_iv_line_round_trips_through_both_helpers(self):
        # voltage_at_current(current_at_voltage(v)) == v only when the
        # same resistance is used on both legs.
        terminal = 3.1
        current = self.MODULE.current_at_voltage(
            terminal, self.DT, self.MEAN
        )
        assert self.MODULE.voltage_at_current(
            current, self.DT, self.MEAN
        ) == pytest.approx(terminal)

    def test_nominal_calls_are_unchanged(self):
        emf = self.MODULE.open_circuit_voltage(self.DT)
        resistance = self.MODULE.internal_resistance()
        assert self.MODULE.current_at_voltage(
            1.0, self.DT
        ) == pytest.approx((emf - 1.0) / resistance)
