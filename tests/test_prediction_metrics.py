"""Tests for repro.prediction.metrics (paper Eq. 3)."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.metrics import mae, mape, max_ape, rmse


class TestMAPE:
    def test_perfect_forecast_zero(self):
        actual = np.array([90.0, 85.0, 80.0])
        assert mape(actual, actual) == 0.0

    def test_equation_three(self):
        # M = (100/n) * sum(|A - F| / A)
        actual = np.array([100.0, 50.0])
        forecast = np.array([99.0, 51.0])
        expected = 100.0 / 2.0 * (1.0 / 100.0 + 1.0 / 50.0)
        assert mape(actual, forecast) == pytest.approx(expected)

    def test_percent_units(self):
        assert mape(np.array([100.0]), np.array([99.0])) == pytest.approx(1.0)

    def test_flattens_matrices(self):
        actual = np.array([[100.0, 100.0], [100.0, 100.0]])
        forecast = actual * 1.01
        assert mape(actual, forecast) == pytest.approx(1.0)

    def test_rejects_zero_actual(self):
        with pytest.raises(PredictionError):
            mape(np.array([0.0, 1.0]), np.array([0.0, 1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(PredictionError):
            mape(np.array([1.0, 2.0]), np.array([1.0]))

    def test_rejects_empty(self):
        with pytest.raises(PredictionError):
            mape(np.array([]), np.array([]))

    def test_rejects_nan(self):
        with pytest.raises(PredictionError):
            mape(np.array([1.0, np.nan]), np.array([1.0, 1.0]))


class TestOtherMetrics:
    def test_max_ape_is_worst_case(self):
        actual = np.array([100.0, 100.0])
        forecast = np.array([99.0, 90.0])
        assert max_ape(actual, forecast) == pytest.approx(10.0)

    def test_rmse(self):
        actual = np.array([1.0, 2.0, 3.0])
        forecast = np.array([1.0, 2.0, 6.0])
        assert rmse(actual, forecast) == pytest.approx(np.sqrt(3.0))

    def test_mae(self):
        actual = np.array([1.0, 2.0, 3.0])
        forecast = np.array([2.0, 2.0, 1.0])
        assert mae(actual, forecast) == pytest.approx(1.0)

    def test_rmse_at_least_mae(self, rng):
        actual = rng.uniform(50.0, 100.0, 40)
        forecast = actual + rng.normal(0.0, 2.0, 40)
        assert rmse(actual, forecast) >= mae(actual, forecast)
