"""Frozen legacy-format regressions (scenario/shard JSON v1 and v2).

``tests/data/legacy_scenario_v1.json`` and
``tests/data/legacy_shard_manifest_v1.json`` were written by the
pre-boundary-protocol serialiser (scenario ``format_version: 1`` with a
top-level ``"radiator"`` key); ``legacy_scenario_v2.json`` and
``legacy_shard_manifest_v2.json`` by the pre-module-protocol serialiser
(``format_version: 2`` — tagged boundary envelope, flat single-material
module dict).  These fixtures are **frozen** — they must keep loading
forever, loss-free: same physics fingerprint as a fresh build, shard
resume without rewriting the on-disk manifest, and re-serialisation
under the current v3 ``"boundary"`` + ``"module"`` envelopes.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import ExperimentCase
from repro.sim.scenario import (
    SCENARIO_FORMAT_VERSION,
    Scenario,
    build_named_scenario,
)
from repro.sim.shard import (
    collate_shard,
    init_shard,
    load_shard_manifest,
    work_shard,
)
from repro.teg.module import TEGModule
from repro.thermal.radiator import Radiator

DATA = Path(__file__).parent / "data"
LEGACY_SCENARIO = DATA / "legacy_scenario_v1.json"
LEGACY_MANIFEST = DATA / "legacy_shard_manifest_v1.json"
LEGACY_SCENARIO_V2 = DATA / "legacy_scenario_v2.json"
LEGACY_MANIFEST_V2 = DATA / "legacy_shard_manifest_v2.json"


def _fresh_porter():
    return build_named_scenario("porter-ii", duration_s=20.0, n_modules=16)


class TestLegacyScenarioFixture:
    def test_v1_loads_with_radiator_boundary(self):
        data = json.loads(LEGACY_SCENARIO.read_text())
        assert data["format_version"] == 1
        assert "radiator" in data and "boundary" not in data
        scenario = Scenario.from_json_dict(data)
        assert isinstance(scenario.boundary, Radiator)
        assert scenario.boundary.boundary_type == "radiator"
        assert scenario.radiator is scenario.boundary  # compat alias

    def test_v1_is_loss_free_vs_fresh_build(self):
        scenario = Scenario.from_json_dict(
            json.loads(LEGACY_SCENARIO.read_text())
        )
        fresh = _fresh_porter()
        assert scenario.physics_fingerprint() == fresh.physics_fingerprint()
        assert scenario.to_json_dict() == fresh.to_json_dict()

    def test_v1_reserialises_as_v3_envelopes(self):
        scenario = Scenario.from_json_dict(
            json.loads(LEGACY_SCENARIO.read_text())
        )
        data = scenario.to_json_dict()
        assert data["format_version"] == SCENARIO_FORMAT_VERSION == 3
        assert "radiator" not in data
        assert data["boundary"]["type"] == "radiator"
        assert data["module"]["type"] == "single-material"
        again = Scenario.from_json_dict(data)
        assert again.to_json_dict() == data
        assert again.physics_fingerprint() == scenario.physics_fingerprint()

    def test_unsupported_version_is_refused(self):
        data = json.loads(LEGACY_SCENARIO.read_text())
        data["format_version"] = 99
        with pytest.raises(ConfigurationError, match="format version"):
            Scenario.from_json_dict(data)


class TestLegacyScenarioV2Fixture:
    def test_v2_loads_with_flat_module_dict(self):
        data = json.loads(LEGACY_SCENARIO_V2.read_text())
        assert data["format_version"] == 2
        assert data["boundary"]["type"] == "radiator"
        # v2 modules were flat single-material dicts, not envelopes
        assert "type" not in data["module"]
        assert "material" in data["module"]
        scenario = Scenario.from_json_dict(data)
        assert isinstance(scenario.module, TEGModule)
        assert scenario.module.model_type == "single-material"

    def test_v2_is_loss_free_vs_fresh_build(self):
        scenario = Scenario.from_json_dict(
            json.loads(LEGACY_SCENARIO_V2.read_text())
        )
        fresh = _fresh_porter()
        assert scenario.physics_fingerprint() == fresh.physics_fingerprint()
        assert scenario.to_json_dict() == fresh.to_json_dict()

    def test_v2_reserialises_as_v3_envelopes(self):
        scenario = Scenario.from_json_dict(
            json.loads(LEGACY_SCENARIO_V2.read_text())
        )
        data = scenario.to_json_dict()
        assert data["format_version"] == SCENARIO_FORMAT_VERSION == 3
        assert data["module"]["type"] == "single-material"
        assert (
            data["module"]["params"]
            == json.loads(LEGACY_SCENARIO_V2.read_text())["module"]
        )
        again = Scenario.from_json_dict(data)
        assert again.to_json_dict() == data


def _legacy_manifest_tests(fixture_path, case_name):
    """Shared shard-manifest regression suite for one frozen fixture."""

    class Suite:
        def _grid(self, n_modules=16):
            scenario = build_named_scenario(
                "porter-ii", duration_s=20.0, n_modules=n_modules
            )
            return [
                ExperimentCase(
                    name=case_name,
                    scenario=scenario,
                    policy="Baseline",
                    with_battery=False,
                )
            ]

        def _legacy_shard(self, tmp_path):
            shard = tmp_path / "shard"
            shard.mkdir()
            (shard / "manifest.json").write_text(fixture_path.read_text())
            return shard

        def test_manifest_loads_with_radiator_boundary(self, tmp_path):
            shard = self._legacy_shard(tmp_path)
            manifest = load_shard_manifest(shard)
            assert manifest.case_ids == ("case-00000",)
            case = manifest.cases[0]
            assert case.name == case_name
            assert isinstance(case.scenario.boundary, Radiator)

        def test_resume_leaves_manifest_bytes_untouched(self, tmp_path):
            shard = self._legacy_shard(tmp_path)
            before = (shard / "manifest.json").read_text()
            manifest = init_shard(shard, self._grid(), warm=False)
            assert (shard / "manifest.json").read_text() == before
            assert manifest.case_ids == ("case-00000",)

        def test_resumed_legacy_shard_runs_end_to_end(self, tmp_path):
            shard = self._legacy_shard(tmp_path)
            init_shard(shard, self._grid(), warm=True)
            assert work_shard(shard) == ["case-00000"]
            collation = collate_shard(shard)
            assert [case.name for case in collation.cases] == [case_name]
            assert len(collation.results) == 1

        def test_different_grid_is_still_refused(self, tmp_path):
            shard = self._legacy_shard(tmp_path)
            with pytest.raises(SimulationError, match="different"):
                init_shard(shard, self._grid(n_modules=9), warm=False)

    return Suite


class TestLegacyShardManifest(
    _legacy_manifest_tests(LEGACY_MANIFEST, "porter-legacy/Baseline")
):
    pass


class TestLegacyShardManifestV2(
    _legacy_manifest_tests(LEGACY_MANIFEST_V2, "porter-legacy-v2/Baseline")
):
    pass
