"""Tests for repro.sim.export."""

import csv

import numpy as np
import pytest

from repro.sim.export import SERIES_COLUMNS, result_series_to_csv, summary_rows_to_csv
from repro.sim.scenario import default_scenario


@pytest.fixture(scope="module")
def result():
    scenario = default_scenario(duration_s=20.0, seed=6, n_modules=25)
    simulator = scenario.make_simulator()
    return simulator.run(scenario.make_inor_policy(), scenario.make_charger())


class TestSeriesExport:
    def test_header_and_row_count(self, result, tmp_path):
        path = result_series_to_csv(result, tmp_path / "series.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert tuple(rows[0]) == SERIES_COLUMNS
        assert len(rows) - 1 == result.time_s.size

    def test_values_roundtrip(self, result, tmp_path):
        path = result_series_to_csv(result, tmp_path / "series.csv")
        with path.open() as handle:
            reader = csv.DictReader(handle)
            first = next(reader)
        assert float(first["time_s"]) == pytest.approx(result.time_s[0])
        assert float(first["delivered_power_w"]) == pytest.approx(
            result.delivered_power_w[0]
        )
        assert int(first["n_groups"]) == result.n_groups_series[0]

    def test_net_power_column_integrates(self, result, tmp_path):
        path = result_series_to_csv(result, tmp_path / "series.csv")
        with path.open() as handle:
            net = [float(row["net_power_w"]) for row in csv.DictReader(handle)]
        assert sum(net) * result.dt_s == pytest.approx(
            result.energy_output_j, rel=1e-9
        )


class TestSummaryExport:
    def test_one_row_per_scheme(self, result, tmp_path):
        path = summary_rows_to_csv([result, result], tmp_path / "summary.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["scheme"] == "INOR"
        assert float(rows[0]["energy_output_j"]) == pytest.approx(
            result.energy_output_j
        )

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            summary_rows_to_csv([], tmp_path / "summary.csv")
