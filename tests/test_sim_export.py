"""Tests for repro.sim.export."""

import csv
import json

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.export import (
    RESULT_FORMAT_VERSION,
    SERIES_COLUMNS,
    result_from_npz,
    result_series_to_csv,
    result_to_npz,
    summary_rows_to_csv,
)
from repro.sim.scenario import default_scenario


@pytest.fixture(scope="module")
def result():
    scenario = default_scenario(duration_s=20.0, seed=6, n_modules=25)
    simulator = scenario.make_simulator()
    return simulator.run(scenario.make_inor_policy(), scenario.make_charger())


class TestSeriesExport:
    def test_header_and_row_count(self, result, tmp_path):
        path = result_series_to_csv(result, tmp_path / "series.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert tuple(rows[0]) == SERIES_COLUMNS
        assert len(rows) - 1 == result.time_s.size

    def test_values_roundtrip(self, result, tmp_path):
        path = result_series_to_csv(result, tmp_path / "series.csv")
        with path.open() as handle:
            reader = csv.DictReader(handle)
            first = next(reader)
        assert float(first["time_s"]) == pytest.approx(result.time_s[0])
        assert float(first["delivered_power_w"]) == pytest.approx(
            result.delivered_power_w[0]
        )
        assert int(first["n_groups"]) == result.n_groups_series[0]

    def test_net_power_column_integrates(self, result, tmp_path):
        path = result_series_to_csv(result, tmp_path / "series.csv")
        with path.open() as handle:
            net = [float(row["net_power_w"]) for row in csv.DictReader(handle)]
        assert sum(net) * result.dt_s == pytest.approx(
            result.energy_output_j, rel=1e-9
        )


class TestSummaryExport:
    def test_one_row_per_scheme(self, result, tmp_path):
        path = summary_rows_to_csv([result, result], tmp_path / "summary.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["scheme"] == "INOR"
        assert float(rows[0]["energy_output_j"]) == pytest.approx(
            result.energy_output_j
        )

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            summary_rows_to_csv([], tmp_path / "summary.csv")


class TestNpzRoundTrip:
    """The shard artifact format: loss-free, versioned, atomic."""

    ARRAY_FIELDS = (
        "time_s",
        "gross_power_w",
        "delivered_power_w",
        "ideal_power_w",
        "array_voltage_v",
        "runtime_s",
        "n_groups_series",
    )

    def test_bit_identical(self, result, tmp_path):
        # The INOR fixture switches every period, so the event records
        # (the trickiest part of the layout) are genuinely exercised.
        assert result.overhead_events
        loaded = result_from_npz(result_to_npz(result, tmp_path / "r.npz"))
        for field in self.ARRAY_FIELDS:
            assert np.array_equal(
                getattr(loaded, field), getattr(result, field)
            ), field
        assert loaded.scheme == result.scheme
        assert loaded.switch_times_s == result.switch_times_s
        assert loaded.overhead_events == result.overhead_events
        assert loaded.energy_output_j == result.energy_output_j

    def test_no_temp_files_left(self, result, tmp_path):
        result_to_npz(result, tmp_path / "r.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["r.npz"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SimulationError, match="cannot read"):
            result_from_npz(tmp_path / "nope.npz")

    def test_truncated_file_raises(self, result, tmp_path):
        path = result_to_npz(result, tmp_path / "r.npz")
        path.write_bytes(path.read_bytes()[:50])
        with pytest.raises(SimulationError):
            result_from_npz(path)

    def test_version_skew_refused(self, result, tmp_path):
        path = result_to_npz(result, tmp_path / "r.npz")
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        meta = json.loads(str(arrays["meta_json"]))
        assert meta["version"] == RESULT_FORMAT_VERSION
        meta["version"] = RESULT_FORMAT_VERSION + 1
        arrays["meta_json"] = np.array(json.dumps(meta))
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(SimulationError, match="version"):
            result_from_npz(path)
