"""Grid-stacked fused executor: grouping, fallback and schedule pins.

The executor-level *bitwise* parity against ``executor="serial"`` lives
in :mod:`tests.test_engine_parity`; this module pins the plumbing around
the fused pass — which cases may fuse (:func:`fusable_reason`), that the
replicated decision schedule is exactly the
:class:`~repro.core.controller.PeriodicPolicy` gating, that unfusable
cases fall back to the untouched per-case path in collation order, and
that group failures surface with the member case names attached.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.controller import PeriodicPolicy
from repro.errors import SimulationError
from repro.power.charger import TEGCharger
from repro.sim import gridstack
from repro.sim.engine import EXECUTORS, ExperimentRunner, grid_cases, run_case
from repro.sim.gridstack import (
    _decision_schedule,
    _group_key,
    fusable_reason,
    run_grid_stacked,
)
from repro.sim.scenario import build_named_scenario

DURATION_S = 15.0
N_MODULES = 16


@pytest.fixture(scope="module")
def scenario():
    return build_named_scenario(
        "porter-ii", duration_s=DURATION_S, n_modules=N_MODULES
    )


def _case(scenario, policy="INOR", **scenario_overrides):
    if scenario_overrides:
        scenario = dataclasses.replace(scenario, **scenario_overrides)
    return grid_cases([scenario], [policy])[0]


class _PerturbObserveScenario:
    """Scenario proxy whose charger tracks by P&O, not the analytic MPP."""

    def __init__(self, scenario):
        self._scenario = scenario

    def __getattr__(self, name):
        return getattr(self._scenario, name)

    def make_charger(self, with_battery=True):
        return TEGCharger(exact_tracking=False)


class TestFusableReason:
    def test_registry_inor_case_fuses(self, scenario):
        assert fusable_reason(_case(scenario)) is None

    @pytest.mark.parametrize("policy", ["DNOR", "Baseline"])
    def test_stackable_policies_fuse(self, scenario, policy):
        assert fusable_reason(_case(scenario, policy=policy)) is None

    def test_ehtr_does_not_fuse(self, scenario):
        reason = fusable_reason(_case(scenario, policy="EHTR"))
        assert reason is not None and "EHTR" in reason

    def test_scalar_kernel_does_not_fuse(self, scenario):
        reason = fusable_reason(_case(scenario, inor_kernel="scalar"))
        assert reason is not None and "scalar" in reason

    def test_explicit_numpy_backend_kernel_fuses(self, scenario):
        assert fusable_reason(_case(scenario, inor_kernel="batched:numpy")) is None

    def test_measured_compute_time_does_not_fuse(self, scenario):
        reason = fusable_reason(_case(scenario, nominal_compute_s=None))
        assert reason is not None and "compute" in reason

    def test_perturb_observe_tracking_does_not_fuse(self, scenario):
        case = _case(scenario)
        case = dataclasses.replace(
            case, scenario=_PerturbObserveScenario(case.scenario)
        )
        reason = fusable_reason(case)
        assert reason is not None and "P&O" in reason


class TestDecisionSchedule:
    """The replicated schedule is the PeriodicPolicy gate, float for
    float — fed the same doubles, it must fire on the same samples."""

    @pytest.mark.parametrize(
        "dt,period",
        [(0.1, 0.5), (0.1, 0.25), (0.3, 0.5), (0.1, 0.1), (0.7, 0.5)],
    )
    def test_matches_periodic_policy_gate(self, scenario, dt, period):
        time_s = np.arange(120) * dt
        policy = PeriodicPolicy(
            module=scenario.module, algorithm="inor", period_s=period
        )
        fired = []
        for i, t in enumerate(time_s):
            t = float(t)
            if t + 1.0e-9 < policy._next_run_s:
                continue
            policy._next_run_s = t + policy.period_s
            fired.append(i)
        assert _decision_schedule(time_s, period) == fired

    def test_first_sample_always_fires(self):
        assert _decision_schedule(np.array([0.0, 0.5, 1.0]), 10.0) == [0]

    def test_period_shorter_than_sample_dt_fires_every_sample(self):
        """The gate re-arms from the firing sample's time, so a period
        below the sampling interval degenerates to every-sample."""
        time_s = np.arange(10) * 0.5
        assert _decision_schedule(time_s, 0.1) == list(range(10))

    def test_trace_shorter_than_one_period(self):
        """A trace that ends before the second epoch only ever fires
        the initial decision."""
        assert _decision_schedule(np.array([0.0]), 5.0) == [0]
        assert _decision_schedule(np.arange(4) * 0.1, 5.0) == [0]

    def test_non_uniform_time_matches_periodic_policy(self, scenario):
        """Irregular sample spacing (jittered, with a gap) gates
        exactly like PeriodicPolicy fed the same doubles."""
        rng = np.random.default_rng(7)
        steps = rng.uniform(0.05, 0.4, size=60)
        steps[25] = 3.0  # a telemetry gap longer than the period
        time_s = np.concatenate([[0.0], np.cumsum(steps)])
        period = 0.5
        policy = PeriodicPolicy(
            module=scenario.module, algorithm="inor", period_s=period
        )
        fired = []
        for i, t in enumerate(time_s):
            t = float(t)
            if t + 1.0e-9 < policy._next_run_s:
                continue
            policy._next_run_s = t + policy.period_s
            fired.append(i)
        assert fired  # the jittered trace must actually fire
        assert _decision_schedule(time_s, period) == fired


class TestGroupingAndFallback:
    def test_group_key_splits_on_chain_and_period(self, scenario):
        from repro.sim.physics import TracePhysics

        physics = TracePhysics.compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        base = _group_key(_case(scenario), physics)
        same = _group_key(_case(scenario, scanner_noise_std_k=0.3), physics)
        other_period = _group_key(
            _case(scenario, control_period_s=1.0), physics
        )
        assert base == same  # noise axis only changes the scanner seed path
        assert base != other_period
        assert base != _group_key(_case(scenario), object())

    def test_mixed_grid_preserves_collation_order(self, scenario):
        """Fused + fallback cases come back in input order, and the
        fallback outputs are exactly run_case's."""
        from repro.sim.physics import TracePhysics

        cases = grid_cases(
            [scenario], ["INOR", "Baseline"], scanner_noise_std_k=[0.02, 0.1]
        )
        physics = TracePhysics.compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        results = run_grid_stacked(cases, [physics] * len(cases))
        assert len(results) == len(cases)
        for case, result in zip(cases, results):
            expected_scheme = "Baseline" if case.policy == "Baseline" else "INOR"
            assert result.scheme == expected_scheme
        # The (now fused) Baseline rows equal the serial path bit for bit.
        for k, case in enumerate(cases):
            if case.policy != "Baseline":
                continue
            serial = run_case(case, physics)
            assert np.array_equal(
                results[k].delivered_power_w, serial.delivered_power_w
            )
            assert np.array_equal(
                results[k].n_groups_series, serial.n_groups_series
            )

    def test_group_failure_names_its_cases(self, scenario, monkeypatch):
        cases = grid_cases([scenario], ["INOR"], scanner_noise_std_k=[0.02])
        from repro.sim.physics import TracePhysics

        physics = TracePhysics.compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )

        def boom(cases, physics):
            raise ValueError("kernel exploded")

        monkeypatch.setattr(gridstack, "_run_inor_group", boom)
        with pytest.raises(SimulationError) as excinfo:
            run_grid_stacked(cases, [physics])
        assert cases[0].name in str(excinfo.value)
        assert "kernel exploded" in str(excinfo.value)


class TestExecutorWiring:
    def test_gridstack_is_a_registered_executor(self):
        assert "gridstack" in EXECUTORS

    def test_runner_accepts_gridstack(self, scenario):
        cases = grid_cases(
            [scenario], ["INOR"], scanner_noise_std_k=[0.02, 0.08]
        )
        stacked = ExperimentRunner(cases, executor="gridstack").run()
        serial = ExperimentRunner(cases, executor="serial").run()
        for (c1, r1), (c2, r2) in zip(serial, stacked):
            assert c1.name == c2.name
            assert r1.delivered_power_w.tobytes() == r2.delivered_power_w.tobytes()
            assert r1.overhead_events == r2.overhead_events
