"""Tests for repro.units."""

import math

import pytest

from repro.errors import ModelParameterError
from repro import units


class TestConversions:
    def test_celsius_to_kelvin(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_kelvin_to_celsius(self):
        assert units.kelvin_to_celsius(273.15) == pytest.approx(0.0)

    def test_celsius_kelvin_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(37.2)) == pytest.approx(37.2)

    def test_lpm_to_m3s(self):
        # 60 L/min = 1 L/s = 1e-3 m^3/s
        assert units.lpm_to_m3s(60.0) == pytest.approx(1.0e-3)

    def test_m3s_to_lpm_roundtrip(self):
        assert units.m3s_to_lpm(units.lpm_to_m3s(12.5)) == pytest.approx(12.5)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert units.require_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ModelParameterError, match="x"):
            units.require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ModelParameterError):
            units.require_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ModelParameterError):
            units.require_positive(math.nan, "x")

    def test_rejects_inf(self):
        with pytest.raises(ModelParameterError):
            units.require_positive(math.inf, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert units.require_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ModelParameterError):
            units.require_non_negative(-1.0e-9, "x")

    def test_rejects_nan(self):
        with pytest.raises(ModelParameterError):
            units.require_non_negative(math.nan, "x")


class TestRequireFraction:
    def test_accepts_bounds(self):
        assert units.require_fraction(0.0, "x") == 0.0
        assert units.require_fraction(1.0, "x") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ModelParameterError):
            units.require_fraction(1.0001, "x")

    def test_rejects_below_zero(self):
        with pytest.raises(ModelParameterError):
            units.require_fraction(-0.0001, "x")


class TestRequireTemperature:
    def test_accepts_room_temperature(self):
        assert units.require_temperature_c(25.0, "t") == 25.0

    def test_accepts_absolute_zero(self):
        assert units.require_temperature_c(units.ABSOLUTE_ZERO_C, "t") == units.ABSOLUTE_ZERO_C

    def test_rejects_below_absolute_zero(self):
        with pytest.raises(ModelParameterError):
            units.require_temperature_c(-300.0, "t")


class TestRequireMonotonic:
    def test_accepts_increasing(self):
        units.require_monotonic_increasing([1.0, 2.0, 3.0], "t")

    def test_rejects_flat(self):
        with pytest.raises(ModelParameterError):
            units.require_monotonic_increasing([1.0, 1.0], "t")

    def test_rejects_decreasing(self):
        with pytest.raises(ModelParameterError):
            units.require_monotonic_increasing([2.0, 1.0], "t")

    def test_accepts_single_value(self):
        units.require_monotonic_increasing([5.0], "t")
