"""Tests for repro.core.dnor — Algorithm 2."""

import numpy as np
import pytest

from repro.core.config import ArrayConfiguration
from repro.core.dnor import DNORPlanner, thevenin_from_temps
from repro.core.overhead import SwitchingOverheadModel
from repro.errors import ConfigurationError
from repro.power.charger import TEGCharger
from repro.prediction.mlr import MLRPredictor
from repro.teg.datasheet import TGM_199_1_4_0_8
from repro.teg.network import array_mpp


def make_planner(
    tp_seconds=1.0, overhead=None, nominal_compute_s=None
) -> DNORPlanner:
    return DNORPlanner(
        module=TGM_199_1_4_0_8,
        charger=TEGCharger(),
        overhead=overhead or SwitchingOverheadModel(),
        predictor=MLRPredictor(lags=4, train_window=120),
        tp_seconds=tp_seconds,
        sample_dt_s=0.5,
        nominal_compute_s=nominal_compute_s,
    )


def steady_history(n_rows=60, n_modules=20, level=45.0) -> np.ndarray:
    """dT-referenced temperatures: ambient 25 + exp gradient."""
    profile = 25.0 + level * np.exp(-2.0 * np.linspace(0, 1, n_modules)) + 10.0
    return np.tile(profile, (n_rows, 1))


class TestTheveninFromTemps:
    def test_matches_module_model(self):
        temps = np.array([80.0, 60.0, 40.0])
        emf, res = thevenin_from_temps(TGM_199_1_4_0_8, temps, 25.0)
        expected_emf = [
            TGM_199_1_4_0_8.open_circuit_voltage(t - 25.0) for t in temps
        ]
        assert emf == pytest.approx(expected_emf)
        assert np.allclose(res, TGM_199_1_4_0_8.internal_resistance())


class TestFirstEpoch:
    def test_adopts_inor_unconditionally(self):
        planner = make_planner()
        decision = planner.plan(steady_history(), 25.0, current=None)
        assert decision.switch
        assert decision.config == decision.candidate
        assert decision.energy_overhead_j == 0.0


class TestIdenticalCandidate:
    def test_keep_is_free(self):
        planner = make_planner()
        first = planner.plan(steady_history(), 25.0, current=None)
        second = planner.plan(steady_history(), 25.0, current=first.config)
        assert not second.switch
        assert second.config == first.config
        assert second.energy_overhead_j == 0.0
        assert second.predict_seconds == 0.0


class TestSwitchDecision:
    def test_steady_state_keeps_suboptimal_marginal_config(self):
        """A config only marginally worse than INOR's proposal must be
        kept: the predicted gain cannot amortise the switching bill."""
        planner = make_planner()
        history = steady_history()
        proposal = planner.plan(history, 25.0, current=None).config
        # Perturb one boundary by one module: nearly as good.
        starts = list(proposal.starts)
        starts[-1] = min(starts[-1] + 1, history.shape[1] - 1)
        if starts[-1] == starts[-2]:
            starts[-1] += 1
        marginal = ArrayConfiguration(tuple(starts), history.shape[1])
        decision = planner.plan(history, 25.0, current=marginal)
        assert not decision.switch

    def test_grossly_wrong_config_triggers_switch(self):
        """All-parallel on a steep gradient wastes enough power that the
        predicted gain dwarfs the bill."""
        planner = make_planner()
        history = steady_history()
        awful = ArrayConfiguration.all_parallel(history.shape[1])
        decision = planner.plan(history, 25.0, current=awful)
        assert decision.switch
        assert decision.energy_new_j > decision.energy_old_j

    def test_huge_overhead_blocks_switch(self):
        """Same scenario, but with an absurd switching bill Algorithm 2
        must refuse."""
        overhead = SwitchingOverheadModel(per_toggle_energy_j=1e3)
        planner = make_planner(overhead=overhead)
        history = steady_history()
        awful = ArrayConfiguration.all_parallel(history.shape[1])
        decision = planner.plan(history, 25.0, current=awful)
        assert not decision.switch
        assert decision.config == awful

    def test_decision_inequality(self):
        """switch <=> E_old <= E_new - E_overhead, verbatim Alg. 2."""
        planner = make_planner()
        history = steady_history()
        for current in (
            ArrayConfiguration.all_parallel(history.shape[1]),
            ArrayConfiguration.uniform(history.shape[1], 4),
        ):
            decision = planner.plan(history, 25.0, current=current)
            if decision.candidate == current:
                continue
            expected = (
                decision.energy_old_j
                <= decision.energy_new_j - decision.energy_overhead_j
            )
            assert decision.switch == expected


class TestHorizonEnergy:
    def test_energy_consistent_with_network(self):
        """The vectorised horizon evaluation equals per-row MPP math."""
        planner = make_planner()
        history = steady_history(10, 12)
        config = ArrayConfiguration.uniform(12, 3)
        rows = history[-3:]
        energy = planner._horizon_energy(config, rows, 25.0)
        expected = 0.0
        for row in rows:
            emf, res = thevenin_from_temps(TGM_199_1_4_0_8, row, 25.0)
            mpp = array_mpp(emf, res, config.starts)
            expected += planner._charger.delivered_at_mpp(mpp) * 0.5
        assert energy == pytest.approx(expected, rel=1e-9)


class TestFallbackForecast:
    def test_short_history_uses_persistence(self):
        planner = make_planner()
        history = steady_history(3)  # shorter than lags + 1
        awful = ArrayConfiguration.all_parallel(history.shape[1])
        decision = planner.plan(history, 25.0, current=awful)
        assert decision.used_fallback_forecast


class TestValidation:
    def test_rejects_bad_tp(self):
        with pytest.raises(ConfigurationError):
            make_planner(tp_seconds=0.0)

    def test_rejects_empty_history(self):
        planner = make_planner()
        with pytest.raises(ConfigurationError):
            planner.plan(np.zeros((0, 5)), 25.0, None)

    def test_epoch_length(self):
        assert make_planner(tp_seconds=2.0).epoch_seconds == pytest.approx(3.0)

    def test_rejects_unknown_inor_kernel(self):
        with pytest.raises(ConfigurationError):
            DNORPlanner(
                module=TGM_199_1_4_0_8,
                charger=TEGCharger(),
                overhead=SwitchingOverheadModel(),
                predictor=MLRPredictor(),
                inor_kernel="quantum",
            )


class TestKeepPathWithArrayTypedStarts:
    """Regression: the identical-proposal test must stay a scalar truth
    value even when the current configuration was built straight from
    the ndarray the greedy partition builder returns."""

    def test_keep_is_free_with_ndarray_built_current(self):
        planner = make_planner()
        history = steady_history()
        proposal = planner.plan(history, 25.0, current=None).config
        # Rebuild the same configuration from a raw int64 ndarray, the
        # exact shape greedy_balanced_partition hands back.
        current = ArrayConfiguration(
            starts=np.asarray(proposal.starts, dtype=np.int64),
            n_modules=proposal.n_modules,
        )
        decision = planner.plan(history, 25.0, current=current)
        assert not decision.switch
        assert decision.config == current
        assert decision.energy_overhead_j == 0.0
        assert decision.predict_seconds == 0.0

    def test_plan_batch_keep_path_with_ndarray_built_candidates(self):
        planner = make_planner()
        history = steady_history()
        proposal = planner.plan(history, 25.0, current=None).config
        current = ArrayConfiguration(
            starts=np.asarray(proposal.starts, dtype=np.int64),
            n_modules=proposal.n_modules,
        )
        decision = planner.plan_batch(
            history, 25.0, current=current, candidates=[current, proposal]
        )
        assert not decision.switch
        assert decision.energy_overhead_j == 0.0


class TestHorizonEnergyMulti:
    def test_stacked_energies_bitwise_equal_sequential(self):
        """The one-pass epoch kernel must equal per-config calls exactly
        (not approximately) — the bit-reproducibility contract."""
        planner = make_planner()
        history = steady_history(10, 12)
        rng = np.random.default_rng(3)
        rows = history[-4:] + rng.normal(0.0, 1.5, (4, 12))
        configs = (
            ArrayConfiguration.uniform(12, 3),
            ArrayConfiguration.all_parallel(12),
            ArrayConfiguration.uniform(12, 6),
            ArrayConfiguration.all_series(12),
        )
        stacked = planner._horizon_energy_multi(configs, rows, 25.0)
        sequential = [
            planner._horizon_energy(config, rows, 25.0) for config in configs
        ]
        assert stacked.tolist() == sequential  # bitwise, not approx


class TestPlanBatch:
    def test_stacked_decision_pin_equals_sequential_evaluation(self):
        """The batched epoch must reproduce the decision reconstructed
        from *sequential* single-configuration horizon scoring — the
        sequential-plan pin (plan() itself delegates to plan_batch, so
        the reference here is rebuilt from the scalar kernels; nominal
        compute keeps the overhead bill machine-independent)."""
        planner = make_planner(nominal_compute_s=2.0e-3)
        history = steady_history()
        n = history.shape[1]
        for current in (
            ArrayConfiguration.all_parallel(n),
            ArrayConfiguration.uniform(n, 4),
        ):
            decision = planner.plan(history, 25.0, current=current)
            assert decision.candidate != current  # horizon path taken
            # Sequential reference: refit + forecast (deterministic),
            # then one scalar _horizon_energy call per configuration.
            horizon_rows, _, _ = planner._forecast_horizon(
                history, history[-1]
            )
            energy_old = planner._horizon_energy(current, horizon_rows, 25.0)
            energy_new = planner._horizon_energy(
                decision.candidate, horizon_rows, 25.0
            )
            emf, res = thevenin_from_temps(TGM_199_1_4_0_8, history[-1], 25.0)
            power_now = planner._charger.delivered_at_mpp(
                array_mpp(emf, res, current.starts)
            )
            overhead = planner._overhead.event_energy_j(
                power_w=max(power_now, 0.0),
                compute_time_s=2.0e-3,
                toggles=current.switch_toggles_to(decision.candidate),
            )
            assert decision.energy_old_j == energy_old  # bitwise
            assert decision.energy_new_j == energy_new
            assert decision.energy_overhead_j == overhead
            assert decision.switch == (energy_old <= energy_new - overhead)

    def test_plan_is_plan_batch_single_candidate(self):
        """plan() and plan_batch(candidates=None) are one decision path
        (guards against the two entry points ever diverging again)."""
        planner = make_planner(nominal_compute_s=2.0e-3)
        history = steady_history()
        current = ArrayConfiguration.all_parallel(history.shape[1])
        a = planner.plan(history, 25.0, current=current)
        b = planner.plan_batch(history, 25.0, current=current)
        assert (a.switch, a.config, a.candidate) == (
            b.switch,
            b.config,
            b.candidate,
        )
        assert a.energy_old_j == b.energy_old_j
        assert a.energy_new_j == b.energy_new_j
        assert a.energy_overhead_j == b.energy_overhead_j

    def test_keep_path_is_free(self):
        planner = make_planner()
        history = steady_history()
        proposal = planner.plan(history, 25.0, current=None).config
        decision = planner.plan_batch(history, 25.0, current=proposal)
        assert not decision.switch
        assert decision.config == proposal
        assert decision.energy_overhead_j == 0.0
        assert decision.predict_seconds == 0.0

    def test_multiple_candidates_picks_best_net_energy(self):
        """The winner must be argmax of (horizon energy - overhead) and
        the paper's inequality applied against it, consistent with the
        single-config reference kernels."""
        planner = make_planner(nominal_compute_s=2.0e-3)
        history = steady_history()
        n = history.shape[1]
        current = ArrayConfiguration.all_parallel(n)
        proposal = planner.plan(history, 25.0, current=None).config
        candidates = [
            ArrayConfiguration.uniform(n, 4),
            proposal,
            ArrayConfiguration.uniform(n, 2),
        ]
        decision = planner.plan_batch(
            history, 25.0, current=current, candidates=candidates
        )
        # Recompute expectations through the scalar reference kernel.
        horizon_rows, _, _ = planner._forecast_horizon(history, history[-1])
        energy_old = planner._horizon_energy(current, horizon_rows, 25.0)
        emf, res = thevenin_from_temps(TGM_199_1_4_0_8, history[-1], 25.0)
        power_now = planner._charger.delivered_at_mpp(
            array_mpp(emf, res, current.starts)
        )
        nets = []
        for config in candidates:
            energy = planner._horizon_energy(config, horizon_rows, 25.0)
            overhead = planner._overhead.event_energy_j(
                power_w=max(power_now, 0.0),
                compute_time_s=2.0e-3,
                toggles=current.switch_toggles_to(config),
            )
            nets.append((energy - overhead, energy, overhead, config))
        best = max(nets, key=lambda item: item[0])
        assert decision.candidate == best[3]
        assert decision.energy_new_j == pytest.approx(best[1], rel=1e-12)
        assert decision.energy_overhead_j == pytest.approx(best[2], rel=1e-12)
        assert decision.switch == (energy_old <= best[0])

    def test_first_epoch_adopts_best_instantaneous(self):
        planner = make_planner()
        history = steady_history()
        n = history.shape[1]
        proposal = planner.plan(history, 25.0, current=None).config
        decision = planner.plan_batch(
            history,
            25.0,
            current=None,
            candidates=[ArrayConfiguration.all_parallel(n), proposal],
        )
        assert decision.switch
        assert decision.config == proposal  # beats all-parallel now

    def test_rejects_empty_candidate_list(self):
        planner = make_planner()
        with pytest.raises(ConfigurationError):
            planner.plan_batch(steady_history(), 25.0, None, candidates=[])


class TestFitModuleStride:
    """The predictor contract behind the strided fit: every predictor
    learns a pooled *column-wise* one-step map, so fitting on a
    module-strided subset and forecasting the full-width history is
    exact — the shared columns forecast identically either way."""

    def test_strided_fit_full_width_forecast_consistent(self):
        history = steady_history(60, 20) + np.random.default_rng(9).normal(
            0.0, 0.3, (60, 20)
        )
        stride = 4
        predictor = MLRPredictor(lags=4, train_window=120)
        predictor.fit(history[:, ::stride])
        full = predictor.forecast(history, 3)
        strided = predictor.forecast(history[:, ::stride], 3)
        assert full.shape == (3, 20)  # forecast width follows the history
        # Column-wise recursion: shared columns forecast identically
        # (up to BLAS reduction order, which varies with matrix shape).
        np.testing.assert_allclose(
            full[:, ::stride], strided, rtol=1e-12, atol=1e-12
        )

    def test_planner_with_stride_covers_every_module(self):
        planner = DNORPlanner(
            module=TGM_199_1_4_0_8,
            charger=TEGCharger(),
            overhead=SwitchingOverheadModel(),
            predictor=MLRPredictor(lags=4, train_window=120),
            tp_seconds=1.0,
            sample_dt_s=0.5,
            fit_module_stride=7,  # deliberately not a divisor of N=20
            nominal_compute_s=2.0e-3,
        )
        history = steady_history(60, 20) + np.random.default_rng(8).normal(
            0.0, 0.4, (60, 20)
        )
        current = ArrayConfiguration.all_parallel(20)
        decision = planner.plan(history, 25.0, current=current)
        assert not decision.used_fallback_forecast  # real strided fit ran
        assert decision.energy_new_j > 0.0
        horizon_rows, _, _ = planner._forecast_horizon(history, history[-1])
        assert horizon_rows.shape[1] == 20  # full width despite strided fit

    def test_stride_changes_fit_cost_not_contract(self):
        """Identical forecasts when the strided columns carry the same
        pooled dynamics (exactly shared one-step map)."""
        profile = 25.0 + 45.0 * np.exp(-2.0 * np.linspace(0, 1, 16)) + 10.0
        t = np.arange(80)[:, None]
        history = profile[None, :] + 2.0 * np.sin(0.1 * t)  # shared dynamics
        dense = MLRPredictor(lags=4, train_window=60).fit(history)
        strided = MLRPredictor(lags=4, train_window=60).fit(history[:, ::4])
        np.testing.assert_allclose(
            dense.forecast(history, 2),
            strided.forecast(history, 2),
            rtol=1e-9,
            atol=1e-9,
        )


class TestDnorStack:
    """dnor_stack is planner.plan(), lane for lane, bit for bit —
    the contract that lets gridstack and the streaming hub fuse whole
    DNOR grids into two stacked kernel passes per epoch."""

    N_LANES = 4
    N_MODULES = 20

    def _planners(self):
        return [
            make_planner(nominal_compute_s=2.0e-3)
            for _ in range(self.N_LANES)
        ]

    def _lane_histories(self):
        rng = np.random.default_rng(2018)
        return [
            steady_history(70, self.N_MODULES, level=40.0 + 4.0 * k)
            + rng.normal(0.0, 0.6, (70, self.N_MODULES))
            for k in range(self.N_LANES)
        ]

    def test_stack_matches_per_lane_plan_over_epochs(self):
        from repro.core.dnor import dnor_stack

        serial = self._planners()
        stacked = self._planners()
        histories = self._lane_histories()
        ambients = np.array([24.0, 25.0, 26.0, 25.5])
        serial_currents = [None] * self.N_LANES
        stacked_currents = [None] * self.N_LANES
        for epoch in range(3):
            rows = 40 + 10 * epoch
            hists = [h[:rows] for h in histories]
            decisions = dnor_stack(
                stacked, hists, ambients, stacked_currents,
                time_s=float(epoch),
            )
            for k in range(self.N_LANES):
                want = serial[k].plan(
                    hists[k],
                    float(ambients[k]),
                    serial_currents[k],
                    time_s=float(epoch),
                )
                got = decisions[k]
                label = f"epoch {epoch} lane {k}"
                assert got.switch == want.switch, label
                assert got.config == want.config, label
                assert got.candidate == want.candidate, label
                # Exact float equality: the fused passes must produce
                # the identical doubles, not merely close ones.
                assert got.energy_old_j == want.energy_old_j, label
                assert got.energy_new_j == want.energy_new_j, label
                assert got.energy_overhead_j == want.energy_overhead_j, label
                assert (
                    got.used_fallback_forecast == want.used_fallback_forecast
                ), label
                serial_currents[k] = want.config
                stacked_currents[k] = got.config

    def test_requires_nominal_compute(self):
        from repro.core.dnor import dnor_stack

        with pytest.raises(ConfigurationError, match="nominal_compute_s"):
            dnor_stack([make_planner()], [steady_history()], 25.0, [None])

    def test_rejects_heterogeneous_lanes(self):
        from repro.core.dnor import dnor_stack

        planners = [
            make_planner(nominal_compute_s=1.0e-3),
            make_planner(tp_seconds=2.0, nominal_compute_s=1.0e-3),
        ]
        with pytest.raises(ConfigurationError, match="share"):
            dnor_stack(
                planners,
                [steady_history(), steady_history()],
                25.0,
                [None, None],
            )

    def test_rejects_scalar_kernel(self):
        from repro.core.dnor import dnor_stack

        planner = DNORPlanner(
            module=TGM_199_1_4_0_8,
            charger=TEGCharger(),
            overhead=SwitchingOverheadModel(),
            predictor=MLRPredictor(lags=4, train_window=120),
            nominal_compute_s=1.0e-3,
            inor_kernel="scalar",
        )
        with pytest.raises(ConfigurationError, match="batched"):
            dnor_stack([planner], [steady_history()], 25.0, [None])
