"""Tests for repro.core.dnor — Algorithm 2."""

import numpy as np
import pytest

from repro.core.config import ArrayConfiguration
from repro.core.dnor import DNORPlanner, thevenin_from_temps
from repro.core.overhead import SwitchingOverheadModel
from repro.errors import ConfigurationError
from repro.power.charger import TEGCharger
from repro.prediction.mlr import MLRPredictor
from repro.teg.datasheet import TGM_199_1_4_0_8
from repro.teg.network import array_mpp


def make_planner(tp_seconds=1.0, overhead=None) -> DNORPlanner:
    return DNORPlanner(
        module=TGM_199_1_4_0_8,
        charger=TEGCharger(),
        overhead=overhead or SwitchingOverheadModel(),
        predictor=MLRPredictor(lags=4, train_window=120),
        tp_seconds=tp_seconds,
        sample_dt_s=0.5,
    )


def steady_history(n_rows=60, n_modules=20, level=45.0) -> np.ndarray:
    """dT-referenced temperatures: ambient 25 + exp gradient."""
    profile = 25.0 + level * np.exp(-2.0 * np.linspace(0, 1, n_modules)) + 10.0
    return np.tile(profile, (n_rows, 1))


class TestTheveninFromTemps:
    def test_matches_module_model(self):
        temps = np.array([80.0, 60.0, 40.0])
        emf, res = thevenin_from_temps(TGM_199_1_4_0_8, temps, 25.0)
        expected_emf = [
            TGM_199_1_4_0_8.open_circuit_voltage(t - 25.0) for t in temps
        ]
        assert emf == pytest.approx(expected_emf)
        assert np.allclose(res, TGM_199_1_4_0_8.internal_resistance())


class TestFirstEpoch:
    def test_adopts_inor_unconditionally(self):
        planner = make_planner()
        decision = planner.plan(steady_history(), 25.0, current=None)
        assert decision.switch
        assert decision.config == decision.candidate
        assert decision.energy_overhead_j == 0.0


class TestIdenticalCandidate:
    def test_keep_is_free(self):
        planner = make_planner()
        first = planner.plan(steady_history(), 25.0, current=None)
        second = planner.plan(steady_history(), 25.0, current=first.config)
        assert not second.switch
        assert second.config == first.config
        assert second.energy_overhead_j == 0.0
        assert second.predict_seconds == 0.0


class TestSwitchDecision:
    def test_steady_state_keeps_suboptimal_marginal_config(self):
        """A config only marginally worse than INOR's proposal must be
        kept: the predicted gain cannot amortise the switching bill."""
        planner = make_planner()
        history = steady_history()
        proposal = planner.plan(history, 25.0, current=None).config
        # Perturb one boundary by one module: nearly as good.
        starts = list(proposal.starts)
        starts[-1] = min(starts[-1] + 1, history.shape[1] - 1)
        if starts[-1] == starts[-2]:
            starts[-1] += 1
        marginal = ArrayConfiguration(tuple(starts), history.shape[1])
        decision = planner.plan(history, 25.0, current=marginal)
        assert not decision.switch

    def test_grossly_wrong_config_triggers_switch(self):
        """All-parallel on a steep gradient wastes enough power that the
        predicted gain dwarfs the bill."""
        planner = make_planner()
        history = steady_history()
        awful = ArrayConfiguration.all_parallel(history.shape[1])
        decision = planner.plan(history, 25.0, current=awful)
        assert decision.switch
        assert decision.energy_new_j > decision.energy_old_j

    def test_huge_overhead_blocks_switch(self):
        """Same scenario, but with an absurd switching bill Algorithm 2
        must refuse."""
        overhead = SwitchingOverheadModel(per_toggle_energy_j=1e3)
        planner = make_planner(overhead=overhead)
        history = steady_history()
        awful = ArrayConfiguration.all_parallel(history.shape[1])
        decision = planner.plan(history, 25.0, current=awful)
        assert not decision.switch
        assert decision.config == awful

    def test_decision_inequality(self):
        """switch <=> E_old <= E_new - E_overhead, verbatim Alg. 2."""
        planner = make_planner()
        history = steady_history()
        for current in (
            ArrayConfiguration.all_parallel(history.shape[1]),
            ArrayConfiguration.uniform(history.shape[1], 4),
        ):
            decision = planner.plan(history, 25.0, current=current)
            if decision.candidate == current:
                continue
            expected = (
                decision.energy_old_j
                <= decision.energy_new_j - decision.energy_overhead_j
            )
            assert decision.switch == expected


class TestHorizonEnergy:
    def test_energy_consistent_with_network(self):
        """The vectorised horizon evaluation equals per-row MPP math."""
        planner = make_planner()
        history = steady_history(10, 12)
        config = ArrayConfiguration.uniform(12, 3)
        rows = history[-3:]
        energy = planner._horizon_energy(config, rows, 25.0)
        expected = 0.0
        for row in rows:
            emf, res = thevenin_from_temps(TGM_199_1_4_0_8, row, 25.0)
            mpp = array_mpp(emf, res, config.starts)
            expected += planner._charger.delivered_at_mpp(mpp) * 0.5
        assert energy == pytest.approx(expected, rel=1e-9)


class TestFallbackForecast:
    def test_short_history_uses_persistence(self):
        planner = make_planner()
        history = steady_history(3)  # shorter than lags + 1
        awful = ArrayConfiguration.all_parallel(history.shape[1])
        decision = planner.plan(history, 25.0, current=awful)
        assert decision.used_fallback_forecast


class TestValidation:
    def test_rejects_bad_tp(self):
        with pytest.raises(ConfigurationError):
            make_planner(tp_seconds=0.0)

    def test_rejects_empty_history(self):
        planner = make_planner()
        with pytest.raises(ConfigurationError):
            planner.plan(np.zeros((0, 5)), 25.0, None)

    def test_epoch_length(self):
        assert make_planner(tp_seconds=2.0).epoch_seconds == pytest.approx(3.0)
