"""Tests for repro.vehicle.engine."""

import pytest

from repro.errors import ModelParameterError
from repro.vehicle.engine import (
    EngineModel,
    EngineParameters,
    FanParameters,
    RamAirParameters,
    ThermostatParameters,
)
from repro.vehicle.trace import default_radiator


@pytest.fixture
def engine():
    return EngineModel(default_radiator(), start_temp_c=88.0)


class TestEngineParameters:
    def test_tractive_power_at_standstill_zero(self):
        assert EngineParameters().tractive_power_w(0.0, 0.0) == 0.0

    def test_tractive_power_clipped_during_braking(self):
        assert EngineParameters().tractive_power_w(20.0, -3.0) == 0.0

    def test_tractive_power_increases_with_speed(self):
        params = EngineParameters()
        assert params.tractive_power_w(30.0, 0.0) > params.tractive_power_w(15.0, 0.0)

    def test_highway_power_plausible(self):
        # A laden light truck at 25 m/s needs roughly 20-40 kW.
        power = EngineParameters().tractive_power_w(25.0, 0.0)
        assert 15e3 < power < 45e3

    def test_coolant_heat_has_idle_floor(self):
        params = EngineParameters()
        assert params.coolant_heat_w(0.0, 0.0) == pytest.approx(params.idle_heat_w)

    def test_pump_flow_grows_with_speed(self):
        params = EngineParameters()
        assert params.pump_flow_kg_s(25.0) > params.pump_flow_kg_s(0.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ModelParameterError):
            EngineParameters(engine_efficiency=1.5)


class TestThermostat:
    def test_closed_below_opening(self):
        thermostat = ThermostatParameters()
        assert thermostat.target_opening(70.0) == thermostat.leak

    def test_fully_open_above_range(self):
        thermostat = ThermostatParameters()
        assert thermostat.target_opening(100.0) == 1.0

    def test_linear_in_between(self):
        thermostat = ThermostatParameters(t_open_c=80.0, t_full_c=90.0, leak=0.0)
        assert thermostat.target_opening(85.0) == pytest.approx(0.5)

    def test_rejects_inverted_range(self):
        with pytest.raises(ModelParameterError):
            ThermostatParameters(t_open_c=90.0, t_full_c=85.0)


class TestFanAndRamAir:
    def test_fan_rejects_inverted_hysteresis(self):
        with pytest.raises(ModelParameterError):
            FanParameters(on_above_c=90.0, off_below_c=95.0)

    def test_ram_air_floor(self):
        ram = RamAirParameters()
        assert ram.flow_kg_s(0.0) == pytest.approx(ram.floor_kg_s)

    def test_ram_air_linear(self):
        ram = RamAirParameters(floor_kg_s=0.1, slope_kg_s_per_mps=0.04)
        assert ram.flow_kg_s(25.0) == pytest.approx(0.1 + 1.0)


class TestEngineModel:
    def test_step_advances_time(self, engine):
        telemetry = engine.step(0.5, 10.0, 0.0, 25.0)
        assert telemetry.time_s == pytest.approx(0.5)

    def test_heavy_load_warms_coolant(self, engine):
        start = engine.coolant_temp_c
        for _ in range(40):
            engine.step(0.5, 28.0, 0.5, 25.0)
        assert engine.coolant_temp_c > start - 1.0  # heavy load keeps it warm/warming

    def test_temperature_regulated_in_band(self, engine):
        """Sustained mixed driving keeps the loop in the thermostat band."""
        for k in range(1200):
            speed = 20.0 if (k // 120) % 2 == 0 else 5.0
            engine.step(0.5, speed, 0.0, 25.0)
        assert 78.0 < engine.coolant_temp_c < 100.0

    def test_radiator_flow_positive(self, engine):
        telemetry = engine.step(0.5, 15.0, 0.0, 25.0)
        assert telemetry.radiator_flow_kg_s > 0.0

    def test_air_flow_includes_ram(self, engine):
        slow = engine.step(0.5, 0.0, 0.0, 25.0).air_flow_kg_s
        fast = engine.step(0.5, 25.0, 0.0, 25.0).air_flow_kg_s
        assert fast > slow

    def test_heat_rejection_reported(self, engine):
        telemetry = engine.step(0.5, 20.0, 0.0, 25.0)
        assert telemetry.heat_rejected_w > 0.0
        assert telemetry.heat_in_w > 0.0

    def test_rejects_nonpositive_dt(self, engine):
        with pytest.raises(ModelParameterError):
            engine.step(0.0, 10.0, 0.0, 25.0)
