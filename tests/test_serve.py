"""Streaming decision service (repro.serve).

The acceptance criterion of the service layer: decisions made *online*
— chunked telemetry, micro-batched epochs across concurrent sessions —
are **bit-identical** to the offline batch engine run over the complete
trace.  Pinned per registry scenario and chunk size for INOR (the
stacked-kernel path) and for DNOR under both refit modes (epoch
micro-batching through ``dnor_stack`` rounds), plus the 64-session
single-stacked-pass scaling pin, the multi-session DNOR round pin and
the asyncio TCP front-end end to end.
"""

import asyncio
import dataclasses
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.serve import (
    SessionHub,
    StreamServer,
    StreamSession,
    offline_decision_log,
)
from repro.serve.server import FEED_COLUMNS, decode_column, encode_column
from repro.sim.scenario import build_named_scenario, default_registry


def _stream_through_hub(scenario, policy, chunk, dnor_refit="full"):
    hub = SessionHub()
    session = hub.add(
        StreamSession(scenario, policy, "s0", dnor_refit=dnor_refit)
    )
    n = scenario.trace.n_samples
    lo = 0
    while lo < n:
        hi = min(lo + chunk, n)
        session.feed_trace(scenario.trace, lo, hi)
        hub.run_epoch()
        lo = hi
    return session.records


def _assert_logs_equal(online, offline, label):
    assert len(online) == len(offline), label
    for a, b in zip(online, offline):
        assert a.to_json_line() == b.to_json_line(), (label, a, b)


class TestOnlineOfflineParity:
    @pytest.mark.parametrize("name", default_registry().names())
    @pytest.mark.parametrize("chunk", (1, 7, 10_000))
    def test_inor_bit_identical(self, name, chunk):
        scenario = build_named_scenario(name, duration_s=12.0, n_modules=9)
        offline = offline_decision_log(scenario, "INOR")
        assert offline, "INOR must decide at least once"
        online = _stream_through_hub(scenario, "INOR", chunk)
        _assert_logs_equal(online, offline, f"{name} chunk={chunk}")

    @pytest.mark.parametrize("refit", ("full", "incremental"))
    @pytest.mark.parametrize("chunk", (1, 7))
    def test_dnor_bit_identical(self, refit, chunk):
        scenario = build_named_scenario(
            "porter-ii", duration_s=30.0, n_modules=9
        )
        offline = offline_decision_log(scenario, "DNOR", dnor_refit=refit)
        online = _stream_through_hub(
            scenario, "DNOR", chunk, dnor_refit=refit
        )
        _assert_logs_equal(online, offline, f"DNOR {refit} chunk={chunk}")

    def test_dnor_session_is_micro_batched(self):
        """Registry DNOR (batched kernel + nominal compute) queues
        epochs for the hub instead of planning inline."""
        scenario = build_named_scenario(
            "porter-ii", duration_s=6.0, n_modules=9
        )
        session = StreamSession(scenario, "DNOR", "mb")
        assert session.micro_batched
        session.feed_trace(scenario.trace, 0, scenario.trace.n_samples)
        assert session.pending_epochs
        assert not session.records

    def test_measured_compute_dnor_runs_inline(self):
        """Without nominal compute accounting there is no deterministic
        fused equivalent, so the session stays on the inline path."""
        scenario = dataclasses.replace(
            build_named_scenario("porter-ii", duration_s=6.0, n_modules=9),
            nominal_compute_s=None,
        )
        session = StreamSession(scenario, "DNOR", "inline-dnor")
        assert not session.micro_batched
        session.feed_trace(scenario.trace, 0, scenario.trace.n_samples)
        assert not session.pending_epochs
        assert session.records

    def test_scalar_kernel_inor_runs_inline(self):
        scenario = build_named_scenario(
            "porter-ii", duration_s=10.0, n_modules=9
        )
        scalar = dataclasses.replace(scenario, inor_kernel="scalar")
        session = StreamSession(scalar, "INOR", "inline")
        assert not session.micro_batched
        trace = scalar.trace
        session.feed_trace(trace, 0, trace.n_samples)
        _assert_logs_equal(
            session.records,
            offline_decision_log(scalar, "INOR"),
            "scalar inline",
        )


class TestHubStacking:
    def test_64_sessions_one_stacked_pass_per_epoch(self):
        """The scaling claim: 64 concurrent compatible sessions resolve
        each decision epoch through ONE stacked kernel pass."""
        scenario = build_named_scenario(
            "porter-ii", duration_s=4.0, n_modules=9
        )
        hub = SessionHub()
        sessions = [
            hub.add(
                StreamSession(
                    dataclasses.replace(scenario, sensor_seed=1000 + k),
                    "INOR",
                    f"s{k:02d}",
                )
            )
            for k in range(64)
        ]
        trace = scenario.trace
        chunk = 8
        lo = 0
        while lo < trace.n_samples:
            hi = min(lo + chunk, trace.n_samples)
            for session in sessions:
                session.feed_trace(trace, lo, hi)
            hub.run_epoch()
            lo = hi
        stats = hub.stats
        assert stats.max_sessions_per_pass == 64
        # Every epoch with pending rows used exactly one pass.
        assert stats.stacked_passes <= stats.epochs
        assert stats.rows_decided == sum(
            len(s.records) for s in sessions
        )
        # And the decisions still match each session's offline run.
        for k in (0, 31, 63):
            offline = offline_decision_log(
                dataclasses.replace(scenario, sensor_seed=1000 + k), "INOR"
            )
            _assert_logs_equal(
                sessions[k].records, offline, f"session {k}"
            )

    def test_dnor_sessions_stack_in_rounds(self):
        """Concurrent DNOR sessions resolve each epoch round through
        ONE dnor_stack pass, and every session's log still matches its
        own offline reference bit for bit."""
        scenario = build_named_scenario(
            "porter-ii", duration_s=20.0, n_modules=9
        )
        seeds = [700 + k for k in range(5)]
        hub = SessionHub()
        sessions = [
            hub.add(
                StreamSession(
                    dataclasses.replace(scenario, sensor_seed=seed),
                    "DNOR",
                    f"d{seed}",
                )
            )
            for seed in seeds
        ]
        trace = scenario.trace
        chunk = 16
        lo = 0
        while lo < trace.n_samples:
            hi = min(lo + chunk, trace.n_samples)
            for session in sessions:
                session.feed_trace(trace, lo, hi)
            hub.run_epoch()
            lo = hi
        stats = hub.stats
        assert stats.max_sessions_per_pass == len(seeds)
        # One lane decided per session per epoch round.
        assert stats.rows_decided == stats.stacked_passes * len(seeds)
        for session, seed in zip(sessions, seeds):
            offline = offline_decision_log(
                dataclasses.replace(scenario, sensor_seed=seed), "DNOR"
            )
            _assert_logs_equal(session.records, offline, f"seed {seed}")

    def test_dnor_drain_resolves_tail_epochs(self):
        scenario = build_named_scenario(
            "porter-ii", duration_s=12.0, n_modules=9
        )
        hub = SessionHub()
        session = hub.add(StreamSession(scenario, "DNOR", "dtail"))
        session.feed_trace(scenario.trace, 0, scenario.trace.n_samples)
        assert session.pending_epochs
        hub.drain("dtail")
        assert not session.pending_epochs
        _assert_logs_equal(
            session.records,
            offline_decision_log(scenario, "DNOR"),
            "dnor drain",
        )

    def test_incompatible_sessions_split_groups(self):
        scenario = build_named_scenario(
            "porter-ii", duration_s=2.0, n_modules=9
        )
        other = build_named_scenario(
            "porter-ii", duration_s=2.0, n_modules=16
        )
        hub = SessionHub()
        a = hub.add(StreamSession(scenario, "INOR", "a"))
        b = hub.add(StreamSession(other, "INOR", "b"))
        a.feed_trace(scenario.trace, 0, scenario.trace.n_samples)
        b.feed_trace(other.trace, 0, other.trace.n_samples)
        hub.run_epoch()
        assert hub.stats.stacked_passes == 2
        assert hub.stats.max_sessions_per_pass == 1
        _assert_logs_equal(
            a.records, offline_decision_log(scenario, "INOR"), "a"
        )
        _assert_logs_equal(
            b.records, offline_decision_log(other, "INOR"), "b"
        )

    def test_duplicate_session_id_rejected(self):
        scenario = build_named_scenario(
            "porter-ii", duration_s=2.0, n_modules=4
        )
        hub = SessionHub()
        hub.add(StreamSession(scenario, "INOR", "dup"))
        with pytest.raises(ConfigurationError, match="duplicate"):
            hub.add(StreamSession(scenario, "INOR", "dup"))

    def test_drain_resolves_tail_pendings(self):
        scenario = build_named_scenario(
            "porter-ii", duration_s=6.0, n_modules=9
        )
        hub = SessionHub()
        session = hub.add(StreamSession(scenario, "INOR", "tail"))
        session.feed_trace(scenario.trace, 0, scenario.trace.n_samples)
        assert session.pending
        hub.drain("tail")
        assert not session.pending
        _assert_logs_equal(
            session.records,
            offline_decision_log(scenario, "INOR"),
            "drain",
        )


class TestSessionValidation:
    def test_feed_rejects_mismatched_columns(self):
        scenario = build_named_scenario(
            "porter-ii", duration_s=2.0, n_modules=4
        )
        session = StreamSession(scenario, "INOR", "bad")
        trace = scenario.trace
        with pytest.raises(SimulationError, match="match"):
            session.feed(
                trace.time_s[:3],
                trace.coolant_inlet_c[:4],
                trace.coolant_flow_kg_s[:4],
                trace.ambient_c[:4],
                trace.air_flow_kg_s[:4],
            )

    def test_unknown_policy_rejected(self):
        scenario = build_named_scenario(
            "porter-ii", duration_s=2.0, n_modules=4
        )
        with pytest.raises(ConfigurationError, match="unknown policy"):
            StreamSession(scenario, "FOO", "x")

    def test_column_codec_round_trip(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=64)
        assert np.array_equal(decode_column(encode_column(arr)), arr)


class TestAsyncioServer:
    def _client_script(self, scenario_name, session_id, seed, chunk):
        """Build (open_request, feed_requests, close_request, trace)."""
        overrides = {
            "duration_s": 8.0,
            "n_modules": 9,
            "sensor_seed": seed,
        }
        scenario = dataclasses.replace(
            build_named_scenario(
                scenario_name, duration_s=8.0, n_modules=9
            ),
            sensor_seed=seed,
        )
        trace = scenario.trace
        feeds = []
        lo = 0
        while lo < trace.n_samples:
            hi = min(lo + chunk, trace.n_samples)
            feeds.append(
                {
                    "op": "feed",
                    "session": session_id,
                    "cols": {
                        name: encode_column(getattr(trace, name)[lo:hi])
                        for name in FEED_COLUMNS
                    },
                }
            )
            lo = hi
        open_request = {
            "op": "open",
            "session": session_id,
            "scenario": scenario_name,
            "policy": "INOR",
            "overrides": overrides,
        }
        return open_request, feeds, {"op": "close", "session": session_id}, scenario

    async def _drive(self, port, open_request, feeds, close_request):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        records = []

        async def send(payload):
            writer.write(
                (json.dumps(payload) + "\n").encode("ascii")
            )
            await writer.drain()

        async def pump():
            while True:
                line = await reader.readline()
                if not line:
                    break
                event = json.loads(line)
                if event["event"] == "decision":
                    records.append(event["record"])
                elif event["event"] == "closed":
                    break
                elif event["event"] == "error":
                    raise AssertionError(event["message"])

        pump_task = asyncio.create_task(pump())
        await send(open_request)
        for feed in feeds:
            await send(feed)
            await asyncio.sleep(0)
        await send(close_request)
        await pump_task
        writer.close()
        return records

    def test_two_concurrent_clients_match_offline(self):
        async def main():
            server = StreamServer()
            await server.start()
            try:
                scripts = [
                    self._client_script("porter-ii", f"veh-{k}", 500 + k, 16)
                    for k in range(2)
                ]
                results = await asyncio.gather(
                    *(
                        self._drive(server.port, o, f, c)
                        for o, f, c, _ in scripts
                    )
                )
            finally:
                await server.close()
            return scripts, results, server.hub.stats

        scripts, results, stats = asyncio.run(main())
        for (_, _, _, scenario), records in zip(scripts, results):
            offline = offline_decision_log(scenario, "INOR")
            assert [
                json.loads(r.to_json_line()) for r in offline
            ] == records
        assert stats.rows_decided == sum(len(r) for r in results)

    def test_server_reports_errors_without_dying(self):
        async def main():
            server = StreamServer()
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b'{"op": "feed", "session": "nope"}\n')
                await writer.drain()
                error = json.loads(await reader.readline())
                writer.write(
                    (
                        json.dumps(
                            {
                                "op": "open",
                                "session": "ok",
                                "scenario": "porter-ii",
                                "overrides": {
                                    "duration_s": 2.0,
                                    "n_modules": 4,
                                },
                            }
                        )
                        + "\n"
                    ).encode("ascii")
                )
                await writer.drain()
                opened = json.loads(await reader.readline())
                writer.close()
                return error, opened
            finally:
                await server.close()

        error, opened = asyncio.run(main())
        assert error["event"] == "error"
        assert "unknown session" in error["message"]
        assert opened == {
            "event": "opened",
            "session": "ok",
            "micro_batched": True,
        }
