"""Tests for repro.power.battery."""

import pytest

from repro.errors import ModelParameterError
from repro.power.battery import LeadAcidBattery


class TestAcceptance:
    def test_accepts_offered_power(self):
        battery = LeadAcidBattery()
        assert battery.accept(50.0, 1.0) == pytest.approx(50.0)

    def test_tracks_absorbed_energy(self):
        battery = LeadAcidBattery()
        battery.accept(50.0, 2.0)
        battery.accept(25.0, 4.0)
        assert battery.absorbed_energy_j == pytest.approx(200.0)

    def test_current_ceiling(self):
        battery = LeadAcidBattery(max_charge_current_a=10.0, charge_voltage_v=13.8)
        accepted = battery.accept(500.0, 1.0)
        assert accepted == pytest.approx(138.0)

    def test_full_battery_refuses(self):
        battery = LeadAcidBattery(initial_soc=1.0)
        assert battery.accept(50.0, 1.0) == 0.0

    def test_soc_increases_with_charge(self):
        battery = LeadAcidBattery(capacity_ah=1.0, initial_soc=0.0)
        battery.accept(13.8, 3600.0)  # one amp-hour offered
        assert battery.soc == pytest.approx(0.95)  # coulombic efficiency

    def test_soc_saturates_at_one(self):
        battery = LeadAcidBattery(capacity_ah=0.01, initial_soc=0.99)
        battery.accept(276.0, 3600.0)
        assert battery.soc == 1.0

    def test_rejects_negative_power(self):
        battery = LeadAcidBattery()
        with pytest.raises(ModelParameterError):
            battery.accept(-1.0, 1.0)

    def test_rejects_nonpositive_dt(self):
        battery = LeadAcidBattery()
        with pytest.raises(ModelParameterError):
            battery.accept(1.0, 0.0)


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ModelParameterError):
            LeadAcidBattery(capacity_ah=0.0)

    def test_rejects_bad_soc(self):
        with pytest.raises(ModelParameterError):
            LeadAcidBattery(initial_soc=1.5)

    def test_charge_voltage_exposed(self):
        assert LeadAcidBattery().charge_voltage_v == pytest.approx(13.8)
