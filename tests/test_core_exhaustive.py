"""Tests for repro.core.exhaustive — exact references."""

import numpy as np
import pytest

from repro.core.exhaustive import (
    best_partition_brute_force,
    best_partition_parametric_dp,
)
from repro.errors import ConfigurationError
from repro.teg.network import array_mpp


def random_chain(n: int, seed: int) -> tuple:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.5, 4.0, n), rng.uniform(1.0, 4.0, n)


class TestBruteForce:
    def test_three_module_known_case(self):
        """[2, 1, 1] with equal R: hot module alone + cold pair in
        parallel achieves P_ideal exactly (worked example in the
        exhaustive module docs)."""
        emf = np.array([2.0, 1.0, 1.0])
        res = np.ones(3)
        result = best_partition_brute_force(emf, res)
        ideal = float((emf**2 / (4 * res)).sum())
        assert result.mpp.power_w == pytest.approx(ideal)
        assert result.config.starts == (0, 1)

    def test_uniform_modules_any_partition_optimal(self):
        emf, res = np.full(6, 2.0), np.full(6, 1.0)
        result = best_partition_brute_force(emf, res)
        # All-parallel has the same power as the optimum here.
        assert result.mpp.power_w == pytest.approx(
            array_mpp(emf, res, [0]).power_w
        )

    def test_dominates_random_partitions(self, rng):
        emf, res = random_chain(10, 21)
        best = best_partition_brute_force(emf, res)
        for _ in range(30):
            cuts = sorted(
                set([0]) | set(rng.choice(range(1, 10), size=3, replace=False))
            )
            assert (
                array_mpp(emf, res, cuts).power_w <= best.mpp.power_w + 1e-12
            )

    def test_size_guard(self):
        with pytest.raises(ConfigurationError):
            best_partition_brute_force(np.ones(25), np.ones(25))


class TestParametricDP:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        emf, res = random_chain(10, seed)
        exact = best_partition_brute_force(emf, res)
        dp = best_partition_parametric_dp(emf, res, n_sweep=96)
        assert dp.mpp.power_w == pytest.approx(exact.mpp.power_w, rel=1e-6)

    def test_scales_past_brute_force_limit(self):
        emf, res = random_chain(60, 1)
        result = best_partition_parametric_dp(emf, res, n_sweep=32)
        assert result.config.n_modules == 60
        ideal = float((emf**2 / (4 * res)).sum())
        assert 0.0 < result.mpp.power_w <= ideal

    def test_rejects_tiny_sweep(self):
        emf, res = random_chain(5, 0)
        with pytest.raises(ConfigurationError):
            best_partition_parametric_dp(emf, res, n_sweep=1)

    def test_rejects_bad_mu_range(self):
        emf, res = random_chain(5, 0)
        with pytest.raises(ConfigurationError):
            best_partition_parametric_dp(emf, res, mu_range=(1.0, 0.5))
