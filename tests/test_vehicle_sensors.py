"""Tests for repro.vehicle.sensors."""

import numpy as np
import pytest

from repro.errors import ModelParameterError
from repro.vehicle.sensors import FlowMeter, ModuleTemperatureScanner, Thermocouple


class TestThermocouple:
    def test_first_sample_initialises_state(self):
        probe = Thermocouple(noise_std_k=0.0, quantization_k=0.0, seed=1)
        assert probe.sample(90.0, 0.5) == pytest.approx(90.0)

    def test_lag_smooths_step(self):
        probe = Thermocouple(tau_s=2.0, noise_std_k=0.0, quantization_k=0.0)
        probe.sample(80.0, 0.5)
        reading = probe.sample(90.0, 0.5)
        assert 80.0 < reading < 90.0

    def test_converges_to_true_value(self):
        probe = Thermocouple(tau_s=1.0, noise_std_k=0.0, quantization_k=0.0)
        probe.sample(80.0, 0.5)
        for _ in range(60):
            reading = probe.sample(90.0, 0.5)
        assert reading == pytest.approx(90.0, abs=0.01)

    def test_quantization(self):
        probe = Thermocouple(tau_s=0.0, noise_std_k=0.0, quantization_k=0.5, seed=0)
        assert probe.sample(90.26, 0.5) in (90.0, 90.5)

    def test_noise_deterministic_with_seed(self):
        a = Thermocouple(seed=42)
        b = Thermocouple(seed=42)
        ra = [a.sample(90.0, 0.5) for _ in range(5)]
        rb = [b.sample(90.0, 0.5) for _ in range(5)]
        assert ra == rb

    def test_reset_forgets_lag(self):
        probe = Thermocouple(tau_s=5.0, noise_std_k=0.0, quantization_k=0.0)
        probe.sample(50.0, 0.5)
        probe.reset()
        assert probe.sample(90.0, 0.5) == pytest.approx(90.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ModelParameterError):
            Thermocouple().sample(float("nan"), 0.5)

    def test_rejects_bad_dt(self):
        with pytest.raises(ModelParameterError):
            Thermocouple().sample(90.0, 0.0)


class TestFlowMeter:
    def test_reading_positive(self):
        meter = FlowMeter(seed=3)
        for _ in range(50):
            assert meter.sample(0.001, 0.5) > 0.0

    def test_tracks_true_flow(self):
        meter = FlowMeter(noise_std_kg_s=0.0, quantization_kg_s=0.0)
        meter.sample(0.3, 0.5)
        for _ in range(20):
            reading = meter.sample(0.3, 0.5)
        assert reading == pytest.approx(0.3, abs=1e-6)


class TestScanner:
    def test_noiseless_identity(self):
        scanner = ModuleTemperatureScanner(noise_std_k=0.0)
        temps = np.linspace(40.0, 90.0, 10)
        assert np.array_equal(scanner.scan(temps), temps)

    def test_noise_magnitude(self):
        scanner = ModuleTemperatureScanner(noise_std_k=0.1, seed=0)
        temps = np.full(2000, 70.0)
        noisy = scanner.scan(temps)
        assert np.std(noisy - temps) == pytest.approx(0.1, rel=0.15)

    def test_does_not_mutate_input(self):
        scanner = ModuleTemperatureScanner(noise_std_k=0.1, seed=0)
        temps = np.full(5, 70.0)
        scanner.scan(temps)
        assert np.all(temps == 70.0)

    def test_deterministic_with_seed(self):
        a = ModuleTemperatureScanner(noise_std_k=0.1, seed=9)
        b = ModuleTemperatureScanner(noise_std_k=0.1, seed=9)
        temps = np.linspace(40.0, 90.0, 6)
        assert np.array_equal(a.scan(temps), b.scan(temps))

    def test_rejects_2d(self):
        scanner = ModuleTemperatureScanner()
        with pytest.raises(ModelParameterError):
            scanner.scan(np.zeros((2, 3)))

    def test_rejects_negative_noise(self):
        with pytest.raises(ModelParameterError):
            ModuleTemperatureScanner(noise_std_k=-0.1)
