"""Tests for the 2-D radiator bank (thermal.multipath + teg.bank)."""

import numpy as np
import pytest

from repro.core.config import ArrayConfiguration
from repro.errors import ConfigurationError, ModelParameterError
from repro.power.charger import TEGCharger
from repro.teg.bank import (
    bank_mpp,
    bank_power_at_voltage,
    chain_state,
    reconfigure_bank,
)
from repro.teg.datasheet import TGM_199_1_4_0_8
from repro.thermal.multipath import MultiPathRadiator, PathImbalance
from repro.vehicle.trace import default_radiator


@pytest.fixture
def multipath():
    return MultiPathRadiator(default_radiator(), n_paths=4)


class TestPathImbalance:
    def test_even_split(self):
        coolant, air = PathImbalance.even(4).normalised(4)
        assert np.allclose(coolant, 0.25)
        assert np.allclose(air, 0.25)

    def test_random_normalises(self):
        coolant, air = PathImbalance.random(5, spread=0.2, seed=3).normalised(5)
        assert coolant.sum() == pytest.approx(1.0)
        assert air.sum() == pytest.approx(1.0)
        assert np.all(coolant > 0.0)

    def test_random_deterministic(self):
        a = PathImbalance.random(4, seed=7)
        b = PathImbalance.random(4, seed=7)
        assert a.coolant_flow_factors == b.coolant_flow_factors

    def test_wrong_length_rejected(self):
        with pytest.raises(ModelParameterError):
            PathImbalance.even(3).normalised(4)

    def test_bad_spread_rejected(self):
        with pytest.raises(ModelParameterError):
            PathImbalance.random(4, spread=1.5)


class TestMultiPathRadiator:
    def test_even_paths_identical(self, multipath):
        matrix = multipath.delta_t_matrix(90.0, 0.24, 25.0, 0.8, 25)
        assert matrix.shape == (4, 25)
        for row in matrix[1:]:
            assert np.allclose(row, matrix[0])

    def test_total_duty_preserved_scale(self, multipath):
        """Four even paths at quarter flow reject roughly what one path
        at full flow does (mild nonlinearity from UA flow exponents)."""
        points = multipath.operating_points(90.0, 0.24, 25.0, 0.8, 25)
        total = sum(op.solution.duty_w for op in points)
        single = default_radiator().operating_point(90.0, 0.24, 25.0, 0.8, 25)
        assert total == pytest.approx(single.solution.duty_w, rel=0.25)

    def test_imbalance_differentiates_paths(self):
        mp = MultiPathRadiator(
            default_radiator(), 4, PathImbalance.random(4, spread=0.25, seed=2)
        )
        matrix = mp.delta_t_matrix(90.0, 0.24, 25.0, 0.8, 25)
        assert not np.allclose(matrix[0], matrix[1])

    def test_rejects_zero_paths(self):
        with pytest.raises(ModelParameterError):
            MultiPathRadiator(default_radiator(), 0)


class TestBankElectrical:
    def test_identical_chains_scale_current(self):
        config = ArrayConfiguration.uniform(10, 2)
        emf = np.linspace(2.0, 3.0, 10)
        res = np.full(10, 2.9)
        single = chain_state(emf, res, config)
        double = bank_mpp([single, single])
        alone = bank_mpp([single])
        assert double.voltage_v == pytest.approx(alone.voltage_v)
        assert double.current_a == pytest.approx(2 * alone.current_a)
        assert double.power_w == pytest.approx(2 * alone.power_w)

    def test_bank_mpp_dominates_voltage_sweep(self):
        config = ArrayConfiguration.uniform(10, 2)
        rng = np.random.default_rng(4)
        chains = [
            chain_state(rng.uniform(1.5, 3.5, 10), np.full(10, 2.9), config)
            for _ in range(3)
        ]
        mpp = bank_mpp(chains)
        for frac in (0.5, 0.8, 1.2, 1.5):
            assert (
                bank_power_at_voltage(chains, mpp.voltage_v * frac)
                <= mpp.power_w + 1e-9
            )

    def test_power_at_mpp_voltage_matches(self):
        config = ArrayConfiguration.uniform(8, 2)
        chains = [
            chain_state(np.linspace(2, 3, 8), np.full(8, 2.9), config),
            chain_state(np.linspace(1.8, 2.8, 8), np.full(8, 2.9), config),
        ]
        mpp = bank_mpp(chains)
        assert bank_power_at_voltage(chains, mpp.voltage_v) == pytest.approx(
            mpp.power_w
        )

    def test_empty_bank_rejected(self):
        with pytest.raises(ConfigurationError):
            bank_mpp([])


class TestReconfigureBank:
    def test_one_chain_per_path(self, multipath):
        matrix = multipath.delta_t_matrix(90.0, 0.24, 25.0, 0.8, 25)
        chains = reconfigure_bank(TGM_199_1_4_0_8, matrix, TEGCharger())
        assert len(chains) == 4
        for chain in chains:
            assert chain.config.n_modules == 25

    def test_even_paths_get_identical_configs(self, multipath):
        matrix = multipath.delta_t_matrix(90.0, 0.24, 25.0, 0.8, 25)
        chains = reconfigure_bank(TGM_199_1_4_0_8, matrix, TEGCharger())
        assert all(c.config == chains[0].config for c in chains)

    def test_bank_beats_uniform_grid_bank(self):
        """Per-path INOR on a maldistributed bank outperforms per-path
        uniform grids — the 2-D analogue of the paper's claim."""
        mp = MultiPathRadiator(
            default_radiator(), 4, PathImbalance.random(4, spread=0.25, seed=2)
        )
        matrix = mp.delta_t_matrix(90.0, 0.24, 25.0, 0.8, 25)
        charger = TEGCharger()
        optimised = bank_mpp(reconfigure_bank(TGM_199_1_4_0_8, matrix, charger))

        alpha = (
            TGM_199_1_4_0_8.material.seebeck_v_per_k * TGM_199_1_4_0_8.n_couples
        )
        r_module = TGM_199_1_4_0_8.internal_resistance()
        grid = ArrayConfiguration.uniform(25, 5)
        grid_chains = [
            chain_state(alpha * row, np.full(25, r_module), grid)
            for row in matrix
        ]
        assert optimised.power_w > bank_mpp(grid_chains).power_w

    def test_rejects_1d_matrix(self):
        with pytest.raises(ConfigurationError):
            reconfigure_bank(TGM_199_1_4_0_8, np.ones(10))
