"""Property-based tests for the reconfiguration algorithms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ehtr import ehtr
from repro.core.exhaustive import best_partition_brute_force
from repro.core.inor import greedy_balanced_partition, inor
from repro.teg.network import array_mpp


@st.composite
def positive_currents(draw, min_size=2, max_size=40):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    values = draw(
        st.lists(
            st.floats(0.01, 5.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(values)


@st.composite
def thevenin_chain(draw, min_size=2, max_size=20):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    emf = draw(
        st.lists(st.floats(0.05, 6.0, allow_nan=False), min_size=n, max_size=n)
    )
    return np.asarray(emf), np.full(n, 2.9)


class TestGreedyPartitionProperties:
    @given(positive_currents(), st.integers(min_value=1, max_value=40))
    @settings(max_examples=80, deadline=None)
    def test_always_valid_partition(self, currents, n_groups):
        n_groups = min(n_groups, currents.size)
        starts = greedy_balanced_partition(currents, n_groups)
        assert starts.size == n_groups
        assert starts[0] == 0
        assert np.all(np.diff(starts) >= 1)
        assert starts[-1] < currents.size

    @given(positive_currents(min_size=4))
    @settings(max_examples=50, deadline=None)
    def test_group_sums_cover_total(self, currents):
        n_groups = max(currents.size // 3, 1)
        starts = greedy_balanced_partition(currents, n_groups)
        sums = np.add.reduceat(currents, starts)
        assert np.isclose(sums.sum(), currents.sum())

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_uniform_currents_sizes_bounded_by_ceiling(self, n, n_groups):
        """With uniform currents no greedy group exceeds ceil(n/k).

        (Greedy front-loads on exact .5 ties and may starve the tail
        down to singletons — e.g. 20 modules into 8 groups gives
        3,3,3,3,3,3,1,1 — but it can never overfill a group; the n-scan
        of Algorithm 1 is what rescues such degenerate targets.)"""
        n_groups = min(n_groups, n)
        starts = greedy_balanced_partition(np.ones(n), n_groups)
        sizes = np.diff(np.append(starts, n))
        ceiling = -(-n // n_groups)
        assert sizes.min() >= 1
        assert sizes[:-1].max(initial=1) <= ceiling


class TestInorProperties:
    @given(thevenin_chain())
    @settings(max_examples=50, deadline=None)
    def test_power_bounded_by_ideal(self, chain):
        emf, res = chain
        result = inor(emf, res)
        ideal = float((emf * emf / (4.0 * res)).sum())
        assert result.mpp.power_w <= ideal + 1e-9

    @given(thevenin_chain())
    @settings(max_examples=50, deadline=None)
    def test_config_partitions_chain(self, chain):
        emf, res = chain
        config = inor(emf, res).config
        assert sum(config.group_sizes) == emf.size

    @given(thevenin_chain(min_size=4, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_never_far_from_brute_force(self, chain):
        """On arbitrary (even adversarial) chains INOR keeps a bounded
        gap to the optimum — hypothesis finds e.g. 4-module fields where
        the current-balancing greedy lands near 0.75 of the best
        partition.  On smooth radiator fields the gap is a few percent
        (asserted separately in test_core_inor and quantified in
        bench_near_optimality)."""
        emf, res = chain
        exact = best_partition_brute_force(emf, res)
        approx = inor(emf, res)
        assert approx.mpp.power_w >= 0.70 * exact.mpp.power_w

    @given(thevenin_chain())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, chain):
        emf, res = chain
        assert inor(emf, res).config == inor(emf, res).config


class TestEhtrProperties:
    @given(thevenin_chain(max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_valid_and_bounded(self, chain):
        emf, res = chain
        result = ehtr(emf, res)
        ideal = float((emf * emf / (4.0 * res)).sum())
        assert sum(result.config.group_sizes) == emf.size
        assert result.mpp.power_w <= ideal + 1e-9

    @given(thevenin_chain(min_size=4, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_at_least_single_group_power(self, chain):
        """EHTR scans n=1, so it can never lose to all-parallel."""
        emf, res = chain
        result = ehtr(emf, res)
        single = array_mpp(emf, res, [0]).power_w
        assert result.mpp.power_w >= single - 1e-9
