"""Cross-engine differential suite: batched engine vs the reference loop.

The layered engine's contract is that its vectorised fast paths are
*indistinguishable* from the pre-refactor per-sample loop.  This suite
locks that down across every workload users can build by name:

* every :class:`~repro.sim.scenario.ScenarioRegistry` scenario, with
  its natural (noisy) trace *and* a noiseless variant (sensed columns
  equal to the true columns, scanner disabled),
* energy series, per-period decisions (group-count series) and switch
  events, at tight tolerances — the thermal chain is computed by
  scalar libm calls in the reference loop, so series agreement is
  ULP-level rather than bitwise, while the discrete outputs must be
  exactly equal,
* a seeded randomized-trace fuzz case,
* and, per the cache layer's contract, physics served from a warm
  on-disk :class:`~repro.sim.cache.PhysicsCache` must reproduce the
  uncached run *bit-identically*.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import ArrayConfiguration
from repro.core.dnor import DNORPlanner, thevenin_from_temps
from repro.core.inor import converter_aware_group_range, inor
from repro.prediction.mlr import MLRPredictor
from repro.teg.network import greedy_balanced_partition, partition_multi
from repro.sim.cache import PhysicsCache
from repro.sim.physics import TracePhysics
from repro.sim.scenario import (
    REGISTRY_NOMINAL_COMPUTE_S,
    Scenario,
    build_named_scenario,
    default_registry,
)
from repro.sim.simulator import HarvestSimulator
from repro.teg.datasheet import TGM_199_1_4_0_8
from repro.vehicle.trace import RadiatorTrace, default_radiator

SCENARIO_NAMES = default_registry().names()

#: Short runs keep the reference loop affordable; 16 is a perfect
#: square so the Baseline grid stays valid for every scenario.
DURATION_S = 20.0
N_MODULES = 16

#: Energy/electrical series compared at tight (ULP-level) tolerances.
SERIES_FIELDS = (
    "delivered_power_w",
    "gross_power_w",
    "array_voltage_v",
    "ideal_power_w",
    "time_s",
)

POLICIES = ("Baseline", "INOR", "DNOR")


def _noiseless_variant(scenario: Scenario) -> Scenario:
    """Sensed columns = true columns, scanner off: a noiseless world."""
    trace = dataclasses.replace(
        scenario.trace,
        coolant_inlet_sensed_c=scenario.trace.coolant_inlet_c.copy(),
        coolant_flow_sensed_kg_s=scenario.trace.coolant_flow_kg_s.copy(),
        name=f"{scenario.trace.name}-noiseless",
    )
    return dataclasses.replace(scenario, trace=trace, scanner_noise_std_k=0.0)


@pytest.fixture(scope="module")
def scenarios():
    """Each registry scenario, noisy and noiseless, built once."""
    built = {}
    for name in SCENARIO_NAMES:
        scenario = build_named_scenario(
            name, duration_s=DURATION_S, n_modules=N_MODULES
        )
        built[(name, "noisy")] = scenario
        built[(name, "noiseless")] = _noiseless_variant(scenario)
    return built


def run_engine(scenario: Scenario, policy: str, engine: str, physics=None):
    simulator = HarvestSimulator(
        trace=scenario.trace,
        boundary=scenario.boundary,
        module=scenario.module,
        n_modules=scenario.n_modules,
        overhead=scenario.overhead,
        scanner=scenario.make_scanner(),
        nominal_compute_s=scenario.nominal_compute_s,
        physics=physics,
        engine=engine,
    )
    return simulator.run(scenario.make_policies()[policy], scenario.make_charger())


def assert_engines_agree(batched, reference):
    """Series at tight tolerance; decisions and switch events exact."""
    for field in SERIES_FIELDS:
        np.testing.assert_allclose(
            getattr(batched, field),
            getattr(reference, field),
            rtol=1e-9,
            atol=1e-9,
            err_msg=field,
        )
    # Decisions: the applied group count at every control period.
    assert np.array_equal(batched.n_groups_series, reference.n_groups_series)
    # Switch events: same instants, same toggle bills.
    assert batched.switch_times_s == reference.switch_times_s
    assert batched.switch_count == reference.switch_count
    assert len(batched.overhead_events) == len(reference.overhead_events)
    for eb, er in zip(batched.overhead_events, reference.overhead_events):
        assert eb.time_s == er.time_s
        assert eb.toggles == er.toggles
        assert eb.energy_j == pytest.approx(er.energy_j, rel=1e-9, abs=1e-12)
    assert batched.switch_overhead_j == pytest.approx(
        reference.switch_overhead_j, rel=1e-9, abs=1e-12
    )


class TestRegistryParity:
    @pytest.mark.parametrize("noise", ["noisy", "noiseless"])
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_batched_matches_reference(self, scenarios, name, noise, policy):
        scenario = scenarios[(name, noise)]
        batched = run_engine(scenario, policy, "batched")
        reference = run_engine(scenario, policy, "reference")
        assert_engines_agree(batched, reference)

    def test_ehtr_parity_on_paper_platform(self, scenarios):
        """EHTR is slow, so the prior-work scheme is pinned on one case."""
        scenario = scenarios[("porter-ii", "noisy")]
        batched = run_engine(scenario, "EHTR", "batched")
        reference = run_engine(scenario, "EHTR", "reference")
        assert_engines_agree(batched, reference)

    def test_noiseless_skips_sensed_solve(self, scenarios):
        scenario = scenarios[("porter-ii", "noiseless")]
        physics = TracePhysics.compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        assert physics.noiseless
        assert physics.sensed_solution is physics.true_solution


class TestCachedPhysicsBitIdentical:
    """The acceptance pin: cached physics changes *nothing*.

    A warm on-disk artifact round-trips through ``float64`` storage, so
    the comparison here is ``np.array_equal`` — bitwise, not approx.
    """

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_disk_cached_run_is_bitwise_equal(self, scenarios, name, tmp_path):
        scenario = scenarios[(name, "noisy")]
        uncached = run_engine(scenario, "INOR", "batched")

        warm = PhysicsCache(cache_dir=tmp_path / "store")
        warm.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        reader = PhysicsCache(cache_dir=tmp_path / "store")
        physics = reader.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        assert reader.stats.disk_hits == 1  # served from the artifact

        cached = run_engine(scenario, "INOR", "batched", physics=physics)
        for field in SERIES_FIELDS + ("n_groups_series",):
            assert np.array_equal(
                getattr(cached, field), getattr(uncached, field)
            ), field
        assert cached.switch_times_s == uncached.switch_times_s
        assert cached.switch_overhead_j == uncached.switch_overhead_j


def _scenario_emf_vectors(scenario: Scenario, n_rows: int = 4):
    """Realistic per-module (emf, resistance, ambient) triples: sampled
    rows of the scenario's sensed temperature field."""
    physics = scenario.make_simulator().physics
    temps = physics.sensed_temps_c
    picks = np.linspace(0, temps.shape[0] - 1, n_rows).astype(int)
    for i in picks:
        ambient = float(scenario.trace.ambient_c[i])
        emf, res = thevenin_from_temps(scenario.module, temps[i], ambient)
        yield emf, res


class TestDecisionKernelParity:
    """Build + score + rank of the batched INOR kernel, bit-identical to
    the scalar references on every registry scenario and on fuzz
    vectors — the tentpole's acceptance pin."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_partition_multi_cuts_on_registry_scenarios(self, scenarios, name):
        scenario = scenarios[(name, "noisy")]
        charger = scenario.make_charger(with_battery=False)
        for emf, res in _scenario_emf_vectors(scenario):
            currents = emf / (2.0 * res)
            lo, hi = converter_aware_group_range(
                emf, emf.size, charger
            )
            ps = partition_multi(currents, lo, hi)
            for k, n_groups in enumerate(range(lo, hi + 1)):
                ref = greedy_balanced_partition(currents, n_groups)
                assert np.array_equal(ps[k], ref), (name, n_groups)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_inor_decisions_on_registry_scenarios(self, scenarios, name):
        scenario = scenarios[(name, "noisy")]
        charger = scenario.make_charger(with_battery=False)
        for emf, res in _scenario_emf_vectors(scenario):
            batched = inor(emf, res, charger=charger, kernel="batched")
            scalar = inor(emf, res, charger=charger, kernel="scalar")
            assert batched.config == scalar.config
            assert batched.mpp == scalar.mpp  # exact, not approx
            assert batched.delivered_power_w == scalar.delivered_power_w
            assert batched.n_range == scalar.n_range
            assert batched.candidates_evaluated == scalar.candidates_evaluated

    def test_partition_multi_cuts_on_fuzz_vectors(self):
        """Seeded fuzz EMF/resistance vectors, full [1, N] windows,
        including dead (zero-EMF) and back-biased modules."""
        rng = np.random.default_rng(2018)
        for _ in range(40):
            n = int(rng.integers(1, 48))
            emf = rng.uniform(0.0, 3.0, n)
            if rng.uniform() < 0.3:
                emf[rng.integers(0, n, size=max(1, n // 6))] *= -1.0
            res = rng.uniform(0.4, 3.0, n)
            currents = emf / (2.0 * res)
            ps = partition_multi(currents, 1, n)
            for k, n_groups in enumerate(range(1, n + 1)):
                ref = greedy_balanced_partition(currents, n_groups)
                assert np.array_equal(ps[k], ref)

    def test_inor_decisions_on_fuzz_vectors(self):
        rng = np.random.default_rng(2019)
        from repro.power.charger import TEGCharger

        for _ in range(20):
            n = int(rng.integers(2, 64))
            emf = rng.uniform(0.05, 3.0, n)
            res = rng.uniform(0.4, 3.0, n)
            for charger in (None, TEGCharger()):
                batched = inor(emf, res, charger=charger, kernel="batched")
                scalar = inor(emf, res, charger=charger, kernel="scalar")
                assert batched == scalar

    def test_full_simulation_kernel_parity(self, scenarios):
        """An end-to-end INOR + DNOR run with the scalar decision kernel
        must be indistinguishable from the batched default."""
        scenario = scenarios[("porter-ii", "noisy")]
        scalar_scenario = dataclasses.replace(scenario, inor_kernel="scalar")
        for policy in ("INOR", "DNOR"):
            batched = run_engine(scenario, policy, "batched")
            scalar = run_engine(scalar_scenario, policy, "batched")
            for field in SERIES_FIELDS + ("n_groups_series",):
                assert np.array_equal(
                    getattr(batched, field), getattr(scalar, field)
                ), (policy, field)
            assert batched.switch_times_s == scalar.switch_times_s
            assert batched.switch_overhead_j == scalar.switch_overhead_j


class TestDnorPlanBatchPin:
    """The stacked epoch decision must equal the decision rebuilt from
    sequential single-configuration horizon scoring on realistic
    scenario histories (plan() delegates to plan_batch, so the
    sequential reference is reconstructed from the scalar kernels)."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_plan_batch_equals_sequential_scoring(self, scenarios, name):
        scenario = scenarios[(name, "noisy")]
        planner = DNORPlanner(
            module=scenario.module,
            charger=scenario.make_charger(with_battery=False),
            overhead=scenario.overhead,
            predictor=MLRPredictor(lags=4, train_window=120),
            tp_seconds=scenario.tp_seconds,
            sample_dt_s=scenario.trace.dt_s,
            nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
        )
        physics = scenario.make_simulator().physics
        history = physics.sensed_temps_c[-24:]
        ambient = float(scenario.trace.ambient_c[-1])
        for current in (
            ArrayConfiguration.all_parallel(scenario.n_modules),
            ArrayConfiguration.uniform(scenario.n_modules, 4),
        ):
            decision = planner.plan(history, ambient, current=current)
            if decision.candidate == current:
                continue  # keep-path: nothing scored over the horizon
            horizon_rows, _, _ = planner._forecast_horizon(
                history, history[-1]
            )
            energy_old = planner._horizon_energy(
                current, horizon_rows, ambient
            )
            energy_new = planner._horizon_energy(
                decision.candidate, horizon_rows, ambient
            )
            assert decision.energy_old_j == energy_old  # bitwise
            assert decision.energy_new_j == energy_new
            assert decision.switch == (
                energy_old <= energy_new - decision.energy_overhead_j
            )


def _fuzz_trace(seed: int, n: int = 41) -> RadiatorTrace:
    """A seeded random trace spanning warm, cool and noisy regimes."""
    rng = np.random.default_rng(seed)
    time_s = np.arange(n) * 0.5
    inlet = np.clip(
        72.0 + np.cumsum(rng.normal(0.0, 1.2, n)), 35.0, 110.0
    )
    flow = np.clip(0.28 + np.cumsum(rng.normal(0.0, 0.01, n)), 0.05, 0.6)
    air = np.clip(0.9 + np.cumsum(rng.normal(0.0, 0.03, n)), 0.2, 2.0)
    ambient = np.full(n, 25.0)
    return RadiatorTrace(
        time_s=time_s,
        coolant_inlet_c=inlet,
        coolant_flow_kg_s=flow,
        air_flow_kg_s=air,
        ambient_c=ambient,
        speed_mps=np.zeros(n),
        coolant_inlet_sensed_c=inlet + rng.normal(0.0, 0.6, n),
        coolant_flow_sensed_kg_s=np.maximum(
            flow + rng.normal(0.0, 0.01, n), 1.0e-4
        ),
        name=f"fuzz-seed{seed}",
    )


class TestGridStackedExecutor:
    """The fused grid executor is serial, bit for bit.

    ``executor="gridstack"`` collapses a homogeneous case grid's INOR
    decision epochs into stacked kernel passes; its contract is that
    every pinned output (series, decisions, switch events, overhead
    bills) is **bitwise** equal to ``executor="serial"`` — only the
    wall-clock ``runtime_s`` may differ.  Exercised over every registry
    scenario with mixed fusable/unfusable policies and a noise axis, so
    each grid contains one multi-case fused group plus fallback cases.
    """

    BIT_FIELDS = SERIES_FIELDS + ("n_groups_series",)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_bitwise_equal_to_serial_on_registry_grids(
        self, scenarios, name
    ):
        from repro.sim.engine import ExperimentRunner, grid_cases

        scenario = scenarios[(name, "noisy")]
        cases = grid_cases(
            [scenario],
            ["INOR", "DNOR", "Baseline"],
            scanner_noise_std_k=[0.02, 0.12],
        )
        serial = ExperimentRunner(cases, executor="serial").run()
        stacked = ExperimentRunner(cases, executor="gridstack").run()
        assert len(serial) == len(stacked) == len(cases)
        for (case_s, res_s), (case_g, res_g) in zip(serial, stacked):
            assert case_s.name == case_g.name
            for field in self.BIT_FIELDS:
                assert (
                    getattr(res_s, field).tobytes()
                    == getattr(res_g, field).tobytes()
                ), (case_s.name, field)
            assert res_s.switch_times_s == res_g.switch_times_s
            assert res_s.overhead_events == res_g.overhead_events
            assert res_s.switch_overhead_j == res_g.switch_overhead_j

    def test_numpy_backend_kernel_fuses_identically(self, scenarios):
        """The ``batched:numpy`` spelling routes through the backend
        registry yet must change nothing."""
        from repro.sim.engine import ExperimentRunner, grid_cases

        scenario = scenarios[("porter-ii", "noisy")]
        named = dataclasses.replace(scenario, inor_kernel="batched:numpy")
        cases = grid_cases([named], ["INOR"], scanner_noise_std_k=[0.02, 0.1])
        baseline = ExperimentRunner(
            grid_cases([scenario], ["INOR"], scanner_noise_std_k=[0.02, 0.1]),
            executor="serial",
        ).run()
        stacked = ExperimentRunner(cases, executor="gridstack").run()
        for (_, res_s), (_, res_g) in zip(baseline, stacked):
            for field in self.BIT_FIELDS:
                assert (
                    getattr(res_s, field).tobytes()
                    == getattr(res_g, field).tobytes()
                ), field
            assert res_s.overhead_events == res_g.overhead_events


class TestStackedKernelParity:
    """``inor_stack`` over a case-stacked EMF matrix equals per-case
    ``inor`` exactly — the grid-stacked tentpole's kernel-level pin."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_inor_stack_on_registry_scenarios(self, scenarios, name):
        from repro.core.inor import inor_stack

        scenario = scenarios[(name, "noisy")]
        charger = scenario.make_charger(with_battery=False)
        rows = []
        resistance = None
        for emf, res in _scenario_emf_vectors(scenario, n_rows=6):
            rows.append(emf)
            resistance = res
        emf_rows = np.stack(rows)
        stacked = inor_stack(emf_rows, resistance, charger=charger)
        for row, result in zip(emf_rows, stacked):
            reference = inor(row, resistance, charger=charger)
            assert result == reference

    def test_inor_stack_handles_negative_current_rows(self):
        """Rows with back-biased modules exercise the fused
        accumulation-walk branch of ``partition_multi_stack``."""
        from repro.core.inor import inor_stack

        rng = np.random.default_rng(77)
        n = 12
        emf_rows = rng.uniform(-0.6, 2.5, size=(9, n))
        resistance = rng.uniform(0.5, 2.0, n)
        stacked = inor_stack(emf_rows, resistance)
        for row, result in zip(emf_rows, stacked):
            assert result == inor(row, resistance)


class TestRandomizedTraceFuzz:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_engines_agree_on_random_traces(self, seed):
        scenario = Scenario(
            module=TGM_199_1_4_0_8,
            n_modules=9,
            boundary=default_radiator(),
            trace=_fuzz_trace(seed),
            sensor_seed=seed + 1,
            nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
        )
        for policy in ("INOR", "DNOR"):
            batched = run_engine(scenario, policy, "batched")
            reference = run_engine(scenario, policy, "reference")
            assert_engines_agree(batched, reference)
