"""Tests for repro.power.converter."""

import pytest

from repro.errors import ModelParameterError
from repro.power.converter import BuckBoostConverter


@pytest.fixture
def converter() -> BuckBoostConverter:
    return BuckBoostConverter()


class TestEfficiencyCurve:
    def test_peak_at_optimal_input(self, converter):
        assert converter.efficiency(converter.optimal_input_v) == pytest.approx(
            converter.peak_efficiency
        )

    def test_decreases_away_from_optimum(self, converter):
        v_opt = converter.optimal_input_v
        assert converter.efficiency(v_opt / 2) < converter.efficiency(v_opt)
        assert converter.efficiency(v_opt * 2) < converter.efficiency(v_opt)

    def test_low_side_steeper_than_high_side(self, converter):
        """Buck-boost stages suffer more at low input voltage."""
        v_opt = converter.optimal_input_v
        assert converter.efficiency(v_opt / 1.5) < converter.efficiency(v_opt * 1.5)

    def test_floor_clamp(self, converter):
        assert converter.efficiency(0.05) == converter.floor_efficiency

    def test_nonpositive_voltage_gives_floor(self, converter):
        assert converter.efficiency(0.0) == converter.floor_efficiency
        assert converter.efficiency(-5.0) == converter.floor_efficiency

    def test_monotone_below_optimum(self, converter):
        voltages = [2.0, 5.0, 9.0, converter.optimal_input_v]
        efficiencies = [converter.efficiency(v) for v in voltages]
        assert efficiencies == sorted(efficiencies)

    def test_efficiency_near_13_8_v_bus(self, converter):
        """The design point of the paper's system: ~96% near the bus."""
        assert converter.efficiency(13.8) > 0.95


class TestOutputPower:
    def test_scales_input(self, converter):
        out = converter.output_power(50.0, converter.optimal_input_v)
        expected = 50.0 * converter.peak_efficiency - converter.quiescent_power_w
        assert out == pytest.approx(expected)

    def test_zero_input_zero_output(self, converter):
        assert converter.output_power(0.0, 14.0) == 0.0

    def test_negative_input_zero_output(self, converter):
        assert converter.output_power(-10.0, 14.0) == 0.0

    def test_quiescent_floor(self, converter):
        # Tiny input is eaten by the quiescent draw.
        assert converter.output_power(0.1, 14.0) == 0.0

    def test_output_never_exceeds_input(self, converter):
        for v in (3.0, 10.0, 14.0, 30.0):
            for p in (0.5, 5.0, 50.0):
                assert converter.output_power(p, v) <= p


class TestPreferredWindow:
    def test_window_brackets_optimum(self, converter):
        lo, hi = converter.preferred_voltage_window(0.03)
        assert lo < converter.optimal_input_v < hi

    def test_window_widens_with_tolerance(self, converter):
        lo1, hi1 = converter.preferred_voltage_window(0.01)
        lo3, hi3 = converter.preferred_voltage_window(0.05)
        assert lo3 < lo1 and hi3 > hi1

    def test_window_edges_hit_tolerance(self, converter):
        drop = 0.03
        lo, hi = converter.preferred_voltage_window(drop)
        assert converter.efficiency(lo) == pytest.approx(
            converter.peak_efficiency - drop, abs=1e-9
        )
        assert converter.efficiency(hi) == pytest.approx(
            converter.peak_efficiency - drop, abs=1e-9
        )

    def test_asymmetric_window(self, converter):
        """The steeper low side yields a tighter margin below optimum."""
        lo, hi = converter.preferred_voltage_window(0.03)
        v_opt = converter.optimal_input_v
        assert (v_opt / lo) < (hi / v_opt)


class TestValidation:
    def test_rejects_floor_above_peak(self):
        with pytest.raises(ModelParameterError):
            BuckBoostConverter(peak_efficiency=0.9, floor_efficiency=0.95)

    def test_rejects_negative_quiescent(self):
        with pytest.raises(ModelParameterError):
            BuckBoostConverter(quiescent_power_w=-1.0)
