"""Tests for repro.analysis.mismatch — the exact loss decomposition."""

import numpy as np
import pytest

from repro.analysis.mismatch import loss_breakdown
from repro.core.inor import inor
from repro.power.charger import TEGCharger


class TestExactness:
    def test_terms_reconstruct_ideal(self, module_params):
        emf, res = module_params
        bd = loss_breakdown(emf, res, tuple(range(0, 20, 4)), TEGCharger())
        total = (
            bd.parallel_mismatch_w
            + bd.series_mismatch_w
            + bd.conversion_loss_w
            + bd.delivered_power_w
        )
        assert total == pytest.approx(bd.ideal_power_w, rel=1e-12)

    def test_terms_nonnegative_for_positive_field(self, module_params):
        emf, res = module_params
        for starts in ((0,), tuple(range(20)), (0, 5, 9, 16)):
            bd = loss_breakdown(emf, res, starts, TEGCharger())
            assert bd.parallel_mismatch_w >= -1e-12
            assert bd.series_mismatch_w >= -1e-12
            assert bd.conversion_loss_w >= -1e-12

    def test_no_charger_no_conversion_loss(self, module_params):
        emf, res = module_params
        bd = loss_breakdown(emf, res, (0, 10))
        assert bd.conversion_loss_w == 0.0
        assert bd.delivered_power_w == pytest.approx(bd.electrical_power_w)


class TestMechanisms:
    def test_all_parallel_has_no_series_loss(self, module_params):
        """One group: current sharing cannot lose anything."""
        emf, res = module_params
        bd = loss_breakdown(emf, res, (0,))
        assert bd.series_mismatch_w == pytest.approx(0.0, abs=1e-12)
        assert bd.parallel_mismatch_w > 0.0

    def test_all_series_has_no_parallel_loss(self, module_params):
        """Singleton groups: every group is at most one module."""
        emf, res = module_params
        bd = loss_breakdown(emf, res, tuple(range(20)))
        assert bd.parallel_mismatch_w == pytest.approx(0.0, abs=1e-12)
        assert bd.series_mismatch_w > 0.0

    def test_uniform_field_no_mismatch(self):
        emf = np.full(12, 2.5)
        res = np.full(12, 2.9)
        bd = loss_breakdown(emf, res, (0, 4, 8))
        assert bd.parallel_mismatch_w == pytest.approx(0.0, abs=1e-12)
        assert bd.series_mismatch_w == pytest.approx(0.0, abs=1e-9)

    def test_inor_config_has_small_mismatch(self, module_params):
        """INOR's whole purpose: drive the mismatch terms down."""
        emf, res = module_params
        charger = TEGCharger()
        config = inor(emf, res, charger=charger).config
        optimised = loss_breakdown(emf, res, config.starts, charger)
        grid = loss_breakdown(emf, res, (0, 5, 10, 15), charger)
        assert optimised.mismatch_fraction < grid.mismatch_fraction
        assert optimised.mismatch_fraction < 0.06

    def test_mismatch_fraction_zero_ideal_safe(self):
        bd = loss_breakdown(np.array([-1.0, -1.0]), np.ones(2), (0,))
        assert bd.mismatch_fraction == 0.0


class TestViews:
    def test_as_dict_keys(self, module_params):
        emf, res = module_params
        d = loss_breakdown(emf, res, (0, 10)).as_dict()
        assert set(d) == {
            "ideal_w",
            "parallel_mismatch_w",
            "series_mismatch_w",
            "conversion_loss_w",
            "delivered_w",
        }
