"""Tests for repro.sim.results."""

import numpy as np
import pytest

from repro.core.overhead import OverheadEvent
from repro.errors import SimulationError
from repro.sim.results import SimulationResult, comparison_table, summary_row


def make_result(
    scheme="INOR",
    n=10,
    delivered=50.0,
    ideal=60.0,
    events=(),
    start_s=0.0,
) -> SimulationResult:
    return SimulationResult(
        scheme=scheme,
        time_s=start_s + np.arange(n) * 0.5,
        gross_power_w=np.full(n, delivered + 3.0),
        delivered_power_w=np.full(n, delivered),
        ideal_power_w=np.full(n, ideal),
        array_voltage_v=np.full(n, 14.0),
        runtime_s=np.full(n, 2.0e-3),
        overhead_events=tuple(events),
        switch_times_s=tuple(e.time_s for e in events),
        n_groups_series=np.full(n, 10, dtype=np.int64),
    )


def make_event(time_s=1.0, energy=1.2, toggles=30) -> OverheadEvent:
    return OverheadEvent(
        time_s=time_s,
        downtime_s=0.02,
        energy_j=energy,
        toggles=toggles,
        compute_time_s=1e-3,
    )


class TestTotals:
    def test_delivered_energy(self):
        result = make_result(n=10, delivered=50.0)
        assert result.delivered_energy_j == pytest.approx(50.0 * 10 * 0.5)

    def test_overhead_sums_events(self):
        result = make_result(events=[make_event(1.0, 1.2), make_event(2.0, 0.8)])
        assert result.switch_overhead_j == pytest.approx(2.0)

    def test_energy_output_is_net(self):
        result = make_result(events=[make_event(1.0, 5.0)])
        assert result.energy_output_j == pytest.approx(
            result.delivered_energy_j - 5.0
        )

    def test_average_runtime_ms(self):
        result = make_result()
        assert result.average_runtime_ms == pytest.approx(2.0)

    def test_switch_and_toggle_counts(self):
        result = make_result(events=[make_event(toggles=30), make_event(toggles=12)])
        assert result.switch_count == 2
        assert result.total_toggles == 42

    def test_duration(self):
        result = make_result(n=10)
        assert result.duration_s == pytest.approx(5.0)

    def test_single_sample_series_raises_clearly(self):
        """Regression: a length-1 series used to escape as a bare
        ``IndexError`` from ``time_s[1]``; it must name the problem."""
        result = make_result(n=1)
        with pytest.raises(SimulationError, match="at least two"):
            result.dt_s
        with pytest.raises(SimulationError, match="at least two"):
            result.duration_s
        with pytest.raises(SimulationError, match="at least two"):
            result.delivered_energy_j


class TestSeries:
    def test_ratio_to_ideal(self):
        result = make_result(delivered=45.0, ideal=60.0)
        assert np.allclose(result.ratio_to_ideal(), 0.75)

    def test_ratio_zero_ideal_safe(self):
        result = make_result()
        result.ideal_power_w[3] = 0.0
        ratio = result.ratio_to_ideal()
        assert ratio[3] == 0.0
        assert np.all(np.isfinite(ratio))

    def test_net_power_deducts_events_at_their_step(self):
        event = make_event(time_s=1.0, energy=2.0)
        result = make_result(events=[event])
        net = result.net_power_w()
        idx = int(round(1.0 / 0.5))
        assert net[idx] == pytest.approx(result.delivered_power_w[idx] - 2.0 / 0.5)
        others = np.delete(net, idx)
        assert np.allclose(others, result.delivered_power_w[0])

    def test_net_power_indexes_relative_to_series_start(self):
        """Regression: a shifted-start trace (e.g. a windowed
        sub-trace) must bill an event at its step *within the series*,
        not at ``round(t/dt)`` — which lands on the wrong step (or the
        clamped last one) whenever ``time_s[0] != 0``."""
        start = 100.0
        event = make_event(time_s=start + 1.0, energy=2.0)
        result = make_result(events=[event], start_s=start)
        net = result.net_power_w()
        idx = int(round(1.0 / 0.5))  # third period of the series
        assert net[idx] == pytest.approx(
            result.delivered_power_w[idx] - 2.0 / 0.5
        )
        others = np.delete(net, idx)
        assert np.allclose(others, result.delivered_power_w[0])


class TestRendering:
    def test_summary_row_keys(self):
        row = summary_row(make_result())
        assert row["scheme"] == "INOR"
        assert "energy_output_j" in row
        assert "average_runtime_ms" in row

    def test_comparison_table_contains_all_schemes(self):
        results = [make_result(scheme=s) for s in ("DNOR", "INOR", "EHTR", "Baseline")]
        table = comparison_table(results)
        for scheme in ("DNOR", "INOR", "EHTR", "Baseline"):
            assert scheme in table
        assert "Energy Output (J)" in table
        assert "Average Runtime (ms)" in table

    def test_zero_switch_scheme_renders_slash(self):
        table = comparison_table([make_result(scheme="Baseline")])
        assert "/" in table
