"""Tests for repro.core.config."""

import pytest

from repro.core.config import ArrayConfiguration
from repro.errors import ConfigurationError


class TestConstruction:
    def test_basic(self):
        config = ArrayConfiguration(starts=(0, 3, 7), n_modules=10)
        assert config.n_groups == 3
        assert config.group_sizes == (3, 4, 3)

    def test_rejects_bad_starts(self):
        with pytest.raises(ConfigurationError):
            ArrayConfiguration(starts=(1, 3), n_modules=10)
        with pytest.raises(ConfigurationError):
            ArrayConfiguration(starts=(0, 3, 3), n_modules=10)
        with pytest.raises(ConfigurationError):
            ArrayConfiguration(starts=(0, 12), n_modules=10)

    def test_hashable_and_equal(self):
        a = ArrayConfiguration(starts=(0, 5), n_modules=10)
        b = ArrayConfiguration(starts=(0, 5), n_modules=10)
        assert a == b
        assert hash(a) == hash(b)

    def test_numpy_starts_normalised(self):
        import numpy as np

        config = ArrayConfiguration(starts=tuple(np.array([0, 4])), n_modules=8)
        assert all(isinstance(s, int) for s in config.starts)

    def test_ndarray_starts_canonicalised_to_tuple(self):
        """Regression: a raw ndarray ``starts`` (as the greedy partition
        builder returns) must canonicalise to a plain-int tuple, so
        ``config_a.starts == config_b.starts`` stays a *scalar* truth
        value — an ndarray surviving construction would make it an
        elementwise array and break every ``if`` built on it (DNOR's
        keep-path among them)."""
        import numpy as np

        from_array = ArrayConfiguration(
            starts=np.array([0, 3, 6], dtype=np.int64), n_modules=9
        )
        from_tuple = ArrayConfiguration(starts=(0, 3, 6), n_modules=9)
        assert isinstance(from_array.starts, tuple)
        assert all(type(s) is int for s in from_array.starts)
        # The comparison the decision layer relies on: scalar, usable in if.
        comparison = from_array.starts == from_tuple.starts
        assert comparison is True
        assert from_array == from_tuple
        assert hash(from_array) == hash(from_tuple)


class TestConstructors:
    def test_uniform_divides_evenly(self):
        config = ArrayConfiguration.uniform(100, 10)
        assert config.group_sizes == (10,) * 10

    def test_uniform_spreads_remainder(self):
        config = ArrayConfiguration.uniform(11, 3)
        assert config.group_sizes == (4, 4, 3)
        assert sum(config.group_sizes) == 11

    def test_uniform_rejects_too_many_groups(self):
        with pytest.raises(ConfigurationError):
            ArrayConfiguration.uniform(5, 6)

    def test_all_series(self):
        config = ArrayConfiguration.all_series(4)
        assert config.n_groups == 4
        assert config.group_sizes == (1, 1, 1, 1)

    def test_all_parallel(self):
        config = ArrayConfiguration.all_parallel(4)
        assert config.n_groups == 1
        assert config.group_sizes == (4,)

    def test_from_group_sizes(self):
        config = ArrayConfiguration.from_group_sizes((3, 2, 5))
        assert config.starts == (0, 3, 5)
        assert config.n_modules == 10

    def test_from_group_sizes_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            ArrayConfiguration.from_group_sizes((3, 0, 5))

    def test_paper_form_roundtrip(self):
        config = ArrayConfiguration(starts=(0, 3, 7), n_modules=10)
        assert config.paper_form() == (1, 4, 8)
        again = ArrayConfiguration.from_paper_form(config.paper_form(), 10)
        assert again == config


class TestViews:
    def test_group_slices(self):
        config = ArrayConfiguration(starts=(0, 3, 7), n_modules=10)
        slices = list(config.group_slices())
        assert slices == [slice(0, 3), slice(3, 7), slice(7, 10)]

    def test_group_of_module(self):
        config = ArrayConfiguration(starts=(0, 3, 7), n_modules=10)
        assert config.group_of_module(0) == 0
        assert config.group_of_module(2) == 0
        assert config.group_of_module(3) == 1
        assert config.group_of_module(9) == 2

    def test_group_of_module_out_of_range(self):
        config = ArrayConfiguration(starts=(0, 3), n_modules=10)
        with pytest.raises(ConfigurationError):
            config.group_of_module(10)

    def test_str_compact(self):
        config = ArrayConfiguration.uniform(100, 10)
        assert "groups=10" in str(config)


class TestComparisons:
    def test_junction_flips(self):
        a = ArrayConfiguration(starts=(0, 3), n_modules=6)
        b = ArrayConfiguration(starts=(0, 4), n_modules=6)
        assert a.junction_flips_to(b) == 2
        assert a.switch_toggles_to(b) == 6

    def test_identity_zero_flips(self):
        a = ArrayConfiguration(starts=(0, 3), n_modules=6)
        assert a.junction_flips_to(a) == 0

    def test_incompatible_sizes_raise(self):
        a = ArrayConfiguration(starts=(0,), n_modules=4)
        b = ArrayConfiguration(starts=(0,), n_modules=5)
        with pytest.raises(ConfigurationError):
            a.junction_flips_to(b)
