"""Tests for repro.core.inor — Algorithm 1."""

import numpy as np
import pytest

from repro.core.exhaustive import best_partition_brute_force
from repro.core.inor import (
    converter_aware_group_range,
    greedy_balanced_partition,
    inor,
)
from repro.errors import ConfigurationError
from repro.power.charger import TEGCharger
from repro.power.converter import BuckBoostConverter
from repro.teg.network import PartitionSet, partition_multi


class TestGreedyPartition:
    def test_single_group(self):
        starts = greedy_balanced_partition(np.ones(5), 1)
        assert starts.tolist() == [0]

    def test_all_groups(self):
        starts = greedy_balanced_partition(np.ones(5), 5)
        assert starts.tolist() == [0, 1, 2, 3, 4]

    def test_uniform_currents_equal_split(self):
        starts = greedy_balanced_partition(np.ones(12), 4)
        assert starts.tolist() == [0, 3, 6, 9]

    def test_balances_decaying_currents(self):
        """Hot end gets small groups, cold end large ones."""
        currents = np.exp(-np.linspace(0.0, 2.5, 30))
        starts = greedy_balanced_partition(currents, 5)
        sizes = np.diff(np.append(starts, 30))
        assert sizes[0] < sizes[-1]
        # Group sums within a factor ~2 of the ideal.
        ideal = currents.sum() / 5
        sums = np.add.reduceat(currents, starts)
        assert np.all(sums > 0.3 * ideal)
        assert np.all(sums < 2.5 * ideal)

    def test_every_group_nonempty(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            currents = rng.uniform(0.1, 2.0, 17)
            n_groups = int(rng.integers(1, 17))
            starts = greedy_balanced_partition(currents, n_groups)
            sizes = np.diff(np.append(starts, 17))
            assert starts.size == n_groups
            assert np.all(sizes >= 1)

    def test_rejects_too_many_groups(self):
        with pytest.raises(ConfigurationError):
            greedy_balanced_partition(np.ones(3), 4)


class TestPartitionMulti:
    """The vectorised window build must reproduce the scalar walk's cut
    indices bit-for-bit — the tentpole's correctness contract."""

    def _assert_matches_walk(self, currents, n_min, n_max):
        ps = partition_multi(currents, n_min, n_max)
        assert isinstance(ps, PartitionSet)
        assert len(ps) == n_max - n_min + 1
        for k, n_groups in enumerate(range(n_min, n_max + 1)):
            ref = greedy_balanced_partition(currents, n_groups)
            assert np.array_equal(ps[k], ref), (
                f"cut mismatch at n={n_groups}: {ps[k]} vs {ref}"
            )

    def test_full_window_random_currents(self):
        rng = np.random.default_rng(31)
        for _ in range(25):
            n = int(rng.integers(1, 60))
            currents = rng.uniform(0.0, 2.5, n)
            self._assert_matches_walk(currents, 1, n)

    def test_partial_windows(self):
        rng = np.random.default_rng(32)
        for _ in range(25):
            n = int(rng.integers(2, 50))
            currents = rng.uniform(0.05, 2.0, n)
            n_min = int(rng.integers(1, n + 1))
            n_max = int(rng.integers(n_min, n + 1))
            self._assert_matches_walk(currents, n_min, n_max)

    def test_uniform_currents_exact_ties(self):
        """Integer-exact group sums hit the walk's tie rule head on."""
        self._assert_matches_walk(np.ones(12), 1, 12)
        self._assert_matches_walk(np.full(9, 2.0), 1, 9)

    def test_uniform_non_dyadic_currents(self):
        """Uniform currents with inexact prefix sums — an isothermal
        array.  Mathematical ties everywhere, resolved by floating
        point: the regression case where a locally-accumulated error
        walk and the prefix kernel used to round ties differently."""
        self._assert_matches_walk(np.full(20, 0.46103092364913556), 1, 20)
        self._assert_matches_walk(np.full(17, 1.0 / 3.0), 1, 17)
        rng = np.random.default_rng(35)
        for _ in range(30):
            n = int(rng.integers(2, 40))
            level = float(rng.uniform(0.01, 3.0))
            self._assert_matches_walk(np.full(n, level), 1, n)

    def test_repeated_value_blocks(self):
        """Repeated current values (identical modules at shared
        temperatures) create partial-sum ties away from uniformity."""
        rng = np.random.default_rng(36)
        for _ in range(30):
            n = int(rng.integers(4, 40))
            values = rng.uniform(0.1, 2.0, max(1, n // 4))
            currents = values[rng.integers(0, values.size, n)]
            self._assert_matches_walk(currents, 1, n)

    def test_zero_current_flat_runs(self):
        """Dead modules create flat cumulative runs the walk extends
        through; the vectorised tie handling must follow."""
        rng = np.random.default_rng(33)
        for _ in range(25):
            n = int(rng.integers(3, 40))
            currents = rng.uniform(0.1, 2.0, n)
            currents[rng.uniform(size=n) < 0.4] = 0.0
            self._assert_matches_walk(currents, 1, n)

    def test_negative_currents_fall_back_to_walk(self):
        """Back-biased modules break cumulative monotonicity; the kernel
        must still return exactly the walk's cuts (via its fallback)."""
        rng = np.random.default_rng(34)
        for _ in range(25):
            n = int(rng.integers(2, 30))
            currents = rng.uniform(-1.0, 2.0, n)
            self._assert_matches_walk(currents, 1, n)

    def test_iteration_and_sizes(self):
        currents = np.linspace(2.0, 0.2, 10)
        ps = partition_multi(currents, 2, 5)
        assert ps.sizes.tolist() == [2, 3, 4, 5]
        assert [v.size for v in ps] == [2, 3, 4, 5]

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            partition_multi(np.ones(5), 0, 3)
        with pytest.raises(ConfigurationError):
            partition_multi(np.ones(5), 3, 2)
        with pytest.raises(ConfigurationError):
            partition_multi(np.ones(5), 1, 6)
        with pytest.raises(ConfigurationError):
            partition_multi(np.empty(0), 1, 1)


class TestConverterAwareRange:
    def test_no_charger_full_range(self):
        lo, hi = converter_aware_group_range(np.full(50, 2.0), 50, None)
        assert (lo, hi) == (1, 50)

    def test_window_scales_inversely_with_emf(self):
        charger = TEGCharger()
        lo_hot, hi_hot = converter_aware_group_range(np.full(100, 3.0), 100, charger)
        lo_cold, hi_cold = converter_aware_group_range(np.full(100, 1.5), 100, charger)
        assert lo_cold > lo_hot
        assert hi_cold > hi_hot

    def test_window_brackets_bus_voltage(self):
        """n * mean(E)/2 across the window must straddle ~13.8 V."""
        charger = TEGCharger()
        emf = np.full(100, 2.6)
        lo, hi = converter_aware_group_range(emf, 100, charger)
        assert lo * 2.6 / 2 < 14.5 < hi * 2.6 / 2

    def test_degenerate_emf_handled(self):
        charger = TEGCharger()
        lo, hi = converter_aware_group_range(np.zeros(10), 10, charger)
        assert 1 <= lo <= hi <= 10

    def test_range_within_bounds(self):
        charger = TEGCharger()
        lo, hi = converter_aware_group_range(np.full(4, 0.1), 4, charger)
        assert 1 <= lo <= hi <= 4

    def test_window_always_well_formed_property(self):
        """Regression property: for randomised (emf, n_modules, charger)
        the window must satisfy 1 <= n_min <= n_max <= n_modules —
        including 1- and 2-module chains, very hot arrays whose raw
        lower bound exceeds N, and negative-mean EMF."""
        rng = np.random.default_rng(41)
        chargers = (None, TEGCharger())
        for _ in range(200):
            n_modules = int(rng.integers(1, 40))
            scale = 10.0 ** rng.uniform(-4.0, 3.0)  # freezing to white hot
            emf = scale * rng.uniform(-1.0, 2.0, n_modules)
            if rng.uniform() < 0.2:
                emf = -np.abs(emf)  # negative-mean (dead/back-biased) array
            charger = chargers[int(rng.integers(0, 2))]
            lo, hi = converter_aware_group_range(emf, n_modules, charger)
            assert 1 <= lo <= hi <= n_modules, (
                f"window [{lo}, {hi}] invalid for N={n_modules}, "
                f"mean_emf={float(np.mean(emf)):.3g}"
            )

    def test_tiny_chains_hot_and_cold(self):
        """n_modules in {1, 2} at both temperature extremes."""
        charger = TEGCharger()
        for n_modules in (1, 2):
            for emf_level in (1.0e-6, 0.5, 3.0, 500.0):
                lo, hi = converter_aware_group_range(
                    np.full(n_modules, emf_level), n_modules, charger
                )
                assert 1 <= lo <= hi <= n_modules

    def test_unbounded_preferred_window(self):
        """A zero-curvature converter side yields an infinite preferred
        voltage bound; the clamp must degrade it to N, not overflow
        (int(math.ceil(inf)) used to raise OverflowError here)."""
        flat_high = TEGCharger(converter=BuckBoostConverter(high_side_coeff=0.0))
        lo, hi = converter_aware_group_range(np.full(10, 2.0), 10, flat_high)
        assert 1 <= lo <= hi <= 10
        assert hi == 10
        flat_both = TEGCharger(
            converter=BuckBoostConverter(
                low_side_coeff=0.0, high_side_coeff=0.0
            )
        )
        lo, hi = converter_aware_group_range(np.full(10, 2.0), 10, flat_both)
        assert (lo, hi) == (1, 10)

    def test_non_finite_mean_degrades_to_full_range(self):
        charger = TEGCharger()
        emf = np.array([1.0, np.nan, 2.0])
        assert converter_aware_group_range(emf, 3, charger) == (1, 3)

    def test_inor_accepts_every_hardened_window(self):
        """The windows the clamp produces must all be valid inor inputs
        (the downstream 1 <= lo <= hi <= N check must never fire)."""
        charger = TEGCharger()
        rng = np.random.default_rng(42)
        for _ in range(30):
            n_modules = int(rng.integers(1, 25))
            scale = 10.0 ** rng.uniform(-3.0, 2.0)
            emf = scale * rng.uniform(0.05, 2.0, n_modules)
            res = np.full(n_modules, 0.8)
            result = inor(emf, res, charger=charger)
            lo, hi = result.n_range
            assert 1 <= lo <= hi <= n_modules


class TestInor:
    def test_returns_valid_configuration(self, module_params):
        emf, res = module_params
        result = inor(emf, res)
        assert result.config.n_modules == emf.size
        assert sum(result.config.group_sizes) == emf.size

    def test_beats_static_grid(self, small_array, module_params):
        """INOR's raison d'etre: outperform the fixed uniform grid."""
        emf, res = module_params
        result = inor(emf, res)
        grid = small_array.configured_mpp(
            list(range(0, 20, 4))
        )
        assert result.mpp.power_w > grid.power_w

    def test_near_optimal_on_small_chain(self):
        """Within a few percent of brute force (the 'near' in INOR)."""
        rng = np.random.default_rng(17)
        for trial in range(5):
            delta_t = 15.0 + 50.0 * np.exp(-2.0 * np.linspace(0, 1, 12))
            delta_t += rng.normal(0.0, 2.0, 12)
            emf = 0.075 * delta_t
            res = np.full(12, 2.9)
            exact = best_partition_brute_force(emf, res)
            approx = inor(emf, res)
            assert approx.mpp.power_w >= 0.95 * exact.mpp.power_w

    def test_respects_explicit_range(self, module_params):
        emf, res = module_params
        result = inor(emf, res, n_min=3, n_max=5)
        assert 3 <= result.config.n_groups <= 5
        assert result.n_range == (3, 5)
        assert result.candidates_evaluated == 3

    def test_charger_ranking_prefers_bus_voltage(self, module_params):
        """With the charger, the chosen MPP voltage lands in the
        converter's preferred window."""
        emf, res = module_params
        charger = TEGCharger()
        result = inor(emf, res, charger=charger)
        lo, hi = charger.preferred_voltage_window(0.05)
        assert lo * 0.8 <= result.mpp.voltage_v <= hi * 1.2

    def test_delivered_power_consistent(self, module_params):
        emf, res = module_params
        charger = TEGCharger()
        result = inor(emf, res, charger=charger)
        assert result.delivered_power_w == pytest.approx(
            charger.delivered_at_mpp(result.mpp)
        )

    def test_no_charger_delivered_equals_raw(self, module_params):
        emf, res = module_params
        result = inor(emf, res)
        assert result.delivered_power_w == pytest.approx(result.mpp.power_w)

    def test_rejects_inconsistent_range(self, module_params):
        emf, res = module_params
        with pytest.raises(ConfigurationError):
            inor(emf, res, n_min=5, n_max=3)
        with pytest.raises(ConfigurationError):
            inor(emf, res, n_min=0, n_max=3)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ConfigurationError):
            inor(np.ones(5), np.ones(4))

    def test_linear_complexity_scaling(self):
        """Doubling N roughly doubles runtime (with fixed n-range) —
        loose sanity check of the O(N) claim."""
        import time

        def measure(n, repeats=5):
            emf = 2.0 + np.exp(-np.linspace(0, 2, n))
            res = np.full(n, 2.9)
            t0 = time.perf_counter()
            for _ in range(repeats):
                inor(emf, res, n_min=8, n_max=16)
            return (time.perf_counter() - t0) / repeats

        t_small = measure(200)
        t_large = measure(800)
        assert t_large < t_small * 16  # far below quadratic blow-up


class TestInorNegativeDeltaT:
    def test_handles_back_biased_tail(self):
        """A few negative-dT modules (preheated sinks) must not crash."""
        delta_t = np.concatenate([np.linspace(60, 5, 18), [-1.0, -2.0]])
        emf = 0.075 * delta_t
        res = np.full(20, 2.9)
        result = inor(emf, res, n_min=2, n_max=8)
        assert result.mpp.power_w > 0.0


class TestBatchedKernel:
    """kernel="batched" must be indistinguishable from the scalar loop."""

    def _profiles(self):
        rng = np.random.default_rng(23)
        for trial in range(8):
            n = int(rng.integers(4, 80))
            emf = rng.uniform(0.1, 3.0, n)
            if trial % 3 == 0:
                emf[rng.integers(0, n, size=max(1, n // 8))] *= -1.0
            yield emf, np.full(n, 0.8)

    def test_bit_identical_to_scalar_kernel(self):
        for emf, res in self._profiles():
            for charger in (None, TEGCharger()):
                batched = inor(emf, res, charger=charger, kernel="batched")
                scalar = inor(emf, res, charger=charger, kernel="scalar")
                assert batched.config == scalar.config
                assert batched.mpp == scalar.mpp  # exact, not approx
                assert batched.delivered_power_w == scalar.delivered_power_w
                assert batched.n_range == scalar.n_range
                assert (
                    batched.candidates_evaluated
                    == scalar.candidates_evaluated
                )

    def test_full_window_parity(self):
        """Window [1, N]: every group count evaluated, kernels agree."""
        emf = 2.0 * np.exp(-np.linspace(0.0, 2.2, 30))
        res = np.full(30, 0.8)
        batched = inor(emf, res, n_min=1, n_max=30, kernel="batched")
        scalar = inor(emf, res, n_min=1, n_max=30, kernel="scalar")
        assert batched.candidates_evaluated == 30
        assert batched.config == scalar.config
        assert batched.mpp == scalar.mpp

    def test_degenerate_window(self):
        """n_min == n_max: a single candidate still round-trips."""
        emf = np.linspace(2.5, 0.5, 12)
        res = np.full(12, 1.1)
        for kernel in ("batched", "scalar"):
            result = inor(emf, res, n_min=4, n_max=4, kernel=kernel)
            assert result.candidates_evaluated == 1
            assert result.config.n_groups == 4
        assert inor(emf, res, n_min=4, n_max=4, kernel="batched") == inor(
            emf, res, n_min=4, n_max=4, kernel="scalar"
        )

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            inor(np.ones(5), np.ones(5), kernel="quantum")

    def test_default_kernel_is_batched(self):
        """The hot path default; the docstring-promised speed choice."""
        emf = np.linspace(2.0, 0.5, 16)
        res = np.full(16, 0.9)
        assert inor(emf, res) == inor(emf, res, kernel="batched")
