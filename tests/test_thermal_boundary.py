"""The ThermalBoundary protocol (repro.thermal.boundary).

Pins the contracts every registered boundary must honour:

* the type-tag registry (idempotent registration, shadowing refused);
* loss-free tagged-JSON round trips, including nested wrappers;
* fingerprint tokens that separate types even at identical parameters
  (and the resulting physics-cache miss across types);
* scalar ``operating_point`` == batched ``solve_trace`` row, bitwise,
  for the new boundaries (the protocol's default scalar path);
* chunked-concat == one-shot solve, bitwise;
* physical sanity of the exhaust-gas march and the finite-coupling
  divider, plus the pinned MPP/decision shift vs ideal coupling.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelParameterError
from repro.sim.cache import PhysicsCache, physics_fingerprint
from repro.sim.ideal import ideal_power_series
from repro.sim.scenario import build_named_scenario
from repro.thermal.boundary import (
    BoundaryTraceSolution,
    ThermalBoundary,
    boundary_class,
    boundary_from_json_dict,
    boundary_to_json_dict,
    register_boundary,
    registered_boundary_types,
)
from repro.thermal.coupling import FiniteCouplingBoundary
from repro.thermal.exhaust import ExhaustGasBoundary
from repro.thermal.radiator import Radiator
from repro.vehicle.trace import default_radiator

N_MODULES = 8


def _exhaust_inputs(n=50, seed=11):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(150.0, 450.0, n),  # gas inlet
        rng.uniform(0.02, 0.15, n),  # gas flow
        rng.uniform(15.0, 40.0, n),  # ambient
        rng.uniform(0.2, 1.0, n),  # cold flow
    )


def _radiator_inputs(n=50, seed=13):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(60.0, 110.0, n),
        rng.uniform(0.05, 0.5, n),
        rng.uniform(15.0, 40.0, n),
        rng.uniform(0.2, 1.5, n),
    )


def _new_boundaries():
    return [
        (ExhaustGasBoundary(), _exhaust_inputs()),
        (FiniteCouplingBoundary(inner=default_radiator()), _radiator_inputs()),
    ]


class TestRegistry:
    def test_builtin_tags_are_registered(self):
        registry = registered_boundary_types()
        assert registry["radiator"] is Radiator
        assert registry["exhaust-gas"] is ExhaustGasBoundary
        assert registry["finite-coupling"] is FiniteCouplingBoundary

    def test_reregistering_same_class_is_noop(self):
        assert register_boundary(Radiator) is Radiator

    def test_shadowing_a_taken_tag_is_refused(self):
        class Impostor(ThermalBoundary):
            boundary_type = "radiator"

            def solve_trace(self, *args):
                raise NotImplementedError

            def params_dict(self):
                return {}

            @classmethod
            def from_params_dict(cls, params):
                return cls()

        with pytest.raises(ConfigurationError, match="already registered"):
            register_boundary(Impostor)

    def test_empty_tag_is_refused(self):
        class Unnamed(ThermalBoundary):
            def solve_trace(self, *args):
                raise NotImplementedError

            def params_dict(self):
                return {}

            @classmethod
            def from_params_dict(cls, params):
                return cls()

        with pytest.raises(ConfigurationError, match="non-empty"):
            register_boundary(Unnamed)

    def test_unknown_tag_lookup(self):
        with pytest.raises(ConfigurationError, match="unknown boundary type"):
            boundary_class("no-such-boundary")


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "boundary",
        [
            default_radiator(),
            ExhaustGasBoundary(cp_ref_j_kg_k=1050.0, ua_gas_ref_w_k=6.5),
            FiniteCouplingBoundary(inner=default_radiator()),
            FiniteCouplingBoundary(
                inner=FiniteCouplingBoundary(
                    inner=ExhaustGasBoundary(), hot_contact_w_k=3.0
                ),
                peltier_zt_per_k=0.0,
            ),
        ],
        ids=["radiator", "exhaust", "wrapped-radiator", "double-wrap"],
    )
    def test_envelope_round_trip_is_lossless(self, boundary):
        envelope = boundary_to_json_dict(boundary)
        assert set(envelope) == {"type", "params"}
        assert envelope["type"] == boundary.boundary_type
        # byte-stable through a JSON text round trip
        text = json.dumps(envelope, sort_keys=True)
        rebuilt = boundary_from_json_dict(json.loads(text))
        assert type(rebuilt) is type(boundary)
        assert (
            json.dumps(boundary_to_json_dict(rebuilt), sort_keys=True) == text
        )
        assert rebuilt.fingerprint_tokens() == boundary.fingerprint_tokens()

    def test_envelope_is_required(self):
        with pytest.raises(ConfigurationError, match="envelope"):
            boundary_from_json_dict({"params": {}})

    def test_unregistered_instance_cannot_serialise(self):
        class Rogue(ExhaustGasBoundary):
            pass  # inherits the tag but is not the registered class

        with pytest.raises(ConfigurationError, match="registered class"):
            boundary_to_json_dict(Rogue())


class TestFingerprints:
    def test_identical_params_different_tags_never_collide(self):
        class _TagA(ThermalBoundary):
            boundary_type = "test-tag-a"

            def solve_trace(self, *args):
                raise NotImplementedError

            def params_dict(self):
                return {"gain": 2.0, "nested": {"x": 1}}

            @classmethod
            def from_params_dict(cls, params):
                return cls()

        class _TagB(_TagA):
            boundary_type = "test-tag-b"

        a, b = _TagA(), _TagB()
        assert a.params_dict() == b.params_dict()
        assert a.fingerprint_tokens() != b.fingerprint_tokens()

    def test_cross_type_physics_fingerprint_misses(self):
        """Satellite 2: swapping the boundary type at equal boundary
        conditions must invalidate the physics cache."""
        scenario = build_named_scenario(
            "porter-ii", duration_s=10.0, n_modules=4
        )
        radiator = scenario.boundary
        wrapped = FiniteCouplingBoundary(inner=radiator)
        fp_radiator = physics_fingerprint(
            scenario.trace, radiator, scenario.module, scenario.n_modules
        )
        fp_wrapped = physics_fingerprint(
            scenario.trace, wrapped, scenario.module, scenario.n_modules
        )
        assert fp_radiator != fp_wrapped

        cache = PhysicsCache()
        first = cache.get_or_compute(
            scenario.trace, radiator, scenario.module, scenario.n_modules
        )
        second = cache.get_or_compute(
            scenario.trace, wrapped, scenario.module, scenario.n_modules
        )
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert first is not second
        assert not np.array_equal(
            first.true_solution.delta_t_k, second.true_solution.delta_t_k
        )

    def test_parameter_change_invalidates(self):
        base = ExhaustGasBoundary()
        tweaked = dataclasses.replace(base, ua_gas_ref_w_k=8.5)
        assert base.fingerprint_tokens() != tweaked.fingerprint_tokens()


class TestSolveContracts:
    @pytest.mark.parametrize(
        "boundary,inputs", _new_boundaries(), ids=["exhaust", "coupling"]
    )
    def test_scalar_equals_batched_row_bitwise(self, boundary, inputs):
        inlet, flow, ambient, cold = inputs
        solution = boundary.solve_trace(
            inlet, flow, ambient, cold, N_MODULES
        )
        for i in (0, 17, len(inlet) - 1):
            op = boundary.operating_point(
                float(inlet[i]),
                float(flow[i]),
                float(ambient[i]),
                float(cold[i]),
                N_MODULES,
            )
            assert np.array_equal(
                op.surface_temps_c, solution.surface_temps_c[i]
            )
            assert np.array_equal(op.sink_temps_c, solution.sink_temps_c[i])
            assert np.array_equal(op.delta_t_k, solution.delta_t_k[i])
            assert op.ambient_c == solution.ambient_c[i]

    @pytest.mark.parametrize(
        "boundary,inputs", _new_boundaries(), ids=["exhaust", "coupling"]
    )
    def test_chunked_concat_equals_one_shot(self, boundary, inputs):
        inlet, flow, ambient, cold = inputs
        whole = boundary.solve_trace(inlet, flow, ambient, cold, N_MODULES)
        parts = [
            boundary.solve_trace(
                inlet[lo : lo + 7],
                flow[lo : lo + 7],
                ambient[lo : lo + 7],
                cold[lo : lo + 7],
                N_MODULES,
            )
            for lo in range(0, len(inlet), 7)
        ]
        glued = BoundaryTraceSolution.concat(parts)
        for name, value in whole.to_arrays().items():
            assert np.array_equal(glued.to_arrays()[name], value), name

    @pytest.mark.parametrize(
        "boundary,inputs", _new_boundaries(), ids=["exhaust", "coupling"]
    )
    def test_arrays_round_trip(self, boundary, inputs):
        inlet, flow, ambient, cold = inputs
        solution = boundary.solve_trace(inlet, flow, ambient, cold, N_MODULES)
        rebuilt = boundary.solution_from_arrays(solution.to_arrays())
        assert type(rebuilt) is type(solution)
        for name, value in solution.to_arrays().items():
            assert np.array_equal(rebuilt.to_arrays()[name], value), name

    def test_exhaust_rejects_mismatched_shapes(self):
        boundary = ExhaustGasBoundary()
        with pytest.raises(ModelParameterError):
            boundary.solve_trace(
                np.ones(4), np.ones(3), np.ones(4), np.ones(4), 4
            )


class TestExhaustPhysics:
    def test_gas_cools_along_the_duct(self):
        inlet, flow, ambient, cold = _exhaust_inputs()
        solution = ExhaustGasBoundary().solve_trace(
            inlet, flow, ambient, cold, N_MODULES
        )
        # Each module extracts heat, so hot-face temperatures decrease
        # monotonically with position and stay above the sink.
        assert np.all(np.diff(solution.surface_temps_c, axis=1) < 0.0)
        assert np.all(solution.delta_t_k > 0.0)
        assert np.all(solution.sink_temps_c >= ambient[:, None])

    def test_cold_inlet_is_inactive(self):
        ambient = np.full(3, 25.0)
        solution = ExhaustGasBoundary().solve_trace(
            np.array([25.0, 25.04, 400.0]),
            np.full(3, 0.08),
            ambient,
            np.full(3, 0.5),
            4,
        )
        assert solution.active.tolist() == [False, False, True]
        # degenerate fill: surface at inlet, sink at ambient
        assert np.all(solution.surface_temps_c[0] == 25.0)
        assert np.all(solution.sink_temps_c[0] == 25.0)

    def test_temperature_dependent_properties_matter(self):
        """The cp(T)/UA(T) dependence must actually enter the solve."""
        inlet, flow, ambient, cold = _exhaust_inputs()
        hot = ExhaustGasBoundary()
        frozen = dataclasses.replace(
            hot, cp_coeff_per_k=1e-12, ua_temp_coeff_per_k=1e-12
        )
        a = hot.solve_trace(inlet, flow, ambient, cold, N_MODULES)
        b = frozen.solve_trace(inlet, flow, ambient, cold, N_MODULES)
        assert not np.allclose(a.delta_t_k, b.delta_t_k, rtol=1e-6)


class TestFiniteCoupling:
    def test_divider_shrinks_delta_t(self):
        inlet, flow, ambient, cold = _radiator_inputs()
        radiator = default_radiator()
        ideal = radiator.solve_trace(inlet, flow, ambient, cold, N_MODULES)
        coupled = FiniteCouplingBoundary(inner=radiator).solve_trace(
            inlet, flow, ambient, cold, N_MODULES
        )
        positive = ideal.delta_t_k > 0.0
        assert np.all(
            coupled.delta_t_k[positive] < ideal.delta_t_k[positive]
        )
        assert np.all(coupled.delta_t_k[positive] > 0.0)

    def test_hotter_modules_lose_a_larger_fraction(self):
        """The Peltier term makes the squeeze temperature dependent."""
        radiator = default_radiator()
        boundary = FiniteCouplingBoundary(inner=radiator)
        inlet = np.array([70.0, 105.0])
        flow = np.full(2, 0.3)
        ambient = np.full(2, 25.0)
        cold = np.full(2, 0.7)
        ideal = radiator.solve_trace(inlet, flow, ambient, cold, 4)
        coupled = boundary.solve_trace(inlet, flow, ambient, cold, 4)
        retained = coupled.delta_t_k / ideal.delta_t_k
        assert retained[1].mean() < retained[0].mean()

    def test_pinned_mpp_shift_vs_ideal_radiator(self):
        """Acceptance pin: finite coupling measurably moves the MPP
        power and the INOR reconfiguration decisions vs the ideal
        radiator at identical boundary conditions."""
        from repro.serve.session import offline_decision_log

        ideal = build_named_scenario(
            "porter-ii", duration_s=20.0, n_modules=16
        )
        coupled = dataclasses.replace(
            ideal, boundary=FiniteCouplingBoundary(inner=ideal.boundary)
        )
        p_ideal = ideal_power_series(
            ideal.trace, ideal.boundary, ideal.module, ideal.n_modules
        )
        p_coupled = ideal_power_series(
            ideal.trace, coupled.boundary, ideal.module, ideal.n_modules
        )
        ratio = p_coupled.sum() / p_ideal.sum()
        # Pinned band: the default divider keeps a meaningful but
        # clearly sub-ideal share of the harvest.
        assert 0.05 < ratio < 0.75, ratio

        log_ideal = [
            r.to_json_line()
            for r in offline_decision_log(ideal, policy="INOR")
        ]
        log_coupled = [
            r.to_json_line()
            for r in offline_decision_log(coupled, policy="INOR")
        ]
        assert len(log_ideal) == len(log_coupled)
        assert log_ideal != log_coupled


class TestNewScenarioDiskCache:
    @pytest.mark.parametrize("name", ["exhaust-gas", "finite-coupling"])
    def test_disk_round_trip_is_bit_identical(self, name, tmp_path):
        scenario = build_named_scenario(name, duration_s=12.0, n_modules=9)
        writer = PhysicsCache(cache_dir=tmp_path)
        stored = writer.get_or_compute(
            scenario.trace,
            scenario.boundary,
            scenario.module,
            scenario.n_modules,
        )
        reader = PhysicsCache(cache_dir=tmp_path)
        loaded = reader.get_or_compute(
            scenario.trace,
            scenario.boundary,
            scenario.module,
            scenario.n_modules,
        )
        assert reader.stats.disk_hits == 1 and reader.stats.misses == 0
        for attr in ("sensed_temps_c", "emf_true", "ideal_power_w"):
            assert np.array_equal(
                getattr(loaded, attr), getattr(stored, attr)
            ), attr
        for pair in ("true_solution", "sensed_solution"):
            stored_arrays = getattr(stored, pair).to_arrays()
            loaded_arrays = getattr(loaded, pair).to_arrays()
            assert loaded_arrays.keys() == stored_arrays.keys()
            for key, value in stored_arrays.items():
                assert np.array_equal(loaded_arrays[key], value), key
