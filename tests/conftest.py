"""Shared fixtures for the tegkit test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.teg.array import TEGArray
from repro.teg.datasheet import TGM_199_1_4_0_8


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def gradient_delta_t() -> np.ndarray:
    """Radiator-like exponential dT profile over 20 modules."""
    x = np.linspace(0.0, 1.0, 20)
    return 12.0 + 55.0 * np.exp(-2.2 * x)


@pytest.fixture
def small_array(gradient_delta_t: np.ndarray) -> TEGArray:
    """20-module array on the gradient profile."""
    array = TEGArray(TGM_199_1_4_0_8, gradient_delta_t.size)
    array.set_delta_t(gradient_delta_t)
    return array


@pytest.fixture
def module_params(small_array: TEGArray):
    """(emf, resistance) vectors of the small array."""
    return small_array.emf_vector(), small_array.resistance_vector()
