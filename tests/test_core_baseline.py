"""Tests for repro.core.baseline."""

import pytest

from repro.core.baseline import grid_configuration, grid_for_square_array
from repro.errors import ConfigurationError


class TestGrid:
    def test_paper_baseline_shape(self):
        config = grid_for_square_array(100)
        assert config.n_groups == 10
        assert config.group_sizes == (10,) * 10

    def test_small_square(self):
        config = grid_for_square_array(16)
        assert config.group_sizes == (4, 4, 4, 4)

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            grid_for_square_array(50)

    def test_generic_grid(self):
        config = grid_configuration(12, 3)
        assert config.group_sizes == (4, 4, 4)

    def test_generic_grid_remainder(self):
        config = grid_configuration(14, 4)
        assert sum(config.group_sizes) == 14
        assert max(config.group_sizes) - min(config.group_sizes) <= 1
