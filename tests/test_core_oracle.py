"""Tests for repro.core.oracle — DNOR with perfect foresight."""

import numpy as np
import pytest

from repro.core.oracle import OracleDNORPolicy, _OracleForecaster, make_oracle_policy
from repro.errors import ConfigurationError
from repro.sim.scenario import default_scenario


@pytest.fixture(scope="module")
def scenario():
    return default_scenario(duration_s=60.0, seed=2018, n_modules=100)


@pytest.fixture(scope="module")
def true_temps(scenario):
    """Per-step effective module temperatures the simulator produces."""
    trace = scenario.trace
    rows = np.empty((trace.n_samples, scenario.n_modules))
    for i in range(trace.n_samples):
        op = scenario.radiator.operating_point(
            coolant_inlet_c=float(trace.coolant_inlet_c[i]),
            coolant_flow_kg_s=float(trace.coolant_flow_kg_s[i]),
            ambient_c=float(trace.ambient_c[i]),
            air_flow_kg_s=float(trace.air_flow_kg_s[i]),
            n_modules=scenario.n_modules,
        )
        rows[i] = float(trace.ambient_c[i]) + op.delta_t_k
    return rows


class TestOracleForecaster:
    def test_returns_true_future(self, true_temps):
        oracle = _OracleForecaster(true_temps)
        oracle.fit(true_temps[:10])
        oracle.set_cursor(10)
        forecast = oracle.forecast(true_temps[:11], 2)
        assert np.allclose(forecast[0], true_temps[11])
        assert np.allclose(forecast[1], true_temps[12])

    def test_clamps_at_end(self, true_temps):
        oracle = _OracleForecaster(true_temps)
        oracle.fit(true_temps[:10])
        oracle.set_cursor(true_temps.shape[0] - 1)
        forecast = oracle.forecast(true_temps, 3)
        assert np.allclose(forecast, true_temps[-1])

    def test_cursor_validation(self, true_temps):
        oracle = _OracleForecaster(true_temps)
        with pytest.raises(ConfigurationError):
            oracle.set_cursor(true_temps.shape[0])

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            _OracleForecaster(np.ones(5))


class TestOraclePolicy:
    def test_requires_oracle_planner(self, scenario, true_temps):
        with pytest.raises(ConfigurationError):
            OracleDNORPolicy(
                scenario.make_dnor_policy().planner, true_temps
            )

    def test_runs_closed_loop(self, scenario, true_temps):
        simulator = scenario.make_simulator()
        policy = make_oracle_policy(scenario, true_temps)
        result = simulator.run(policy, scenario.make_charger())
        assert result.energy_output_j > 0.0
        assert result.scheme == "OracleDNOR"

    def test_oracle_bounds_mlr_dnor(self, scenario, true_temps):
        """Perfect foresight cannot lose much to MLR-DNOR — and if MLR
        is any good, it cannot lose much to the oracle either.

        Sensing noise and the clipped oracle history introduce small
        asymmetries, so the comparison carries a 2% band rather than a
        strict inequality.
        """
        simulator = scenario.make_simulator()
        oracle = simulator.run(
            make_oracle_policy(scenario, true_temps), scenario.make_charger()
        )
        mlr = simulator.run(scenario.make_dnor_policy(), scenario.make_charger())
        ratio = mlr.energy_output_j / oracle.energy_output_j
        assert 0.98 < ratio < 1.02

    def test_reset_allows_reuse(self, scenario, true_temps):
        simulator = scenario.make_simulator()
        policy = make_oracle_policy(scenario, true_temps)
        first = simulator.run(policy, scenario.make_charger())
        second = simulator.run(policy, scenario.make_charger())
        # Delivered power is bit-identical; the overhead bill includes
        # measured wall-clock compute time, so net energy may jitter at
        # the micro-joule scale between runs.
        assert np.allclose(first.delivered_power_w, second.delivered_power_w)
        assert first.switch_count == second.switch_count
        assert first.energy_output_j == pytest.approx(
            second.energy_output_j, rel=1e-3
        )
