"""Tests for the switch-fault model and fault-aware INOR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fault_aware import fault_aware_inor
from repro.core.inor import inor
from repro.errors import ConfigurationError
from repro.power.charger import TEGCharger
from repro.teg.faults import FaultMask


def radiator_field(n=30, seed=0):
    rng = np.random.default_rng(seed)
    delta_t = 12.0 + 55.0 * np.exp(-2.2 * np.linspace(0, 1, n))
    delta_t += rng.normal(0.0, 1.0, n)
    return 0.075 * delta_t, np.full(n, 2.9)


class TestFaultMask:
    def test_healthy_mask(self):
        mask = FaultMask.healthy(10)
        assert mask.n_faults == 0
        assert mask.is_feasible(tuple(range(10)))
        assert mask.is_feasible((0,))

    def test_stuck_series_forces_boundary(self):
        mask = FaultMask(n_modules=10, stuck_series=frozenset({4}))
        assert mask.forced_boundaries() == (5,)
        assert mask.is_feasible((0, 5))
        assert not mask.is_feasible((0,))

    def test_stuck_parallel_forbids_boundary(self):
        mask = FaultMask(n_modules=10, stuck_parallel=frozenset({4}))
        assert mask.forbidden_boundaries() == (5,)
        assert not mask.is_feasible((0, 5))
        assert mask.is_feasible((0, 4, 6))

    def test_repair_adds_and_removes(self):
        mask = FaultMask(
            n_modules=10,
            stuck_series=frozenset({2}),
            stuck_parallel=frozenset({6}),
        )
        repaired = mask.repair((0, 7))
        assert mask.is_feasible(repaired)
        assert 3 in repaired      # forced
        assert 7 not in repaired  # forbidden

    def test_conflicting_fault_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultMask(
                n_modules=10,
                stuck_series=frozenset({3}),
                stuck_parallel=frozenset({3}),
            )

    def test_out_of_range_junction_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultMask(n_modules=10, stuck_series=frozenset({9}))

    def test_random_mask_reproducible(self):
        a = FaultMask.random(20, 2, 3, seed=5)
        b = FaultMask.random(20, 2, 3, seed=5)
        assert a == b
        assert a.n_faults == 5

    def test_random_mask_too_many_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultMask.random(5, 3, 2, seed=0)


class TestFaultAwareInor:
    def test_healthy_mask_near_plain_inor(self):
        emf, res = radiator_field()
        charger = TEGCharger()
        plain = inor(emf, res, charger=charger)
        aware = fault_aware_inor(
            emf, res, FaultMask.healthy(emf.size), charger=charger
        )
        assert aware.delivered_power_w >= 0.97 * plain.delivered_power_w

    def test_result_always_feasible(self):
        emf, res = radiator_field()
        charger = TEGCharger()
        for seed in range(6):
            mask = FaultMask.random(emf.size, 2, 3, seed=seed)
            result = fault_aware_inor(emf, res, mask, charger=charger)
            assert mask.is_feasible(result.config.starts)

    def test_plain_inor_infeasible_under_adversarial_faults(self):
        """The motivation: unconstrained INOR ignores stuck junctions.

        Build the mask *against* plain INOR's choice — forbid one of
        its boundaries — and check the fault-aware variant still finds
        a feasible, productive configuration."""
        emf, res = radiator_field()
        charger = TEGCharger()
        plain = inor(emf, res, charger=charger)
        forbidden_boundary = plain.config.starts[1]
        mask = FaultMask(
            n_modules=emf.size,
            stuck_parallel=frozenset({forbidden_boundary - 1}),
        )
        assert not mask.is_feasible(plain.config.starts)
        aware = fault_aware_inor(emf, res, mask, charger=charger)
        assert mask.is_feasible(aware.config.starts)
        assert aware.delivered_power_w > 0.9 * plain.delivered_power_w

    def test_graceful_degradation(self):
        """A handful of stuck switches costs percent, not halves."""
        emf, res = radiator_field()
        charger = TEGCharger()
        healthy = fault_aware_inor(
            emf, res, FaultMask.healthy(emf.size), charger=charger
        )
        worst = min(
            fault_aware_inor(
                emf, res, FaultMask.random(emf.size, 1, 2, seed=s), charger=charger
            ).delivered_power_w
            for s in range(8)
        )
        assert worst > 0.80 * healthy.delivered_power_w

    def test_mask_size_mismatch_rejected(self):
        emf, res = radiator_field()
        with pytest.raises(ConfigurationError):
            fault_aware_inor(emf, res, FaultMask.healthy(5))

    def test_all_parallel_stuck_chain(self):
        """Every junction stuck parallel: only the single group remains."""
        emf, res = radiator_field(10)
        mask = FaultMask(
            n_modules=10, stuck_parallel=frozenset(range(9))
        )
        result = fault_aware_inor(emf, res, mask)
        assert result.config.starts == (0,)

    def test_all_series_stuck_chain(self):
        """Every junction stuck series: only the all-series chain remains."""
        emf, res = radiator_field(10)
        mask = FaultMask(n_modules=10, stuck_series=frozenset(range(9)))
        result = fault_aware_inor(emf, res, mask)
        assert result.config.starts == tuple(range(10))


class TestFaultProperties:
    @given(
        st.integers(min_value=6, max_value=24),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_feasibility_invariant(self, n, n_series, n_parallel, seed):
        """fault_aware_inor output is feasible for any random mask."""
        if n_series + n_parallel > n - 1:
            return
        emf, res = radiator_field(n, seed=seed)
        mask = FaultMask.random(n, n_series, n_parallel, seed=seed)
        result = fault_aware_inor(emf, res, mask, charger=TEGCharger())
        assert mask.is_feasible(result.config.starts)
        assert result.mpp.power_w > 0.0
