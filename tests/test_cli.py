"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_prints_paper_and_catalog(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "DATE 2018" in out
        assert "TGM-199-1.4-0.8" in out


class TestReconfigure:
    def test_default_run(self, capsys):
        assert main(["reconfigure", "--modules", "24"]) == 0
        out = capsys.readouterr().out
        assert "paper form:" in out
        assert "delivered:" in out

    def test_unknown_module_errors(self):
        with pytest.raises(Exception):
            main(["reconfigure", "--module", "bogus"])


class TestSimulate:
    def test_short_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--duration",
                "20",
                "--seed",
                "5",
                "--schemes",
                "INOR,Baseline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Energy Output (J)" in out
        assert "INOR" in out and "Baseline" in out

    def test_unknown_scheme_exits_nonzero(self, capsys):
        code = main(
            ["simulate", "--duration", "20", "--schemes", "MAGIC"]
        )
        assert code == 2
        assert "unknown schemes" in capsys.readouterr().err

    def test_save_trace(self, tmp_path, capsys):
        target = tmp_path / "trace.csv"
        code = main(
            [
                "simulate",
                "--duration",
                "20",
                "--schemes",
                "Baseline",
                "--save-trace",
                str(target),
            ]
        )
        assert code == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert header.startswith("time_s,coolant_inlet_c")


class TestBatch:
    def test_list_scenarios(self, capsys):
        assert main(["batch", "--list"]) == 0
        out = capsys.readouterr().out
        assert "porter-ii" in out
        assert "industrial-boiler" in out
        # each scenario advertises its boundary-type/module-model pair
        assert "[radiator/single-material]" in out
        assert "[exhaust-gas/single-material]" in out
        assert "[finite-coupling/single-material]" in out
        assert "[exhaust-gas/segmented]" in out

    def test_batch_run_serial(self, tmp_path, capsys):
        target = tmp_path / "summary.json"
        code = main(
            [
                "batch",
                "--scenarios",
                "porter-ii",
                "--schemes",
                "INOR,Baseline",
                "--duration",
                "20",
                "--executor",
                "serial",
                "--json",
                str(target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Energy Output (J)" in out
        assert target.exists()
        assert "energy_output_j" in target.read_text()

    def test_unknown_scenario_exits_nonzero(self, capsys):
        code = main(["batch", "--scenarios", "warp-core"])
        assert code == 2
        assert "unknown scenarios" in capsys.readouterr().err


class TestShard:
    GRID = [
        "--scenarios", "porter-ii",
        "--schemes", "INOR,Baseline",
        "--duration", "15",
        "--modules", "16",
    ]

    def test_init_work_status_collate_round_trip(self, tmp_path, capsys):
        shard = str(tmp_path / "shard")
        assert main(["shard", "init", "--dir", shard] + self.GRID) == 0
        out = capsys.readouterr().out
        assert "2 cases" in out and "2 pending" in out

        assert main(["shard", "status", "--dir", shard]) == 0
        assert "0/2 done" in capsys.readouterr().out

        # Collating an unfinished shard fails loudly.
        assert main(["shard", "collate", "--dir", shard]) == 1
        assert "not complete" in capsys.readouterr().err

        assert main(["shard", "work", "--dir", shard]) == 0
        assert "finished 2 case(s)" in capsys.readouterr().out

        summary = tmp_path / "summary.json"
        code = main(
            ["shard", "collate", "--dir", shard, "--json", str(summary)]
        )
        assert code == 0
        assert "Energy Output (J)" in capsys.readouterr().out
        assert "energy_output_j" in summary.read_text()

    def test_collation_json_diffs_clean_against_serial_batch(
        self, tmp_path, capsys
    ):
        """The CI smoke contract: shard collate --json equals
        batch --json --json-deterministic bytes-for-bytes."""
        shard = str(tmp_path / "shard")
        shard_json = tmp_path / "shard.json"
        serial_json = tmp_path / "serial.json"
        assert main(["shard", "init", "--dir", shard] + self.GRID) == 0
        assert main(["shard", "work", "--dir", shard]) == 0
        assert (
            main(
                ["shard", "collate", "--dir", shard, "--json", str(shard_json)]
            )
            == 0
        )
        assert (
            main(
                ["batch", "--executor", "serial", "--json", str(serial_json),
                 "--json-deterministic"] + self.GRID
            )
            == 0
        )
        capsys.readouterr()
        assert shard_json.read_text() == serial_json.read_text()

    def test_batch_shard_executor(self, capsys):
        code = main(
            ["batch", "--executor", "shard", "--workers", "2"] + self.GRID
        )
        assert code == 0
        assert "Energy Output (J)" in capsys.readouterr().out

    def test_init_unknown_scenario_exits_nonzero(self, tmp_path, capsys):
        code = main(
            ["shard", "init", "--dir", str(tmp_path), "--scenarios", "warp"]
        )
        assert code == 2
        assert "unknown scenarios" in capsys.readouterr().err

    def test_work_on_missing_shard_exits_cleanly(self, tmp_path, capsys):
        code = main(["shard", "work", "--dir", str(tmp_path / "nope")])
        assert code == 1
        assert "not a shard directory" in capsys.readouterr().err

    def test_status_on_missing_shard_exits_cleanly(self, tmp_path, capsys):
        code = main(["shard", "status", "--dir", str(tmp_path / "nope")])
        assert code == 1
        assert "not a shard directory" in capsys.readouterr().err


class TestSweepPeriod:
    def test_sweep_runs(self, capsys):
        code = main(
            [
                "sweep-period",
                "--duration",
                "30",
                "--periods",
                "0.5,4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best" in out
        assert "DNOR on the same trace" in out


class TestBatchCacheDir:
    def test_batch_with_cache_dir_reports_stats(self, tmp_path, capsys):
        store = tmp_path / "phys"
        args = [
            "batch",
            "--scenarios", "porter-ii",
            "--schemes", "INOR,Baseline",
            "--duration", "15",
            "--executor", "serial",
            "--cache-dir", str(store),
        ]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "physics cache:" in err
        assert store.is_dir() and list(store.glob("*.npz"))
        # Second run hits the warm store instead of re-solving.
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "1 disk" in err and "0 solves" in err


class TestCacheCommand:
    def test_warm_then_info_then_clear(self, tmp_path, capsys):
        store = str(tmp_path / "phys")
        assert main(
            [
                "cache", "--dir", store,
                "--warm", "porter-ii",
                "--duration", "15", "--modules", "16",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "1 solved" in out and "porter-ii" in out

        assert main(["cache", "--dir", store]) == 0
        out = capsys.readouterr().out
        assert "1 artifact(s)" in out and "KiB" in out

        assert main(["cache", "--dir", store, "--clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 artifact(s)" in out
        assert main(["cache", "--dir", store]) == 0
        assert "0 artifact(s)" in capsys.readouterr().out

    def test_warm_unknown_scenario_exits_nonzero(self, tmp_path, capsys):
        code = main(
            ["cache", "--dir", str(tmp_path), "--warm", "warp-core"]
        )
        assert code == 2
        assert "unknown scenarios" in capsys.readouterr().err


class TestShardStatusWatch:
    GRID = [
        "--scenarios", "porter-ii",
        "--schemes", "INOR,Baseline",
        "--duration", "15",
        "--modules", "16",
    ]

    def test_watch_exits_promptly_on_complete_shard(self, tmp_path, capsys):
        shard = str(tmp_path / "shard")
        assert main(["shard", "init", "--dir", shard] + self.GRID) == 0
        assert main(["shard", "work", "--dir", shard]) == 0
        capsys.readouterr()
        code = main(
            ["shard", "status", "--dir", shard, "--watch",
             "--interval", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2/2 done" in out

    def test_init_records_lease_ttl(self, tmp_path, capsys):
        shard = str(tmp_path / "shard")
        code = main(
            ["shard", "init", "--dir", shard, "--lease-ttl", "45"]
            + self.GRID
        )
        assert code == 0
        import json as json_module
        from pathlib import Path

        manifest = json_module.loads(
            (Path(shard) / "manifest.json").read_text()
        )
        assert manifest["lease_ttl_s"] == 45.0


class TestServe:
    DEMO = [
        "--scenario", "porter-ii",
        "--sessions", "2",
        "--duration", "10",
        "--modules", "9",
    ]

    def test_demo_with_offline_check(self, tmp_path, capsys):
        code = main(
            ["serve", "--decisions-dir", str(tmp_path / "logs"),
             "--chunk", "8", "--offline-check"] + self.DEMO
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 concurrent session(s)" in out
        assert "byte-identical" in out
        assert len(list((tmp_path / "logs").glob("*.jsonl"))) == 2

    def test_offline_mode_writes_matching_logs(self, tmp_path, capsys):
        online = tmp_path / "online"
        offline = tmp_path / "offline"
        assert (
            main(
                ["serve", "--decisions-dir", str(online), "--chunk", "8"]
                + self.DEMO
            )
            == 0
        )
        assert (
            main(
                ["serve", "--offline", "--decisions-dir", str(offline)]
                + self.DEMO
            )
            == 0
        )
        capsys.readouterr()
        names = sorted(p.name for p in online.glob("*.jsonl"))
        assert names == sorted(p.name for p in offline.glob("*.jsonl"))
        for name in names:
            assert (online / name).read_bytes() == (
                offline / name
            ).read_bytes()
