"""Tests for repro.thermal.heat_exchanger (effectiveness-NTU)."""

import math

import pytest

from repro.errors import ModelParameterError
from repro.thermal.coolant import AIR, ETHYLENE_GLYCOL_50_50, FluidStream
from repro.thermal.heat_exchanger import (
    CrossFlowHeatExchanger,
    UAModel,
    effectiveness_crossflow_both_unmixed,
    effectiveness_crossflow_cmax_mixed,
)


@pytest.fixture
def ua_model() -> UAModel:
    return UAModel(
        hot_conductance_ref_w_k=5000.0,
        cold_conductance_ref_w_k=2200.0,
        hot_ref_flow_kg_s=0.30,
        cold_ref_flow_kg_s=0.70,
    )


class TestEffectivenessRelations:
    def test_zero_ntu_gives_zero(self):
        assert effectiveness_crossflow_both_unmixed(0.0, 0.5) == 0.0
        assert effectiveness_crossflow_cmax_mixed(0.0, 0.5) == 0.0

    def test_single_stream_limit(self):
        # C_r -> 0 reduces to 1 - exp(-NTU) for both relations.
        ntu = 1.7
        expected = 1.0 - math.exp(-ntu)
        assert effectiveness_crossflow_both_unmixed(ntu, 0.0) == pytest.approx(expected)
        assert effectiveness_crossflow_cmax_mixed(ntu, 0.0) == pytest.approx(expected)

    def test_monotonic_in_ntu(self):
        values = [effectiveness_crossflow_both_unmixed(ntu, 0.6) for ntu in (0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values)

    def test_decreasing_in_c_ratio(self):
        # Balanced exchangers are the hardest case.
        lo = effectiveness_crossflow_both_unmixed(2.0, 0.2)
        hi = effectiveness_crossflow_both_unmixed(2.0, 1.0)
        assert lo > hi

    def test_bounded_by_one(self):
        for ntu in (0.1, 1.0, 5.0, 20.0):
            for cr in (0.0, 0.3, 1.0):
                assert 0.0 <= effectiveness_crossflow_both_unmixed(ntu, cr) < 1.0

    def test_textbook_value(self):
        # Bergman Fig. 11.14: NTU=1, Cr=1, both unmixed -> eps ~ 0.47.
        assert effectiveness_crossflow_both_unmixed(1.0, 1.0) == pytest.approx(0.47, abs=0.02)

    def test_rejects_negative_ntu(self):
        with pytest.raises(ModelParameterError):
            effectiveness_crossflow_both_unmixed(-0.1, 0.5)

    def test_rejects_bad_c_ratio(self):
        with pytest.raises(ModelParameterError):
            effectiveness_crossflow_both_unmixed(1.0, 1.2)


class TestUAModel:
    def test_reference_point(self, ua_model):
        ua = ua_model.ua(0.30, 0.70)
        expected = 1.0 / (1.0 / 5000.0 + 1.0 / 2200.0)
        assert ua == pytest.approx(expected)

    def test_increases_with_flow(self, ua_model):
        assert ua_model.ua(0.6, 0.7) > ua_model.ua(0.3, 0.7)
        assert ua_model.ua(0.3, 1.4) > ua_model.ua(0.3, 0.7)

    def test_flow_exponent_scaling(self, ua_model):
        # With the cold side made non-limiting, UA ~ hot_flow^0.8.
        big_cold = UAModel(5000.0, 1e9, 0.30, 0.70)
        ratio = big_cold.ua(0.6, 0.70) / big_cold.ua(0.3, 0.70)
        assert ratio == pytest.approx(2.0 ** 0.8, rel=1e-4)

    def test_wall_resistance_reduces_ua(self):
        without = UAModel(5000.0, 2200.0, 0.3, 0.7, wall_resistance_k_w=0.0)
        with_wall = UAModel(5000.0, 2200.0, 0.3, 0.7, wall_resistance_k_w=1e-3)
        assert with_wall.ua(0.3, 0.7) < without.ua(0.3, 0.7)

    def test_rejects_zero_flow(self, ua_model):
        with pytest.raises(ModelParameterError):
            ua_model.ua(0.0, 0.7)


class TestCrossFlowSolve:
    def make_streams(self, hot_t=92.0, hot_flow=0.3, cold_t=25.0, cold_flow=0.7):
        hot = FluidStream(ETHYLENE_GLYCOL_50_50, hot_flow, hot_t)
        cold = FluidStream(AIR, cold_flow, cold_t)
        return hot, cold

    def test_energy_balance(self, ua_model):
        hx = CrossFlowHeatExchanger(ua_model)
        hot, cold = self.make_streams()
        sol = hx.solve(hot, cold)
        hot_loss = sol.hot_capacity_w_k * (hot.inlet_temp_c - sol.hot_outlet_c)
        cold_gain = sol.cold_capacity_w_k * (sol.cold_outlet_c - cold.inlet_temp_c)
        assert hot_loss == pytest.approx(sol.duty_w)
        assert cold_gain == pytest.approx(sol.duty_w)

    def test_duty_positive_and_bounded(self, ua_model):
        hx = CrossFlowHeatExchanger(ua_model)
        hot, cold = self.make_streams()
        sol = hx.solve(hot, cold)
        c_min = min(sol.hot_capacity_w_k, sol.cold_capacity_w_k)
        q_max = c_min * (hot.inlet_temp_c - cold.inlet_temp_c)
        assert 0.0 < sol.duty_w < q_max

    def test_outlets_between_inlets(self, ua_model):
        hx = CrossFlowHeatExchanger(ua_model)
        hot, cold = self.make_streams()
        sol = hx.solve(hot, cold)
        assert cold.inlet_temp_c < sol.hot_outlet_c < hot.inlet_temp_c
        assert cold.inlet_temp_c < sol.cold_outlet_c < hot.inlet_temp_c

    def test_cold_mean_definition(self, ua_model):
        hx = CrossFlowHeatExchanger(ua_model)
        hot, cold = self.make_streams()
        sol = hx.solve(hot, cold)
        assert sol.cold_mean_c == pytest.approx(
            (cold.inlet_temp_c + sol.cold_outlet_c) / 2.0
        )

    def test_truck_scale_duty(self, ua_model):
        """Highway operating point rejects tens of kW, as a real radiator."""
        hx = CrossFlowHeatExchanger(ua_model)
        hot, cold = self.make_streams(hot_t=92.0, hot_flow=0.35, cold_flow=1.2)
        sol = hx.solve(hot, cold)
        assert 15e3 < sol.duty_w < 60e3

    def test_rejects_inverted_temperatures(self, ua_model):
        hx = CrossFlowHeatExchanger(ua_model)
        hot, cold = self.make_streams(hot_t=20.0, cold_t=25.0)
        with pytest.raises(ModelParameterError):
            hx.solve(hot, cold)

    def test_mixed_variant_lower_effectiveness(self, ua_model):
        hot, cold = self.make_streams()
        both = CrossFlowHeatExchanger(ua_model, both_unmixed=True).solve(hot, cold)
        mixed = CrossFlowHeatExchanger(ua_model, both_unmixed=False).solve(hot, cold)
        assert mixed.effectiveness <= both.effectiveness + 1e-9
