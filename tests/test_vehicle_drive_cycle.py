"""Tests for repro.vehicle.drive_cycle."""

import numpy as np
import pytest

from repro.errors import ModelParameterError
from repro.vehicle.drive_cycle import (
    DriveCycle,
    synthetic_highway,
    synthetic_mixed,
    synthetic_urban,
)


class TestDriveCycleType:
    def test_duration(self):
        cycle = DriveCycle(np.array([0.0, 5.0, 10.0]), np.array([0.0, 10.0, 0.0]))
        assert cycle.duration_s == 10.0

    def test_speed_interpolation(self):
        cycle = DriveCycle(np.array([0.0, 10.0]), np.array([0.0, 20.0]))
        assert cycle.speed_at(5.0) == pytest.approx(10.0)

    def test_speed_clamped_outside_range(self):
        cycle = DriveCycle(np.array([0.0, 10.0]), np.array([5.0, 20.0]))
        assert cycle.speed_at(-1.0) == pytest.approx(5.0)
        assert cycle.speed_at(99.0) == pytest.approx(20.0)

    def test_acceleration_sign(self):
        cycle = DriveCycle(np.array([0.0, 10.0]), np.array([0.0, 20.0]))
        assert cycle.acceleration_at(5.0) == pytest.approx(2.0)

    def test_mean_speed(self):
        cycle = DriveCycle(np.array([0.0, 10.0]), np.array([0.0, 20.0]))
        assert cycle.mean_speed_mps() == pytest.approx(10.0)

    def test_rejects_negative_speed(self):
        with pytest.raises(ModelParameterError):
            DriveCycle(np.array([0.0, 1.0]), np.array([0.0, -1.0]))

    def test_rejects_nonmonotonic_time(self):
        with pytest.raises(ModelParameterError):
            DriveCycle(np.array([0.0, 2.0, 1.0]), np.array([0.0, 1.0, 2.0]))

    def test_rejects_time_not_starting_at_zero(self):
        with pytest.raises(ModelParameterError):
            DriveCycle(np.array([1.0, 2.0]), np.array([0.0, 1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ModelParameterError):
            DriveCycle(np.array([0.0, 1.0]), np.array([0.0, 1.0, 2.0]))


class TestGenerators:
    @pytest.mark.parametrize(
        "factory", [synthetic_urban, synthetic_highway, synthetic_mixed]
    )
    def test_exact_duration(self, factory):
        cycle = factory(duration_s=200.0, seed=3)
        assert cycle.duration_s == pytest.approx(200.0)

    @pytest.mark.parametrize(
        "factory", [synthetic_urban, synthetic_highway, synthetic_mixed]
    )
    def test_deterministic_given_seed(self, factory):
        a = factory(duration_s=150.0, seed=11)
        b = factory(duration_s=150.0, seed=11)
        assert np.array_equal(a.time_s, b.time_s)
        assert np.array_equal(a.speed_mps, b.speed_mps)

    @pytest.mark.parametrize(
        "factory", [synthetic_urban, synthetic_highway, synthetic_mixed]
    )
    def test_seeds_differ(self, factory):
        a = factory(duration_s=150.0, seed=1)
        b = factory(duration_s=150.0, seed=2)
        assert not (
            a.time_s.shape == b.time_s.shape and np.allclose(a.speed_mps, b.speed_mps)
        )

    def test_urban_slower_than_highway(self):
        urban = synthetic_urban(duration_s=300.0, seed=5)
        highway = synthetic_highway(duration_s=300.0, seed=5)
        assert urban.mean_speed_mps() < highway.mean_speed_mps()

    def test_urban_contains_stops(self):
        cycle = synthetic_urban(duration_s=300.0, seed=5)
        assert (cycle.speed_mps == 0.0).any()

    def test_mixed_has_both_regimes(self):
        cycle = synthetic_mixed(duration_s=800.0, seed=2018)
        assert cycle.speed_mps.min() == 0.0
        assert cycle.speed_mps.max() > 20.0

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ModelParameterError):
            synthetic_mixed(duration_s=0.0)
