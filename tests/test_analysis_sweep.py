"""Tests for repro.analysis.sweep."""

import pytest

from repro.analysis.sweep import sweep_scenario
from repro.errors import SimulationError
from repro.sim.scenario import default_scenario


def factory(tp_seconds: float):
    return default_scenario(
        duration_s=20.0, seed=4, n_modules=25, tp_seconds=tp_seconds
    )


class TestSweepScenario:
    def test_point_per_value(self):
        points = sweep_scenario(factory, values=(1.0, 2.0), schemes=("Baseline",))
        assert [p.value for p in points] == [1.0, 2.0]

    def test_schemes_present(self):
        points = sweep_scenario(
            factory, values=(1.0,), schemes=("DNOR", "Baseline")
        )
        assert set(points[0].results) == {"DNOR", "Baseline"}

    def test_row_exposes_summary(self):
        points = sweep_scenario(factory, values=(1.0,), schemes=("Baseline",))
        row = points[0].row("Baseline")
        assert row["scheme"] == "Baseline"
        assert "energy_output_j" in row

    def test_label_recorded(self):
        points = sweep_scenario(
            factory, values=(1.0,), schemes=("Baseline",), label="tp"
        )
        assert points[0].label == "tp"

    def test_empty_values_rejected(self):
        with pytest.raises(SimulationError):
            sweep_scenario(factory, values=())

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SimulationError, match="MAGIC"):
            sweep_scenario(factory, values=(1.0,), schemes=("MAGIC",))
