"""Tests for repro.analysis.stability."""

import pytest

from repro.analysis.stability import configuration_stats, group_count_series
from repro.core.config import ArrayConfiguration
from repro.errors import ConfigurationError


def cfg(*starts, n=12):
    return ArrayConfiguration(starts=tuple(starts), n_modules=n)


class TestConfigurationStats:
    def test_static_sequence(self):
        stats = configuration_stats([cfg(0, 4)] * 5)
        assert stats.n_changes == 0
        assert stats.change_rate == 0.0
        assert stats.total_junction_flips == 0
        assert stats.mean_flips_per_change == 0.0

    def test_alternating_sequence(self):
        a, b = cfg(0, 4), cfg(0, 6)
        stats = configuration_stats([a, b, a, b])
        assert stats.n_changes == 3
        assert stats.change_rate == pytest.approx(1.0)
        # Each a<->b change flips 2 junctions.
        assert stats.total_junction_flips == 6
        assert stats.mean_flips_per_change == pytest.approx(2.0)

    def test_histogram_and_dominant(self):
        stats = configuration_stats([cfg(0, 4), cfg(0, 4), cfg(0, 3, 8)])
        assert stats.group_count_histogram == {2: 2, 3: 1}
        assert stats.dominant_group_count == 2

    def test_single_config(self):
        stats = configuration_stats([cfg(0, 4)])
        assert stats.n_configs == 1
        assert stats.change_rate == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            configuration_stats([])

    def test_mixed_chain_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            configuration_stats([cfg(0, 4, n=12), cfg(0, 4, n=10)])


class TestGroupCountSeries:
    def test_series(self):
        idx, counts = group_count_series([cfg(0, 4), cfg(0, 3, 8)])
        assert idx.tolist() == [0, 1]
        assert counts.tolist() == [2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            group_count_series([])
