"""Tests for repro.teg.switches — the Fig. 4 switch fabric."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.teg.switches import (
    SWITCHES_PER_JUNCTION_FLIP,
    JunctionState,
    SwitchFabric,
    count_junction_flips,
    count_switch_toggles,
    junction_states_to_starts,
    starts_to_junction_states,
)


class TestJunctionStates:
    def test_all_series(self):
        states = starts_to_junction_states(range(4), 4)
        assert all(s is JunctionState.SERIES for s in states)

    def test_all_parallel(self):
        states = starts_to_junction_states([0], 4)
        assert all(s is JunctionState.PARALLEL for s in states)

    def test_mixed(self):
        # Groups [0,1] and [2,3]: junction 1 (between modules 1 and 2)
        # is the only series junction.
        states = starts_to_junction_states([0, 2], 4)
        assert states == [
            JunctionState.PARALLEL,
            JunctionState.SERIES,
            JunctionState.PARALLEL,
        ]

    def test_junction_count(self):
        assert len(starts_to_junction_states([0], 7)) == 6

    def test_roundtrip(self):
        for starts in [(0,), (0, 1, 2, 3), (0, 2, 5), (0, 4)]:
            states = starts_to_junction_states(starts, 6)
            assert junction_states_to_starts(states) == starts


class TestToggleCounting:
    def test_identical_configs_zero(self):
        assert count_switch_toggles([0, 3], [0, 3], 6) == 0

    def test_single_junction_flip(self):
        # [0,3] -> [0,4]: junction at boundary 3 opens, 4 closes: 2 flips.
        assert count_junction_flips([0, 3], [0, 4], 6) == 2

    def test_three_switches_per_flip(self):
        assert count_switch_toggles([0, 3], [0, 4], 6) == 2 * SWITCHES_PER_JUNCTION_FLIP

    def test_series_to_parallel_flips_everything(self):
        n = 8
        assert count_junction_flips(range(n), [0], n) == n - 1

    def test_symmetry(self):
        a, b = [0, 2, 5], [0, 3, 6]
        assert count_switch_toggles(a, b, 8) == count_switch_toggles(b, a, 8)


class TestSwitchFabric:
    def test_initial_state_all_series(self):
        fabric = SwitchFabric(5)
        assert fabric.starts == (0, 1, 2, 3, 4)
        assert fabric.n_junctions == 4

    def test_custom_initial(self):
        fabric = SwitchFabric(5, initial_starts=[0, 2])
        assert fabric.starts == (0, 2)

    def test_apply_updates_state(self):
        fabric = SwitchFabric(5)
        fabric.apply([0, 2])
        assert fabric.starts == (0, 2)

    def test_apply_returns_toggles(self):
        fabric = SwitchFabric(5)
        toggles = fabric.apply([0, 2])
        # From all-series to [0,2]: junctions 0,2,3 flip.
        assert toggles == 3 * SWITCHES_PER_JUNCTION_FLIP

    def test_apply_same_config_is_free(self):
        fabric = SwitchFabric(5, initial_starts=[0, 2])
        assert fabric.apply([0, 2]) == 0
        assert fabric.reconfiguration_count == 0

    def test_counters_accumulate(self):
        fabric = SwitchFabric(5)
        t1 = fabric.apply([0, 2])
        t2 = fabric.apply([0, 3])
        assert fabric.total_toggles == t1 + t2
        assert fabric.reconfiguration_count == 2

    def test_reset_counters(self):
        fabric = SwitchFabric(5)
        fabric.apply([0, 2])
        fabric.reset_counters()
        assert fabric.total_toggles == 0
        assert fabric.reconfiguration_count == 0
        # State itself is preserved.
        assert fabric.starts == (0, 2)

    def test_toggles_to_matches_apply(self):
        fabric = SwitchFabric(6, initial_starts=[0, 3])
        preview = fabric.toggles_to([0, 2, 4])
        assert fabric.apply([0, 2, 4]) == preview

    def test_rejects_invalid_module_count(self):
        with pytest.raises(ConfigurationError):
            SwitchFabric(0)

    def test_rejects_invalid_starts(self):
        fabric = SwitchFabric(5)
        with pytest.raises(ConfigurationError):
            fabric.apply([1, 3])


class TestSwitchVector:
    def test_shape(self):
        fabric = SwitchFabric(5, initial_starts=[0, 2])
        vec = fabric.as_switch_vector()
        assert vec.shape == (4, 3)

    def test_exactly_one_kind_closed(self):
        """Each junction closes either S_S alone or both rail switches."""
        fabric = SwitchFabric(8, initial_starts=[0, 3, 5])
        vec = fabric.as_switch_vector()
        for row in vec:
            series_closed = row[0]
            rails_closed = row[1] and row[2]
            assert series_closed != rails_closed
            if series_closed:
                assert not row[1] and not row[2]

    def test_matches_junction_states(self):
        fabric = SwitchFabric(6, initial_starts=[0, 2, 4])
        vec = fabric.as_switch_vector()
        states = fabric.junction_states()
        for row, state in zip(vec, states):
            assert bool(row[0]) == (state is JunctionState.SERIES)
