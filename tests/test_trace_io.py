"""Tests for repro.vehicle.trace_io."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.vehicle.drive_cycle import synthetic_urban
from repro.vehicle.trace import porter_ii_trace
from repro.vehicle.trace_io import (
    TRACE_COLUMNS,
    load_cycle,
    load_trace,
    save_cycle,
    save_trace,
)


@pytest.fixture(scope="module")
def trace():
    return porter_ii_trace(duration_s=20.0, seed=3)


class TestTraceRoundTrip:
    def test_roundtrip_preserves_columns(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.csv")
        loaded = load_trace(path)
        for column in TRACE_COLUMNS:
            assert np.allclose(
                getattr(loaded, column), getattr(trace, column), rtol=1e-9
            ), column

    def test_loaded_trace_usable(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t.csv"))
        assert loaded.dt_s == pytest.approx(trace.dt_s)
        assert loaded.duration_s == pytest.approx(trace.duration_s)

    def test_name_defaults_to_stem(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "porter.csv"))
        assert loaded.name == "porter"

    def test_explicit_name(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t.csv"), name="x")
        assert loaded.name == "x"


class TestTraceErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SimulationError, match="empty"):
            load_trace(path)

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(SimulationError, match="header"):
            load_trace(path)

    def test_short_row(self, tmp_path, trace):
        path = save_trace(trace, tmp_path / "t.csv")
        lines = path.read_text().splitlines()
        lines[1] = "0.0,1.0"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SimulationError, match="fields"):
            load_trace(path)

    def test_non_numeric(self, tmp_path, trace):
        path = save_trace(trace, tmp_path / "t.csv")
        text = path.read_text().replace("25", "oops", 1)
        path.write_text(text)
        with pytest.raises(SimulationError):
            load_trace(path)

    def test_single_sample(self, tmp_path):
        path = tmp_path / "one.csv"
        header = ",".join(TRACE_COLUMNS)
        path.write_text(header + "\n" + ",".join(["1.0"] * len(TRACE_COLUMNS)) + "\n")
        with pytest.raises(SimulationError, match="two samples"):
            load_trace(path)


class TestCycleRoundTrip:
    def test_roundtrip(self, tmp_path):
        cycle = synthetic_urban(60.0, seed=4)
        loaded = load_cycle(save_cycle(cycle, tmp_path / "c.csv"))
        assert np.allclose(loaded.time_s, cycle.time_s)
        assert np.allclose(loaded.speed_mps, cycle.speed_mps)

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n0,0\n")
        with pytest.raises(SimulationError, match="header"):
            load_cycle(path)
