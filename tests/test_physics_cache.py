"""Tests for repro.sim.cache — the TracePhysics memoisation layer."""

import dataclasses

import numpy as np
import pytest

from repro.sim.cache import CacheStats, PhysicsCache, physics_fingerprint
from repro.sim.engine import ExperimentRunner, grid_cases, run_case
from repro.sim.physics import TracePhysics
from repro.sim.scenario import default_scenario
from repro.thermal.radiator import Radiator


@pytest.fixture(scope="module")
def scenario():
    return default_scenario(
        duration_s=15.0, seed=5, n_modules=16, nominal_compute_s=1.0e-3
    )


def compute_physics(scenario):
    return TracePhysics.compute(
        scenario.trace, scenario.radiator, scenario.module, scenario.n_modules
    )


def assert_physics_bit_identical(a: TracePhysics, b: TracePhysics):
    for name in ("sensed_temps_c", "emf_true", "ideal_power_w"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    for sol_a, sol_b in (
        (a.true_solution, b.true_solution),
        (a.sensed_solution, b.sensed_solution),
    ):
        for name in ("decay_per_m", "surface_temps_c", "sink_temps_c",
                     "delta_t_k", "ambient_c", "active"):
            assert np.array_equal(
                getattr(sol_a, name), getattr(sol_b, name)
            ), name
        for name in ("duty_w", "effectiveness", "ntu", "ua_w_k",
                     "hot_outlet_c", "cold_outlet_c", "hot_capacity_w_k",
                     "cold_capacity_w_k"):
            assert np.array_equal(
                getattr(sol_a.exchanger, name), getattr(sol_b.exchanger, name)
            ), name
    assert a.module_resistance_ohm == b.module_resistance_ohm
    assert a.noiseless == b.noiseless
    assert a.n_modules == b.n_modules


class TestFingerprint:
    def test_content_equal_scenarios_share_fingerprint(self, scenario):
        rebuilt = default_scenario(
            duration_s=15.0, seed=5, n_modules=16, nominal_compute_s=1.0e-3
        )
        assert scenario.trace is not rebuilt.trace
        assert scenario.physics_fingerprint() == rebuilt.physics_fingerprint()

    def test_scanner_settings_do_not_enter_the_key(self, scenario):
        variant = dataclasses.replace(
            scenario, scanner_noise_std_k=0.7, sensor_seed=123
        )
        assert variant.physics_fingerprint() == scenario.physics_fingerprint()

    def test_trace_change_invalidates(self, scenario):
        other = default_scenario(duration_s=15.0, seed=6, n_modules=16)
        assert other.physics_fingerprint() != scenario.physics_fingerprint()

    def test_n_modules_change_invalidates(self, scenario):
        fp = physics_fingerprint(
            scenario.trace, scenario.radiator, scenario.module, 25
        )
        assert fp != scenario.physics_fingerprint()

    def test_radiator_change_invalidates(self, scenario):
        from repro.vehicle.trace import default_radiator

        other = default_radiator(sink_preheat_fraction=0.0)
        fp = physics_fingerprint(
            scenario.trace, other, scenario.module, scenario.n_modules
        )
        assert fp != scenario.physics_fingerprint()

    def test_module_change_invalidates(self, scenario):
        from repro.teg.datasheet import TGM_287_1_0_1_5

        fp = physics_fingerprint(
            scenario.trace, scenario.radiator, TGM_287_1_0_1_5,
            scenario.n_modules,
        )
        assert fp != scenario.physics_fingerprint()


class TestMemoryTier:
    def test_hit_miss_accounting(self, scenario):
        cache = PhysicsCache()
        assert cache.stats == CacheStats()
        cache.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        cache.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        stats = cache.stats
        assert stats.memory_hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5
        assert len(cache) == 1

    def test_hits_rebind_to_live_objects(self, scenario):
        cache = PhysicsCache()
        cache.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        rebuilt = default_scenario(
            duration_s=15.0, seed=5, n_modules=16, nominal_compute_s=1.0e-3
        )
        physics = cache.get_or_compute(
            rebuilt.trace, rebuilt.radiator, rebuilt.module, rebuilt.n_modules
        )
        assert cache.stats.memory_hits == 1
        assert physics.trace is rebuilt.trace  # passes simulator validation
        rebuilt.make_simulator(physics=physics)  # must not raise

    def test_lru_eviction(self, scenario):
        cache = PhysicsCache(max_entries=1)
        cache.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        cache.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module, 9
        )
        assert len(cache) == 1
        cache.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        assert cache.stats.misses == 3  # first entry was evicted

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PhysicsCache(max_entries=0)


class TestDiskTier:
    def test_round_trip_is_bit_identical(self, scenario, tmp_path):
        writer = PhysicsCache(cache_dir=tmp_path)
        stored = writer.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        assert len(writer.artifacts()) == 1

        reader = PhysicsCache(cache_dir=tmp_path)
        loaded = reader.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        assert reader.stats.disk_hits == 1 and reader.stats.misses == 0
        assert_physics_bit_identical(loaded, stored)
        assert_physics_bit_identical(loaded, compute_physics(scenario))

    def test_noiseless_aliasing_survives_the_round_trip(self, scenario, tmp_path):
        trace = dataclasses.replace(
            scenario.trace,
            coolant_inlet_sensed_c=scenario.trace.coolant_inlet_c.copy(),
            coolant_flow_sensed_kg_s=scenario.trace.coolant_flow_kg_s.copy(),
        )
        writer = PhysicsCache(cache_dir=tmp_path)
        writer.get_or_compute(
            trace, scenario.radiator, scenario.module, scenario.n_modules
        )
        loaded = PhysicsCache(cache_dir=tmp_path).get_or_compute(
            trace, scenario.radiator, scenario.module, scenario.n_modules
        )
        assert loaded.noiseless
        assert loaded.sensed_solution is loaded.true_solution

    def test_corrupt_artifact_is_recomputed_and_rewritten(self, scenario, tmp_path):
        writer = PhysicsCache(cache_dir=tmp_path)
        writer.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        artifact = writer.artifacts()[0]
        artifact.write_bytes(b"not an npz archive")

        recovering = PhysicsCache(cache_dir=tmp_path)
        physics = recovering.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        stats = recovering.stats
        assert stats.corrupt_artifacts == 1 and stats.misses == 1
        assert_physics_bit_identical(physics, compute_physics(scenario))

        healed = PhysicsCache(cache_dir=tmp_path)
        healed.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        assert healed.stats.disk_hits == 1  # the rewrite healed the store

    def test_clear_disk(self, scenario, tmp_path):
        cache = PhysicsCache(cache_dir=tmp_path)
        cache.get_or_compute(
            scenario.trace, scenario.radiator, scenario.module,
            scenario.n_modules,
        )
        cache.clear(disk=True)
        assert len(cache) == 0 and cache.artifacts() == ()


class TestRunnerIntegration:
    def test_grid_cells_sharing_a_trace_solve_once(self, scenario, monkeypatch):
        """The satellite fix: noise-axis variants share one physics
        solve (the old id()-keyed sharing re-solved per variant)."""
        calls = []
        original = Radiator.solve_trace

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Radiator, "solve_trace", counting)
        cases = grid_cases(
            [scenario], ["Baseline"], scanner_noise_std_k=[0.0, 0.1, 0.3]
        )
        runner = ExperimentRunner(cases, executor="serial")
        runner.run()
        # One TracePhysics.compute for the whole grid: a true + a
        # sensed pass (the porter trace carries sensing noise).
        assert len(calls) == 2
        stats = runner.cache.stats
        assert stats.misses == 1 and stats.memory_hits == 2

    def test_noiseless_trace_grid_solves_once_total(self, scenario, monkeypatch):
        calls = []
        original = Radiator.solve_trace

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Radiator, "solve_trace", counting)
        trace = dataclasses.replace(
            scenario.trace,
            coolant_inlet_sensed_c=scenario.trace.coolant_inlet_c.copy(),
            coolant_flow_sensed_kg_s=scenario.trace.coolant_flow_kg_s.copy(),
        )
        noiseless = dataclasses.replace(scenario, trace=trace)
        cases = grid_cases(
            [noiseless], ["Baseline"], scanner_noise_std_k=[0.0, 0.2]
        )
        ExperimentRunner(cases, executor="serial").run()
        assert len(calls) == 1  # sensed pass skipped, variants shared

    def test_rejects_mismatched_cache_and_cache_dir(self, scenario, tmp_path):
        """A memory-only cache cannot warm the workers' directory."""
        from repro.errors import SimulationError

        cases = grid_cases([scenario], ["Baseline"])
        with pytest.raises(SimulationError):
            ExperimentRunner(
                cases, cache=PhysicsCache(), cache_dir=tmp_path / "store"
            )
        with pytest.raises(SimulationError):
            ExperimentRunner(
                cases,
                cache=PhysicsCache(cache_dir=tmp_path / "a"),
                cache_dir=tmp_path / "b",
            )
        # Matching pair is fine.
        ExperimentRunner(
            cases,
            cache=PhysicsCache(cache_dir=tmp_path / "a"),
            cache_dir=tmp_path / "a",
        )

    def test_shared_cache_across_runners(self, scenario):
        cache = PhysicsCache()
        cases = grid_cases([scenario], ["Baseline"])
        ExperimentRunner(cases, executor="serial", cache=cache).run()
        ExperimentRunner(cases, executor="serial", cache=cache).run()
        assert cache.stats.misses == 1 and cache.stats.memory_hits == 1

    def test_process_executor_reuses_warm_disk_cache(self, scenario, tmp_path):
        cases = grid_cases([scenario], ["INOR", "Baseline"])
        plain = ExperimentRunner(cases, executor="serial").run()

        store = tmp_path / "grid-cache"
        first = ExperimentRunner(
            cases, executor="process", max_workers=2, cache_dir=store
        )
        cold = first.run()
        assert first.cache.stats.misses == 1  # parent warmed the store
        assert len(first.cache.artifacts()) == 1

        second = ExperimentRunner(
            cases, executor="process", max_workers=2, cache_dir=store
        )
        warm = second.run()
        stats = second.cache.stats
        assert stats.disk_hits == 1 and stats.misses == 0  # warm reuse

        for collation in (cold, warm):
            for case in cases:
                a = collation[case.name]
                b = plain[case.name]
                assert np.array_equal(a.delivered_power_w, b.delivered_power_w)
                assert np.array_equal(a.n_groups_series, b.n_groups_series)
                assert a.switch_times_s == b.switch_times_s

    def test_run_case_accepts_cache_dir(self, scenario, tmp_path):
        case = grid_cases([scenario], ["Baseline"])[0]
        direct = run_case(case)
        cached = run_case(case, cache_dir=str(tmp_path))
        again = run_case(case, cache_dir=str(tmp_path))
        for result in (cached, again):
            assert np.array_equal(
                result.delivered_power_w, direct.delivered_power_w
            )

    def test_simulator_lazy_physics_uses_cache(self, scenario):
        cache = PhysicsCache()
        sim_a = scenario.make_simulator(cache=cache)
        sim_b = scenario.make_simulator(cache=cache)
        first = sim_a.physics
        assert sim_b.physics is first
        assert cache.stats.misses == 1 and cache.stats.memory_hits == 1
