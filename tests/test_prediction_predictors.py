"""Tests for the MLR / BPNN / SVR predictors."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.bpnn import BPNNPredictor
from repro.prediction.mlr import MLRPredictor
from repro.prediction.svr import SVRPredictor


def linear_history(n_rows: int = 120, n_modules: int = 4) -> np.ndarray:
    """Per-module linear ramps — exactly representable by an AR model."""
    t = np.arange(n_rows, dtype=float)[:, None]
    slopes = np.linspace(0.02, 0.08, n_modules)[None, :]
    offsets = np.linspace(60.0, 90.0, n_modules)[None, :]
    return offsets + slopes * t


def sinusoid_history(n_rows: int = 240, n_modules: int = 6) -> np.ndarray:
    """Slow thermostat-like oscillation around 85 degC."""
    t = np.arange(n_rows, dtype=float)[:, None]
    phase = np.linspace(0.0, 1.0, n_modules)[None, :]
    return 85.0 + 3.0 * np.sin(2 * np.pi * (t / 120.0 + phase))


ALL_PREDICTORS = [
    lambda: MLRPredictor(lags=4),
    lambda: BPNNPredictor(lags=4, epochs=40, seed=1),
    lambda: SVRPredictor(lags=4, epochs=30, seed=1),
]


class TestCommonInterface:
    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_forecast_before_fit_raises(self, factory):
        with pytest.raises(PredictionError):
            factory().forecast(linear_history(), 2)

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_forecast_shape(self, factory):
        history = sinusoid_history()
        predictor = factory().fit(history)
        out = predictor.forecast(history, 3)
        assert out.shape == (3, history.shape[1])

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_1d_history_supported(self, factory):
        series = sinusoid_history()[:, 0]
        predictor = factory().fit(series)
        out = predictor.forecast(series, 2)
        assert out.shape == (2,)

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_short_history_raises(self, factory):
        with pytest.raises(PredictionError):
            factory().fit(np.zeros((3, 2)))

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_rejects_zero_steps(self, factory):
        history = sinusoid_history()
        predictor = factory().fit(history)
        with pytest.raises(PredictionError):
            predictor.forecast(history, 0)

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_nonfinite_history_rejected(self, factory):
        history = sinusoid_history()
        history[5, 0] = np.nan
        with pytest.raises(PredictionError):
            factory().fit(history)

    def test_train_window_truncation(self):
        predictor = MLRPredictor(lags=2, train_window=10)
        long_history = linear_history(500, 2)
        predictor.fit(long_history)  # must not be slow or unstable
        assert predictor.fitted


class TestMLR:
    def test_exact_on_linear_series(self):
        history = linear_history()
        predictor = MLRPredictor(lags=3).fit(history)
        forecast = predictor.forecast(history, 4)
        t_future = np.arange(history.shape[0], history.shape[0] + 4)[:, None]
        slopes = np.linspace(0.02, 0.08, history.shape[1])[None, :]
        offsets = np.linspace(60.0, 90.0, history.shape[1])[None, :]
        expected = offsets + slopes * t_future
        assert np.allclose(forecast, expected, atol=1e-6)

    def test_constant_series_stays_constant(self):
        history = np.full((60, 3), 88.0)
        predictor = MLRPredictor(lags=4).fit(history)
        forecast = predictor.forecast(history, 5)
        assert np.allclose(forecast, 88.0, atol=1e-6)

    def test_coefficients_exposed(self):
        predictor = MLRPredictor(lags=3).fit(linear_history())
        assert predictor.coefficients.shape == (3,)
        assert np.isfinite(predictor.intercept)

    def test_coefficients_before_fit_raise(self):
        with pytest.raises(PredictionError):
            MLRPredictor().coefficients

    def test_one_second_mape_below_paper_bound(self):
        """Paper Fig. 5: worst-case MLR error ~0.3%; smooth dynamics
        should keep us well under that."""
        history = sinusoid_history(400, 8)
        predictor = MLRPredictor(lags=4)
        errors = []
        for origin in range(300, 396, 8):
            predictor.fit(history[:origin])
            forecast = predictor.forecast(history[:origin], 2)
            actual = history[origin : origin + 2]
            errors.append(np.abs((actual - forecast) / actual).max() * 100)
        assert max(errors) < 0.3

    def test_name(self):
        assert MLRPredictor().name == "MLR"


class TestBPNN:
    def test_learns_sinusoid_reasonably(self):
        history = sinusoid_history()
        predictor = BPNNPredictor(lags=4, epochs=80, seed=3).fit(history)
        forecast = predictor.forecast(history, 2)
        actual_range = (history.min(), history.max())
        assert np.all(forecast > actual_range[0] - 2.0)
        assert np.all(forecast < actual_range[1] + 2.0)

    def test_deterministic_given_seed(self):
        history = sinusoid_history()
        a = BPNNPredictor(seed=7).fit(history).forecast(history, 2)
        b = BPNNPredictor(seed=7).fit(history).forecast(history, 2)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        history = sinusoid_history()
        a = BPNNPredictor(seed=1).fit(history).forecast(history, 2)
        b = BPNNPredictor(seed=2).fit(history).forecast(history, 2)
        assert not np.array_equal(a, b)

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(PredictionError):
            BPNNPredictor(hidden_units=0)
        with pytest.raises(PredictionError):
            BPNNPredictor(momentum=1.0)
        with pytest.raises(PredictionError):
            BPNNPredictor(learning_rate=0.0)

    def test_name(self):
        assert BPNNPredictor().name == "BPNN"


class TestSVR:
    def test_tracks_linear_series_within_tube(self):
        history = linear_history()
        predictor = SVRPredictor(lags=3, epochs=60, seed=2).fit(history)
        forecast = predictor.forecast(history, 1)
        actual_next = history[-1] + (history[-1] - history[-2])
        # Error should be small relative to the ~0.05 K/step dynamics.
        assert np.all(np.abs(forecast - actual_next) < 1.0)

    def test_deterministic_given_seed(self):
        history = sinusoid_history()
        a = SVRPredictor(seed=5).fit(history).forecast(history, 2)
        b = SVRPredictor(seed=5).fit(history).forecast(history, 2)
        assert np.array_equal(a, b)

    def test_epsilon_exposed(self):
        assert SVRPredictor(epsilon=0.05).epsilon == 0.05

    def test_rejects_negative_epsilon(self):
        with pytest.raises(PredictionError):
            SVRPredictor(epsilon=-0.1)

    def test_name(self):
        assert SVRPredictor().name == "SVR"


class TestRelativeAccuracy:
    def test_mlr_beats_others_on_radiator_like_series(self):
        """The paper's Fig. 5 verdict: MLR is the most accurate."""
        history = sinusoid_history(360, 6)
        # Add mild measurement noise so the problem is not trivial.
        rng = np.random.default_rng(0)
        noisy = history + rng.normal(0.0, 0.02, history.shape)

        def mean_error(predictor):
            errs = []
            for origin in range(280, 350, 10):
                predictor.fit(noisy[:origin])
                forecast = predictor.forecast(noisy[:origin], 2)
                actual = history[origin : origin + 2]
                errs.append(np.abs((actual - forecast) / actual).mean())
            return float(np.mean(errs))

        mlr_err = mean_error(MLRPredictor(lags=4))
        bpnn_err = mean_error(BPNNPredictor(lags=4, epochs=40, seed=1))
        svr_err = mean_error(SVRPredictor(lags=4, epochs=25, seed=1))
        assert mlr_err <= bpnn_err
        assert mlr_err <= svr_err
