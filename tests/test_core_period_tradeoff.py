"""Tests for repro.core.period_tradeoff — the prior-work alternative."""

import pytest

from repro.core.period_tradeoff import sweep_fixed_period
from repro.errors import SimulationError
from repro.sim.scenario import default_scenario


@pytest.fixture(scope="module")
def scenario():
    return default_scenario(duration_s=60.0, seed=11, n_modules=49)


@pytest.fixture(scope="module")
def tradeoff(scenario):
    return sweep_fixed_period(scenario, periods_s=(0.5, 2.0, 8.0))


class TestSweep:
    def test_point_per_period(self, tradeoff):
        assert [p.period_s for p in tradeoff.points] == [0.5, 2.0, 8.0]

    def test_longer_period_fewer_switches(self, tradeoff):
        switches = [p.result.switch_count for p in tradeoff.points]
        assert switches[0] > switches[1] > switches[2]

    def test_longer_period_less_overhead(self, tradeoff):
        overheads = [p.result.switch_overhead_j for p in tradeoff.points]
        assert overheads[0] > overheads[1] > overheads[2]

    def test_best_is_argmax(self, tradeoff):
        best = tradeoff.best
        assert best.energy_output_j == max(
            p.energy_output_j for p in tradeoff.points
        )

    def test_table_renders_all_rows(self, tradeoff):
        table = tradeoff.table()
        assert "<- best" in table
        for point in tradeoff.points:
            assert f"{point.period_s:11.2f}" in table

    def test_dnor_not_worse_than_best_fixed_period(self, scenario, tradeoff):
        """The paper's motivation: period tuning alone is 'not
        remarkable' — DNOR matches or beats the tuned period."""
        simulator = scenario.make_simulator()
        dnor = simulator.run(scenario.make_dnor_policy(), scenario.make_charger())
        assert dnor.energy_output_j >= tradeoff.best.energy_output_j * 0.995


class TestValidation:
    def test_empty_periods_rejected(self, scenario):
        with pytest.raises(SimulationError):
            sweep_fixed_period(scenario, periods_s=())

    def test_non_multiple_period_rejected(self, scenario):
        with pytest.raises(SimulationError):
            sweep_fixed_period(scenario, periods_s=(0.7,))
