"""Calibration regression pins.

These tests pin the *deterministic* headline quantities of the
reproduction on a short scenario with a fixed nominal compute time, so
that an innocent-looking model change that silently breaks the Table-I
calibration fails loudly here rather than in a two-minute benchmark.

Pinned with generous-but-meaningful tolerances: a few percent of drift
means re-checking EXPERIMENTS.md, not necessarily a bug.
"""

import numpy as np
import pytest

from repro.sim.scenario import default_scenario
from repro.teg.datasheet import TGM_199_1_4_0_8


@pytest.fixture(scope="module")
def results():
    scenario = default_scenario(
        duration_s=120.0, seed=2018, nominal_compute_s=1.0e-3
    )
    simulator = scenario.make_simulator()
    policies = scenario.make_policies()
    return {
        name: simulator.run(policies[name], scenario.make_charger())
        for name in ("DNOR", "INOR", "Baseline")
    }


class TestDevicePins:
    def test_module_emf_scale(self):
        """TGM-199-1.4-0.8: ~12.8 V open circuit at dT = 170 K."""
        assert TGM_199_1_4_0_8.open_circuit_voltage(170.0) == pytest.approx(
            12.79, rel=0.01
        )

    def test_module_resistance(self):
        assert TGM_199_1_4_0_8.internal_resistance() == pytest.approx(2.905, rel=0.01)

    def test_radiator_regime_power(self):
        """~0.6 W per module at dT = 35 K — the 100-module ~50 W system."""
        assert TGM_199_1_4_0_8.mpp_power(35.0) == pytest.approx(0.596, rel=0.02)


class TestTraceCalibrationPins:
    def test_trace_statistics(self):
        scenario = default_scenario(duration_s=120.0, seed=2018)
        inlet = scenario.trace.coolant_inlet_c
        assert 84.0 < inlet.mean() < 90.0
        assert 0.5 < inlet.std() < 4.0

    def test_delta_t_spread(self):
        """The calibrated spread behind the baseline gap (cv ~ 0.5)."""
        scenario = default_scenario(duration_s=60.0, seed=2018)
        trace = scenario.trace
        i = trace.n_samples // 2
        op = scenario.radiator.operating_point(
            float(trace.coolant_inlet_c[i]),
            float(trace.coolant_flow_kg_s[i]),
            float(trace.ambient_c[i]),
            float(trace.air_flow_kg_s[i]),
            scenario.n_modules,
        )
        cv = float(op.delta_t_k.std() / op.delta_t_k.mean())
        assert 0.35 < cv < 0.75


class TestTableOnePins:
    def test_baseline_ratio_to_ideal(self, results):
        """The static 10x10 sits far below ideal on this window
        (0.62 here; 0.70 over the full 800 s — paper-calibrated)."""
        ratio = float(results["Baseline"].ratio_to_ideal().mean())
        assert ratio == pytest.approx(0.62, abs=0.07)

    def test_reconfig_ratio_to_ideal(self, results):
        for scheme in ("DNOR", "INOR"):
            ratio = float(results[scheme].ratio_to_ideal().mean())
            assert ratio == pytest.approx(0.94, abs=0.04)

    def test_dnor_over_baseline_gain(self, results):
        """The +30% headline (shorter window gives a similar figure)."""
        gain = (
            results["DNOR"].energy_output_j / results["Baseline"].energy_output_j
        )
        assert 1.15 < gain < 1.45

    def test_inor_overhead_per_event(self, results):
        """~1.25 J per reconfiguration event at ~50 W output."""
        inor = results["INOR"]
        per_event = inor.switch_overhead_j / inor.switch_count
        assert per_event == pytest.approx(1.25, rel=0.35)

    def test_dnor_switch_sparsity(self, results):
        dnor, inor = results["DNOR"], results["INOR"]
        assert dnor.switch_count < inor.switch_count / 10

    def test_average_power_scale(self, results):
        """The platform is a ~40-60 W system, as in the paper."""
        mean_power = results["DNOR"].delivered_power_w.mean()
        assert 35.0 < mean_power < 65.0
