"""Tests for repro.teg.array."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelParameterError
from repro.teg.array import TEGArray
from repro.teg.datasheet import TGM_199_1_4_0_8, TGM_199_1_4_0_8_REALISTIC


class TestConstruction:
    def test_len(self):
        assert len(TEGArray(TGM_199_1_4_0_8, 12)) == 12

    def test_rejects_zero_modules(self):
        with pytest.raises(ModelParameterError):
            TEGArray(TGM_199_1_4_0_8, 0)

    def test_queries_before_temperatures_raise(self):
        array = TEGArray(TGM_199_1_4_0_8, 4)
        with pytest.raises(ConfigurationError, match="temperatures not set"):
            array.emf_vector()


class TestThermalState:
    def test_set_temperatures_computes_delta(self):
        array = TEGArray(TGM_199_1_4_0_8, 3)
        array.set_temperatures([85.0, 65.0, 45.0], ambient_c=25.0)
        assert array.delta_t == pytest.approx([60.0, 40.0, 20.0])

    def test_set_delta_t_direct(self):
        array = TEGArray(TGM_199_1_4_0_8, 3)
        array.set_delta_t([50.0, 40.0, 30.0])
        assert array.delta_t == pytest.approx([50.0, 40.0, 30.0])

    def test_wrong_shape_rejected(self):
        array = TEGArray(TGM_199_1_4_0_8, 3)
        with pytest.raises(ConfigurationError):
            array.set_delta_t([50.0, 40.0])

    def test_nonfinite_rejected(self):
        array = TEGArray(TGM_199_1_4_0_8, 2)
        with pytest.raises(ModelParameterError):
            array.set_delta_t([50.0, np.nan])

    def test_delta_t_returns_copy(self):
        array = TEGArray(TGM_199_1_4_0_8, 2)
        array.set_delta_t([50.0, 40.0])
        view = array.delta_t
        view[0] = -999.0
        assert array.delta_t[0] == 50.0


class TestElectricalVectors:
    def test_emf_matches_module(self, small_array):
        emf = small_array.emf_vector()
        module = small_array.module
        expected = [module.open_circuit_voltage(dt) for dt in small_array.delta_t]
        assert emf == pytest.approx(expected)

    def test_resistance_uniform(self, small_array):
        res = small_array.resistance_vector()
        assert np.allclose(res, small_array.module.internal_resistance())

    def test_mpp_currents(self, small_array):
        expected = small_array.emf_vector() / (2 * small_array.resistance_vector())
        assert small_array.mpp_currents() == pytest.approx(expected)

    def test_ideal_power_is_sum_of_module_mpps(self, small_array):
        module = small_array.module
        expected = sum(module.mpp_power(dt) for dt in small_array.delta_t)
        assert small_array.ideal_power() == pytest.approx(expected)

    def test_ideal_power_ignores_negative_delta_t(self):
        array = TEGArray(TGM_199_1_4_0_8, 2)
        array.set_delta_t([40.0, -10.0])
        only_first = TEGArray(TGM_199_1_4_0_8, 1)
        only_first.set_delta_t([40.0])
        assert array.ideal_power() == pytest.approx(only_first.ideal_power())


class TestConfiguredQueries:
    def test_configured_mpp_below_ideal(self, small_array):
        mpp = small_array.configured_mpp([0, 5, 10, 15])
        assert mpp.power_w < small_array.ideal_power()

    def test_accepts_object_with_starts(self, small_array):
        class Cfg:
            starts = (0, 10)

        direct = small_array.configured_mpp((0, 10))
        via_object = small_array.configured_mpp(Cfg())
        assert direct.power_w == pytest.approx(via_object.power_w)

    def test_power_at_mpp_current(self, small_array):
        starts = (0, 4, 9, 14)
        mpp = small_array.configured_mpp(starts)
        assert small_array.power_at_current(starts, mpp.current_a) == pytest.approx(
            mpp.power_w
        )

    def test_operating_points_share_group_voltage(self, small_array):
        v, _, _ = small_array.operating_points((0, 10), 1.0)
        assert np.allclose(v[:10], v[0])
        assert np.allclose(v[10:], v[10])

    def test_thevenin_consistent_with_mpp(self, small_array):
        starts = (0, 7, 13)
        e, r = small_array.thevenin(starts)
        mpp = small_array.configured_mpp(starts)
        assert mpp.power_w == pytest.approx(e * e / (4 * r))

    def test_segment_tables_match_network(self, small_array):
        tables = small_array.segment_tables()
        emf = small_array.emf_vector()
        res = small_array.resistance_vector()
        e_seg, r_seg = tables.segment(2, 8)
        cond = (1.0 / res[2:8]).sum()
        assert r_seg == pytest.approx(1.0 / cond)
        assert e_seg == pytest.approx((emf[2:8] / res[2:8]).sum() / cond)


class TestTemperatureDrift:
    def test_drift_array_differs_from_constant(self):
        constant = TEGArray(TGM_199_1_4_0_8, 3)
        drifting = TEGArray(TGM_199_1_4_0_8_REALISTIC, 3, use_temperature_drift=True)
        for array in (constant, drifting):
            array.set_temperatures([95.0, 80.0, 65.0], ambient_c=25.0)
        assert not np.allclose(constant.emf_vector(), drifting.emf_vector())
        assert not np.allclose(
            constant.resistance_vector(), drifting.resistance_vector()
        )

    def test_drift_without_absolute_temps_falls_back(self):
        drifting = TEGArray(TGM_199_1_4_0_8_REALISTIC, 2, use_temperature_drift=True)
        drifting.set_delta_t([40.0, 30.0])
        # No mean temperature available: reference-point values used.
        module_res = (
            TGM_199_1_4_0_8_REALISTIC.material.resistance_ohm
            * TGM_199_1_4_0_8_REALISTIC.n_couples
        )
        assert np.allclose(drifting.resistance_vector(), module_res)


class TestMppBatch:
    def test_matches_configured_mpp_per_candidate(self):
        array = TEGArray(TGM_199_1_4_0_8, 12)
        array.set_delta_t(np.linspace(55.0, 8.0, 12))
        configs = [[0], [0, 6], [0, 3, 6, 9], list(range(12))]
        power, voltage, current = array.mpp_batch(configs)
        assert power.shape == (4,)
        for k, config in enumerate(configs):
            mpp = array.configured_mpp(config)
            assert power[k] == mpp.power_w  # bitwise, not approx
            assert voltage[k] == mpp.voltage_v
            assert current[k] == mpp.current_a

    def test_accepts_objects_with_starts(self):
        class Cfg:
            def __init__(self, starts):
                self.starts = starts

        array = TEGArray(TGM_199_1_4_0_8, 6)
        array.set_delta_t(np.linspace(40.0, 10.0, 6))
        power, _, _ = array.mpp_batch([Cfg((0, 3)), Cfg((0, 2, 4))])
        assert power[0] == array.configured_mpp([0, 3]).power_w
        assert power[1] == array.configured_mpp([0, 2, 4]).power_w

    def test_requires_thermal_state(self):
        array = TEGArray(TGM_199_1_4_0_8, 4)
        with pytest.raises(ConfigurationError):
            array.mpp_batch([[0]])

    def test_balanced_partitions_window_feeds_mpp_batch(self):
        """The facade pipeline: vectorised build -> one-pass scoring,
        cut- and MPP-identical to the scalar components."""
        from repro.teg.network import greedy_balanced_partition

        array = TEGArray(TGM_199_1_4_0_8, 15)
        array.set_delta_t(np.linspace(60.0, 5.0, 15))
        window = array.balanced_partitions(2, 9)
        currents = array.mpp_currents()
        for k, n_groups in enumerate(range(2, 10)):
            assert np.array_equal(
                window[k], greedy_balanced_partition(currents, n_groups)
            )
        power, voltage, current = array.mpp_batch(window)
        assert power.shape == (8,)
        for k in range(8):
            mpp = array.configured_mpp(window[k])
            assert power[k] == mpp.power_w
            assert voltage[k] == mpp.voltage_v
            assert current[k] == mpp.current_a
