"""Tests for repro.thermal.coolant."""

import pytest

from repro.errors import ModelParameterError
from repro.thermal.coolant import AIR, ETHYLENE_GLYCOL_50_50, FluidProperties, FluidStream


class TestFluidProperties:
    def test_capacity_rate(self):
        # C = m_dot * c_p
        c = ETHYLENE_GLYCOL_50_50.capacity_rate(0.5)
        assert c == pytest.approx(0.5 * ETHYLENE_GLYCOL_50_50.specific_heat_j_kg_k)

    def test_capacity_rate_rejects_zero_flow(self):
        with pytest.raises(ModelParameterError):
            AIR.capacity_rate(0.0)

    def test_mass_flow_from_lpm(self):
        # 60 LPM of coolant: 1e-3 m^3/s * density.
        flow = ETHYLENE_GLYCOL_50_50.mass_flow_from_lpm(60.0)
        assert flow == pytest.approx(1.0e-3 * ETHYLENE_GLYCOL_50_50.density_kg_m3)

    def test_rejects_nonpositive_density(self):
        with pytest.raises(ModelParameterError):
            FluidProperties("bad", 0.0, 4000.0, 0.4, 1e-6)

    def test_named_fluids_plausible(self):
        assert 900 < ETHYLENE_GLYCOL_50_50.density_kg_m3 < 1200
        assert 0.8 < AIR.density_kg_m3 < 1.4
        assert AIR.specific_heat_j_kg_k == pytest.approx(1007.0)


class TestFluidStream:
    def test_capacity_rate_property(self):
        stream = FluidStream(AIR, 0.8, 25.0)
        assert stream.capacity_rate_w_k == pytest.approx(0.8 * 1007.0)

    def test_rejects_zero_flow(self):
        with pytest.raises(ModelParameterError):
            FluidStream(AIR, 0.0, 25.0)
