"""Tests for repro.teg.network — the exact Thevenin algebra."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.teg import network


@pytest.fixture
def uniform_modules():
    """Five identical modules: E = 2 V, R = 1 Ohm."""
    return np.full(5, 2.0), np.full(5, 1.0)


class TestValidateStarts:
    def test_accepts_valid(self):
        out = network.validate_starts([0, 3, 7], 10)
        assert list(out) == [0, 3, 7]

    def test_rejects_not_starting_at_zero(self):
        with pytest.raises(ConfigurationError):
            network.validate_starts([1, 3], 10)

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            network.validate_starts([0, 5, 3], 10)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            network.validate_starts([0, 3, 3], 10)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            network.validate_starts([0, 10], 10)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            network.validate_starts([], 10)

    def test_rejects_nonpositive_module_count(self):
        with pytest.raises(ConfigurationError):
            network.validate_starts([0], 0)


class TestParallelReduce:
    def test_identical_modules(self, uniform_modules):
        emf, res = uniform_modules
        e_g, r_g = network.parallel_reduce(emf, res)
        assert e_g == pytest.approx(2.0)
        assert r_g == pytest.approx(1.0 / 5.0)

    def test_single_module_identity(self):
        e_g, r_g = network.parallel_reduce(np.array([3.0]), np.array([2.0]))
        assert (e_g, r_g) == (pytest.approx(3.0), pytest.approx(2.0))

    def test_conductance_weighted_emf(self):
        # Stronger (lower-R) module dominates the group EMF.
        emf = np.array([1.0, 3.0])
        res = np.array([1.0, 0.5])
        e_g, r_g = network.parallel_reduce(emf, res)
        assert e_g == pytest.approx((1.0 / 1.0 + 3.0 / 0.5) / (1.0 / 1.0 + 1.0 / 0.5))
        assert r_g == pytest.approx(1.0 / 3.0)

    def test_circuit_consistency(self):
        """The reduced source reproduces the group's terminal behaviour."""
        emf = np.array([2.0, 2.6, 1.4])
        res = np.array([1.0, 1.5, 0.8])
        e_g, r_g = network.parallel_reduce(emf, res)
        for v_terminal in (0.0, 0.7, 1.3):
            branch_sum = float(((emf - v_terminal) / res).sum())
            thevenin_current = (e_g - v_terminal) / r_g
            assert branch_sum == pytest.approx(thevenin_current)


class TestReduceConfiguration:
    def test_groups_in_chain_order(self, uniform_modules):
        emf, res = uniform_modules
        e_groups, r_groups = network.reduce_configuration(emf, res, [0, 2])
        # Groups of 2 and 3 identical modules.
        assert e_groups == pytest.approx([2.0, 2.0])
        assert r_groups == pytest.approx([0.5, 1.0 / 3.0])

    def test_all_series(self, uniform_modules):
        emf, res = uniform_modules
        e_groups, r_groups = network.reduce_configuration(emf, res, range(5))
        assert np.allclose(e_groups, emf)
        assert np.allclose(r_groups, res)


class TestArrayThevenin:
    def test_series_sums(self, uniform_modules):
        emf, res = uniform_modules
        e_tot, r_tot = network.array_thevenin(emf, res, range(5))
        assert e_tot == pytest.approx(10.0)
        assert r_tot == pytest.approx(5.0)

    def test_all_parallel(self, uniform_modules):
        emf, res = uniform_modules
        e_tot, r_tot = network.array_thevenin(emf, res, [0])
        assert e_tot == pytest.approx(2.0)
        assert r_tot == pytest.approx(0.2)


class TestArrayMPP:
    def test_uniform_modules_same_power_any_equal_split(self, uniform_modules):
        """For identical modules every equal-size partition has equal MPP.

        This is the analytic invariant that makes *unequal* group sizes
        the source of reconfiguration gains (DESIGN.md section 5).
        """
        emf, res = uniform_modules
        p_series = network.array_mpp(emf, res, range(5)).power_w
        p_parallel = network.array_mpp(emf, res, [0]).power_w
        assert p_series == pytest.approx(p_parallel)

    def test_mpp_power_equals_e2_over_4r(self, uniform_modules):
        emf, res = uniform_modules
        mpp = network.array_mpp(emf, res, [0, 2])
        e_tot, r_tot = network.array_thevenin(emf, res, [0, 2])
        assert mpp.power_w == pytest.approx(e_tot**2 / (4 * r_tot))
        assert mpp.voltage_v == pytest.approx(e_tot / 2)
        assert mpp.current_a == pytest.approx(e_tot / (2 * r_tot))

    def test_mpp_dominates_power_at_current(self, uniform_modules):
        emf, res = uniform_modules
        starts = [0, 1, 3]
        mpp = network.array_mpp(emf, res, starts)
        for frac in (0.25, 0.5, 0.9, 1.1, 1.5):
            p = network.power_at_current(emf, res, starts, mpp.current_a * frac)
            assert p <= mpp.power_w + 1e-12

    def test_power_at_mpp_current_matches(self, uniform_modules):
        emf, res = uniform_modules
        starts = [0, 2, 4]
        mpp = network.array_mpp(emf, res, starts)
        assert network.power_at_current(
            emf, res, starts, mpp.current_a
        ) == pytest.approx(mpp.power_w)


class TestModuleOperatingPoints:
    def test_energy_conservation(self):
        """Sum of module powers equals array power at any current."""
        rng = np.random.default_rng(3)
        emf = rng.uniform(1.0, 4.0, 12)
        res = rng.uniform(0.5, 2.0, 12)
        starts = [0, 3, 7, 10]
        for current in (0.2, 0.8, 1.4):
            _, _, p_modules = network.module_operating_points(
                emf, res, starts, current
            )
            p_array = network.power_at_current(emf, res, starts, current)
            # Module power includes internal dissipation of back-driven
            # branches; array power = sum(V_g * I) = sum over modules of
            # V_g * I_i only when branch currents sum to I per group.
            assert p_modules.sum() == pytest.approx(p_array, rel=1e-9)

    def test_group_voltage_shared(self):
        emf = np.array([2.0, 2.5, 1.5, 3.0])
        res = np.ones(4)
        v, _, _ = network.module_operating_points(emf, res, [0, 2], 0.5)
        assert v[0] == v[1]
        assert v[2] == v[3]

    def test_branch_currents_sum_to_array_current(self):
        emf = np.array([2.0, 2.5, 1.5, 3.0])
        res = np.array([1.0, 0.7, 1.2, 0.9])
        current = 0.9
        _, branch, _ = network.module_operating_points(emf, res, [0, 2], current)
        assert branch[:2].sum() == pytest.approx(current)
        assert branch[2:].sum() == pytest.approx(current)

    def test_weak_module_back_driven(self):
        """A much colder module in a hot parallel group sinks current."""
        emf = np.array([4.0, 0.1])
        res = np.ones(2)
        _, branch, power = network.module_operating_points(emf, res, [0], 1.0)
        assert branch[1] < 0.0
        assert power[1] < 0.0


class TestSegmentThevenin:
    def test_matches_parallel_reduce(self):
        rng = np.random.default_rng(9)
        emf = rng.uniform(0.5, 3.0, 15)
        res = rng.uniform(0.5, 2.0, 15)
        tables = network.SegmentThevenin.from_modules(emf, res)
        for lo, hi in [(0, 15), (3, 9), (14, 15), (0, 1)]:
            expected = network.parallel_reduce(emf[lo:hi], res[lo:hi])
            assert tables.segment(lo, hi) == (
                pytest.approx(expected[0]),
                pytest.approx(expected[1]),
            )

    def test_segment_mpp_current_sum(self):
        emf = np.array([2.0, 4.0, 6.0])
        res = np.array([1.0, 2.0, 3.0])
        tables = network.SegmentThevenin.from_modules(emf, res)
        assert tables.segment_mpp_current_sum(0, 3) == pytest.approx(
            (emf / (2 * res)).sum()
        )

    def test_rejects_empty_segment(self):
        tables = network.SegmentThevenin.from_modules(np.ones(3), np.ones(3))
        with pytest.raises(ConfigurationError):
            tables.segment(2, 2)

    def test_rejects_out_of_range(self):
        tables = network.SegmentThevenin.from_modules(np.ones(3), np.ones(3))
        with pytest.raises(ConfigurationError):
            tables.segment(0, 4)

    def test_n_modules(self):
        tables = network.SegmentThevenin.from_modules(np.ones(7), np.ones(7))
        assert tables.n_modules == 7


class TestArrayMppMulti:
    """Configuration-batched MPPs: one pass, bit-identical per candidate."""

    def _window(self, emf, res):
        from repro.core.inor import greedy_balanced_partition

        currents = emf / (2.0 * res)
        return [
            greedy_balanced_partition(currents, g)
            for g in range(1, emf.size + 1)
        ]

    def test_bitwise_matches_scalar_over_full_window(self):
        rng = np.random.default_rng(3)
        emf = rng.uniform(0.2, 3.0, 40)
        res = np.full(40, 0.8)
        candidates = self._window(emf, res)
        power, voltage, current = network.array_mpp_multi(emf, res, candidates)
        assert power.shape == (40,)
        for k, starts in enumerate(candidates):
            mpp = network.array_mpp(emf, res, starts)
            assert power[k] == mpp.power_w  # exact, not approx
            assert voltage[k] == mpp.voltage_v
            assert current[k] == mpp.current_a

    def test_single_candidate(self, uniform_modules):
        emf, res = uniform_modules
        power, voltage, current = network.array_mpp_multi(emf, res, [[0, 2]])
        mpp = network.array_mpp(emf, res, [0, 2])
        assert (power[0], voltage[0], current[0]) == (
            mpp.power_w,
            mpp.voltage_v,
            mpp.current_a,
        )

    def test_empty_candidate_list(self, uniform_modules):
        emf, res = uniform_modules
        power, voltage, current = network.array_mpp_multi(emf, res, [])
        assert power.size == voltage.size == current.size == 0

    def test_fault_masked_configurations(self):
        """Candidates repaired against a stuck-switch mask stay exact."""
        from repro.teg.faults import FaultMask

        rng = np.random.default_rng(9)
        emf = rng.uniform(0.5, 2.5, 16)
        res = np.full(16, 1.2)
        mask = FaultMask(
            n_modules=16, stuck_series={4}, stuck_parallel={9}
        )
        candidates = [
            mask.repair(starts) for starts in self._window(emf, res)
        ]
        power, voltage, current = network.array_mpp_multi(emf, res, candidates)
        for k, starts in enumerate(candidates):
            mpp = network.array_mpp(emf, res, starts)
            assert power[k] == mpp.power_w
            assert voltage[k] == mpp.voltage_v
            assert current[k] == mpp.current_a

    @pytest.mark.parametrize(
        "bad",
        [
            [[1, 2]],          # not starting at zero
            [[0, 5, 3]],       # unsorted
            [[0, 3, 3]],       # duplicate boundary
            [[0, 99]],         # out of range
            [[]],              # empty candidate
            [[0], [0, 200]],   # one valid, one invalid
        ],
    )
    def test_rejects_invalid_candidates(self, bad):
        with pytest.raises(ConfigurationError):
            network.array_mpp_multi(np.ones(10), np.ones(10), bad)

    def test_partition_set_input_matches_list_input(self):
        """The flat PartitionSet fast path is the same computation."""
        rng = np.random.default_rng(11)
        emf = rng.uniform(0.2, 3.0, 30)
        res = np.full(30, 0.8)
        ps = network.partition_multi(emf / (2.0 * res), 1, 30)
        from_set = network.array_mpp_multi(emf, res, ps)
        from_list = network.array_mpp_multi(emf, res, list(ps))
        for a, b in zip(from_set, from_list):
            assert np.array_equal(a, b)

    def test_partition_set_validation_sweep(self):
        """validate=True walks the vectorised sweep on the flat layout;
        a corrupted set is rejected."""
        ps = network.partition_multi(np.ones(8), 1, 4)
        ok = network.array_mpp_multi(np.ones(8), np.ones(8), ps, validate=True)
        assert ok[0].size == 4
        corrupt = network.PartitionSet(
            cat=np.array([0, 0, 9], dtype=np.int64),
            offsets=np.array([0, 1, 3], dtype=np.int64),
            n_modules=8,
        )
        with pytest.raises(ConfigurationError):
            network.array_mpp_multi(np.ones(8), np.ones(8), corrupt)

    def test_partition_set_wrong_chain_rejected(self):
        ps = network.partition_multi(np.ones(8), 1, 3)
        with pytest.raises(ConfigurationError):
            network.array_mpp_multi(np.ones(9), np.ones(9), ps)


class TestArrayMppRowsMulti:
    """Configuration x time-sample batching for DNOR's epoch planner."""

    def test_bitwise_matches_per_config_rows(self):
        rng = np.random.default_rng(13)
        emf_rows = rng.uniform(0.1, 3.0, (6, 20))
        res = np.full(20, 1.1)
        configs = [[0], [0, 5, 10, 15], list(range(20)), [0, 7]]
        power, voltage = network.array_mpp_rows_multi(emf_rows, res, configs)
        assert power.shape == (4, 6)
        for k, starts in enumerate(configs):
            p_ref, v_ref = network.array_mpp_rows(emf_rows, res, starts)
            assert np.array_equal(power[k], p_ref)  # exact, not approx
            assert np.array_equal(voltage[k], v_ref)

    def test_empty_config_list(self):
        power, voltage = network.array_mpp_rows_multi(
            np.ones((3, 5)), np.ones(5), []
        )
        assert power.shape == (0, 3)
        assert voltage.shape == (0, 3)

    def test_rejects_invalid_config(self):
        with pytest.raises(ConfigurationError):
            network.array_mpp_rows_multi(
                np.ones((3, 5)), np.ones(5), [[0], [1, 2]]
            )


class TestPartitionSetIndexing:
    def test_negative_index_normalised(self):
        ps = network.partition_multi(np.arange(1.0, 9.0), 1, 4)
        assert np.array_equal(ps[-1], ps[len(ps) - 1])
        assert np.array_equal(ps[-len(ps)], ps[0])

    def test_out_of_range_negative_index_rejected(self):
        ps = network.partition_multi(np.arange(1.0, 9.0), 1, 4)
        with pytest.raises(IndexError):
            ps[-(len(ps) + 1)]


class TestStackedKernels:
    """Grid-stacked partition build + MPP scoring: one call over a
    ``(C, N)`` current/EMF matrix, bit-identical to the per-case loop."""

    def _rows(self, seed, n_cases=5, n=24):
        rng = np.random.default_rng(seed)
        rows = rng.uniform(0.05, 3.0, size=(n_cases, n))
        if seed % 2:
            # Back-biased modules exercise the accumulation-walk branch.
            flips = rng.uniform(size=rows.shape) < 0.15
            rows[flips] *= -1.0
        return rows

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_partition_multi_stack_equals_per_case(self, seed):
        rows = self._rows(seed)
        n = rows.shape[1]
        stack = network.partition_multi_stack(rows, 1, n)
        assert stack.n_cases == rows.shape[0]
        for c in range(rows.shape[0]):
            per_case = network.partition_multi(rows[c], 1, n)
            case_set = stack.case(c)
            assert len(case_set) == len(per_case)
            assert np.array_equal(case_set.cat, per_case.cat)
            assert np.array_equal(case_set.offsets, per_case.offsets)

    def test_case_accepts_negative_index(self):
        rows = self._rows(4)
        stack = network.partition_multi_stack(rows, 1, rows.shape[1])
        last = stack.case(-1)
        assert np.array_equal(last.cat, stack.case(stack.n_cases - 1).cat)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_array_mpp_multi_stack_equals_per_case(self, seed):
        rng = np.random.default_rng(seed + 100)
        rows = self._rows(seed)
        n = rows.shape[1]
        res = rng.uniform(0.4, 2.0, n)
        emf_rows = rows * (2.0 * res)
        stack = network.partition_multi_stack(rows, 1, n)
        power, voltage, current = network.array_mpp_multi_stack(
            emf_rows, res, stack
        )
        for c in range(rows.shape[0]):
            p_ref, v_ref, i_ref = network.array_mpp_multi(
                emf_rows[c], res, stack.case(c)
            )
            lo, hi = stack.case_offsets[c], stack.case_offsets[c + 1]
            assert power[lo:hi].tobytes() == p_ref.tobytes()
            assert voltage[lo:hi].tobytes() == v_ref.tobytes()
            assert current[lo:hi].tobytes() == i_ref.tobytes()

    def test_window_broadcast_and_validation(self):
        rows = np.abs(self._rows(8)) + 0.01
        n = rows.shape[1]
        stack = network.partition_multi_stack(rows, 2, 5)
        assert np.all(np.diff(stack.case_offsets) == 4)
        with pytest.raises(ConfigurationError):
            network.partition_multi_stack(rows, 0, n)
        with pytest.raises(ConfigurationError):
            network.partition_multi_stack(rows, 3, 2)


class TestSingleCandidateNoTile:
    """The n_configs == 1 fast paths must stay bitwise on-contract."""

    def test_array_mpp_multi_single_candidate(self):
        rng = np.random.default_rng(21)
        emf = rng.uniform(0.1, 3.0, 16)
        res = rng.uniform(0.5, 2.0, 16)
        single = network.array_mpp_multi(emf, res, [[0, 4, 8, 12]])
        many = network.array_mpp_multi(
            emf, res, [[0, 4, 8, 12], [0, 8]]
        )
        for a, b in zip(single, many):
            assert a[0].tobytes() == b[0].tobytes()

    def test_array_mpp_rows_multi_single_config(self):
        rng = np.random.default_rng(22)
        emf_rows = rng.uniform(0.1, 3.0, (7, 12))
        res = rng.uniform(0.5, 2.0, 12)
        power, voltage = network.array_mpp_rows_multi(
            emf_rows, res, [[0, 3, 6, 9]]
        )
        p_ref, v_ref = network.array_mpp_rows(emf_rows, res, [0, 3, 6, 9])
        assert power[0].tobytes() == p_ref.tobytes()
        assert voltage[0].tobytes() == v_ref.tobytes()
