"""Edge paths of the closed-loop simulator and charger wiring."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.power.charger import TEGCharger
from repro.power.mppt import PerturbObserveMPPT
from repro.sim.scenario import default_scenario
from repro.sim.simulator import HarvestSimulator


@pytest.fixture(scope="module")
def scenario():
    return default_scenario(duration_s=20.0, seed=8, n_modules=25)


class TestScannerlessOperation:
    def test_runs_without_scanner(self, scenario):
        simulator = HarvestSimulator(
            trace=scenario.trace,
            boundary=scenario.boundary,
            module=scenario.module,
            n_modules=scenario.n_modules,
            overhead=scenario.overhead,
            scanner=None,
        )
        result = simulator.run(scenario.make_inor_policy(), scenario.make_charger())
        assert result.energy_output_j > 0.0

    def test_scannerless_is_deterministic(self, scenario):
        def run_once():
            simulator = HarvestSimulator(
                trace=scenario.trace,
                boundary=scenario.boundary,
                module=scenario.module,
                n_modules=scenario.n_modules,
                scanner=None,
                nominal_compute_s=1.0e-3,
            )
            return simulator.run(
                scenario.make_inor_policy(), scenario.make_charger()
            )

        a, b = run_once(), run_once()
        assert np.array_equal(a.delivered_power_w, b.delivered_power_w)
        assert a.switch_overhead_j == pytest.approx(b.switch_overhead_j)


class TestTrackedChargerInLoop:
    def test_po_tracking_close_to_exact(self, scenario):
        """Full closed loop with real P&O tracking lands within a
        fraction of a percent of the exact-MPP loop."""
        simulator = scenario.make_simulator()
        exact = simulator.run(
            scenario.make_baseline_policy(),
            TEGCharger(exact_tracking=True),
        )
        tracked = simulator.run(
            scenario.make_baseline_policy(),
            TEGCharger(
                exact_tracking=False,
                mppt=PerturbObserveMPPT(initial_step_a=0.3, min_step_a=1e-3),
            ),
        )
        ratio = tracked.delivered_energy_j / exact.delivered_energy_j
        assert 0.995 < ratio <= 1.0 + 1e-9


class TestValidation:
    def test_rejects_zero_modules(self, scenario):
        with pytest.raises(SimulationError):
            HarvestSimulator(
                trace=scenario.trace,
                boundary=scenario.boundary,
                module=scenario.module,
                n_modules=0,
            )

    def test_trace_property_exposed(self, scenario):
        simulator = scenario.make_simulator()
        assert simulator.trace is scenario.trace
        assert simulator.n_modules == scenario.n_modules


class TestRuntimeAccounting:
    def test_dnor_runtime_concentrated_at_epochs(self, scenario):
        simulator = scenario.make_simulator()
        result = simulator.run(scenario.make_dnor_policy(), scenario.make_charger())
        runtimes = result.runtime_s
        # Epochs every 4 periods: the top quartile of runtimes should
        # dominate the total (planner runs are much heavier than the
        # between-epoch bookkeeping).
        sorted_rt = np.sort(runtimes)[::-1]
        top_quarter = sorted_rt[: max(len(sorted_rt) // 4, 1)].sum()
        assert top_quarter > 0.7 * runtimes.sum()
