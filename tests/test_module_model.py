"""The pluggable module-model protocol: registry, segmented physics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelParameterError
from repro.teg.datasheet import TGM_199_1_4_0_8
from repro.teg.materials import (
    BISMUTH_TELLURIDE,
    BISMUTH_TELLURIDE_REALISTIC,
    LEAD_TELLURIDE,
    SKUTTERUDITE,
)
from repro.teg.model import (
    ModuleModel,
    module_model_class,
    module_model_from_json_dict,
    module_model_to_json_dict,
    register_module_model,
    registered_module_model_types,
)
from repro.teg.module import SingleMaterialModule, TEGModule
from repro.teg.segmented import (
    ModuleSegment,
    SegmentedModule,
    hybrid_module,
    segmented_emf_reference,
)


def _three_segment():
    return SegmentedModule(
        name="SEG-3-TEST",
        segments=(
            ModuleSegment(material=SKUTTERUDITE, n_couples=100),
            ModuleSegment(material=LEAD_TELLURIDE, n_couples=80),
            ModuleSegment(material=BISMUTH_TELLURIDE, n_couples=60),
        ),
    )


def _drifting_hybrid():
    return hybrid_module(
        "HYB-DRIFT",
        hot_material=LEAD_TELLURIDE,
        cold_material=BISMUTH_TELLURIDE_REALISTIC,
        n_couples_hot=120,
        n_couples_cold=90,
        hot_fraction=0.55,
    )


class TestRegistry:
    def test_builtin_tags_are_registered(self):
        registry = registered_module_model_types()
        assert registry["single-material"] is TEGModule
        assert registry["segmented"] is SegmentedModule

    def test_single_material_alias(self):
        assert SingleMaterialModule is TEGModule

    def test_unknown_tag_is_refused(self):
        with pytest.raises(ConfigurationError, match="unknown module model"):
            module_model_class("peltier-cascade")

    def test_tag_shadowing_is_refused(self):
        class Impostor(TEGModule):
            model_type = "single-material"

        with pytest.raises(ConfigurationError, match="already registered"):
            register_module_model(Impostor)
        # registry unharmed
        assert module_model_class("single-material") is TEGModule

    def test_reregistering_same_class_is_noop(self):
        assert register_module_model(TEGModule) is TEGModule

    def test_empty_tag_is_refused(self):
        class Untagged(TEGModule):
            model_type = ""

        with pytest.raises(ConfigurationError, match="non-empty"):
            register_module_model(Untagged)

    def test_unregistered_instance_cannot_serialise(self):
        class Rogue(TEGModule):
            model_type = "rogue-unregistered"

        rogue = Rogue(
            name="R", material=BISMUTH_TELLURIDE, n_couples=10
        )
        with pytest.raises(ConfigurationError, match="not the registered"):
            module_model_to_json_dict(rogue)

    def test_envelope_shape_is_validated(self):
        with pytest.raises(ConfigurationError, match="envelope"):
            module_model_from_json_dict({"params": {}})
        with pytest.raises(ConfigurationError, match="envelope"):
            module_model_from_json_dict("single-material")


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "model",
        [TGM_199_1_4_0_8, _three_segment(), _drifting_hybrid()],
        ids=["single", "segmented", "hybrid"],
    )
    def test_loss_free_round_trip(self, model):
        envelope = module_model_to_json_dict(model)
        assert envelope["type"] == model.model_type
        again = module_model_from_json_dict(envelope)
        assert again == model
        assert again.to_json_dict() == envelope

    def test_fingerprints_differ_across_types(self):
        # Two registered types never share fingerprint tokens, even if
        # a parameter collision were engineered.
        single = TGM_199_1_4_0_8
        seg = _three_segment()
        assert single.fingerprint_tokens() != seg.fingerprint_tokens()
        assert single.fingerprint_tokens().startswith(
            b"module-model=single-material;"
        )
        assert seg.fingerprint_tokens().startswith(b"module-model=segmented;")

    def test_fingerprint_tracks_parameters(self):
        base = _three_segment()
        reordered = SegmentedModule(
            name=base.name, segments=tuple(reversed(base.segments))
        )
        assert base.fingerprint_tokens() != reordered.fingerprint_tokens()
        rebuilt = module_model_from_json_dict(base.to_json_dict())
        assert rebuilt.fingerprint_tokens() == base.fingerprint_tokens()


class TestSegmentGeometry:
    def test_default_weights_follow_couple_counts(self):
        seg = _three_segment()
        np.testing.assert_allclose(
            seg.segment_weights(), [100 / 240, 80 / 240, 60 / 240]
        )
        assert seg.n_couples == 240

    def test_explicit_fractions_are_normalised(self):
        seg = SegmentedModule(
            name="SEG-NORM",
            segments=(
                ModuleSegment(BISMUTH_TELLURIDE, 10, fraction=3.0),
                ModuleSegment(LEAD_TELLURIDE, 10, fraction=1.0),
            ),
        )
        np.testing.assert_allclose(seg.segment_weights(), [0.75, 0.25])

    def test_partial_fractions_fill_from_couple_share(self):
        seg = SegmentedModule(
            name="SEG-PART",
            segments=(
                ModuleSegment(BISMUTH_TELLURIDE, 50, fraction=0.5),
                ModuleSegment(LEAD_TELLURIDE, 50),
            ),
        )
        # missing fraction defaults to couple share (50/100 = 0.5)
        np.testing.assert_allclose(seg.segment_weights(), [0.5, 0.5])

    def test_centers_are_cumulative_midpoints(self):
        hyb = hybrid_module(
            "H", LEAD_TELLURIDE, BISMUTH_TELLURIDE, 10, 10, hot_fraction=0.6
        )
        np.testing.assert_allclose(hyb.segment_weights(), [0.6, 0.4])
        np.testing.assert_allclose(hyb.segment_centers(), [0.3, 0.8])

    def test_segment_mean_temps_walk_the_gradient(self):
        hyb = hybrid_module(
            "H", LEAD_TELLURIDE, BISMUTH_TELLURIDE, 10, 10, hot_fraction=0.6
        )
        delta = np.array([10.0])
        mean = np.array([100.0])
        hot_t, cold_t = hyb.segment_mean_temps(delta, mean)
        # hot face at 105, cold face at 95; centres at c=0.3 and c=0.8
        np.testing.assert_allclose(hot_t, [102.0])
        np.testing.assert_allclose(cold_t, [97.0])

    def test_validation(self):
        with pytest.raises(ModelParameterError, match="at least one"):
            SegmentedModule(name="EMPTY", segments=())
        with pytest.raises(ModelParameterError, match="positive integer"):
            ModuleSegment(BISMUTH_TELLURIDE, 0)
        with pytest.raises(ModelParameterError, match="positive finite"):
            ModuleSegment(BISMUTH_TELLURIDE, 10, fraction=-0.5)
        with pytest.raises(ModelParameterError, match="hot_fraction"):
            hybrid_module(
                "H", LEAD_TELLURIDE, BISMUTH_TELLURIDE, 10, 10,
                hot_fraction=1.5,
            )


class TestSegmentedElectrical:
    def test_vectorised_emf_matches_scalar_reference_nominal(self):
        seg = _three_segment()
        rng = np.random.default_rng(7)
        delta = rng.uniform(-5.0, 60.0, size=(40, 16))
        fast = seg.emf(delta)
        slow = segmented_emf_reference(seg, delta)
        assert np.array_equal(fast, slow)  # bit-identical, not allclose

    def test_vectorised_emf_matches_scalar_reference_with_mean(self):
        seg = _drifting_hybrid()
        rng = np.random.default_rng(11)
        delta = rng.uniform(0.0, 80.0, size=(30, 9))
        mean = rng.uniform(40.0, 300.0, size=(30, 9))
        fast = seg.emf(delta, mean)
        slow = segmented_emf_reference(seg, delta, mean)
        assert np.array_equal(fast, slow)

    def test_reference_rejects_shape_mismatch(self):
        seg = _three_segment()
        with pytest.raises(ModelParameterError, match="shape"):
            segmented_emf_reference(
                seg, np.zeros((4, 4)), np.zeros((4, 3))
            )

    def test_emf_coefficient_is_small_signal_limit(self):
        seg = _drifting_hybrid()
        mean = 150.0
        tiny = 1e-7
        numeric = float(
            seg.emf(np.array([tiny]), np.array([mean]))[0]
        ) / tiny
        assert numeric == pytest.approx(
            seg.emf_coefficient(mean), rel=1e-6
        )

    def test_nominal_coefficient_is_weighted_series_sum(self):
        seg = _three_segment()
        weights = seg.segment_weights()
        expected = (
            SKUTTERUDITE.seebeck_v_per_k * 100 * weights[0]
            + LEAD_TELLURIDE.seebeck_v_per_k * 80 * weights[1]
            + BISMUTH_TELLURIDE.seebeck_v_per_k * 60 * weights[2]
        )
        assert seg.emf_coefficient() == pytest.approx(expected, rel=0, abs=0)
        assert isinstance(seg.emf_coefficient(), float)

    def test_nominal_resistance_is_series_sum(self):
        seg = _three_segment()
        expected = (
            SKUTTERUDITE.resistance_ohm * 100
            + LEAD_TELLURIDE.resistance_ohm * 80
            + BISMUTH_TELLURIDE.resistance_ohm * 60
        )
        assert seg.internal_resistance() == expected
        assert isinstance(seg.internal_resistance(), float)

    def test_drift_resistance_responds_to_mean_temp(self):
        seg = _drifting_hybrid()
        nominal = seg.internal_resistance()
        hot = seg.internal_resistance(200.0)
        assert hot > nominal  # positive temp coefficients

    def test_models_are_hashable_for_stack_keys(self):
        # The serve hub groups sessions by (n, module, ...) dict keys.
        assert hash(_three_segment()) == hash(_three_segment())
        assert {TGM_199_1_4_0_8: 1}[TGM_199_1_4_0_8] == 1


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "model",
        [TGM_199_1_4_0_8, _three_segment()],
        ids=["single", "segmented"],
    )
    def test_emf_is_elementwise_and_shape_preserving(self, model):
        assert isinstance(model, ModuleModel)
        delta = np.arange(12, dtype=float).reshape(3, 4)
        out = np.asarray(model.emf(delta))
        assert out.shape == delta.shape
        row = np.asarray(model.emf(delta[1]))
        assert np.array_equal(out[1], row)

    def test_single_material_nominal_matches_legacy_inline(self):
        module = TGM_199_1_4_0_8
        legacy = module.material.seebeck_v_per_k * module.n_couples
        assert module.emf_coefficient() == legacy
        legacy_r = module.material.resistance_ohm * module.n_couples
        assert module.internal_resistance() == legacy_r
