"""Tests for repro.power.mppt — perturb & observe tracking."""

import numpy as np
import pytest

from repro.errors import ModelParameterError
from repro.power.mppt import PerturbObserveMPPT
from repro.teg.network import array_mpp, power_at_current


def parabola(i_opt: float, p_max: float):
    """A concave P(I) with known maximum."""
    return lambda i: p_max - (i - i_opt) ** 2


class TestTracking:
    def test_finds_parabola_maximum(self):
        tracker = PerturbObserveMPPT()
        result = tracker.track(parabola(2.0, 10.0))
        assert result.converged
        assert result.current_a == pytest.approx(2.0, abs=0.02)
        assert result.power_w == pytest.approx(10.0, abs=0.01)

    def test_warm_start_converges_faster(self):
        tracker = PerturbObserveMPPT()
        cold = tracker.track(parabola(2.0, 10.0), initial_current_a=0.0)
        warm = tracker.track(parabola(2.0, 10.0), initial_current_a=1.95)
        assert warm.iterations <= cold.iterations

    def test_fixed_step_limit_cycles(self):
        """Classic P&O (no shrink) oscillates but stays near the MPP."""
        tracker = PerturbObserveMPPT(
            initial_step_a=0.1, shrink_factor=1.0, max_iterations=100
        )
        result = tracker.track(parabola(2.0, 10.0))
        assert not result.converged
        assert abs(result.current_a - 2.0) < 0.3

    def test_tracks_teg_array_mpp(self, module_params):
        """On the real array P-I curve, P&O lands on the analytic MPP."""
        emf, res = module_params
        starts = [0, 5, 10, 15]
        analytic = array_mpp(emf, res, starts)
        tracker = PerturbObserveMPPT(initial_step_a=0.3, min_step_a=1e-4)
        result = tracker.track(
            lambda i: power_at_current(emf, res, starts, i)
        )
        assert result.power_w == pytest.approx(analytic.power_w, rel=1e-4)
        assert result.current_a == pytest.approx(analytic.current_a, rel=1e-2)

    def test_trajectory_records_path(self):
        tracker = PerturbObserveMPPT()
        result = tracker.track(parabola(1.0, 5.0))
        assert len(result.trajectory_a) >= 2
        assert result.trajectory_a[-1] == result.current_a

    def test_current_never_negative(self):
        tracker = PerturbObserveMPPT(initial_step_a=1.0)
        result = tracker.track(parabola(0.05, 1.0))
        assert all(i >= 0.0 for i in result.trajectory_a)


class TestSettleTime:
    def test_settle_time_linear_in_iterations(self):
        tracker = PerturbObserveMPPT(settle_time_per_step_s=1e-3)
        assert tracker.settle_time_s(50) == pytest.approx(0.05)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ModelParameterError):
            PerturbObserveMPPT().settle_time_s(-1)


class TestValidation:
    def test_rejects_bad_shrink(self):
        with pytest.raises(ModelParameterError):
            PerturbObserveMPPT(shrink_factor=0.0)

    def test_rejects_zero_step(self):
        with pytest.raises(ModelParameterError):
            PerturbObserveMPPT(initial_step_a=0.0)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ModelParameterError):
            PerturbObserveMPPT(max_iterations=0)
