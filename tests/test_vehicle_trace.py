"""Tests for repro.vehicle.trace."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.vehicle.drive_cycle import synthetic_urban
from repro.vehicle.engine import EngineModel
from repro.vehicle.trace import build_trace, default_radiator, porter_ii_trace


@pytest.fixture(scope="module")
def short_trace():
    return porter_ii_trace(duration_s=60.0, seed=7)


class TestBuildTrace:
    def test_sampling(self, short_trace):
        assert short_trace.dt_s == pytest.approx(0.5)
        assert short_trace.n_samples == 121
        assert short_trace.duration_s == pytest.approx(60.0)

    def test_arrays_aligned(self, short_trace):
        n = short_trace.n_samples
        assert short_trace.coolant_inlet_c.shape == (n,)
        assert short_trace.coolant_flow_kg_s.shape == (n,)
        assert short_trace.air_flow_kg_s.shape == (n,)
        assert short_trace.coolant_inlet_sensed_c.shape == (n,)

    def test_flows_positive(self, short_trace):
        assert np.all(short_trace.coolant_flow_kg_s > 0.0)
        assert np.all(short_trace.air_flow_kg_s > 0.0)
        assert np.all(short_trace.coolant_flow_sensed_kg_s > 0.0)

    def test_temperatures_in_operating_band(self, short_trace):
        assert np.all(short_trace.coolant_inlet_c > 60.0)
        assert np.all(short_trace.coolant_inlet_c < 110.0)

    def test_sensed_tracks_truth(self, short_trace):
        error = np.abs(
            short_trace.coolant_inlet_sensed_c - short_trace.coolant_inlet_c
        )
        assert error.mean() < 1.0

    def test_deterministic(self):
        a = porter_ii_trace(duration_s=30.0, seed=3)
        b = porter_ii_trace(duration_s=30.0, seed=3)
        assert np.array_equal(a.coolant_inlet_c, b.coolant_inlet_c)
        assert np.array_equal(a.coolant_inlet_sensed_c, b.coolant_inlet_sensed_c)

    def test_seed_changes_trace(self):
        a = porter_ii_trace(duration_s=30.0, seed=3)
        b = porter_ii_trace(duration_s=30.0, seed=4)
        assert not np.allclose(a.coolant_inlet_c, b.coolant_inlet_c)

    def test_internal_dt_must_divide(self):
        radiator = default_radiator()
        engine = EngineModel(radiator)
        with pytest.raises(SimulationError):
            build_trace(synthetic_urban(20.0, 1), engine, dt_s=0.5, internal_dt_s=1.0)


class TestWindow:
    def test_window_rebases_time(self, short_trace):
        sub = short_trace.window(10.0, 30.0)
        assert sub.time_s[0] == 0.0
        assert sub.duration_s == pytest.approx(20.0)

    def test_window_preserves_values(self, short_trace):
        sub = short_trace.window(10.0, 30.0)
        original = short_trace.coolant_inlet_c[20]  # t = 10 s at dt = 0.5
        assert sub.coolant_inlet_c[0] == original

    def test_window_too_small_raises(self, short_trace):
        with pytest.raises(SimulationError):
            short_trace.window(10.0, 10.1)


class TestShapeValidation:
    def test_mismatched_arrays_rejected(self, short_trace):
        from repro.vehicle.trace import RadiatorTrace

        with pytest.raises(SimulationError):
            RadiatorTrace(
                time_s=short_trace.time_s,
                coolant_inlet_c=short_trace.coolant_inlet_c[:-1],
                coolant_flow_kg_s=short_trace.coolant_flow_kg_s,
                air_flow_kg_s=short_trace.air_flow_kg_s,
                ambient_c=short_trace.ambient_c,
                speed_mps=short_trace.speed_mps,
                coolant_inlet_sensed_c=short_trace.coolant_inlet_sensed_c,
                coolant_flow_sensed_kg_s=short_trace.coolant_flow_sensed_kg_s,
            )
