"""Tests for repro.teg.datasheet."""

import pytest

from repro.errors import ModelParameterError
from repro.teg.datasheet import (
    MODULE_CATALOG,
    TGM_127_1_0_0_8,
    TGM_199_1_4_0_8,
    TGM_287_1_0_1_5,
    get_module,
)


class TestCatalog:
    def test_paper_module_present(self):
        assert "TGM-199-1.4-0.8" in MODULE_CATALOG

    def test_catalog_keys_match_names(self):
        for name, module in MODULE_CATALOG.items():
            assert module.name == name

    def test_catalog_has_multiple_entries(self):
        assert len(MODULE_CATALOG) >= 3

    def test_couple_counts(self):
        assert TGM_199_1_4_0_8.n_couples == 199
        assert TGM_127_1_0_0_8.n_couples == 127
        assert TGM_287_1_0_1_5.n_couples == 287


class TestGetModule:
    def test_lookup(self):
        assert get_module("TGM-199-1.4-0.8") is TGM_199_1_4_0_8

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(ModelParameterError, match="TGM-199-1.4-0.8"):
            get_module("no-such-module")


class TestPaperOperatingScale:
    """The Fig. 1 / Table I regime: radiator-scale dT on the paper module."""

    def test_mpp_power_at_radiator_delta_t(self):
        # Around dT = 35 K one module delivers roughly half a watt,
        # which is what makes the 100-module array a ~50 W system.
        power = TGM_199_1_4_0_8.mpp_power(35.0)
        assert 0.3 < power < 0.8

    def test_array_scale_voltage(self):
        # A ~10-group configuration should land near the 13.8 V bus.
        v_group = TGM_199_1_4_0_8.mpp(35.0).voltage_v
        assert 10.0 < 10 * v_group < 18.0
