"""Property-based tests for the Thevenin network algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.teg import network


@st.composite
def module_chain(draw, min_size=2, max_size=24):
    """A random module chain: EMFs in (0.1, 8) V, resistances (0.2, 5)."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    emf = draw(
        st.lists(
            st.floats(0.1, 8.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    res = draw(
        st.lists(
            st.floats(0.2, 5.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(emf), np.asarray(res)


@st.composite
def chain_with_partition(draw):
    emf, res = draw(module_chain())
    n = emf.size
    cuts = draw(
        st.lists(st.integers(min_value=1, max_value=n - 1), unique=True, max_size=n - 1)
    )
    starts = tuple([0] + sorted(cuts))
    return emf, res, starts


class TestTheveninProperties:
    @given(module_chain())
    @settings(max_examples=60, deadline=None)
    def test_parallel_resistance_below_min(self, chain):
        emf, res = chain
        _, r_g = network.parallel_reduce(emf, res)
        assert r_g <= res.min() + 1e-12

    @given(module_chain())
    @settings(max_examples=60, deadline=None)
    def test_parallel_emf_within_hull(self, chain):
        """Group EMF is a convex combination of member EMFs."""
        emf, res = chain
        e_g, _ = network.parallel_reduce(emf, res)
        assert emf.min() - 1e-9 <= e_g <= emf.max() + 1e-9

    @given(chain_with_partition())
    @settings(max_examples=60, deadline=None)
    def test_mpp_dominates_sampled_currents(self, case):
        emf, res, starts = case
        mpp = network.array_mpp(emf, res, starts)
        for frac in (0.0, 0.3, 0.7, 1.3, 2.0):
            p = network.power_at_current(emf, res, starts, mpp.current_a * frac)
            assert p <= mpp.power_w + 1e-9

    @given(chain_with_partition())
    @settings(max_examples=60, deadline=None)
    def test_configured_power_never_exceeds_ideal(self, case):
        """No wiring beats every-module-at-its-own-MPP."""
        emf, res, starts = case
        ideal = float((emf * emf / (4.0 * res)).sum())
        mpp = network.array_mpp(emf, res, starts)
        assert mpp.power_w <= ideal + 1e-9

    @given(chain_with_partition())
    @settings(max_examples=60, deadline=None)
    def test_module_power_sums_to_array_power(self, case):
        emf, res, starts = case
        mpp = network.array_mpp(emf, res, starts)
        _, _, p_modules = network.module_operating_points(
            emf, res, starts, mpp.current_a
        )
        assert np.isclose(p_modules.sum(), mpp.power_w, rtol=1e-9, atol=1e-9)

    @given(chain_with_partition())
    @settings(max_examples=60, deadline=None)
    def test_branch_currents_sum_per_group(self, case):
        emf, res, starts = case
        current = 0.7
        _, branch, _ = network.module_operating_points(emf, res, starts, current)
        bounds = list(starts) + [emf.size]
        for lo, hi in zip(bounds, bounds[1:]):
            assert np.isclose(branch[lo:hi].sum(), current, rtol=1e-9, atol=1e-9)

    @given(module_chain())
    @settings(max_examples=40, deadline=None)
    def test_segment_tables_agree_with_direct_reduction(self, chain):
        emf, res = chain
        tables = network.SegmentThevenin.from_modules(emf, res)
        n = emf.size
        for lo, hi in [(0, n), (0, 1), (n - 1, n), (n // 3, 2 * n // 3 + 1)]:
            if lo >= hi:
                continue
            e_direct, r_direct = network.parallel_reduce(emf[lo:hi], res[lo:hi])
            e_seg, r_seg = tables.segment(lo, hi)
            assert np.isclose(e_seg, e_direct, rtol=1e-9)
            assert np.isclose(r_seg, r_direct, rtol=1e-9)

    @given(st.integers(min_value=2, max_value=24))
    @settings(max_examples=40, deadline=None)
    def test_equal_modules_power_invariant_across_equal_splits(self, n):
        """Identical modules: every *equal-size* partition has equal MPP.

        (Unequal splits genuinely differ — that asymmetry is the entire
        source of reconfiguration gains, see DESIGN.md section 5.)
        """
        uniform_emf = np.full(n, 3.0)
        uniform_res = np.full(n, 1.5)
        p_ref = network.array_mpp(uniform_emf, uniform_res, [0]).power_w
        for n_groups in range(1, n + 1):
            if n % n_groups != 0:
                continue
            size = n // n_groups
            starts = list(range(0, n, size))
            p = network.array_mpp(uniform_emf, uniform_res, starts).power_w
            assert np.isclose(p, p_ref, rtol=1e-9)
