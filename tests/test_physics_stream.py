"""Chunked physics stream parity (repro.sim.physics.TracePhysicsStream).

The load-bearing guarantee of the streaming service: feeding a trace
through :class:`TracePhysicsStream` in chunks — any chunk size —
produces per-chunk rows and a snapshot that are **bit-identical** to
the one-shot :meth:`TracePhysics.compute` over the whole trace.  Pinned
for every registry scenario, noisy and noiseless, at chunk sizes
1 / 7 / full-trace.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.physics import TracePhysics, TracePhysicsStream
from repro.sim.scenario import build_named_scenario, default_registry

CHUNK_SIZES = (1, 7, None)  # None = the whole trace in one extend


def _noiseless_copy(trace):
    """The same trace with perfect sensors (sensed columns = true)."""
    return dataclasses.replace(
        trace,
        coolant_inlet_sensed_c=trace.coolant_inlet_c.copy(),
        coolant_flow_sensed_kg_s=trace.coolant_flow_kg_s.copy(),
    )


def _stream_whole_trace(scenario, trace, chunk):
    stream = TracePhysicsStream(
        scenario.radiator, scenario.module, scenario.n_modules
    )
    n = trace.n_samples
    size = n if chunk is None else chunk
    states = []
    lo = 0
    while lo < n:
        hi = min(lo + size, n)
        states.append(stream.extend_trace(trace, lo, hi))
        lo = hi
    return stream, states


def _assert_rows_bitwise(chunked, whole, lo, hi, label):
    assert chunked.shape == whole[lo:hi].shape, label
    assert np.array_equal(chunked, whole[lo:hi]), label


@pytest.mark.parametrize("name", default_registry().names())
@pytest.mark.parametrize("chunk", CHUNK_SIZES)
@pytest.mark.parametrize("noiseless", (False, True))
def test_stream_bit_identical_to_compute(name, chunk, noiseless):
    scenario = build_named_scenario(name, duration_s=12.0, n_modules=9)
    trace = (
        _noiseless_copy(scenario.trace) if noiseless else scenario.trace
    )
    reference = TracePhysics.compute(
        trace, scenario.radiator, scenario.module, scenario.n_modules
    )
    stream, states = _stream_whole_trace(scenario, trace, chunk)

    # Per-chunk rows match the one-shot rows, bitwise.
    for state in states:
        lo = state.start_index
        hi = lo + state.n_samples
        label = f"{name} chunk={chunk} [{lo}:{hi}]"
        _assert_rows_bitwise(
            state.sensed_temps_c, reference.sensed_temps_c, lo, hi, label
        )
        _assert_rows_bitwise(
            state.emf_true, reference.emf_true, lo, hi, label
        )
        _assert_rows_bitwise(
            state.ideal_power_w, reference.ideal_power_w, lo, hi, label
        )
        _assert_rows_bitwise(
            state.true_solution.delta_t_k,
            reference.true_solution.delta_t_k,
            lo,
            hi,
            label,
        )
        assert state.noiseless == noiseless

    # The snapshot reassembles the full TracePhysics, bitwise.
    snapshot = stream.snapshot(trace)
    assert snapshot.noiseless == noiseless
    for attr in ("sensed_temps_c", "emf_true", "ideal_power_w"):
        assert np.array_equal(
            getattr(snapshot, attr), getattr(reference, attr)
        ), attr
    # Every field the boundary's solution type carries — the flat
    # to_arrays() view covers subclass extras (e.g. the radiator's
    # exchanger columns and decay_per_m) without hard-coding them.
    assert type(snapshot.true_solution) is type(reference.true_solution)
    ref_arrays = reference.true_solution.to_arrays()
    snap_arrays = snapshot.true_solution.to_arrays()
    assert snap_arrays.keys() == ref_arrays.keys()
    for key, ref_value in ref_arrays.items():
        assert np.array_equal(snap_arrays[key], ref_value), key


def test_noiseless_chunks_alias_true_solution():
    scenario = build_named_scenario("porter-ii", duration_s=8.0, n_modules=4)
    trace = _noiseless_copy(scenario.trace)
    stream, states = _stream_whole_trace(scenario, trace, 5)
    for state in states:
        assert state.sensed_solution is state.true_solution
    assert stream.snapshot(trace).noiseless


def test_mixed_noise_chunks_snapshot_is_noisy():
    """One noisy chunk anywhere makes the whole snapshot noisy."""
    scenario = build_named_scenario("porter-ii", duration_s=8.0, n_modules=4)
    trace = scenario.trace
    clean = _noiseless_copy(trace)
    stream = TracePhysicsStream(
        scenario.radiator, scenario.module, scenario.n_modules
    )
    mid = trace.n_samples // 2
    first = stream.extend_trace(clean, 0, mid)
    second = stream.extend_trace(trace, mid, trace.n_samples)
    assert first.noiseless and not second.noiseless
    assert not stream.snapshot(trace).noiseless


def test_snapshot_validates_sample_count():
    scenario = build_named_scenario("porter-ii", duration_s=8.0, n_modules=4)
    trace = scenario.trace
    stream = TracePhysicsStream(
        scenario.radiator, scenario.module, scenario.n_modules
    )
    stream.extend_trace(trace, 0, trace.n_samples - 3)
    with pytest.raises(SimulationError, match="samples"):
        stream.snapshot(trace)


def test_extend_rejects_bad_columns():
    scenario = build_named_scenario("porter-ii", duration_s=8.0, n_modules=4)
    stream = TracePhysicsStream(
        scenario.radiator, scenario.module, scenario.n_modules
    )
    with pytest.raises(SimulationError):
        stream.extend(
            np.empty(0), np.empty(0), np.empty(0), np.empty(0)
        )
    with pytest.raises(SimulationError):
        stream.extend(
            np.ones((2, 2)), np.ones(4), np.ones(4), np.ones(4)
        )


def test_scanner_chunk_parity():
    """Chunked scan_batch on one generator == one whole-trace draw.

    This is the second half of the online==offline guarantee: the
    persisted generator fills requests sequentially in C order, so the
    sensor noise stream is independent of the chunking.
    """
    scenario = build_named_scenario("porter-ii", duration_s=10.0, n_modules=6)
    physics = TracePhysics.compute(
        scenario.trace, scenario.radiator, scenario.module, scenario.n_modules
    )
    whole = scenario.make_scanner()
    whole.reset()
    reference = whole.scan_batch(physics.sensed_temps_c)
    for chunk in (1, 7):
        chunked = scenario.make_scanner()
        chunked.reset()
        rows = []
        lo = 0
        n = physics.sensed_temps_c.shape[0]
        while lo < n:
            hi = min(lo + chunk, n)
            rows.append(chunked.scan_batch(physics.sensed_temps_c[lo:hi]))
            lo = hi
        assert np.array_equal(np.vstack(rows), reference), f"chunk={chunk}"
