"""Tests for repro.core.ehtr — the reconstructed prior-work baseline."""

import numpy as np
import pytest

from repro.core.ehtr import ehtr
from repro.core.exhaustive import best_partition_brute_force
from repro.core.inor import inor
from repro.errors import ConfigurationError


def radiator_like(n: int, seed: int = 0) -> tuple:
    rng = np.random.default_rng(seed)
    delta_t = 12.0 + 55.0 * np.exp(-2.2 * np.linspace(0, 1, n))
    delta_t += rng.normal(0.0, 1.5, n)
    return 0.075 * delta_t, np.full(n, 2.9)


class TestEHTR:
    def test_returns_valid_configuration(self):
        emf, res = radiator_like(25)
        result = ehtr(emf, res)
        assert result.config.n_modules == 25
        assert sum(result.config.group_sizes) == 25

    def test_near_optimal_on_small_chain(self):
        for seed in range(4):
            emf, res = radiator_like(12, seed)
            exact = best_partition_brute_force(emf, res)
            result = ehtr(emf, res)
            assert result.mpp.power_w >= 0.97 * exact.mpp.power_w

    def test_raw_power_at_least_inor_raw(self):
        """EHTR scans every n and refines, so its *electrical* MPP
        should not lose to INOR's restricted scan."""
        emf, res = radiator_like(40, 3)
        e = ehtr(emf, res)
        i = inor(emf, res, n_min=6, n_max=14)
        assert e.mpp.power_w >= i.mpp.power_w * (1.0 - 1e-9)

    def test_refinement_improves_or_matches_greedy(self):
        emf, res = radiator_like(30, 1)
        refined = ehtr(emf, res)
        unrefined = ehtr(emf, res, max_sweeps_per_n=0)
        assert refined.mpp.power_w >= unrefined.mpp.power_w * (1.0 - 1e-12)

    def test_sweep_count_reported(self):
        emf, res = radiator_like(30, 1)
        result = ehtr(emf, res)
        assert result.refinement_sweeps > 0

    def test_slower_than_inor(self):
        """The complexity story of the paper: EHTR pays a big runtime
        premium over INOR at N = 100."""
        import time

        emf, res = radiator_like(100, 2)
        t0 = time.perf_counter()
        ehtr(emf, res)
        t_ehtr = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            inor(emf, res, n_min=8, n_max=16)
        t_inor = (time.perf_counter() - t0) / 5
        assert t_ehtr > 3.0 * t_inor

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ConfigurationError):
            ehtr(np.ones(5), np.ones(4))

    def test_deterministic(self):
        emf, res = radiator_like(30, 4)
        a = ehtr(emf, res)
        b = ehtr(emf, res)
        assert a.config == b.config
