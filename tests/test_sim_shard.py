"""Tests for the durable sharded experiment grids (repro.sim.shard).

Three layers are pinned here:

* the loss-free JSON round trip of :class:`Scenario` and
  :class:`ExperimentCase` — *exact* for every registry scenario (the
  shard manifest depends on it),
* the queue protocol: atomic-rename claims, lease expiry and
  re-queueing, idempotent duplicate execution, resume after ``init``,
* the acceptance criterion: ``init`` + two concurrent ``work``
  processes + ``collate`` reproduce the serial
  :class:`ExperimentRunner` collation bit-identically across all
  registry scenarios, including after a killed worker's lease is
  recovered.
"""

import dataclasses
import json
import multiprocessing
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import ExperimentCase, ExperimentRunner, grid_cases
from repro.sim.scenario import (
    Scenario,
    build_named_scenario,
    default_registry,
    default_scenario,
)
from repro.sim.shard import (
    claim_case,
    collate_shard,
    init_shard,
    load_shard_manifest,
    shard_status,
    work_shard,
)

#: Result fields the engine's determinism contract covers (``runtime_s``
#: is measured ``decide`` wall-clock and varies between runs by design).
DETERMINISTIC_FIELDS = (
    "time_s",
    "gross_power_w",
    "delivered_power_w",
    "ideal_power_w",
    "array_voltage_v",
    "n_groups_series",
)


def assert_collations_bit_identical(a, b):
    assert [c.name for c, _ in a] == [c.name for c, _ in b]
    for (_, ra), (_, rb) in zip(a, b):
        for field in DETERMINISTIC_FIELDS:
            assert np.array_equal(getattr(ra, field), getattr(rb, field)), field
        assert ra.scheme == rb.scheme
        assert ra.switch_times_s == rb.switch_times_s
        assert ra.overhead_events == rb.overhead_events
    assert a.to_json(deterministic_only=True) == b.to_json(
        deterministic_only=True
    )


@pytest.fixture(scope="module")
def scenario():
    return default_scenario(
        duration_s=20.0, seed=5, n_modules=16, nominal_compute_s=1.0e-3
    )


@pytest.fixture(scope="module")
def small_grid(scenario):
    return grid_cases([scenario], ["DNOR", "INOR", "Baseline"])


@pytest.fixture(scope="module")
def small_serial(small_grid):
    return ExperimentRunner(small_grid, executor="serial").run()


class TestScenarioJsonRoundTrip:
    @pytest.mark.parametrize("name", default_registry().names())
    def test_registry_scenarios_exact(self, name):
        scenario = build_named_scenario(name, duration_s=20.0, n_modules=16)
        rebuilt = Scenario.from_json(scenario.to_json())
        # Physics fingerprint hashes every trace column byte and every
        # thermal/electrical model parameter — equality is the
        # strongest single check that nothing was lost.
        assert rebuilt.physics_fingerprint() == scenario.physics_fingerprint()
        for column in (
            "time_s",
            "coolant_inlet_c",
            "coolant_flow_kg_s",
            "air_flow_kg_s",
            "ambient_c",
            "speed_mps",
            "coolant_inlet_sensed_c",
            "coolant_flow_sensed_kg_s",
        ):
            assert np.array_equal(
                getattr(rebuilt.trace, column), getattr(scenario.trace, column)
            ), column
        assert rebuilt.trace.name == scenario.trace.name
        assert rebuilt.module == scenario.module
        assert rebuilt.overhead == scenario.overhead
        assert rebuilt.n_modules == scenario.n_modules
        assert rebuilt.tp_seconds == scenario.tp_seconds
        assert rebuilt.control_period_s == scenario.control_period_s
        assert rebuilt.sensor_seed == scenario.sensor_seed
        assert rebuilt.scanner_noise_std_k == scenario.scanner_noise_std_k
        assert rebuilt.nominal_compute_s == scenario.nominal_compute_s
        assert rebuilt.inor_kernel == scenario.inor_kernel

    def test_radiator_models_survive(self):
        scenario = build_named_scenario("industrial-boiler", duration_s=20.0)
        rebuilt = Scenario.from_json(scenario.to_json())
        assert (
            rebuilt.radiator.geometry.path_length_m
            == scenario.radiator.geometry.path_length_m
        )
        assert (
            rebuilt.radiator.exchanger.ua_model
            == scenario.radiator.exchanger.ua_model
        )
        assert rebuilt.radiator.coolant == scenario.radiator.coolant
        assert rebuilt.radiator.air == scenario.radiator.air
        assert (
            rebuilt.radiator.sink_preheat_fraction
            == scenario.radiator.sink_preheat_fraction
        )

    def test_simulation_bit_identical_after_round_trip(self, scenario):
        rebuilt = Scenario.from_json(scenario.to_json())
        a = scenario.make_simulator().run(
            scenario.make_inor_policy(), scenario.make_charger()
        )
        b = rebuilt.make_simulator().run(
            rebuilt.make_inor_policy(), rebuilt.make_charger()
        )
        for field in DETERMINISTIC_FIELDS:
            assert np.array_equal(getattr(a, field), getattr(b, field)), field
        assert a.overhead_events == b.overhead_events

    def test_unknown_version_refused(self, scenario):
        data = scenario.to_json_dict()
        data["format_version"] = 999
        with pytest.raises(ConfigurationError, match="version"):
            Scenario.from_json_dict(data)

    def test_strict_json(self, scenario):
        json.loads(scenario.to_json())  # strict parse, no NaN tokens

    def test_experiment_case_round_trip(self, scenario):
        case = ExperimentCase(
            name="grid/x", scenario=scenario, policy="INOR", with_battery=False
        )
        rebuilt = ExperimentCase.from_json_dict(
            json.loads(json.dumps(case.to_json_dict()))
        )
        assert rebuilt.name == case.name
        assert rebuilt.policy == case.policy
        assert rebuilt.with_battery is False
        assert (
            rebuilt.scenario.physics_fingerprint()
            == scenario.physics_fingerprint()
        )


class TestShardQueue:
    def test_init_creates_manifest_queue_and_warm_cache(
        self, small_grid, tmp_path
    ):
        shard = tmp_path / "shard"
        manifest = init_shard(shard, small_grid)
        assert len(manifest) == len(small_grid)
        assert [c.name for c in manifest.cases] == [c.name for c in small_grid]
        status = shard_status(shard)
        assert status.total == len(small_grid)
        assert status.pending == len(small_grid)
        assert not status.complete
        # One unique scenario in the grid: exactly one warm artifact.
        assert len(list((shard / "cache").glob("*.npz"))) == 1
        assert (shard / "manifest.json").is_file()

    def test_manifest_round_trips_from_disk(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        manifest = load_shard_manifest(shard)
        for original, loaded in zip(small_grid, manifest.cases):
            assert (
                loaded.scenario.physics_fingerprint()
                == original.scenario.physics_fingerprint()
            )

    def test_claims_are_exclusive_and_ordered(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        ids = [claim_case(shard, worker_id=f"w{i}") for i in range(4)]
        # Three cases: the fourth claim finds nothing claimable.
        assert ids == ["case-00000", "case-00001", "case-00002", None]

    def test_live_lease_not_stolen(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        claim_case(shard, worker_id="w1", lease_ttl_s=900.0)
        claim_case(shard, worker_id="w1", lease_ttl_s=900.0)
        claim_case(shard, worker_id="w1", lease_ttl_s=900.0)
        assert claim_case(shard, worker_id="w2") is None
        status = shard_status(shard)
        assert status.leased == 3 and status.pending == 0

    def test_expired_lease_requeued(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        first = claim_case(shard, worker_id="dead", lease_ttl_s=0.01)
        time.sleep(0.03)
        assert shard_status(shard).expired == 1
        # Fresh pending tickets are preferred over expired-lease
        # recovery; once they are gone the dead worker's case comes
        # back.
        assert claim_case(shard, worker_id="w2") == "case-00001"
        assert claim_case(shard, worker_id="w2") == "case-00002"
        assert claim_case(shard, worker_id="w2") == first

    def test_init_refuses_different_grid(self, small_grid, scenario, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        other = grid_cases([scenario], ["Baseline"])
        with pytest.raises(SimulationError, match="different"):
            init_shard(shard, other, warm=False)

    def test_resume_adopts_recorded_store(self, small_grid, tmp_path):
        """A second init with the default cache_dir must resume a shard
        whose manifest records an explicit store (same grid != same
        cache location)."""
        shard = tmp_path / "shard"
        store = tmp_path / "store"
        init_shard(shard, small_grid, cache_dir=store, warm=False)
        manifest = init_shard(shard, small_grid, warm=False)
        assert manifest.cache_dir == store

    def test_resume_with_conflicting_store_refused(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        with pytest.raises(SimulationError, match="physics store"):
            init_shard(
                shard, small_grid, cache_dir=tmp_path / "other", warm=False
            )

    def test_init_rejects_duplicate_names(self, scenario, tmp_path):
        case = ExperimentCase(name="x", scenario=scenario, policy="Baseline")
        with pytest.raises(SimulationError, match="unique"):
            init_shard(tmp_path / "shard", [case, case], warm=False)

    def test_collate_incomplete_raises(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        with pytest.raises(SimulationError, match="not complete"):
            collate_shard(shard)

    def test_not_a_shard_dir_raises(self, tmp_path):
        with pytest.raises(SimulationError, match="manifest"):
            work_shard(tmp_path)

    def test_failing_case_hands_lease_back(self, scenario, tmp_path):
        """An in-process failure must not park the case behind its
        lease TTL: the worker is alive to re-queue it before raising."""
        shard = tmp_path / "shard"
        bad = ExperimentCase(name="bad", scenario=scenario, policy="MAGIC")
        good = ExperimentCase(name="ok", scenario=scenario, policy="Baseline")
        init_shard(shard, [bad, good], warm=False)
        with pytest.raises(SimulationError, match="case 'bad' failed|MAGIC"):
            work_shard(shard, worker_id="w1")
        status = shard_status(shard)
        assert status.leased == 0 and status.expired == 0
        assert status.pending == 2  # immediately claimable again

    def test_max_cases_stops_early(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid)
        done = work_shard(shard, max_cases=1)
        assert len(done) == 1
        status = shard_status(shard)
        assert status.done == 1 and status.pending == 2


class TestSingleWorkerEquivalence:
    def test_collation_matches_serial(
        self, small_grid, small_serial, tmp_path
    ):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid)
        done = work_shard(shard, worker_id="only")
        assert len(done) == len(small_grid)
        assert_collations_bit_identical(collate_shard(shard), small_serial)

    def test_duplicate_execution_is_idempotent(
        self, small_grid, small_serial, tmp_path
    ):
        """A lease that expires mid-run means two workers execute the
        same case; determinism makes the second write a no-op."""
        shard = tmp_path / "shard"
        init_shard(shard, small_grid)
        work_shard(shard, worker_id="w1")
        # Re-queue a finished case by hand, as if its first worker's
        # lease had expired just before it published.
        manifest = load_shard_manifest(shard)
        case_id = manifest.case_ids[0]
        (shard / "queue" / "pending" / f"{case_id}.json").write_text(
            json.dumps({"case_id": case_id})
        )
        done = work_shard(shard, worker_id="w2")
        assert done == [case_id]
        assert_collations_bit_identical(collate_shard(shard), small_serial)

    def test_runner_shard_executor(self, small_grid, small_serial):
        collation = ExperimentRunner(
            small_grid, executor="shard", max_workers=2
        ).run()
        assert_collations_bit_identical(collation, small_serial)

    def test_runner_shard_executor_durable_dir(
        self, small_grid, small_serial, tmp_path
    ):
        shard = tmp_path / "shard"
        collation = ExperimentRunner(
            small_grid, executor="shard", max_workers=1, shard_dir=shard
        ).run()
        assert_collations_bit_identical(collation, small_serial)
        # Durable: the artifacts survive the runner.
        assert shard_status(shard).complete
        assert_collations_bit_identical(collate_shard(shard), small_serial)

    def test_shard_dir_requires_shard_executor(self, small_grid, tmp_path):
        with pytest.raises(SimulationError, match="shard_dir"):
            ExperimentRunner(
                small_grid, executor="serial", shard_dir=tmp_path / "s"
            )


def _hang_after_claim(shard_dir: str, sentinel: str) -> None:
    """Worker stand-in that claims a case, signals, then wedges."""
    claim_case(shard_dir, worker_id="doomed", lease_ttl_s=0.5)
    with open(sentinel, "w") as handle:
        handle.write("claimed")
    time.sleep(600.0)


class TestCrashRecovery:
    def test_killed_worker_lease_expires_and_case_is_recovered(
        self, small_grid, small_serial, tmp_path
    ):
        """The acceptance crash story: a worker is SIGKILLed after
        claiming a case; its lease expires, another worker re-claims,
        and the final collation is bit-identical to the uninterrupted
        serial run."""
        shard = tmp_path / "shard"
        init_shard(shard, small_grid)
        sentinel = tmp_path / "claimed.flag"
        worker = multiprocessing.Process(
            target=_hang_after_claim, args=(str(shard), str(sentinel))
        )
        worker.start()
        try:
            deadline = time.time() + 30.0
            while not sentinel.exists():
                assert time.time() < deadline, "worker never claimed"
                time.sleep(0.01)
            os.kill(worker.pid, signal.SIGKILL)
        finally:
            worker.join(timeout=10.0)
        # The dead worker's claim is still on the books...
        status = shard_status(shard)
        assert status.done == 0
        assert status.leased + status.expired == 1
        time.sleep(0.6)  # ...until its 0.5 s TTL passes.
        assert shard_status(shard).expired == 1
        done = work_shard(shard, worker_id="rescuer")
        assert len(done) == len(small_grid)
        assert shard_status(shard).complete
        assert_collations_bit_identical(collate_shard(shard), small_serial)

    def test_resume_via_second_init(self, small_grid, small_serial, tmp_path):
        """Stopping after one case and re-running init + work finishes
        the grid without redoing the completed case."""
        shard = tmp_path / "shard"
        init_shard(shard, small_grid)
        work_shard(shard, max_cases=1)
        manifest = init_shard(shard, small_grid)  # resume is idempotent
        assert len(manifest) == len(small_grid)
        assert shard_status(shard).done == 1
        done = work_shard(shard)
        assert len(done) == len(small_grid) - 1
        assert_collations_bit_identical(collate_shard(shard), small_serial)


class TestAcceptanceAllScenarios:
    """ISSUE 4 acceptance pin: two concurrent workers + collate ==
    serial, across every registry scenario, including an interrupted
    (expired-lease) case."""

    @pytest.fixture(scope="class")
    def grid(self):
        scenarios = [
            build_named_scenario(name, duration_s=20.0, n_modules=16)
            for name in default_registry().names()
        ]
        return grid_cases(scenarios, ["DNOR", "Baseline"])

    @pytest.fixture(scope="class")
    def serial(self, grid):
        return ExperimentRunner(grid, executor="serial").run()

    def test_two_concurrent_workers_match_serial(
        self, grid, serial, tmp_path
    ):
        shard = tmp_path / "shard"
        init_shard(shard, grid)
        # Interrupt before the fleet starts: one case was claimed by a
        # worker that died; its lease must expire and be recovered by
        # the concurrent workers below.
        claim_case(shard, worker_id="dead", lease_ttl_s=0.01)
        time.sleep(0.03)
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(work_shard, str(shard), f"host-{i}")
                for i in range(2)
            ]
            counts = [len(future.result()) for future in futures]
        assert sum(counts) == len(grid)  # every case ran exactly once
        status = shard_status(shard)
        assert status.complete
        assert_collations_bit_identical(collate_shard(shard), serial)


class TestConfiguredLeaseTTL:
    """Regression suite for the lease TTL/status bugfix sweep.

    The bug: an unstamped (or unparseable) lease fell back to the
    module-level ``DEFAULT_LEASE_TTL_S`` instead of the shard's
    configured TTL — a shard initialised with a short TTL waited the
    full 15 minutes to recover a crashed-in-the-stamp-window worker,
    and one with a *longer* TTL saw healthy claims stolen early.  The
    mtime fallback also compared filesystem mtimes (NFS clock domain)
    without any skew tolerance.
    """

    def _unstamped_lease(self, shard, case_id, age_s):
        """Fabricate a claimed-but-never-stamped lease of a given age."""
        from repro.sim.shard import _ShardPaths

        paths = _ShardPaths(shard)
        ticket = paths.ticket(case_id)
        lease = paths.lease(case_id)
        os.rename(ticket, lease)
        lease.write_text("")  # unparseable: the pre-stamp window
        stamp = time.time() - age_s
        os.utime(lease, (stamp, stamp))
        return lease

    def test_manifest_records_configured_ttl(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False, lease_ttl_s=5.0)
        manifest = load_shard_manifest(shard)
        assert manifest.lease_ttl_s == 5.0
        # And an un-configured shard resolves to the default.
        other = tmp_path / "other"
        init_shard(other, small_grid, warm=False)
        from repro.sim.shard import DEFAULT_LEASE_TTL_S

        assert load_shard_manifest(other).lease_ttl_s == DEFAULT_LEASE_TTL_S

    def test_unstamped_lease_honors_configured_short_ttl(
        self, small_grid, tmp_path
    ):
        """TTL 5 s + 30 s skew margin: a 40 s old unstamped lease is
        expired, a 20 s old one is not.  Under the old code neither
        would expire before the hard-coded 900 s."""
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False, lease_ttl_s=5.0)
        self._unstamped_lease(shard, "case-00000", age_s=40.0)
        self._unstamped_lease(shard, "case-00001", age_s=20.0)
        status = shard_status(shard)
        assert status.expired == 1
        assert status.leased == 1
        assert {info.case_id for info in status.expired_leases} == {
            "case-00000"
        }
        assert status.expired_leases[0].worker == "<unstamped>"

    def test_unstamped_lease_honors_configured_long_ttl(
        self, small_grid, tmp_path
    ):
        """A shard configured *above* the default must not have its
        unstamped leases stolen at the 900 s default."""
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False, lease_ttl_s=2000.0)
        self._unstamped_lease(shard, "case-00000", age_s=1000.0)
        status = shard_status(shard)
        assert status.expired == 0
        assert status.leased == 1

    def test_stamped_lease_has_no_skew_margin(self, small_grid, tmp_path):
        """The stamped claim time is authoritative — same clock domain,
        no margin; a 0.01 s TTL must expire in well under 30 s."""
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False, lease_ttl_s=300.0)
        claim_case(shard, worker_id="dead", lease_ttl_s=0.01)
        time.sleep(0.03)
        assert shard_status(shard).expired == 1

    def test_claim_stamps_manifest_ttl_by_default(
        self, small_grid, tmp_path
    ):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False, lease_ttl_s=123.0)
        case_id = claim_case(shard, worker_id="w1")
        from repro.sim.shard import _ShardPaths

        lease = json.loads(_ShardPaths(shard).lease(case_id).read_text())
        assert lease["lease_ttl_s"] == 123.0
        assert lease["worker"] == "w1"

    def test_resume_ttl_semantics(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False, lease_ttl_s=60.0)
        # Same explicit TTL and omitted TTL both resume.
        init_shard(shard, small_grid, warm=False, lease_ttl_s=60.0)
        resumed = init_shard(shard, small_grid, warm=False)
        assert resumed.lease_ttl_s == 60.0
        # An explicitly different TTL is refused, like cache_dir.
        with pytest.raises(SimulationError, match="lease TTL"):
            init_shard(shard, small_grid, warm=False, lease_ttl_s=10.0)

    def test_init_rejects_nonpositive_ttl(self, small_grid, tmp_path):
        with pytest.raises(SimulationError, match="lease_ttl_s"):
            init_shard(
                tmp_path / "shard", small_grid, warm=False, lease_ttl_s=0.0
            )


class TestStatusDetail:
    def test_expired_and_stale_leases_are_named(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False, lease_ttl_s=300.0)
        from repro.sim.shard import _ShardPaths

        paths = _ShardPaths(shard)
        # An expired stamped lease names its worker...
        dead = claim_case(shard, worker_id="dead-host", lease_ttl_s=0.01)
        time.sleep(0.03)
        # ...and a live lease past half its TTL is stale.
        slow = claim_case(shard, worker_id="slow-host", lease_ttl_s=10.0)
        stamp = json.loads(paths.lease(slow).read_text())
        stamp["claimed_at"] = time.time() - 6.0
        paths.lease(slow).write_text(json.dumps(stamp))

        status = shard_status(shard)
        assert status.expired == 1 and status.leased == 1
        expired_info = status.expired_leases[0]
        assert expired_info.case_id == dead
        assert expired_info.worker == "dead-host"
        assert expired_info.ttl_s == 0.01
        stale_info = status.stale_leases[0]
        assert stale_info.case_id == slow
        assert stale_info.worker == "slow-host"
        assert 5.0 < stale_info.age_s < 8.0

        lines = status.detail_lines()
        assert any("dead-host" in line and "expired" in line for line in lines)
        assert any("slow-host" in line and "stale" in line for line in lines)

    def test_fresh_lease_is_not_stale(self, small_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        claim_case(shard, worker_id="fresh")
        status = shard_status(shard)
        assert status.leased == 1
        assert status.stale_leases == ()
        assert status.detail_lines() == []


class TestFusedGroups:
    """Shard format v2: fused-group work items (ISSUE 10 tentpole).

    Cases sharing a physics fingerprint, policy and kernel shape are
    recorded as ``group-*`` tickets at init and drained through one
    grid-stacked pass per claim; singletons and unfusable cases stay
    ordinary case tickets.  The collation contract is unchanged —
    bit-identical to serial no matter which route ran a case — and a
    v1 manifest still resumes, under v1 (ungrouped) semantics.
    """

    @pytest.fixture(scope="class")
    def fused_grid(self):
        scenario = default_scenario(
            duration_s=20.0, seed=5, n_modules=16, nominal_compute_s=1.0e-3
        )
        return grid_cases(
            [scenario], ["DNOR", "Baseline"], scanner_noise_std_k=[0.02, 0.1]
        )

    @pytest.fixture(scope="class")
    def fused_serial(self, fused_grid):
        return ExperimentRunner(fused_grid, executor="serial").run()

    def test_init_records_groups_and_group_tickets(
        self, fused_grid, tmp_path
    ):
        shard = tmp_path / "shard"
        manifest = init_shard(shard, fused_grid, warm=False)
        # Two fused groups (DNOR x noise, Baseline x noise), two cases
        # each; every case belongs to a group, so the queue holds only
        # group tickets.
        assert len(manifest.groups) == 2
        assert sorted(gid for gid, _ in manifest.groups) == [
            "group-00000",
            "group-00001",
        ]
        assert {len(ids) for _, ids in manifest.groups} == {2}
        assert manifest.grouped_case_ids() == set(manifest.case_ids)
        pending = sorted(p.name for p in (shard / "queue" / "pending").iterdir())
        assert pending == ["group-00000.json", "group-00001.json"]

    def test_unfusable_cases_stay_case_tickets(self, tmp_path):
        # EHTR has no stacked epoch kernel; a lone Baseline is a
        # singleton — neither becomes a group ticket.
        scenario = default_scenario(
            duration_s=20.0, seed=5, n_modules=16, nominal_compute_s=1.0e-3
        )
        cases = grid_cases([scenario], ["EHTR", "Baseline"])
        shard = tmp_path / "shard"
        manifest = init_shard(shard, cases, warm=False)
        assert manifest.groups == ()
        pending = sorted(p.name for p in (shard / "queue" / "pending").iterdir())
        assert pending == ["case-00000.json", "case-00001.json"]

    def test_single_worker_matches_serial(
        self, fused_grid, fused_serial, tmp_path
    ):
        shard = tmp_path / "shard"
        init_shard(shard, fused_grid)
        done = work_shard(shard, worker_id="only")
        assert sorted(done) == sorted(load_shard_manifest(shard).case_ids)
        assert_collations_bit_identical(collate_shard(shard), fused_serial)

    def test_two_concurrent_workers_match_serial(
        self, fused_grid, fused_serial, tmp_path
    ):
        shard = tmp_path / "shard"
        init_shard(shard, fused_grid)
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(work_shard, str(shard), f"host-{i}")
                for i in range(2)
            ]
            counts = [len(future.result()) for future in futures]
        assert sum(counts) == len(fused_grid)
        assert shard_status(shard).complete
        assert_collations_bit_identical(collate_shard(shard), fused_serial)

    def test_mid_group_crash_reruns_idempotently(
        self, fused_grid, fused_serial, tmp_path
    ):
        """A group whose worker died after publishing one member is
        re-claimed whole; determinism makes the republish a no-op."""
        from repro.sim.engine import run_case
        from repro.sim.shard import publish_result

        shard = tmp_path / "shard"
        init_shard(shard, fused_grid)
        manifest = load_shard_manifest(shard)
        group_id, member_ids = manifest.groups[0]
        first = member_ids[0]
        case = manifest.by_id()[first]
        publish_result(
            shard, first, case,
            run_case(case, cache_dir=str(manifest.cache_dir)),
        )
        status = shard_status(shard)
        assert status.done == 1 and not status.complete
        done = work_shard(shard, worker_id="rescuer")
        # The partially-done group reports every member, including the
        # already-published one (the rerun overwrote it bit-identically).
        assert first in done
        assert_collations_bit_identical(collate_shard(shard), fused_serial)

    def test_expired_group_lease_requeued(self, fused_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, fused_grid, warm=False)
        dead = claim_case(shard, worker_id="dead", lease_ttl_s=0.01)
        assert dead == "group-00000"
        time.sleep(0.03)
        status = shard_status(shard)
        assert status.expired == 2  # both member cases count expired
        assert status.pending == 2
        # Fresh pending group first, then the expired one is recovered.
        assert claim_case(shard, worker_id="w2") == "group-00001"
        assert claim_case(shard, worker_id="w2") == dead

    def test_status_reports_groups_distinctly(self, fused_grid, tmp_path):
        shard = tmp_path / "shard"
        init_shard(shard, fused_grid, warm=False)
        status = shard_status(shard)
        assert [info.state for info in status.fused_groups] == [
            "pending",
            "pending",
        ]
        assert {info.n_cases for info in status.fused_groups} == {2}
        claimed = claim_case(shard, worker_id="busy-host")
        status = shard_status(shard)
        by_id = {info.group_id: info for info in status.fused_groups}
        assert by_id[claimed].state == "leased"
        assert by_id[claimed].worker == "busy-host"
        assert status.leased == 2 and status.pending == 2
        lines = status.group_lines()
        assert any(
            claimed in line and "leased" in line and "busy-host" in line
            for line in lines
        )

    def test_watch_prints_group_lines(self, fused_grid, tmp_path):
        import io

        from repro.sim.shard import watch_shard

        shard = tmp_path / "shard"
        init_shard(shard, fused_grid, warm=False)
        stream = io.StringIO()
        watch_shard(shard, interval_s=0.01, max_ticks=1, stream=stream)
        out = stream.getvalue()
        assert "group-00000" in out and "group-00001" in out

    def test_v1_manifest_resumes_ungrouped(
        self, fused_grid, fused_serial, tmp_path
    ):
        """A v1 shard (no recorded groups) keeps v1 semantics on
        resume: per-case tickets, no group items, same collation."""
        shard = tmp_path / "shard"
        init_shard(shard, fused_grid)
        # Rewrite the manifest as the v1 layout and clear the queue, as
        # if an old release had initialised this shard.
        manifest_path = shard / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data["version"] = 1
        del data["groups"]
        manifest_path.write_text(json.dumps(data))
        for ticket in (shard / "queue" / "pending").iterdir():
            ticket.unlink()
        manifest = init_shard(shard, fused_grid)  # resume, not refused
        assert manifest.groups == ()
        pending = sorted(p.name for p in (shard / "queue" / "pending").iterdir())
        assert pending == [f"{cid}.json" for cid in manifest.case_ids]
        assert shard_status(shard).fused_groups == ()
        work_shard(shard, worker_id="v1-worker")
        assert_collations_bit_identical(collate_shard(shard), fused_serial)

    def test_unsupported_version_names_supported_range(
        self, fused_grid, tmp_path
    ):
        shard = tmp_path / "shard"
        init_shard(shard, fused_grid, warm=False)
        manifest_path = shard / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data["version"] = 999
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(SimulationError, match="versions 1, 2"):
            load_shard_manifest(shard)


class TestWatchShard:
    def test_watch_returns_when_complete(self, small_grid, tmp_path):
        import io

        from repro.sim.shard import publish_result, watch_shard
        from repro.sim.engine import run_case

        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        manifest = load_shard_manifest(shard)
        for case_id, case in manifest.by_id().items():
            publish_result(
                shard, case_id, case,
                run_case(case, cache_dir=str(manifest.cache_dir)),
            )
        stream = io.StringIO()
        status = watch_shard(shard, interval_s=0.01, stream=stream)
        assert status.complete
        assert stream.getvalue().count("done") == 1

    def test_watch_max_ticks_on_incomplete_shard(
        self, small_grid, tmp_path
    ):
        import io

        from repro.sim.shard import watch_shard

        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        stream = io.StringIO()
        status = watch_shard(
            shard, interval_s=0.01, max_ticks=3, stream=stream
        )
        assert not status.complete
        assert stream.getvalue().count("pending") == 3

    def test_watch_rejects_nonpositive_interval(self, small_grid, tmp_path):
        from repro.sim.shard import watch_shard

        shard = tmp_path / "shard"
        init_shard(shard, small_grid, warm=False)
        with pytest.raises(SimulationError, match="interval"):
            watch_shard(shard, interval_s=0.0)
