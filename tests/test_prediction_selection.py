"""Tests for repro.prediction.selection."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.baselines import PersistencePredictor
from repro.prediction.bpnn import BPNNPredictor
from repro.prediction.mlr import MLRPredictor
from repro.prediction.selection import select_predictor


def history(n_rows=260, n_modules=4):
    t = np.arange(n_rows, dtype=float)[:, None]
    return 80.0 + 4.0 * np.sin(2 * np.pi * t / 90.0) + np.linspace(0, 5, n_modules)


class TestSelection:
    def test_mlr_wins_paper_setting(self):
        """MLR vs BPNN on radiator-like data: the paper's outcome."""
        report = select_predictor(
            [MLRPredictor(lags=4), BPNNPredictor(lags=4, epochs=15, seed=1)],
            history(),
            horizon_steps=2,
        )
        assert report.winner.name == "MLR"
        assert report.winner.fitted

    def test_tie_broken_by_runtime(self):
        """Two equally accurate models: the cheaper one must win."""
        import time

        class SlowMLR(MLRPredictor):
            @property
            def name(self):
                return "SlowMLR"

            def _fit_impl(self, data):
                time.sleep(0.002)
                super()._fit_impl(data)

        report = select_predictor(
            [SlowMLR(lags=4), MLRPredictor(lags=4)],
            history(),
            horizon_steps=2,
            accuracy_tolerance=1.5,
        )
        assert report.winner.name == "MLR"
        assert "cheapest" in report.reason

    def test_evaluations_cover_candidates(self):
        candidates = [MLRPredictor(lags=4), PersistencePredictor()]
        report = select_predictor(candidates, history(), horizon_steps=2)
        assert [e.predictor_name for e in report.evaluations] == ["MLR", "Persist"]

    def test_reason_is_informative(self):
        report = select_predictor(
            [MLRPredictor(lags=4), PersistencePredictor()],
            history(),
            horizon_steps=2,
        )
        assert "selected" in report.reason
        assert report.winner.name in report.reason

    def test_no_candidates_rejected(self):
        with pytest.raises(PredictionError):
            select_predictor([], history(), horizon_steps=2)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(PredictionError):
            select_predictor(
                [MLRPredictor()], history(), horizon_steps=2,
                accuracy_tolerance=0.5,
            )
