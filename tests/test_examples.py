"""Smoke tests for the runnable examples.

Each example must run to completion and print its headline results.
The slower examples get trimmed arguments.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestQuickstart:
    def test_runs_and_reports(self):
        out = run_example("quickstart.py")
        assert "INOR (Algorithm 1):" in out
        assert "exact optimum" in out
        assert "P_ideal" in out


class TestDriveHarvest:
    def test_short_run(self):
        out = run_example("drive_harvest.py", "30")
        assert "Energy Output (J)" in out
        for scheme in ("DNOR", "INOR", "EHTR", "Baseline"):
            assert scheme in out
        assert "DNOR vs baseline energy" in out


class TestTwoDimensionalRadiator:
    def test_runs_and_reports(self):
        out = run_example("two_dimensional_radiator.py")
        assert "Bank MPP:" in out
        assert "Reconfiguration gain:" in out


class TestColdStart:
    def test_runs_and_reports(self):
        out = run_example("cold_start.py")
        assert "DNOR group count while warming" in out
        assert "cold start" in out.lower()


class TestFiniteCoupling:
    def test_runs_and_reports(self):
        out = run_example("finite_coupling.py", "40")
        assert "delta_t retained" in out
        assert "MPP power shift" in out
        assert "decisions differing" in out


@pytest.mark.slow
class TestSlowExamples:
    def test_industrial_boiler(self):
        out = run_example("industrial_boiler.py")
        assert "Runtime scaling" in out
        assert "reconfiguration gain" in out

    def test_prediction_showcase(self):
        out = run_example("prediction_showcase.py")
        assert "Best mean MAPE: MLR" in out
