"""Tests for repro.sim.simulator and repro.sim.scenario."""

import numpy as np
import pytest

from repro.sim.ideal import ideal_power_series
from repro.sim.scenario import default_scenario


@pytest.fixture(scope="module")
def scenario():
    # 36 modules keeps the square baseline valid and the run fast.
    return default_scenario(duration_s=40.0, seed=5, n_modules=36)


@pytest.fixture(scope="module")
def results(scenario):
    simulator = scenario.make_simulator()
    return {
        name: simulator.run(policy, scenario.make_charger())
        for name, policy in scenario.make_policies().items()
        if name != "EHTR"  # EHTR covered separately (slow)
    }


class TestRunMechanics:
    def test_series_lengths(self, scenario, results):
        n = scenario.trace.n_samples
        for result in results.values():
            assert result.time_s.shape == (n,)
            assert result.delivered_power_w.shape == (n,)
            assert result.ideal_power_w.shape == (n,)

    def test_powers_positive(self, results):
        for result in results.values():
            assert np.all(result.delivered_power_w >= 0.0)
            assert np.all(result.gross_power_w > 0.0)

    def test_delivered_below_gross(self, results):
        for result in results.values():
            assert np.all(
                result.delivered_power_w <= result.gross_power_w + 1e-9
            )

    def test_gross_below_ideal(self, results):
        for result in results.values():
            assert np.all(result.gross_power_w <= result.ideal_power_w * (1 + 1e-9))

    def test_scheme_names(self, results):
        assert results["DNOR"].scheme == "DNOR"
        assert results["Baseline"].scheme == "Baseline"


class TestSchemeBehaviour:
    def test_baseline_never_switches(self, results):
        assert results["Baseline"].switch_count == 0
        assert results["Baseline"].switch_overhead_j == 0.0

    def test_baseline_group_count_constant(self, results):
        groups = results["Baseline"].n_groups_series
        assert np.all(groups == 6)  # sqrt(36)

    def test_inor_pays_overhead_every_period(self, scenario, results):
        # First application is free; every later period is billed.
        assert results["INOR"].switch_count == scenario.trace.n_samples - 1

    def test_dnor_switches_sparse(self, results):
        assert results["DNOR"].switch_count < results["INOR"].switch_count / 5

    def test_reconfig_beats_baseline(self, results):
        assert (
            results["INOR"].energy_output_j > results["Baseline"].energy_output_j
        )
        assert (
            results["DNOR"].energy_output_j > results["Baseline"].energy_output_j
        )

    def test_runtimes_recorded(self, results):
        assert results["INOR"].average_runtime_ms > 0.0
        assert results["DNOR"].average_runtime_ms > 0.0


class TestDeterminismKnob:
    def test_nominal_compute_makes_overhead_reproducible(self):
        scenario_a = default_scenario(
            duration_s=20.0, seed=9, n_modules=25, nominal_compute_s=2.0e-3
        )
        scenario_b = default_scenario(
            duration_s=20.0, seed=9, n_modules=25, nominal_compute_s=2.0e-3
        )
        res_a = scenario_a.make_simulator().run(
            scenario_a.make_inor_policy(), scenario_a.make_charger()
        )
        res_b = scenario_b.make_simulator().run(
            scenario_b.make_inor_policy(), scenario_b.make_charger()
        )
        assert res_a.switch_overhead_j == pytest.approx(res_b.switch_overhead_j)
        assert np.allclose(res_a.delivered_power_w, res_b.delivered_power_w)


class TestIdealSeries:
    def test_matches_simulator_ideal(self, scenario, results):
        standalone = ideal_power_series(
            scenario.trace, scenario.radiator, scenario.module, scenario.n_modules
        )
        assert np.allclose(standalone, results["Baseline"].ideal_power_w)

    def test_policy_reuse_is_safe(self, scenario):
        """Running the same policy twice must give identical results
        (reset() works)."""
        simulator = scenario.make_simulator()
        policy = scenario.make_inor_policy()
        first = simulator.run(policy, scenario.make_charger())
        second = simulator.run(policy, scenario.make_charger())
        assert first.switch_count == second.switch_count
        assert np.allclose(first.delivered_power_w, second.delivered_power_w)


class TestScenarioFactories:
    def test_policies_cover_four_schemes(self, scenario):
        policies = scenario.make_policies()
        assert set(policies) == {"DNOR", "INOR", "EHTR", "Baseline"}

    def test_chargers_are_fresh(self, scenario):
        a = scenario.make_charger()
        b = scenario.make_charger()
        assert a is not b
        assert a.battery is not b.battery

    def test_scanner_seeded(self, scenario):
        temps = np.full(36, 70.0)
        assert np.array_equal(
            scenario.make_scanner().scan(temps), scenario.make_scanner().scan(temps)
        )
