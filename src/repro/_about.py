"""Package metadata for :mod:`repro` (tegkit).

Kept in a dedicated module so that both ``pyproject.toml`` consumers and
runtime code can report a consistent version without importing heavy
submodules.
"""

__version__ = "1.0.0"

#: Human-readable title of the reproduced paper.
PAPER_TITLE = (
    "Prediction-Based Fast Thermoelectric Generator Reconfiguration "
    "for Energy Harvesting from Vehicle Radiators"
)

#: Venue of the reproduced paper.
PAPER_VENUE = "DATE 2018"

#: arXiv identifier of the reproduced paper.
PAPER_ARXIV = "1804.01574"
