"""Analysis utilities: where does the power go, and how stable are
configurations?

* :mod:`repro.analysis.mismatch` — exact decomposition of the gap
  between ``P_ideal`` and delivered power into the physical mechanisms
  of the paper's Fig. 3 (parallel voltage mismatch, series current
  mismatch) plus the converter loss of Sec. III-B.
* :mod:`repro.analysis.stability` — statistics over configuration
  sequences: switch rates, toggle volumes, group-count histograms —
  the quantities behind the Sec. III-C overhead discussion.
* :mod:`repro.analysis.sweep` — declarative parameter sweeps over the
  closed-loop scenario, used by the ablation benches.
"""

from repro.analysis.mismatch import LossBreakdown, loss_breakdown
from repro.analysis.stability import (
    ConfigurationStats,
    configuration_stats,
    group_count_series,
)
from repro.analysis.sweep import SweepResult, sweep_scenario

__all__ = [
    "ConfigurationStats",
    "LossBreakdown",
    "SweepResult",
    "configuration_stats",
    "group_count_series",
    "loss_breakdown",
    "sweep_scenario",
]
