"""Declarative parameter sweeps over the closed-loop scenario.

The ablation benches all follow one pattern — vary a scenario knob,
re-run one or more policies, tabulate Table-I style rows.  This module
centralises that loop so benches and examples stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.errors import SimulationError
from repro.sim.results import SimulationResult, summary_row
from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class SweepResult:
    """One sweep point: the knob value and the per-scheme results."""

    label: str
    value: float
    results: Dict[str, SimulationResult]

    def row(self, scheme: str) -> Dict[str, float]:
        """Table-I style summary row of one scheme at this point."""
        return summary_row(self.results[scheme])


def sweep_scenario(
    base_factory: Callable[[float], Scenario],
    values: Sequence[float],
    schemes: Sequence[str] = ("DNOR", "INOR", "Baseline"),
    label: str = "sweep",
) -> List[SweepResult]:
    """Run the closed loop across a knob sweep.

    Parameters
    ----------
    base_factory:
        Maps a knob value to a fully-built :class:`Scenario`.  The
        factory owns the semantics of the knob (horizon, overhead
        scale, array size, ...).
    values:
        Knob values to sweep.
    schemes:
        Which of the scenario's policies to run at each point; EHTR is
        excluded by default because its cost dominates sweeps.
    label:
        Name recorded on every sweep point.

    Raises
    ------
    SimulationError
        If ``values`` is empty or a requested scheme is unknown.
    """
    if len(values) == 0:
        raise SimulationError("sweep needs at least one value")
    points: List[SweepResult] = []
    for value in values:
        scenario = base_factory(float(value))
        policies = scenario.make_policies()
        unknown = set(schemes) - set(policies)
        if unknown:
            raise SimulationError(f"unknown schemes requested: {sorted(unknown)}")
        simulator = scenario.make_simulator()
        results = {
            name: simulator.run(policies[name], scenario.make_charger())
            for name in schemes
        }
        points.append(SweepResult(label=label, value=float(value), results=results))
    return points
