"""Exact loss decomposition for a configured TEG array.

The gap between the ideal power (every module at its own MPP) and what
reaches the battery bus decomposes into three nested, exactly
quantifiable mechanisms:

1. **Parallel (voltage) mismatch** — modules inside a group share one
   voltage, so members with different EMFs cannot all sit at ``E_i/2``
   (paper Fig. 3a).  The group's best case is its own MPP; the member
   losses are ``sum_i E_i^2/4R_i - E_g^2/4R_g`` per group.
2. **Series (current) mismatch** — groups share one current, so groups
   whose individual MPP currents differ cannot all run at their group
   MPP (paper Fig. 3b).  The residual is ``sum_g P_g* - P_array*``.
3. **Conversion loss** — the charger's DC-DC stage takes its
   voltage-dependent cut (paper Sec. III-B).

The three terms plus the delivered power reconstruct ``P_ideal``
exactly, which the test suite asserts; the reconfiguration algorithms
are, in this language, minimisers of (1) + (2) subject to keeping (3)
small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.power.charger import TEGCharger
from repro.teg.network import array_mpp, reduce_configuration, validate_starts


@dataclass(frozen=True)
class LossBreakdown:
    """Exact power accounting of one configured operating point.

    All values in watts.  ``ideal_power_w`` equals the sum of the other
    four fields (up to float rounding).

    Attributes
    ----------
    ideal_power_w:
        ``sum_i E_i^2 / 4 R_i`` (negative-EMF modules contribute 0 to
        match :meth:`repro.teg.array.TEGArray.ideal_power`).
    parallel_mismatch_w:
        Power lost to voltage sharing inside groups.
    series_mismatch_w:
        Power lost to current sharing across groups.
    conversion_loss_w:
        Power lost in the DC-DC stage (0 when no charger is supplied).
    delivered_power_w:
        What reaches the bus.
    """

    ideal_power_w: float
    parallel_mismatch_w: float
    series_mismatch_w: float
    conversion_loss_w: float
    delivered_power_w: float

    @property
    def electrical_power_w(self) -> float:
        """Array electrical MPP power (before the converter)."""
        return self.delivered_power_w + self.conversion_loss_w

    @property
    def mismatch_fraction(self) -> float:
        """Total mismatch loss as a fraction of the ideal power."""
        if self.ideal_power_w <= 0.0:
            return 0.0
        return (
            self.parallel_mismatch_w + self.series_mismatch_w
        ) / self.ideal_power_w

    def as_dict(self) -> dict:
        """Plain-dict view for tabulation."""
        return {
            "ideal_w": self.ideal_power_w,
            "parallel_mismatch_w": self.parallel_mismatch_w,
            "series_mismatch_w": self.series_mismatch_w,
            "conversion_loss_w": self.conversion_loss_w,
            "delivered_w": self.delivered_power_w,
        }


def loss_breakdown(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts: Sequence[int],
    charger: Optional[TEGCharger] = None,
) -> LossBreakdown:
    """Decompose the ideal-to-delivered gap for one configuration.

    Parameters
    ----------
    emf, resistance:
        Per-module Thevenin parameters at the current temperatures.
    starts:
        The configuration's group start indices.
    charger:
        When given, the converter loss at the array MPP voltage is
        included; otherwise the electrical MPP power is "delivered".
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    validate_starts(starts, emf.size)

    per_module_ideal = np.where(
        emf > 0.0, emf * emf / (4.0 * resistance), 0.0
    )
    ideal = float(per_module_ideal.sum())

    e_groups, r_groups = reduce_configuration(emf, resistance, starts)
    group_mpp = e_groups * e_groups / (4.0 * r_groups)

    idx = np.asarray(starts, dtype=np.int64)
    per_group_ideal = np.add.reduceat(per_module_ideal, idx)
    parallel_loss = float((per_group_ideal - group_mpp).sum())

    array = array_mpp(emf, resistance, starts)
    series_loss = float(group_mpp.sum() - array.power_w)

    if charger is not None:
        delivered = charger.delivered_at_mpp(array)
    else:
        delivered = array.power_w
    conversion_loss = array.power_w - delivered

    return LossBreakdown(
        ideal_power_w=ideal,
        parallel_mismatch_w=parallel_loss,
        series_mismatch_w=series_loss,
        conversion_loss_w=conversion_loss,
        delivered_power_w=delivered,
    )
