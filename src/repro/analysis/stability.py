"""Configuration-sequence statistics.

Quantifies how "restless" a reconfiguration scheme is — the raw
material of the paper's Sec. III-C overhead argument.  Works on the
switch-time / toggle records of a :class:`repro.sim.results.SimulationResult`
or on any plain sequence of configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.config import ArrayConfiguration
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ConfigurationStats:
    """Aggregate statistics of a configuration sequence.

    Attributes
    ----------
    n_configs:
        Length of the analysed sequence.
    n_changes:
        Number of step-to-step configuration changes.
    change_rate:
        ``n_changes / (n_configs - 1)``.
    total_junction_flips:
        Summed junction flips across all changes.
    mean_flips_per_change:
        Average flip volume of one change (0 when never changed).
    group_count_histogram:
        Mapping group count -> number of steps spent there.
    dominant_group_count:
        The most-used group count.
    """

    n_configs: int
    n_changes: int
    change_rate: float
    total_junction_flips: int
    mean_flips_per_change: float
    group_count_histogram: Dict[int, int]
    dominant_group_count: int


def configuration_stats(
    configs: Sequence[ArrayConfiguration],
) -> ConfigurationStats:
    """Analyse a chronological sequence of configurations.

    Raises
    ------
    ConfigurationError
        If the sequence is empty or mixes chain lengths.
    """
    if len(configs) == 0:
        raise ConfigurationError("configuration sequence is empty")
    n_modules = configs[0].n_modules
    if any(c.n_modules != n_modules for c in configs):
        raise ConfigurationError("configuration sequence mixes chain lengths")

    n_changes = 0
    total_flips = 0
    for previous, current in zip(configs, configs[1:]):
        flips = previous.junction_flips_to(current)
        if flips > 0:
            n_changes += 1
            total_flips += flips

    counts = [c.n_groups for c in configs]
    histogram: Dict[int, int] = {}
    for count in counts:
        histogram[count] = histogram.get(count, 0) + 1
    dominant = max(histogram.items(), key=lambda item: (item[1], -item[0]))[0]

    return ConfigurationStats(
        n_configs=len(configs),
        n_changes=n_changes,
        change_rate=(n_changes / (len(configs) - 1)) if len(configs) > 1 else 0.0,
        total_junction_flips=total_flips,
        mean_flips_per_change=(total_flips / n_changes) if n_changes else 0.0,
        group_count_histogram=histogram,
        dominant_group_count=dominant,
    )


def group_count_series(
    configs: Sequence[ArrayConfiguration],
) -> Tuple[np.ndarray, np.ndarray]:
    """Group count per step plus its step indices — a Fig. 6 companion
    view showing *what* the controller changed, not just when."""
    if len(configs) == 0:
        raise ConfigurationError("configuration sequence is empty")
    counts = np.asarray([c.n_groups for c in configs], dtype=np.int64)
    return np.arange(len(configs), dtype=np.int64), counts
