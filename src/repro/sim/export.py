"""Flat-file export of simulation results (CSV and lossless npz).

Downstream analysis (plotting, regression dashboards) wants flat
files, not Python objects.  Three exports cover the needs:

* :func:`result_series_to_csv` — the per-period time series of one
  scheme (power, voltage, ideal, group count), one row per control
  period.
* :func:`summary_rows_to_csv` — Table-I style one-row-per-scheme
  summaries for a set of results.
* :func:`result_to_npz` / :func:`result_from_npz` — a *loss-free*
  binary round trip of one :class:`SimulationResult` (raw float64
  series plus the overhead-event records), the per-case artifact
  format of the :mod:`repro.sim.shard` distributed grid runner.
  Written atomically (temp file + ``os.replace``) so a crashed or
  concurrent worker can never leave a truncated artifact behind.
"""

from __future__ import annotations

import json
from pathlib import Path

import csv
from typing import Iterable, Union

import numpy as np

from repro.core.overhead import OverheadEvent
from repro.errors import SimulationError
from repro.sim._atomic import atomic_write
from repro.sim.results import SimulationResult, summary_row

#: Columns of the per-period series export.
SERIES_COLUMNS = (
    "time_s",
    "gross_power_w",
    "delivered_power_w",
    "net_power_w",
    "ideal_power_w",
    "ratio_to_ideal",
    "array_voltage_v",
    "n_groups",
    "runtime_s",
)


def result_series_to_csv(
    result: SimulationResult, path: Union[str, Path]
) -> Path:
    """Write one scheme's per-period series; returns the path written."""
    path = Path(path)
    net = result.net_power_w()
    ratio = result.ratio_to_ideal()
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SERIES_COLUMNS)
        for i in range(result.time_s.size):
            writer.writerow(
                (
                    f"{result.time_s[i]:.10g}",
                    f"{result.gross_power_w[i]:.10g}",
                    f"{result.delivered_power_w[i]:.10g}",
                    f"{net[i]:.10g}",
                    f"{result.ideal_power_w[i]:.10g}",
                    f"{ratio[i]:.10g}",
                    f"{result.array_voltage_v[i]:.10g}",
                    f"{int(result.n_groups_series[i])}",
                    f"{result.runtime_s[i]:.10g}",
                )
            )
    return path


#: Bumped whenever the npz artifact layout changes; readers refuse
#: artifacts carrying a different version instead of misreading them.
RESULT_FORMAT_VERSION = 1

#: Per-period series stored as raw float64 columns.
_RESULT_SERIES = (
    "time_s",
    "gross_power_w",
    "delivered_power_w",
    "ideal_power_w",
    "array_voltage_v",
    "runtime_s",
)

#: Per-event float columns of the overhead records.
_EVENT_FLOATS = ("time_s", "downtime_s", "energy_j", "compute_time_s")


def result_to_npz(
    result: SimulationResult, path: Union[str, Path]
) -> Path:
    """Write one result as a loss-free npz artifact; returns the path.

    The write is atomic: the artifact is assembled in a sibling temp
    file and renamed into place, so readers (and shard collation) only
    ever see complete files — a re-run of the same deterministic case
    overwrites the artifact with identical bytes-for-meaning content.
    """
    path = Path(path)
    arrays = {name: getattr(result, name) for name in _RESULT_SERIES}
    arrays["n_groups_series"] = np.asarray(
        result.n_groups_series, dtype=np.int64
    )
    arrays["switch_times_s"] = np.asarray(result.switch_times_s, dtype=float)
    events = result.overhead_events
    for name in _EVENT_FLOATS:
        arrays[f"ev_{name}"] = np.array(
            [getattr(e, name) for e in events], dtype=float
        )
    arrays["ev_toggles"] = np.array(
        [e.toggles for e in events], dtype=np.int64
    )
    meta = {"version": RESULT_FORMAT_VERSION, "scheme": result.scheme}
    path.parent.mkdir(parents=True, exist_ok=True)

    def write(tmp: Path) -> None:
        with open(tmp, "wb") as handle:
            np.savez(handle, meta_json=np.array(json.dumps(meta)), **arrays)

    atomic_write(path, write)
    return path


def result_from_npz(path: Union[str, Path]) -> SimulationResult:
    """Rebuild a :func:`result_to_npz` artifact, bit-identically.

    Raises
    ------
    SimulationError
        If the file is missing, unreadable, or carries a different
        format version.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            meta = json.loads(str(data["meta_json"]))
            if meta.get("version") != RESULT_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported result artifact version "
                    f"{meta.get('version')!r}"
                )
            # Hoisted: NpzFile.__getitem__ re-reads the zip member on
            # every access, so indexing inside the loop would make a
            # switch-heavy artifact (INOR: one event per period)
            # quadratic in the event count.
            ev = {
                name: data[f"ev_{name}"] for name in _EVENT_FLOATS
            }
            toggles = data["ev_toggles"]
            events = tuple(
                OverheadEvent(
                    time_s=float(ev["time_s"][i]),
                    downtime_s=float(ev["downtime_s"][i]),
                    energy_j=float(ev["energy_j"][i]),
                    toggles=int(toggles[i]),
                    compute_time_s=float(ev["compute_time_s"][i]),
                )
                for i in range(toggles.size)
            )
            return SimulationResult(
                scheme=str(meta["scheme"]),
                overhead_events=events,
                switch_times_s=tuple(
                    float(t) for t in data["switch_times_s"]
                ),
                n_groups_series=data["n_groups_series"],
                **{name: data[name] for name in _RESULT_SERIES},
            )
    except SimulationError:
        raise
    except Exception as exc:
        raise SimulationError(
            f"cannot read result artifact {path}: {exc}"
        ) from exc


def summary_rows_to_csv(
    results: Iterable[SimulationResult], path: Union[str, Path]
) -> Path:
    """Write Table-I style rows for several schemes; returns the path."""
    path = Path(path)
    rows = [summary_row(result) for result in results]
    if not rows:
        raise ValueError("summary_rows_to_csv needs at least one result")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path
