"""CSV export of simulation results.

Downstream analysis (plotting, regression dashboards) wants flat
files, not Python objects.  Two exports cover the needs:

* :func:`result_series_to_csv` — the per-period time series of one
  scheme (power, voltage, ideal, group count), one row per control
  period.
* :func:`summary_rows_to_csv` — Table-I style one-row-per-scheme
  summaries for a set of results.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Union

from repro.sim.results import SimulationResult, summary_row

#: Columns of the per-period series export.
SERIES_COLUMNS = (
    "time_s",
    "gross_power_w",
    "delivered_power_w",
    "net_power_w",
    "ideal_power_w",
    "ratio_to_ideal",
    "array_voltage_v",
    "n_groups",
    "runtime_s",
)


def result_series_to_csv(
    result: SimulationResult, path: Union[str, Path]
) -> Path:
    """Write one scheme's per-period series; returns the path written."""
    path = Path(path)
    net = result.net_power_w()
    ratio = result.ratio_to_ideal()
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SERIES_COLUMNS)
        for i in range(result.time_s.size):
            writer.writerow(
                (
                    f"{result.time_s[i]:.10g}",
                    f"{result.gross_power_w[i]:.10g}",
                    f"{result.delivered_power_w[i]:.10g}",
                    f"{net[i]:.10g}",
                    f"{result.ideal_power_w[i]:.10g}",
                    f"{ratio[i]:.10g}",
                    f"{result.array_voltage_v[i]:.10g}",
                    f"{int(result.n_groups_series[i])}",
                    f"{result.runtime_s[i]:.10g}",
                )
            )
    return path


def summary_rows_to_csv(
    results: Iterable[SimulationResult], path: Union[str, Path]
) -> Path:
    """Write Table-I style rows for several schemes; returns the path."""
    path = Path(path)
    rows = [summary_row(result) for result in results]
    if not rows:
        raise ValueError("summary_rows_to_csv needs at least one result")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path
