"""Durable sharded experiment grids: one directory, many hosts.

The batch engine's process pool tops out at one machine.  This module
turns an experiment grid into a *filesystem-backed work queue* that any
number of independent hosts (or processes) can drain concurrently —
the ROADMAP's "shard ``ExperimentRunner`` grids across machines" item.
A shard directory is the entire coordination state; there is no
server, no locks beyond atomic renames, and nothing machine-specific
inside it:

``manifest.json``
    The grid itself — every :class:`~repro.sim.engine.ExperimentCase`
    serialised loss-free (see :meth:`Scenario.to_json_dict`), in
    collation order.  Any host rebuilds bit-identical cases from it.
``queue/pending/`` and ``queue/leases/``
    One JSON ticket per unfinished *work item*.  A worker *claims* an
    item by renaming its ticket from ``pending/`` into ``leases/`` —
    ``os.rename`` is atomic on POSIX and NFS, so exactly one claimant
    wins — then stamps the lease with its identity, claim time and
    TTL.  A lease that outlives its TTL (crashed or wedged worker) is
    renamed back into ``pending/`` by whichever worker notices first.
    Work items come in two sizes: ``case-*`` tickets carry one case
    through :func:`~repro.sim.engine.run_case`, and ``group-*``
    tickets carry a whole *fused group* — cases the manifest grouped
    at init time because they share a physics fingerprint, policy and
    kernel shape (see :func:`~repro.sim.gridstack.fusable_reason`) —
    through one grid-stacked pass
    (:func:`~repro.sim.gridstack.run_grid_stacked`), publishing each
    member case's artifacts.  A fused group is *done* when every
    member case has its artifacts, so a mid-group crash resumes by
    re-running the (idempotent, bit-identical) group.
``results/``
    Per-case artifacts: a loss-free npz series
    (:func:`~repro.sim.export.result_to_npz`) plus a JSON summary.
    Both are written atomically, and the summary is written last, so
    its presence marks the case done.
``cache/``
    The warmed on-disk :class:`~repro.sim.cache.PhysicsCache` artifact
    store (content fingerprints are machine-independent), so workers
    load the thermal-boundary solves instead of recomputing them.

Determinism and crash-safety contract (pinned in
``tests/test_sim_shard.py``): every case is fully seeded, so execution
is *idempotent* — if a lease expires mid-run and the case is executed
twice, both workers produce bit-identical artifacts and the atomic
writes make the duplicate invisible.  Hence the queue only has to
guarantee at-least-once execution, and the collated result equals the
serial :class:`~repro.sim.engine.ExperimentRunner` run bit-for-bit,
for any worker count, including interrupted-and-resumed runs.

Lease expiry compares the claim timestamp against the local clock, so
hosts sharing a directory should have loosely synchronised clocks
(ordinary NTP skew is harmless next to the default 15-minute TTL).
The configured TTL lives in the manifest — one init-time choice
governs every worker — and the unstamped-lease mtime fallback adds a
clock-skew margin because filesystem mtimes cross the NFS clock
domain (see :func:`_lease_expired`).
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.inor import parse_inor_kernel
from repro.errors import SimulationError
from repro.sim._atomic import atomic_write
from repro.sim.cache import PhysicsCache
from repro.sim.engine import (
    ExperimentCase,
    ExperimentCollation,
    _json_safe,
    _worker_cache,
    run_case,
)
from repro.sim.export import result_from_npz, result_to_npz
from repro.sim.gridstack import fusable_reason, run_grid_stacked
from repro.sim.results import SimulationResult, summary_row

#: Bumped whenever the shard directory layout changes.  v2 adds the
#: manifest ``"groups"`` list — fused-group work items drained through
#: one grid-stacked pass each.
SHARD_FORMAT_VERSION = 2

#: Manifest versions this library still reads.  A v1 shard (no
#: recorded groups) resumes under v1 semantics: the recorded manifest
#: is authoritative, every unfinished case stays an individual ticket
#: and nothing is rewritten — mirroring the scenario format's
#: read-old/write-new compatibility contract.
SUPPORTED_SHARD_VERSIONS = (1, 2)

#: Default lease time-to-live.  Generous on purpose: an expired lease
#: only costs a duplicate (idempotent) execution, while a too-short
#: TTL makes healthy long cases look dead.
DEFAULT_LEASE_TTL_S = 900.0

#: Grace added to the *mtime fallback* expiry check only.  An unstamped
#: lease's mtime comes from the claiming host's filesystem clock, which
#: on NFS can disagree with the observer's wall clock; without a margin
#: a skewed observer would steal a lease claimed milliseconds ago.
#: Stamped leases are unaffected — their claim time is authoritative.
LEASE_CLOCK_SKEW_MARGIN_S = 30.0

MANIFEST_NAME = "manifest.json"


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Write JSON via the shared crash-safe publish protocol."""
    text = json.dumps(payload, indent=2, allow_nan=False)
    atomic_write(path, lambda tmp: tmp.write_text(text))


def _read_json(path: Path) -> Optional[dict]:
    """Parse a JSON file; ``None`` for missing/corrupt (racing) files."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


class _ShardPaths:
    """Resolved layout of one shard directory."""

    def __init__(self, shard_dir: Union[str, Path]) -> None:
        self.root = Path(shard_dir)
        self.manifest = self.root / MANIFEST_NAME
        self.pending = self.root / "queue" / "pending"
        self.leases = self.root / "queue" / "leases"
        self.results = self.root / "results"

    def create(self) -> None:
        for directory in (self.pending, self.leases, self.results):
            directory.mkdir(parents=True, exist_ok=True)

    def ticket(self, case_id: str) -> Path:
        return self.pending / f"{case_id}.json"

    def lease(self, case_id: str) -> Path:
        return self.leases / f"{case_id}.json"

    def series_artifact(self, case_id: str) -> Path:
        return self.results / f"{case_id}.npz"

    def summary_artifact(self, case_id: str) -> Path:
        return self.results / f"{case_id}.json"

    def case_done(self, case_id: str) -> bool:
        # The summary is written after the npz, so it is the marker.
        return (
            self.summary_artifact(case_id).is_file()
            and self.series_artifact(case_id).is_file()
        )


@dataclass(frozen=True)
class ShardManifest:
    """Parsed ``manifest.json``: the grid in collation order.

    ``lease_ttl_s`` is the shard's *configured* lease TTL — every
    worker and every expiry scan reads it from here, so one init-time
    choice governs the whole fleet (old manifests without the key
    resolve to :data:`DEFAULT_LEASE_TTL_S`).

    ``groups`` records the fused-group work items as
    ``(group_id, member_case_ids)`` pairs, in ticket order.  A v1
    manifest loads with no groups — every case its own ticket.
    """

    case_ids: Tuple[str, ...]
    cases: Tuple[ExperimentCase, ...]
    cache_dir: Path
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S
    groups: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def __len__(self) -> int:
        return len(self.case_ids)

    def by_id(self) -> Dict[str, ExperimentCase]:
        return dict(zip(self.case_ids, self.cases))

    def groups_by_id(self) -> Dict[str, Tuple[str, ...]]:
        return dict(self.groups)

    def grouped_case_ids(self) -> frozenset:
        """Every case id owned by some fused-group ticket."""
        return frozenset(
            case_id for _, member_ids in self.groups for case_id in member_ids
        )


@dataclass(frozen=True)
class LeaseInfo:
    """Identity and age of one outstanding lease.

    A lease the claimant has not stamped yet carries the worker label
    ``"<unstamped>"`` and ages from the file mtime.
    """

    case_id: str
    worker: str
    age_s: float
    ttl_s: float

    def describe(self) -> str:
        return (
            f"{self.case_id} held by {self.worker} "
            f"for {self.age_s:.0f}s (ttl {self.ttl_s:.0f}s)"
        )


@dataclass(frozen=True)
class GroupInfo:
    """One fused-group work item: identity, size and claim state.

    ``state`` is ``"done"`` (every member case published),
    ``"pending"`` (ticket waiting), ``"leased"`` (live claim) or
    ``"expired"`` (claim outlived its TTL, re-queueable); ``worker``
    names the claimant while a lease exists.
    """

    group_id: str
    case_ids: Tuple[str, ...]
    state: str
    worker: str = ""

    @property
    def n_cases(self) -> int:
        return len(self.case_ids)

    def describe(self) -> str:
        held = f" by {self.worker}" if self.worker else ""
        return f"{self.group_id} [{self.n_cases} cases] {self.state}{held}"


@dataclass(frozen=True)
class ShardStatus:
    """Queue accounting of one shard directory.

    ``leased`` counts live (unexpired) leases; ``expired`` leases are
    re-queueable and will be picked up by the next worker scan.  The
    per-lease detail answers the operational questions the aggregates
    cannot: *which* cases are stuck and *whose* worker went dark.
    ``stale_leases`` are still live but past half their TTL — the ones
    to watch.  The aggregates stay *case* counts — a leased fused
    group counts each unfinished member case as leased — while
    ``fused_groups`` reports the group work items themselves (id,
    member count, claim state).
    """

    total: int
    done: int
    pending: int
    leased: int
    expired: int
    expired_leases: Tuple[LeaseInfo, ...] = ()
    stale_leases: Tuple[LeaseInfo, ...] = ()
    fused_groups: Tuple[GroupInfo, ...] = ()

    @property
    def complete(self) -> bool:
        """True when every case has its result artifacts."""
        return self.done == self.total

    def describe(self) -> str:
        return (
            f"{self.done}/{self.total} done, {self.pending} pending, "
            f"{self.leased} leased, {self.expired} expired"
        )

    def detail_lines(self) -> List[str]:
        """Per-lease trouble report (empty when nothing is stuck)."""
        lines = [
            f"expired: {info.describe()}" for info in self.expired_leases
        ]
        lines.extend(
            f"stale:   {info.describe()}" for info in self.stale_leases
        )
        return lines

    def group_lines(self) -> List[str]:
        """One line per fused-group work item (empty without groups)."""
        return [f"fused: {info.describe()}" for info in self.fused_groups]


def _same_grid(existing_entries, new_entries) -> bool:
    """Whether a recorded manifest holds the same grid, semantically.

    Compares case entries after a loss-free decode/encode round trip,
    not raw JSON: a manifest written under an older scenario format
    (v1's top-level ``"radiator"`` key) still *resumes* against the
    same grid re-submitted today, because both sides normalise to the
    current :meth:`Scenario.to_json_dict` layout.  Undecodable entries
    simply compare unequal (a corrupt manifest is a different grid).
    """
    if not isinstance(existing_entries, list):
        return False
    if len(existing_entries) != len(new_entries):
        return False
    for old, new in zip(existing_entries, new_entries):
        if not isinstance(old, dict) or old.get("id") != new["id"]:
            return False
        try:
            normalised = ExperimentCase.from_json_dict(
                old["case"]
            ).to_json_dict()
        except Exception:
            return False
        if normalised != new["case"]:
            return False
    return True


def _case_id(index: int) -> str:
    return f"case-{index:05d}"


def _group_id(index: int) -> str:
    return f"group-{index:05d}"


def _fused_group_key(case: ExperimentCase) -> Tuple:
    """Machine-independent fused-group identity of one case.

    The shard-time twin of :func:`repro.sim.gridstack._group_key`: the
    content fingerprint replaces ``id(physics)`` (workers rebuild
    cases from JSON, so object identity cannot travel through the
    manifest).  Cases sharing this key load one physics artifact and
    run through one stacked pass; the runtime grouping inside
    :func:`~repro.sim.gridstack.run_grid_stacked` re-derives the same
    partition over the shared physics object.
    """
    scenario = case.scenario
    _, backend = parse_inor_kernel(scenario.inor_kernel)
    key: Tuple = (
        case.policy,
        scenario.physics_fingerprint(),
        int(scenario.n_modules),
        float(scenario.control_period_s),
        scenario.module,
        scenario.make_charger(with_battery=False).converter,
        backend,
    )
    if case.policy == "DNOR":
        key += (float(scenario.tp_seconds),)
    return key


def _compute_groups(
    case_ids: Sequence[str], cases: Sequence[ExperimentCase]
) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """Partition a grid into fused-group work items.

    Only groups of two or more fusable cases become ``group-*``
    tickets — a singleton gains nothing from the stacked pass and
    stays an ordinary case ticket.  Group ids are assigned in
    first-member order, so the same grid always yields the same
    manifest bytes.
    """
    members: Dict[Tuple, List[str]] = {}
    order: List[Tuple] = []
    for case_id, case in zip(case_ids, cases):
        if fusable_reason(case) is not None:
            continue
        key = _fused_group_key(case)
        if key not in members:
            members[key] = []
            order.append(key)
        members[key].append(case_id)
    groups: List[Tuple[str, Tuple[str, ...]]] = []
    for key in order:
        ids = members[key]
        if len(ids) < 2:
            continue
        groups.append((_group_id(len(groups)), tuple(ids)))
    return tuple(groups)


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-pid{os.getpid()}"


# ----------------------------------------------------------------------
# init
# ----------------------------------------------------------------------
def init_shard(
    shard_dir: Union[str, Path],
    cases: Sequence[ExperimentCase],
    cache_dir: Union[str, Path, None] = None,
    warm: bool = True,
    lease_ttl_s: Optional[float] = None,
) -> ShardManifest:
    """Create (or resume) a shard directory for an experiment grid.

    Writes the case manifest, enqueues a ticket per unfinished case and
    warms the shared physics-cache artifact store (one boundary solve
    per unique scenario fingerprint, skipped for already-present
    artifacts).  Calling ``init`` again on an existing shard with the
    *same* grid is the resume path: finished cases keep their results,
    live leases are left alone, and only orphaned cases are re-queued.
    A different grid under the same directory is refused.

    Parameters
    ----------
    shard_dir:
        The shared directory (typically on a filesystem all
        participating hosts mount).
    cases:
        The grid, in the order collation will use; names must be
        unique (enforced by :class:`~repro.sim.engine.ExperimentRunner`
        and re-checked here for direct callers).
    cache_dir:
        Physics artifact store location; defaults to ``cache/`` inside
        the shard so the whole run is one self-contained directory.
    warm:
        Precompute/load the physics artifacts now (recommended — every
        worker then starts with a warm store).
    lease_ttl_s:
        Configured lease TTL recorded in the manifest, governing every
        worker and expiry scan on this shard (default
        :data:`DEFAULT_LEASE_TTL_S`).  As with ``cache_dir``, the
        recorded value is authoritative on resume; only an explicitly
        different request is an error.
    """
    paths = _ShardPaths(shard_dir)
    if lease_ttl_s is not None and lease_ttl_s <= 0.0:
        raise SimulationError(f"lease_ttl_s must be > 0, got {lease_ttl_s}")
    names = [case.name for case in cases]
    if len(set(names)) != len(names):
        raise SimulationError("shard cases must have unique names")
    if not cases:
        raise SimulationError("a shard needs at least one case")

    paths.create()
    cache_value = None if cache_dir is None else str(cache_dir)
    ttl_value = None if lease_ttl_s is None else float(lease_ttl_s)
    ids = [_case_id(i) for i in range(len(cases))]
    payload = {
        "version": SHARD_FORMAT_VERSION,
        "cache_dir": cache_value,
        "lease_ttl_s": ttl_value,
        "cases": [
            {"id": case_id, "case": case.to_json_dict()}
            for case_id, case in zip(ids, cases)
        ],
        "groups": [
            {"id": group_id, "case_ids": list(member_ids)}
            for group_id, member_ids in _compute_groups(ids, cases)
        ],
    }
    existing = _read_json(paths.manifest) if paths.manifest.is_file() else None
    if existing is not None:
        # An older (v1) manifest with the same grid is a valid resume:
        # its recorded layout — no fused groups — stays authoritative,
        # exactly like an old scenario format decoding losslessly.
        if existing.get(
            "version"
        ) not in SUPPORTED_SHARD_VERSIONS or not _same_grid(
            existing.get("cases"), payload["cases"]
        ):
            raise SimulationError(
                f"shard directory {paths.root} already holds a different "
                f"grid; collating mixed grids would be meaningless — "
                f"use a fresh directory"
            )
        # Same grid: this is a resume.  The recorded physics store is
        # authoritative (workers read it from the manifest); only an
        # *explicitly different* store request is an error.
        if cache_value is not None and existing.get("cache_dir") != cache_value:
            recorded = existing.get("cache_dir") or "<shard>/cache"
            raise SimulationError(
                f"shard {paths.root} already records its physics store "
                f"({recorded}); omit cache_dir to resume with it"
            )
        if ttl_value is not None and existing.get("lease_ttl_s") != ttl_value:
            recorded_ttl = existing.get("lease_ttl_s") or DEFAULT_LEASE_TTL_S
            raise SimulationError(
                f"shard {paths.root} already records its lease TTL "
                f"({recorded_ttl}s); omit lease_ttl_s to resume with it"
            )
    else:
        _write_json_atomic(paths.manifest, payload)

    manifest = _load_manifest(paths)

    # Enqueue every work item that is not finished and not currently
    # claimed: one group ticket per unfinished fused group, one case
    # ticket per remaining (ungrouped) case.
    grouped = manifest.grouped_case_ids()
    for group_id, member_ids in manifest.groups:
        if all(paths.case_done(case_id) for case_id in member_ids):
            continue
        if paths.lease(group_id).exists() or paths.ticket(group_id).exists():
            continue
        _write_json_atomic(paths.ticket(group_id), {"group_id": group_id})
    for case_id in manifest.case_ids:
        if case_id in grouped or paths.case_done(case_id):
            continue
        if paths.lease(case_id).exists() or paths.ticket(case_id).exists():
            continue
        _write_json_atomic(paths.ticket(case_id), {"case_id": case_id})

    if warm:
        cache = PhysicsCache(cache_dir=manifest.cache_dir)
        seen = set()
        unique = []
        for case in manifest.cases:
            fingerprint = case.scenario.physics_fingerprint()
            if fingerprint not in seen:
                seen.add(fingerprint)
                unique.append(case.scenario)
        cache.warm(unique)
    return manifest


def _load_manifest(paths: _ShardPaths) -> ShardManifest:
    data = _read_json(paths.manifest)
    if data is None:
        raise SimulationError(
            f"{paths.root} is not a shard directory (no readable "
            f"{MANIFEST_NAME}); run 'repro shard init' first"
        )
    version = data.get("version")
    if version not in SUPPORTED_SHARD_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_SHARD_VERSIONS)
        raise SimulationError(
            f"shard manifest version {version!r} is not supported "
            f"(this library reads versions {supported})"
        )
    case_ids = tuple(entry["id"] for entry in data["cases"])
    cases = tuple(
        ExperimentCase.from_json_dict(entry["case"]) for entry in data["cases"]
    )
    cache_value = data.get("cache_dir")
    cache_dir = (
        paths.root / "cache" if cache_value is None else Path(cache_value)
    )
    ttl_value = data.get("lease_ttl_s")
    # v1 manifests predate fused groups; their recorded layout (every
    # case an individual ticket) stays in force on resume.
    groups = tuple(
        (str(entry["id"]), tuple(str(c) for c in entry["case_ids"]))
        for entry in data.get("groups", [])
    )
    return ShardManifest(
        case_ids=case_ids,
        cases=cases,
        cache_dir=cache_dir,
        lease_ttl_s=(
            DEFAULT_LEASE_TTL_S if ttl_value is None else float(ttl_value)
        ),
        groups=groups,
    )


def load_shard_manifest(shard_dir: Union[str, Path]) -> ShardManifest:
    """Read and rebuild a shard's case manifest."""
    return _load_manifest(_ShardPaths(shard_dir))


# ----------------------------------------------------------------------
# the queue protocol
# ----------------------------------------------------------------------
def _manifest_ttl(paths: _ShardPaths) -> float:
    """The shard's configured lease TTL (light manifest read).

    Reads just the top-level key — no case rebuilding — so claim scans
    stay cheap.  Missing manifest or key resolves to the default.
    """
    data = _read_json(paths.manifest)
    ttl = None if data is None else data.get("lease_ttl_s")
    return DEFAULT_LEASE_TTL_S if ttl is None else float(ttl)


def _manifest_groups(paths: _ShardPaths) -> Dict[str, Tuple[str, ...]]:
    """Fused-group membership (light manifest read, no case rebuild)."""
    data = _read_json(paths.manifest)
    if data is None:
        return {}
    return {
        str(entry["id"]): tuple(str(c) for c in entry["case_ids"])
        for entry in data.get("groups", [])
    }


def _item_done(
    paths: _ShardPaths, item_id: str, groups: Dict[str, Tuple[str, ...]]
) -> bool:
    """Whether a work item — case or fused group — has its artifacts."""
    member_ids = groups.get(item_id)
    if member_ids is not None:
        return all(paths.case_done(case_id) for case_id in member_ids)
    return paths.case_done(item_id)


def _lease_expired(
    lease: Path, now: float, default_ttl_s: float = DEFAULT_LEASE_TTL_S
) -> bool:
    """Whether a lease file has outlived its TTL.

    The claim timestamp and TTL inside the file are authoritative; a
    lease that cannot be parsed yet (the claimant renamed it but has
    not stamped it — a millisecond window) falls back to the file
    mtime and the *shard's configured* ``default_ttl_s`` — previously
    this path hard-coded the module default, so a shard configured
    with a long TTL saw its unstamped leases stolen early (and a short
    TTL waited the full 15 minutes).  The mtime comparison also adds
    :data:`LEASE_CLOCK_SKEW_MARGIN_S`, because mtimes come from the
    claiming host's filesystem clock (NFS skew), unlike the stamped
    claim time which the claimant took from the same ``time.time``
    domain every observer compares against.
    """
    data = _read_json(lease)
    if data is not None and "claimed_at" in data:
        claimed_at = float(data["claimed_at"])
        ttl = float(data.get("lease_ttl_s", default_ttl_s))
        return (now - claimed_at) > ttl
    try:
        claimed_at = lease.stat().st_mtime
    except OSError:
        return False  # vanished: completed or already re-queued
    return (now - claimed_at) > default_ttl_s + LEASE_CLOCK_SKEW_MARGIN_S


def _requeue_expired(
    paths: _ShardPaths,
    now: Optional[float] = None,
    default_ttl_s: Optional[float] = None,
) -> int:
    """Move expired leases back to pending; returns how many moved.

    A lease whose case already has result artifacts (worker crashed
    after publishing, before releasing) is released instead of
    re-queued.
    """
    now = time.time() if now is None else now
    if default_ttl_s is None:
        default_ttl_s = _manifest_ttl(paths)
    groups = _manifest_groups(paths)
    moved = 0
    for lease in sorted(paths.leases.glob("*.json")):
        item_id = lease.stem
        if _item_done(paths, item_id, groups):
            lease.unlink(missing_ok=True)
            continue
        if not _lease_expired(lease, now, default_ttl_s):
            continue
        try:
            os.rename(lease, paths.ticket(item_id))
        except OSError:
            continue  # another worker re-queued or the owner finished
        moved += 1
    return moved


def claim_case(
    shard_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    lease_ttl_s: Optional[float] = None,
) -> Optional[str]:
    """Claim the next available work item; returns its id, or ``None``.

    The claim is one atomic rename of the ticket into ``leases/`` —
    exactly one of any number of racing workers wins it — followed by
    stamping the lease with the worker identity, claim time and TTL.
    Fused-group tickets (``group-*``) are offered before case tickets:
    they carry the most work, so starting them first keeps the fleet's
    tail short.  ``lease_ttl_s=None`` (the default) stamps the shard's
    configured TTL from the manifest, so the whole fleet agrees
    without every worker invocation repeating the number.  ``None``
    return means nothing is claimable right now: every remaining item
    is finished or held by a live lease.
    """
    paths = _ShardPaths(shard_dir)
    worker_id = worker_id or _default_worker_id()
    if lease_ttl_s is None:
        lease_ttl_s = _manifest_ttl(paths)
    scanned_expired = False
    while True:
        claimed = None
        tickets = sorted(paths.pending.glob("group-*.json")) + sorted(
            paths.pending.glob("case-*.json")
        )
        for ticket in tickets:
            target = paths.leases / ticket.name
            try:
                os.rename(ticket, target)
            except OSError:
                continue  # another worker won this ticket
            claimed = target
            break
        if claimed is not None:
            _write_json_atomic(
                claimed,
                {
                    "case_id": claimed.stem,
                    "worker": worker_id,
                    "claimed_at": time.time(),
                    "lease_ttl_s": float(lease_ttl_s),
                },
            )
            return claimed.stem
        if scanned_expired:
            return None
        scanned_expired = True
        if _requeue_expired(paths) == 0:
            return None


def release_case(shard_dir: Union[str, Path], case_id: str) -> None:
    """Drop a lease (after completion, or to hand the case back)."""
    _ShardPaths(shard_dir).lease(case_id).unlink(missing_ok=True)


def publish_result(
    shard_dir: Union[str, Path],
    case_id: str,
    case: ExperimentCase,
    result: SimulationResult,
) -> None:
    """Write one case's artifacts (npz series, then the JSON summary).

    Both writes are atomic and the summary lands last, so a case is
    observably *done* only once both artifacts are complete.
    """
    paths = _ShardPaths(shard_dir)
    result_to_npz(result, paths.series_artifact(case_id))
    row = {key: _json_safe(value) for key, value in summary_row(result).items()}
    _write_json_atomic(
        paths.summary_artifact(case_id),
        {"case": case.name, "policy": case.policy, "summary": row},
    )


def _run_fused_group(
    members: Sequence[ExperimentCase], manifest: ShardManifest
) -> List[SimulationResult]:
    """Run one fused group through a single grid-stacked pass.

    Every member shares one physics fingerprint (that is what grouped
    them), so one artifact load from the shard's warm store serves the
    whole group; handing the *same* physics object to every slot is
    what lets :func:`~repro.sim.gridstack.run_grid_stacked` re-derive
    the fused grouping on the worker side.
    """
    scenario = members[0].scenario
    cache = _worker_cache(str(manifest.cache_dir))
    physics = cache.get_or_compute(
        scenario.trace, scenario.boundary, scenario.module, scenario.n_modules
    )
    return run_grid_stacked(members, [physics] * len(members))


def work_shard(
    shard_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    lease_ttl_s: Optional[float] = None,
    max_cases: Optional[int] = None,
) -> List[str]:
    """Drain the shard queue from this process; returns completed case ids.

    Claims work items one at a time: a case ticket runs through the
    engine's single :func:`~repro.sim.engine.run_case` code path (with
    the shard's warm physics store); a fused-group ticket runs every
    member case through **one** grid-stacked pass
    (:func:`~repro.sim.gridstack.run_grid_stacked`) and publishes each
    member's artifacts — bit-identical to the per-case path, so the
    collation cannot tell which route produced an artifact.
    ``lease_ttl_s=None`` uses the shard's configured TTL.  Returns
    when nothing is claimable — the queue is drained or every
    remaining item is held by a live lease on another worker — or
    once at least ``max_cases`` cases completed (a fused group counts
    every member it publishes, so the bound may be overshot by group
    members).
    """
    paths = _ShardPaths(shard_dir)
    manifest = _load_manifest(paths)
    cases_by_id = manifest.by_id()
    groups_by_id = manifest.groups_by_id()
    worker_id = worker_id or _default_worker_id()
    completed: List[str] = []
    while max_cases is None or len(completed) < max_cases:
        item_id = claim_case(paths.root, worker_id, lease_ttl_s)
        if item_id is None:
            break
        if item_id not in cases_by_id and item_id not in groups_by_id:
            raise SimulationError(
                f"queue ticket {item_id!r} is not in the shard manifest"
            )
        finished: List[str] = []
        try:
            if item_id in groups_by_id:
                member_ids = groups_by_id[item_id]
                if not all(paths.case_done(c) for c in member_ids):
                    members = [cases_by_id[c] for c in member_ids]
                    results = _run_fused_group(members, manifest)
                    for case_id, case, result in zip(
                        member_ids, members, results
                    ):
                        publish_result(paths.root, case_id, case, result)
                finished.extend(member_ids)
            elif not paths.case_done(item_id):
                case = cases_by_id[item_id]
                result = run_case(case, cache_dir=str(manifest.cache_dir))
                publish_result(paths.root, item_id, case, result)
                finished.append(item_id)
            else:
                finished.append(item_id)
        except BaseException:
            # This process is still alive to hand the item back —
            # waiting out the lease TTL is for *crashed* workers, and
            # holding the lease here would stall the work (and every
            # 'shard work' retry) for the full TTL for no reason.
            try:
                os.rename(paths.lease(item_id), paths.ticket(item_id))
            except OSError:
                pass  # lease already expired/re-queued by someone else
            raise
        release_case(paths.root, item_id)
        completed.extend(finished)
    return completed


# ----------------------------------------------------------------------
# status + collation
# ----------------------------------------------------------------------
def _lease_info(
    lease: Path, now: float, default_ttl_s: float
) -> Optional[LeaseInfo]:
    """Identity/age snapshot of one lease file (``None`` if vanished)."""
    data = _read_json(lease)
    if data is not None and "claimed_at" in data:
        return LeaseInfo(
            case_id=lease.stem,
            worker=str(data.get("worker", "<unknown>")),
            age_s=now - float(data["claimed_at"]),
            ttl_s=float(data.get("lease_ttl_s", default_ttl_s)),
        )
    try:
        mtime = lease.stat().st_mtime
    except OSError:
        return None
    return LeaseInfo(
        case_id=lease.stem,
        worker="<unstamped>",
        age_s=now - mtime,
        ttl_s=default_ttl_s,
    )


def shard_status(shard_dir: Union[str, Path]) -> ShardStatus:
    """Count done/pending/leased/expired cases of a shard.

    Beyond the aggregates, the returned status names each expired
    lease (work-item id + worker identity) and each *stale* one —
    still live but past half its TTL — so an operator can see which
    worker went dark without grepping the queue directory.  Fused
    groups are reported distinctly (:attr:`ShardStatus.fused_groups`):
    group id, member-case count and claim state, with the unfinished
    members folded into the case aggregates under the group's state.
    """
    paths = _ShardPaths(shard_dir)
    manifest = _load_manifest(paths)
    now = time.time()
    default_ttl_s = manifest.lease_ttl_s
    done = pending = leased = expired = 0
    expired_leases: List[LeaseInfo] = []
    stale_leases: List[LeaseInfo] = []
    fused_groups: List[GroupInfo] = []
    group_of: Dict[str, str] = {}
    group_state: Dict[str, str] = {}
    # Fused groups first: each group's single ticket/lease decides the
    # state its unfinished member cases count under.
    for group_id, member_ids in manifest.groups:
        for case_id in member_ids:
            group_of[case_id] = group_id
        worker = ""
        if all(paths.case_done(case_id) for case_id in member_ids):
            state = "done"
        elif paths.ticket(group_id).exists():
            state = "pending"
        elif paths.lease(group_id).exists():
            lease = paths.lease(group_id)
            info = _lease_info(lease, now, default_ttl_s)
            if _lease_expired(lease, now, default_ttl_s):
                state = "expired"
                if info is not None:
                    expired_leases.append(info)
            else:
                state = "leased"
                if info is not None and info.age_s > 0.5 * info.ttl_s:
                    stale_leases.append(info)
            if info is not None:
                worker = info.worker
        else:
            # Orphaned (e.g. interrupted init): re-queued next pass.
            state = "pending"
        group_state[group_id] = state
        fused_groups.append(
            GroupInfo(
                group_id=group_id,
                case_ids=member_ids,
                state=state,
                worker=worker,
            )
        )
    for case_id in manifest.case_ids:
        if paths.case_done(case_id):
            done += 1
            continue
        group_id = group_of.get(case_id)
        if group_id is not None:
            state = group_state[group_id]
            if state == "leased":
                leased += 1
            elif state == "expired":
                expired += 1
            else:
                pending += 1
        elif paths.ticket(case_id).exists():
            pending += 1
        elif paths.lease(case_id).exists():
            lease = paths.lease(case_id)
            info = _lease_info(lease, now, default_ttl_s)
            if _lease_expired(lease, now, default_ttl_s):
                expired += 1
                if info is not None:
                    expired_leases.append(info)
            else:
                leased += 1
                if info is not None and info.age_s > 0.5 * info.ttl_s:
                    stale_leases.append(info)
        else:
            # Orphaned (e.g. interrupted init): counts as pending work
            # that the next init/work pass will re-queue.
            pending += 1
    return ShardStatus(
        total=len(manifest),
        done=done,
        pending=pending,
        leased=leased,
        expired=expired,
        expired_leases=tuple(expired_leases),
        stale_leases=tuple(stale_leases),
        fused_groups=tuple(fused_groups),
    )


def watch_shard(
    shard_dir: Union[str, Path],
    interval_s: float = 2.0,
    max_ticks: Optional[int] = None,
    stream=None,
) -> ShardStatus:
    """Poll and print shard progress until the shard completes.

    The live mode behind ``repro shard status --watch``: one
    :meth:`ShardStatus.describe` line per tick — plus one line per
    fused-group work item and per-lease trouble detail when anything
    is expired or stale — stopping when every case is done or after
    ``max_ticks`` polls.  Returns the final status.
    """
    import sys

    out = sys.stdout if stream is None else stream
    if interval_s <= 0.0:
        raise SimulationError(f"interval_s must be > 0, got {interval_s}")
    ticks = 0
    while True:
        status = shard_status(shard_dir)
        ticks += 1
        print(status.describe(), file=out, flush=True)
        for line in status.group_lines():
            print(f"  {line}", file=out, flush=True)
        for line in status.detail_lines():
            print(f"  {line}", file=out, flush=True)
        if status.complete:
            return status
        if max_ticks is not None and ticks >= max_ticks:
            return status
        time.sleep(interval_s)


def collate_shard(shard_dir: Union[str, Path]) -> ExperimentCollation:
    """Reassemble the full collation from a finished shard.

    Results are loaded in manifest order, so the collation is
    bit-identical to the serial :class:`ExperimentRunner` run over the
    same grid regardless of which worker produced which artifact.
    """
    paths = _ShardPaths(shard_dir)
    manifest = _load_manifest(paths)
    missing = [
        case_id
        for case_id in manifest.case_ids
        if not paths.case_done(case_id)
    ]
    if missing:
        status = shard_status(paths.root)
        raise SimulationError(
            f"shard is not complete ({status.describe()}); "
            f"missing: {', '.join(missing[:5])}"
            + ("..." if len(missing) > 5 else "")
        )
    results = tuple(
        result_from_npz(paths.series_artifact(case_id))
        for case_id in manifest.case_ids
    )
    return ExperimentCollation(cases=manifest.cases, results=results)


# ----------------------------------------------------------------------
# the ExperimentRunner executor="shard" entry point
# ----------------------------------------------------------------------
def run_sharded(
    cases: Sequence[ExperimentCase],
    shard_dir: Union[str, Path, None] = None,
    n_workers: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
) -> Tuple[SimulationResult, ...]:
    """Init a shard, drain it with worker processes, collate.

    The in-process convenience wrapper behind
    ``ExperimentRunner(executor="shard")``: the exact protocol
    independent hosts speak via the CLI, exercised with local worker
    processes.  With ``shard_dir=None`` the shard lives in a temporary
    directory that is removed after collation; a named directory is
    left in place (durable — more hosts can join, crashes resume).
    """
    cleanup = shard_dir is None
    root = Path(
        tempfile.mkdtemp(prefix="repro-shard-") if cleanup else shard_dir
    )
    try:
        init_shard(root, cases, cache_dir=cache_dir)
        workers = n_workers or min(4, os.cpu_count() or 2)
        if workers <= 1:
            work_shard(root)
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(work_shard, str(root)) for _ in range(workers)
                ]
                for future in futures:
                    future.result()
        return collate_shard(root).results
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)
