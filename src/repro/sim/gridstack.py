"""Grid-stacked fused simulation: one decision pass for a whole case grid.

Boiler-scale experiment grids are dominated by INOR decision epochs:
a 64-case noise-axis grid over one trace re-runs the same
window-derivation + partition-build + MPP-scoring pipeline 64 times per
control period, each time over a different scanned temperature vector
but through *identical* kernels.  The ``executor="gridstack"`` path of
:class:`~repro.sim.engine.ExperimentRunner` exploits that homogeneity:
cases sharing one physics precompute, chain length, control period and
converter are grouped, and every decision epoch runs as **one** stacked
kernel pass (:func:`repro.core.inor.inor_stack` over a ``(C, N)`` EMF
matrix) instead of ``C`` per-case :func:`repro.core.inor.inor` calls.
The electrical series is fused the same way — all ``(case, segment)``
spans sharing a configuration evaluate through one row-stacked
:func:`repro.teg.network.array_mpp_rows` call.

Results are **bit-identical** to ``executor="serial"`` (pinned in the
parity suite) for everything except the wall-clock ``runtime_s`` series,
which by construction measures the *fused* decision cost split evenly
across the group.  The parity argument layer by layer:

* the scanner draw, Thevenin map, converter curve and battery replay are
  elementwise, so batching them over a case axis reuses the same doubles;
* the decision epochs of :class:`~repro.core.controller.PeriodicPolicy`
  depend only on the shared time vector and period, so one replicated
  schedule drives every case;
* ``inor_stack`` / ``array_mpp_rows`` are pinned bit-identical to their
  per-case forms by the kernel parity suite.

Cases that do not fit the fused contract — non-INOR policies, scalar
kernels, measured (non-nominal) compute time, P&O tracking — fall back
to :func:`repro.sim.engine.run_case` over the same shared physics, i.e.
exactly the serial path.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.inor import _inor_stack_raw, parse_inor_kernel
from repro.core.overhead import OverheadEvent
from repro.errors import SimulationError
from repro.sim.results import SimulationResult
from repro.teg.network import array_mpp_rows

__all__ = ["fusable_reason", "run_grid_stacked"]


def fusable_reason(case) -> Optional[str]:
    """Why ``case`` cannot join a fused group, or ``None`` if it can.

    The fused pass covers the grid's hot diagonal — batched-kernel INOR
    under deterministic (nominal) compute accounting — and leaves every
    other shape to the bit-identical per-case path rather than growing
    special cases.
    """
    scenario = case.scenario
    if case.policy != "INOR":
        return f"policy {case.policy!r} is not INOR"
    mode, _ = parse_inor_kernel(scenario.inor_kernel)
    if mode != "batched":
        return f"kernel {scenario.inor_kernel!r} is the scalar reference"
    if scenario.nominal_compute_s is None:
        return "measured compute time is per-case wall-clock"
    if not scenario.make_charger(with_battery=case.with_battery).exact_tracking:
        return "P&O tracking is inherently sequential"
    return None


def _group_key(case, physics) -> Tuple:
    """Hashable fused-group identity: one key, one ``inor_stack`` stream."""
    scenario = case.scenario
    _, backend = parse_inor_kernel(scenario.inor_kernel)
    return (
        id(physics),
        int(scenario.n_modules),
        float(scenario.control_period_s),
        scenario.module,
        scenario.make_charger(with_battery=False).converter,
        backend,
    )


def _decision_schedule(time_s: np.ndarray, period_s: float) -> List[int]:
    """Sample indices where a :class:`PeriodicPolicy` fires.

    Replicates the policy's gating arithmetic exactly (same float
    comparisons on the same doubles), so the fused loop visits precisely
    the samples the per-case loops would decide on.
    """
    fire: List[int] = []
    next_run = 0.0
    for i in range(time_s.size):
        t = float(time_s[i])
        if t + 1.0e-9 < next_run:
            continue
        next_run = t + float(period_s)
        fire.append(i)
    return fire


def _run_inor_group(cases: Sequence, physics) -> List[SimulationResult]:
    """Run one homogeneous INOR group through the fused stacked pass."""
    scenario0 = cases[0].scenario
    trace = physics.trace
    n = trace.n_samples
    dt = trace.dt_s
    n_cases = len(cases)
    n_modules = physics.n_modules
    module = scenario0.module
    _, backend = parse_inor_kernel(scenario0.inor_kernel)
    rank_charger = scenario0.make_charger(with_battery=False)
    run_chargers = [
        case.scenario.make_charger(with_battery=case.with_battery)
        for case in cases
    ]

    # Per-case sensing: each case owns its seeded scanner, drawn in one
    # batch exactly like HarvestSimulator._run_batched.
    scanned = np.empty((n_cases, n, n_modules))
    for k, case in enumerate(cases):
        scanner = case.scenario.make_scanner()
        scanner.reset()
        scanned[k] = scanner.scan_batch(physics.sensed_temps_c)

    # Thevenin map constants (thevenin_from_temps, batched over cases).
    emf_coef = module.emf_coefficient()
    decision_resistance = np.full(n_modules, module.internal_resistance())

    runtimes = np.zeros((n_cases, n))
    billed: List[List[Tuple[int, float, int]]] = [[] for _ in range(n_cases)]
    switch_times: List[List[float]] = [[] for _ in range(n_cases)]
    segments: List[List[Tuple[int, Tuple[int, ...]]]] = [
        [] for _ in range(n_cases)
    ]
    case_index = np.arange(n_cases)
    # Configurations live as boolean start-membership rows: the switch
    # fabric's toggle count is 3x the symmetric difference of the start
    # sets, i.e. an XOR popcount per row — integer-exact, so the fused
    # bookkeeping bills exactly what per-case SwitchFabric objects
    # would.  Every fabric powers up all-series (every module a start).
    membership = np.ones((n_cases, n_modules), dtype=bool)

    for epoch, i in enumerate(
        _decision_schedule(trace.time_s, scenario0.control_period_s)
    ):
        t = float(trace.time_s[i])
        ambient = float(trace.ambient_c[i])
        # One stacked Thevenin + INOR pass decides every case at once.
        emf_rows = emf_coef * (scanned[:, i, :] - ambient)
        t0 = time.perf_counter()
        stack, _, _, _, _, winners, _, _ = _inor_stack_raw(
            emf_rows,
            decision_resistance,
            rank_charger,
            0.03,
            backend,
        )
        runtimes[:, i] = (time.perf_counter() - t0) / n_cases

        # Winner configurations -> membership rows, no per-case Python.
        winner_counts = np.diff(stack.offsets)[winners]
        flat_lo = stack.offsets[winners]
        lane = np.arange(int(winner_counts.sum()), dtype=np.int64)
        within = lane - np.repeat(
            np.cumsum(winner_counts) - winner_counts, winner_counts
        )
        starts_vals = stack.cat[np.repeat(flat_lo, winner_counts) + within]
        decided = np.zeros((n_cases, n_modules), dtype=bool)
        decided[np.repeat(case_index, winner_counts), starts_vals] = True

        flips = (membership != decided).sum(axis=1)
        if epoch > 0:
            # INOR bills every post-commissioning decision (the paper's
            # "switch at every time point"), toggles included even when
            # the new partition equals the old one.
            for k in range(n_cases):
                billed[k].append((i, t, 3 * int(flips[k])))
                switch_times[k].append(t)
        for k in np.flatnonzero((flips > 0) | (epoch == 0)):
            starts = tuple(int(s) for s in np.flatnonzero(decided[k]))
            segments[k].append((i, starts))
        membership = decided

    # Fused electrical pass: all (case, span) runs sharing one
    # configuration evaluate through a single row-stacked reduction
    # (array_mpp_rows is row-independent, so stacking is bit-safe).
    gross = np.empty((n_cases, n))
    voltage = np.empty((n_cases, n))
    delivered = np.empty((n_cases, n))
    resistance = np.full(n_modules, physics.module_resistance_ohm)
    spans_by_config: Dict[Tuple[int, ...], List[Tuple[int, int, int]]] = {}
    for k in range(n_cases):
        bounds = [idx for idx, _ in segments[k]] + [n]
        for (lo, starts), hi in zip(segments[k], bounds[1:]):
            spans_by_config.setdefault(starts, []).append((k, lo, hi))
    for starts, spans in spans_by_config.items():
        rows = np.concatenate(
            [physics.emf_true[lo:hi] for _, lo, hi in spans], axis=0
        )
        power, volt = array_mpp_rows(rows, resistance, starts)
        power = np.maximum(power, 0.0)
        cursor = 0
        for k, lo, hi in spans:
            width = hi - lo
            gross[k, lo:hi] = power[cursor : cursor + width]
            voltage[k, lo:hi] = volt[cursor : cursor + width]
            cursor += width
    for k in range(n_cases):
        delivered[k] = run_chargers[k].converter.output_power_batch(
            gross[k], voltage[k]
        )

    results: List[SimulationResult] = []
    for k, case in enumerate(cases):
        nominal = case.scenario.nominal_compute_s
        overhead = case.scenario.overhead
        events: List[OverheadEvent] = []
        for i, t, toggles in billed[k]:
            previous = float(delivered[k, i - 1]) if i > 0 else 0.0
            events.append(
                overhead.event(
                    time_s=t,
                    power_w=max(previous, 0.0),
                    compute_time_s=nominal,
                    toggles=toggles,
                )
            )
        charger = run_chargers[k]
        if charger.battery is not None and charger.exact_tracking:
            for i in range(n):
                charger.battery.accept(float(delivered[k, i]), dt)
        groups = np.zeros(n, dtype=np.int64)
        bounds = [idx for idx, _ in segments[k]] + [n]
        for (lo, starts), hi in zip(segments[k], bounds[1:]):
            groups[lo:hi] = len(starts)
        results.append(
            SimulationResult(
                scheme="INOR",
                time_s=trace.time_s.copy(),
                gross_power_w=gross[k].copy(),
                delivered_power_w=delivered[k].copy(),
                ideal_power_w=physics.ideal_power_w.copy(),
                array_voltage_v=voltage[k].copy(),
                runtime_s=runtimes[k].copy(),
                overhead_events=tuple(events),
                switch_times_s=tuple(switch_times[k]),
                n_groups_series=groups,
            )
        )
    return results


def run_grid_stacked(
    cases: Sequence, physics_per_case: Sequence
) -> List[SimulationResult]:
    """Execute a case grid with fused groups, in collation order.

    Fusable cases (see :func:`fusable_reason`) sharing a group key run
    through :func:`_run_inor_group`; every other case takes the serial
    per-case path over the same shared physics.  Output order matches
    the input grid regardless of grouping.
    """
    from repro.sim.engine import run_case  # circular-import guard

    results: List[Optional[SimulationResult]] = [None] * len(cases)
    groups: Dict[Tuple, List[int]] = {}
    for index, (case, physics) in enumerate(zip(cases, physics_per_case)):
        if fusable_reason(case) is None:
            groups.setdefault(_group_key(case, physics), []).append(index)
        else:
            results[index] = run_case(case, physics)
    for indices in groups.values():
        members = [cases[i] for i in indices]
        try:
            fused = _run_inor_group(members, physics_per_case[indices[0]])
        except Exception as exc:
            names = ", ".join(repr(case.name) for case in members)
            raise SimulationError(
                f"grid-stacked group [{names}] failed: {exc}"
            ) from exc
        for index, result in zip(indices, fused):
            results[index] = result
    return [result for result in results if result is not None]
