"""Grid-stacked fused simulation: one decision pass for a whole case grid.

Boiler-scale experiment grids are dominated by decision epochs: a
64-case noise-axis grid over one trace re-runs the same
window-derivation + partition-build + MPP-scoring pipeline 64 times per
control period, each time over a different scanned temperature vector
but through *identical* kernels.  The ``executor="gridstack"`` path of
:class:`~repro.sim.engine.ExperimentRunner` exploits that homogeneity:
cases sharing one physics precompute, chain length, control period,
converter and policy shape are grouped, and every decision epoch runs
as **one** stacked kernel pass instead of ``C`` per-case policy calls:

* **INOR** groups run :func:`repro.core.inor.inor_stack` over a
  ``(C, N)`` EMF matrix per control period;
* **DNOR** groups run :func:`repro.core.dnor.dnor_stack` per epoch —
  one stacked INOR proposal pass plus one
  :func:`repro.teg.network.array_mpp_rows_multi_stack` horizon-scoring
  pass over every case's (current, candidate) pair, with per-case
  predictor state carried between epochs;
* **Baseline** cases fuse trivially as a degenerate stack — one shared
  configuration, one span, one electrical pass.

The electrical series is fused the same way for every policy — all
``(case, segment)`` spans sharing a configuration evaluate through one
row-stacked :func:`repro.teg.network.array_mpp_rows` call.

Results are **bit-identical** to ``executor="serial"`` (pinned in the
parity suite) for everything except the wall-clock ``runtime_s`` series,
which by construction measures the *fused* decision cost split evenly
across the group.  The parity argument layer by layer:

* the scanner draw, Thevenin map, converter curve and battery replay are
  elementwise, so batching them over a case axis reuses the same doubles;
* the decision epochs of :class:`~repro.core.controller.PeriodicPolicy`
  and :class:`~repro.core.controller.DNORPolicy` depend only on the
  shared time vector and period, so one replicated schedule drives
  every case;
* ``inor_stack`` / ``dnor_stack`` / ``array_mpp_rows`` are pinned
  bit-identical to their per-case forms by the kernel parity suites.

Cases that do not fit the fused contract — EHTR, scalar kernels,
measured (non-nominal) compute time, P&O tracking — fall back to
:func:`repro.sim.engine.run_case` over the same shared physics, i.e.
exactly the serial path.  Mixed grids therefore partition into
homogeneous fused groups plus a serial remainder instead of dropping
wholesale to serial.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dnor import dnor_stack
from repro.core.inor import _inor_stack_raw, parse_inor_kernel
from repro.core.overhead import OverheadEvent
from repro.errors import SimulationError
from repro.sim.results import SimulationResult
from repro.teg.network import array_mpp_rows

__all__ = ["fusable_reason", "run_grid_stacked"]


def fusable_reason(case) -> Optional[str]:
    """Why ``case`` cannot join a fused group, or ``None`` if it can.

    The fused pass covers the grid's hot diagonals — batched-kernel
    INOR and DNOR under deterministic (nominal) compute accounting,
    plus the trivially stackable Baseline — and leaves every other
    shape to the bit-identical per-case path rather than growing
    special cases.
    """
    scenario = case.scenario
    if not scenario.make_charger(with_battery=case.with_battery).exact_tracking:
        return "P&O tracking is inherently sequential"
    if case.policy == "Baseline":
        return None
    if case.policy not in ("INOR", "DNOR"):
        return f"policy {case.policy!r} has no stacked epoch kernel"
    mode, _ = parse_inor_kernel(scenario.inor_kernel)
    if mode != "batched":
        return f"kernel {scenario.inor_kernel!r} is the scalar reference"
    if scenario.nominal_compute_s is None:
        return "measured compute time is per-case wall-clock"
    return None


def _group_key(case, physics) -> Tuple:
    """Hashable fused-group identity: one key, one stacked epoch stream."""
    scenario = case.scenario
    _, backend = parse_inor_kernel(scenario.inor_kernel)
    key: Tuple = (
        case.policy,
        id(physics),
        int(scenario.n_modules),
        float(scenario.control_period_s),
        scenario.module,
        scenario.make_charger(with_battery=False).converter,
        backend,
    )
    if case.policy == "DNOR":
        # DNOR epochs fire every tp + 1 seconds; only cases on the same
        # epoch clock (and horizon geometry) share a stacked stream.
        key += (float(scenario.tp_seconds),)
    return key


def _decision_schedule(time_s: np.ndarray, period_s: float) -> List[int]:
    """Sample indices where a periodic policy fires.

    Replicates the gating arithmetic of
    :class:`~repro.core.controller.PeriodicPolicy` and
    :class:`~repro.core.controller.DNORPolicy` exactly (same float
    comparisons on the same doubles), so the fused loop visits precisely
    the samples the per-case loops would decide on.
    """
    fire: List[int] = []
    next_run = 0.0
    for i in range(time_s.size):
        t = float(time_s[i])
        if t + 1.0e-9 < next_run:
            continue
        next_run = t + float(period_s)
        fire.append(i)
    return fire


def _scan_group(cases: Sequence, physics) -> np.ndarray:
    """Per-case sensed temperatures, drawn in one batch per case.

    Each case owns its seeded scanner, drawn exactly like
    ``HarvestSimulator._run_batched`` does.
    """
    n = physics.trace.n_samples
    scanned = np.empty((len(cases), n, physics.n_modules))
    for k, case in enumerate(cases):
        scanner = case.scenario.make_scanner()
        scanner.reset()
        scanned[k] = scanner.scan_batch(physics.sensed_temps_c)
    return scanned


def _collate_group(
    cases: Sequence,
    physics,
    run_chargers: Sequence,
    scheme: str,
    runtimes: np.ndarray,
    billed: Sequence[List[Tuple[int, float, int]]],
    switch_times: Sequence[List[float]],
    segments: Sequence[List[Tuple[int, Tuple[int, ...]]]],
) -> List[SimulationResult]:
    """Fused electrical pass + per-case result packaging.

    The shared tail of every group runner: all ``(case, span)`` runs
    sharing one configuration evaluate through a single row-stacked
    reduction (:func:`array_mpp_rows` is row-independent, so stacking
    — and de-duplicating identical spans, the Baseline case — is
    bit-safe), then the overhead bill, battery replay and result
    packaging replicate the serial engine per case.
    """
    trace = physics.trace
    n = trace.n_samples
    dt = trace.dt_s
    n_cases = len(cases)
    n_modules = physics.n_modules

    gross = np.empty((n_cases, n))
    voltage = np.empty((n_cases, n))
    delivered = np.empty((n_cases, n))
    resistance = np.full(n_modules, physics.module_resistance_ohm)
    spans_by_config: Dict[Tuple[int, ...], List[Tuple[int, int, int]]] = {}
    for k in range(n_cases):
        bounds = [idx for idx, _ in segments[k]] + [n]
        for (lo, starts), hi in zip(segments[k], bounds[1:]):
            spans_by_config.setdefault(starts, []).append((k, lo, hi))
    for starts, spans in spans_by_config.items():
        # Distinct sample windows only: Baseline groups (and repeated
        # partitions generally) share whole spans across cases, which
        # would otherwise be evaluated once per case.
        windows = sorted({(lo, hi) for _, lo, hi in spans})
        rows = np.concatenate(
            [physics.emf_true[lo:hi] for lo, hi in windows], axis=0
        )
        power, volt = array_mpp_rows(rows, resistance, starts)
        power = np.maximum(power, 0.0)
        cursors: Dict[Tuple[int, int], int] = {}
        cursor = 0
        for lo, hi in windows:
            cursors[(lo, hi)] = cursor
            cursor += hi - lo
        for k, lo, hi in spans:
            at = cursors[(lo, hi)]
            width = hi - lo
            gross[k, lo:hi] = power[at : at + width]
            voltage[k, lo:hi] = volt[at : at + width]
    for k in range(n_cases):
        delivered[k] = run_chargers[k].converter.output_power_batch(
            gross[k], voltage[k]
        )

    results: List[SimulationResult] = []
    for k, case in enumerate(cases):
        nominal = case.scenario.nominal_compute_s
        overhead = case.scenario.overhead
        events: List[OverheadEvent] = []
        for i, t, toggles in billed[k]:
            previous = float(delivered[k, i - 1]) if i > 0 else 0.0
            events.append(
                overhead.event(
                    time_s=t,
                    power_w=max(previous, 0.0),
                    compute_time_s=nominal,
                    toggles=toggles,
                )
            )
        charger = run_chargers[k]
        if charger.battery is not None and charger.exact_tracking:
            for i in range(n):
                charger.battery.accept(float(delivered[k, i]), dt)
        groups = np.zeros(n, dtype=np.int64)
        bounds = [idx for idx, _ in segments[k]] + [n]
        for (lo, starts), hi in zip(segments[k], bounds[1:]):
            groups[lo:hi] = len(starts)
        results.append(
            SimulationResult(
                scheme=scheme,
                time_s=trace.time_s.copy(),
                gross_power_w=gross[k].copy(),
                delivered_power_w=delivered[k].copy(),
                ideal_power_w=physics.ideal_power_w.copy(),
                array_voltage_v=voltage[k].copy(),
                runtime_s=runtimes[k].copy(),
                overhead_events=tuple(events),
                switch_times_s=tuple(switch_times[k]),
                n_groups_series=groups,
            )
        )
    return results


def _run_inor_group(cases: Sequence, physics) -> List[SimulationResult]:
    """Run one homogeneous INOR group through the fused stacked pass."""
    scenario0 = cases[0].scenario
    trace = physics.trace
    n = trace.n_samples
    n_cases = len(cases)
    n_modules = physics.n_modules
    module = scenario0.module
    _, backend = parse_inor_kernel(scenario0.inor_kernel)
    rank_charger = scenario0.make_charger(with_battery=False)
    run_chargers = [
        case.scenario.make_charger(with_battery=case.with_battery)
        for case in cases
    ]
    scanned = _scan_group(cases, physics)

    # Thevenin map constants (thevenin_from_temps, batched over cases).
    emf_coef = module.emf_coefficient()
    decision_resistance = np.full(n_modules, module.internal_resistance())

    runtimes = np.zeros((n_cases, n))
    billed: List[List[Tuple[int, float, int]]] = [[] for _ in range(n_cases)]
    switch_times: List[List[float]] = [[] for _ in range(n_cases)]
    segments: List[List[Tuple[int, Tuple[int, ...]]]] = [
        [] for _ in range(n_cases)
    ]
    case_index = np.arange(n_cases)
    # Configurations live as boolean start-membership rows: the switch
    # fabric's toggle count is 3x the symmetric difference of the start
    # sets, i.e. an XOR popcount per row — integer-exact, so the fused
    # bookkeeping bills exactly what per-case SwitchFabric objects
    # would.  Every fabric powers up all-series (every module a start).
    membership = np.ones((n_cases, n_modules), dtype=bool)

    for epoch, i in enumerate(
        _decision_schedule(trace.time_s, scenario0.control_period_s)
    ):
        t = float(trace.time_s[i])
        ambient = float(trace.ambient_c[i])
        # One stacked Thevenin + INOR pass decides every case at once.
        emf_rows = emf_coef * (scanned[:, i, :] - ambient)
        t0 = time.perf_counter()
        stack, _, _, _, _, winners, _, _ = _inor_stack_raw(
            emf_rows,
            decision_resistance,
            rank_charger,
            0.03,
            backend,
        )
        runtimes[:, i] = (time.perf_counter() - t0) / n_cases

        # Winner configurations -> membership rows, no per-case Python.
        winner_counts = np.diff(stack.offsets)[winners]
        flat_lo = stack.offsets[winners]
        lane = np.arange(int(winner_counts.sum()), dtype=np.int64)
        within = lane - np.repeat(
            np.cumsum(winner_counts) - winner_counts, winner_counts
        )
        starts_vals = stack.cat[np.repeat(flat_lo, winner_counts) + within]
        decided = np.zeros((n_cases, n_modules), dtype=bool)
        decided[np.repeat(case_index, winner_counts), starts_vals] = True

        flips = (membership != decided).sum(axis=1)
        if epoch > 0:
            # INOR bills every post-commissioning decision (the paper's
            # "switch at every time point"), toggles included even when
            # the new partition equals the old one.
            for k in range(n_cases):
                billed[k].append((i, t, 3 * int(flips[k])))
                switch_times[k].append(t)
        for k in np.flatnonzero((flips > 0) | (epoch == 0)):
            starts = tuple(int(s) for s in np.flatnonzero(decided[k]))
            segments[k].append((i, starts))
        membership = decided

    return _collate_group(
        cases, physics, run_chargers, "INOR",
        runtimes, billed, switch_times, segments,
    )


def _run_dnor_group(cases: Sequence, physics) -> List[SimulationResult]:
    """Run one homogeneous DNOR group through the stacked epoch kernel.

    Per-case :class:`~repro.core.controller.DNORPolicy` state —
    predictor stream, history window, durable configuration — is
    carried per lane; every epoch decision runs through **one**
    :func:`repro.core.dnor.dnor_stack` call.  The epoch schedule, the
    first-adoption commissioning rule and the switch billing replicate
    the serial engine exactly (pinned in the parity suite).
    """
    trace = physics.trace
    n = trace.n_samples
    n_cases = len(cases)
    n_modules = physics.n_modules
    run_chargers = [
        case.scenario.make_charger(with_battery=case.with_battery)
        for case in cases
    ]
    policies = [case.scenario.make_dnor_policy() for case in cases]
    planners = [policy.planner for policy in policies]
    caps = [policy._history.maxlen for policy in policies]
    scanned = _scan_group(cases, physics)

    runtimes = np.zeros((n_cases, n))
    billed: List[List[Tuple[int, float, int]]] = [[] for _ in range(n_cases)]
    switch_times: List[List[float]] = [[] for _ in range(n_cases)]
    segments: List[List[Tuple[int, Tuple[int, ...]]]] = [
        [] for _ in range(n_cases)
    ]
    currents: List[Optional[object]] = [None] * n_cases

    prev_i: Optional[int] = None
    for i in _decision_schedule(trace.time_s, planners[0].epoch_seconds):
        t = float(trace.time_s[i])
        ambient = float(trace.ambient_c[i])
        # The policy's history deque holds the last `cap` sensed rows,
        # appended every control period; `new_rows` counts the arrivals
        # since the previous epoch (the incremental-refit stream).
        new_rows = i + 1 if prev_i is None else i - prev_i
        histories = [
            scanned[k, max(0, i + 1 - caps[k]) : i + 1, :]
            for k in range(n_cases)
        ]
        t0 = time.perf_counter()
        decisions = dnor_stack(
            planners, histories, ambient, currents,
            time_s=t, new_rows=[new_rows] * n_cases,
        )
        runtimes[:, i] = (time.perf_counter() - t0) / n_cases

        for k, decision in enumerate(decisions):
            if not decision.switch:
                continue
            if currents[k] is None:
                # Commissioning the initial wiring is free: every
                # scheme starts from the same cold array.
                pass
            else:
                toggles = currents[k].switch_toggles_to(decision.config)
                billed[k].append((i, t, toggles))
                switch_times[k].append(t)
            segments[k].append((i, decision.config.starts))
            currents[k] = decision.config
        prev_i = i

    return _collate_group(
        cases, physics, run_chargers, "DNOR",
        runtimes, billed, switch_times, segments,
    )


def _run_baseline_group(cases: Sequence, physics) -> List[SimulationResult]:
    """Run one Baseline group as a degenerate (single-span) stack.

    :class:`~repro.core.controller.StaticPolicy` applies its wired-in
    grid at the first sample, for free, and never decides again: every
    case is one configuration span over the whole trace, so the whole
    group collapses into one fused electrical pass (the span
    de-duplication in :func:`_collate_group`) plus per-case converter
    and battery replay.  The scanner draw is skipped entirely — the
    static policy never reads the sensed temperatures, and each case's
    scanner is private state, so the omission is unobservable.
    """
    n_cases = len(cases)
    n = physics.trace.n_samples
    run_chargers = [
        case.scenario.make_charger(with_battery=case.with_battery)
        for case in cases
    ]
    runtimes = np.zeros((n_cases, n))
    billed: List[List[Tuple[int, float, int]]] = [[] for _ in range(n_cases)]
    switch_times: List[List[float]] = [[] for _ in range(n_cases)]
    segments = [
        [(0, case.scenario.make_baseline_policy().config.starts)]
        for case in cases
    ]
    return _collate_group(
        cases, physics, run_chargers, "Baseline",
        runtimes, billed, switch_times, segments,
    )


# Policy name -> module attribute of the group runner (resolved late so
# tests can monkeypatch the runners).
_GROUP_RUNNERS = {
    "INOR": "_run_inor_group",
    "DNOR": "_run_dnor_group",
    "Baseline": "_run_baseline_group",
}


def run_grid_stacked(
    cases: Sequence, physics_per_case: Sequence
) -> List[SimulationResult]:
    """Execute a case grid with fused groups, in collation order.

    Fusable cases (see :func:`fusable_reason`) sharing a group key run
    through their policy's stacked group runner; every other case takes
    the serial per-case path over the same shared physics.  Output
    order matches the input grid regardless of grouping.
    """
    from repro.sim.engine import run_case  # circular-import guard

    results: List[Optional[SimulationResult]] = [None] * len(cases)
    groups: Dict[Tuple, List[int]] = {}
    for index, (case, physics) in enumerate(zip(cases, physics_per_case)):
        if fusable_reason(case) is None:
            groups.setdefault(_group_key(case, physics), []).append(index)
        else:
            results[index] = run_case(case, physics)
    for key, indices in groups.items():
        members = [cases[i] for i in indices]
        runner = globals()[_GROUP_RUNNERS[key[0]]]
        try:
            fused = runner(members, physics_per_case[indices[0]])
        except Exception as exc:
            names = ", ".join(repr(case.name) for case in members)
            raise SimulationError(
                f"grid-stacked group [{names}] failed: {exc}"
            ) from exc
        for index, result in zip(indices, fused):
            results[index] = result
    return [result for result in results if result is not None]
