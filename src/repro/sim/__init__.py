"""Closed-loop harvesting simulation.

* :mod:`repro.sim.scenario` — bundles module, array size, radiator,
  trace, charger and overhead settings into the canonical experiment
  setup (the paper's 100-module Porter-II platform).
* :mod:`repro.sim.simulator` — the time-stepped simulator running one
  reconfiguration policy against a trace.
* :mod:`repro.sim.results` — result containers and the Table-I style
  comparison renderer.
* :mod:`repro.sim.ideal` — the ``P_ideal`` reference of Fig. 7.
"""

from repro.sim.export import result_series_to_csv, summary_rows_to_csv
from repro.sim.ideal import ideal_power_series
from repro.sim.results import SimulationResult, comparison_table, summary_row
from repro.sim.scenario import Scenario, default_scenario
from repro.sim.simulator import HarvestSimulator

__all__ = [
    "HarvestSimulator",
    "Scenario",
    "SimulationResult",
    "comparison_table",
    "default_scenario",
    "ideal_power_series",
    "result_series_to_csv",
    "summary_row",
    "summary_rows_to_csv",
]
