"""Closed-loop harvesting simulation.

The stack is layered (see ROADMAP "Open items" for the architecture
overview):

* :mod:`repro.sim.physics` — :class:`TracePhysics`, the trace-level
  physics precompute: vectorised thermal-boundary solves (true +
  sensed), EMF matrix and ``P_ideal`` series for a whole trace in one
  NumPy pass, generic over any registered
  :class:`~repro.thermal.boundary.ThermalBoundary`.
* :mod:`repro.sim.cache` — :class:`PhysicsCache`, content-fingerprint
  memoisation of the precompute (in-process LRU + on-disk artifact
  store) shared across simulators, grid cells and worker processes.
* :mod:`repro.sim.simulator` — the step loop running one
  reconfiguration policy against a trace; consumes the precompute and
  evaluates the electrical series in batched constant-configuration
  segments.
* :mod:`repro.sim.engine` — :class:`ExperimentRunner`, fanning a grid
  of (trace × policy × chain length × scanner noise) cases across
  workers with seeded determinism and collated result tables.
* :mod:`repro.sim.shard` — the durable filesystem-backed work queue
  that fans the same grids across independent *hosts* (atomic-rename
  claim leases, per-case result artifacts, shared physics store),
  collating bit-identically to a serial run.
* :mod:`repro.sim.scenario` — bundles module, array size, thermal
  boundary, trace, charger and overhead settings into reproducible
  experiment setups, with a :class:`ScenarioRegistry` of named
  scenarios.
* :mod:`repro.sim.results` — result containers and the Table-I style
  comparison renderer.
* :mod:`repro.sim.ideal` — the ``P_ideal`` reference of Fig. 7.
"""

from repro.sim.cache import CacheStats, PhysicsCache, physics_fingerprint
from repro.sim.engine import (
    ExperimentCase,
    ExperimentCollation,
    ExperimentRunner,
    grid_cases,
    run_case,
)
from repro.sim.export import (
    result_from_npz,
    result_series_to_csv,
    result_to_npz,
    summary_rows_to_csv,
)
from repro.sim.ideal import ideal_power_series
from repro.sim.physics import TracePhysics
from repro.sim.results import SimulationResult, comparison_table, summary_row
from repro.sim.shard import (
    ShardManifest,
    ShardStatus,
    collate_shard,
    init_shard,
    shard_status,
    work_shard,
)
from repro.sim.scenario import (
    Scenario,
    ScenarioRegistry,
    build_named_scenario,
    default_registry,
    default_scenario,
)
from repro.sim.simulator import HarvestSimulator

__all__ = [
    "CacheStats",
    "ExperimentCase",
    "ExperimentCollation",
    "ExperimentRunner",
    "HarvestSimulator",
    "PhysicsCache",
    "Scenario",
    "ScenarioRegistry",
    "ShardManifest",
    "ShardStatus",
    "SimulationResult",
    "TracePhysics",
    "build_named_scenario",
    "physics_fingerprint",
    "collate_shard",
    "comparison_table",
    "default_registry",
    "default_scenario",
    "grid_cases",
    "ideal_power_series",
    "init_shard",
    "result_from_npz",
    "result_series_to_csv",
    "result_to_npz",
    "shard_status",
    "summary_row",
    "summary_rows_to_csv",
    "work_shard",
    "run_case",
]
