"""Simulation result containers and Table-I rendering.

Energy accounting convention (matches the paper's Table I — see
DESIGN.md section 5):

* ``delivered_energy_j`` — everything the charger pushed to the bus;
* ``switch_overhead_j`` — the summed switching bills;
* ``energy_output_j = delivered - overhead`` — the paper's "Energy
  Output" row (its DNOR-INOR gap equals the overhead gap, which pins
  this interpretation);
* ``average_runtime_ms`` — total policy compute time divided by the
  number of control periods (the definition under which the paper's
  DNOR 2.6 ms < INOR 4.1 ms is coherent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.overhead import OverheadEvent
from repro.errors import SimulationError


@dataclass(frozen=True)
class SimulationResult:
    """Everything one policy run produced.

    Attributes
    ----------
    scheme:
        Policy name (``"DNOR"``, ``"INOR"``, ``"EHTR"``, ``"Baseline"``).
    time_s:
        Control-period timestamps.
    gross_power_w:
        Array electrical power at the operating point, per period.
    delivered_power_w:
        Post-converter power, per period.
    ideal_power_w:
        ``P_ideal`` (sum of module MPPs) at the true temperatures.
    array_voltage_v:
        Array operating voltage, per period.
    runtime_s:
        Wall-clock of the policy's ``decide`` call, per period.
    overhead_events:
        One record per executed reconfiguration.
    switch_times_s:
        Times at which the configuration actually changed.
    n_groups_series:
        Group count of the active configuration, per period.
    """

    scheme: str
    time_s: np.ndarray
    gross_power_w: np.ndarray
    delivered_power_w: np.ndarray
    ideal_power_w: np.ndarray
    array_voltage_v: np.ndarray
    runtime_s: np.ndarray
    overhead_events: Tuple[OverheadEvent, ...]
    switch_times_s: Tuple[float, ...]
    n_groups_series: np.ndarray

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    @property
    def dt_s(self) -> float:
        """Control period.

        Raises
        ------
        SimulationError
            If the series holds fewer than two samples — a single
            sample carries no step information, so every dt-derived
            quantity (energies, durations) would be meaningless.
        """
        if self.time_s.size < 2:
            raise SimulationError(
                f"cannot derive a control period from a "
                f"{self.time_s.size}-sample series; results need at "
                f"least two control periods"
            )
        return float(self.time_s[1] - self.time_s[0])

    @property
    def duration_s(self) -> float:
        """Simulated duration."""
        return float(self.time_s[-1] - self.time_s[0]) + self.dt_s

    @property
    def delivered_energy_j(self) -> float:
        """Energy pushed onto the bus before overhead accounting."""
        return float(self.delivered_power_w.sum() * self.dt_s)

    @property
    def switch_overhead_j(self) -> float:
        """Summed switching bills (Table I "Switch Overhead")."""
        return float(sum(e.energy_j for e in self.overhead_events))

    @property
    def energy_output_j(self) -> float:
        """Net output energy (Table I "Energy Output")."""
        return self.delivered_energy_j - self.switch_overhead_j

    @property
    def ideal_energy_j(self) -> float:
        """Energy if every module sat at its own MPP throughout."""
        return float(self.ideal_power_w.sum() * self.dt_s)

    @property
    def average_runtime_ms(self) -> float:
        """Mean policy compute time per control period, milliseconds."""
        return float(self.runtime_s.mean() * 1.0e3)

    @property
    def switch_count(self) -> int:
        """Number of executed reconfigurations."""
        return len(self.overhead_events)

    @property
    def total_toggles(self) -> int:
        """Total individual switch toggles."""
        return int(sum(e.toggles for e in self.overhead_events))

    # ------------------------------------------------------------------
    # Series views
    # ------------------------------------------------------------------
    def net_power_w(self) -> np.ndarray:
        """Delivered power with each event's bill deducted at its step."""
        net = self.delivered_power_w.copy()
        dt = self.dt_s
        start = float(self.time_s[0])
        # Events carry absolute simulation times, so the step index must
        # be taken relative to the series origin — traces that do not
        # start at t=0 (windowed sub-traces, resumed runs) would
        # otherwise bill every event a constant offset too late.
        for event in self.overhead_events:
            idx = int(np.clip(round((event.time_s - start) / dt), 0, net.size - 1))
            net[idx] -= event.energy_j / dt
        return net

    def ratio_to_ideal(self) -> np.ndarray:
        """Per-period ``delivered / P_ideal`` (the paper's Fig. 7 y-axis).

        Periods with (near-)zero ideal power are reported as 0.
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                self.ideal_power_w > 1.0e-9,
                self.delivered_power_w / self.ideal_power_w,
                0.0,
            )
        return ratio


def summary_row(result: SimulationResult) -> Dict[str, float]:
    """Table I row for one scheme."""
    return {
        "scheme": result.scheme,
        "energy_output_j": result.energy_output_j,
        "switch_overhead_j": result.switch_overhead_j,
        "average_runtime_ms": result.average_runtime_ms,
        "switch_count": result.switch_count,
        "mean_ratio_to_ideal": float(result.ratio_to_ideal().mean()),
    }


def comparison_table(results: Iterable[SimulationResult]) -> str:
    """Render the paper's Table I for a set of scheme results."""
    rows: List[SimulationResult] = list(results)
    header = f"{'':24s}" + "".join(f"{r.scheme:>12s}" for r in rows)
    lines = [header]
    lines.append(
        f"{'Energy Output (J)':24s}"
        + "".join(f"{r.energy_output_j:12.1f}" for r in rows)
    )
    lines.append(
        f"{'Switch Overhead (J)':24s}"
        + "".join(
            f"{r.switch_overhead_j:12.1f}" if r.switch_count else f"{'/':>12s}"
            for r in rows
        )
    )
    lines.append(
        f"{'Average Runtime (ms)':24s}"
        + "".join(f"{r.average_runtime_ms:12.2f}" for r in rows)
    )
    lines.append(
        f"{'Switches executed':24s}" + "".join(f"{r.switch_count:12d}" for r in rows)
    )
    lines.append(
        f"{'Mean ratio to P_ideal':24s}"
        + "".join(f"{float(r.ratio_to_ideal().mean()):12.3f}" for r in rows)
    )
    return "\n".join(lines)
