"""``P_ideal`` — the every-module-at-its-own-MPP reference of Fig. 7.

``P_ideal(t) = sum_i E_i(t)^2 / 4 R_i`` is an upper bound no physical
configuration reaches (series groups share a current, parallel modules
share a voltage), which is what makes it the natural normaliser for
comparing schemes.
"""

from __future__ import annotations

import numpy as np

from repro.teg.array import TEGArray
from repro.teg.module import TEGModule
from repro.thermal.radiator import Radiator
from repro.vehicle.trace import RadiatorTrace


def ideal_power_series(
    trace: RadiatorTrace,
    radiator: Radiator,
    module: TEGModule,
    n_modules: int,
) -> np.ndarray:
    """``P_ideal`` at every trace sample, from the true boundary conditions."""
    array = TEGArray(module, n_modules)
    out = np.empty(trace.n_samples)
    for i in range(trace.n_samples):
        op = radiator.operating_point(
            coolant_inlet_c=float(trace.coolant_inlet_c[i]),
            coolant_flow_kg_s=float(trace.coolant_flow_kg_s[i]),
            ambient_c=float(trace.ambient_c[i]),
            air_flow_kg_s=float(trace.air_flow_kg_s[i]),
            n_modules=n_modules,
        )
        array.set_delta_t(op.delta_t_k)
        out[i] = array.ideal_power()
    return out
