"""``P_ideal`` — the every-module-at-its-own-MPP reference of Fig. 7.

``P_ideal(t) = sum_i E_i(t)^2 / 4 R_i`` is an upper bound no physical
configuration reaches (series groups share a current, parallel modules
share a voltage), which is what makes it the natural normaliser for
comparing schemes.  The series needs only the *true* boundary
conditions, so it is one vectorised boundary solve plus the batched
per-module MPP sum (:func:`repro.sim.physics.ideal_power_from_delta_t`)
— the sensed pass a full :class:`~repro.sim.physics.TracePhysics`
would also run is skipped.
"""

from __future__ import annotations

import numpy as np

from repro.sim.physics import ideal_power_from_delta_t
from repro.teg.model import ModuleModel
from repro.thermal.boundary import ThermalBoundary
from repro.vehicle.trace import RadiatorTrace


def ideal_power_series(
    trace: RadiatorTrace,
    boundary: ThermalBoundary,
    module: ModuleModel,
    n_modules: int,
) -> np.ndarray:
    """``P_ideal`` at every trace sample, from the true boundary conditions."""
    solution = boundary.solve_trace(
        trace.coolant_inlet_c,
        trace.coolant_flow_kg_s,
        trace.ambient_c,
        trace.air_flow_kg_s,
        n_modules,
    )
    mean_true_c = (solution.surface_temps_c + solution.sink_temps_c) / 2.0
    return ideal_power_from_delta_t(module, solution.delta_t_k, mean_true_c)
