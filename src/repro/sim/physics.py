"""Trace-level physics precompute — the engine's first layer.

The closed-loop simulator used to re-solve the thermal boundary twice
per control period (once at the true boundary conditions, once at the
sensed ones) and rebuild the per-module EMF vector from scratch each
step.  None of that depends on the controller's decisions: the thermal
world is fully determined by the trace.  :class:`TracePhysics` hoists
it all out of the control loop:

* one vectorised
  :meth:`repro.thermal.boundary.ThermalBoundary.solve_trace` pass over
  the *true* boundary conditions,
* a second pass over the *sensed* conditions — skipped entirely when
  the trace is noiseless (sensed columns identical to true), in which
  case the true solution is shared,
* the per-module EMF matrix and the ``P_ideal`` reference series,
  precomputed with exactly the same elementwise operations the
  per-step :class:`repro.teg.array.TEGArray` path uses, so downstream
  results are bit-identical.

The step loop (:class:`repro.sim.simulator.HarvestSimulator`) and the
batch experiment layer (:mod:`repro.sim.engine`) both consume this
object; computing it once and reusing it across policies amortises the
physics over a whole experiment grid.

For online consumption — telemetry arriving in chunks rather than as a
complete trace — :class:`TracePhysicsStream` exposes the same
precompute incrementally: every solve in the chain is per-sample
(row-wise elementwise, the boundary protocol's contract), so chunked
evaluation is a restructuring, not an approximation, and each chunk's
state is bit-identical to the corresponding rows of the one-shot
``compute()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.teg.model import ModuleModel
from repro.thermal.boundary import BoundaryTraceSolution, ThermalBoundary
from repro.vehicle.trace import RadiatorTrace


def ideal_power_from_delta_t(
    module: ModuleModel,
    delta_t_k: np.ndarray,
    mean_temp_c: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``P_ideal`` rows from a ``(T, N)`` temperature-difference matrix.

    Mirrors :meth:`repro.teg.array.TEGArray.ideal_power` operation-for-
    operation (back-biased modules contribute zero), batched over the
    trace.  ``mean_temp_c``, when given, carries the matching mean
    junction temperatures so temperature-interpolated module models
    evaluate at the right point along the gradient.
    """
    emf = module.emf(delta_t_k, mean_temp_c)
    resistance_row = np.full(delta_t_k.shape[1], module.internal_resistance())
    per_module = np.where(emf > 0.0, emf * emf / (4.0 * resistance_row), 0.0)
    return per_module.sum(axis=1)


@dataclass(frozen=True)
class TracePhysics:
    """Everything the control loop needs from the thermal world.

    Attributes
    ----------
    trace:
        The driving boundary conditions.
    boundary:
        The thermal-boundary model both solutions were solved against
        (any :class:`~repro.thermal.boundary.ThermalBoundary`).
    module:
        The shared TEG module model.
    n_modules:
        Chain length.
    true_solution:
        Vectorised boundary solution at the true boundary conditions —
        the temperatures the array physically experiences.
    sensed_solution:
        Boundary solution at the sensed boundary conditions (what the
        controller's model-derived distribution sees).  When the trace
        is noiseless this is the *same object* as ``true_solution``;
        the redundant second solve is skipped.
    sensed_temps_c:
        ``(T, N)`` effective hot-side temperatures fed to the policies:
        ambient plus the sensed per-module temperature difference
        (differential sensing across each module — see the simulator
        docstring).
    emf_true:
        ``(T, N)`` per-module open-circuit EMFs at the true temperature
        differences.
    module_resistance_ohm:
        Per-module internal resistance (constant-parameter model).
    ideal_power_w:
        ``P_ideal`` reference series (every module at its own MPP).
    noiseless:
        True when the sensed trace columns equal the true columns and
        the second boundary solve was skipped.
    """

    trace: RadiatorTrace
    boundary: ThermalBoundary
    module: ModuleModel
    n_modules: int
    true_solution: BoundaryTraceSolution
    sensed_solution: BoundaryTraceSolution
    sensed_temps_c: np.ndarray
    emf_true: np.ndarray
    module_resistance_ohm: float
    ideal_power_w: np.ndarray
    noiseless: bool

    @property
    def radiator(self) -> ThermalBoundary:
        """Backward-compatible alias of :attr:`boundary`."""
        return self.boundary

    @property
    def n_samples(self) -> int:
        """Number of trace samples."""
        return self.trace.n_samples

    @property
    def true_delta_t_k(self) -> np.ndarray:
        """``(T, N)`` true per-module temperature differences."""
        return self.true_solution.delta_t_k

    @property
    def true_mean_temps_c(self) -> np.ndarray:
        """``(T, N)`` true mean junction temperatures (hot+cold)/2.

        The temperature each module's material stack actually sits at —
        the evaluation point for temperature-interpolated module models
        (segmented chains) on the physics plane.
        """
        return (
            self.true_solution.surface_temps_c
            + self.true_solution.sink_temps_c
        ) / 2.0

    @classmethod
    def compute(
        cls,
        trace: RadiatorTrace,
        boundary: ThermalBoundary,
        module: ModuleModel,
        n_modules: int,
    ) -> "TracePhysics":
        """Precompute the physics of a whole trace in two NumPy passes.

        The second (sensed) pass is skipped when the trace carries no
        sensing error — ``sensed_solution`` then aliases
        ``true_solution``.
        """
        true_solution = boundary.solve_trace(
            trace.coolant_inlet_c,
            trace.coolant_flow_kg_s,
            trace.ambient_c,
            trace.air_flow_kg_s,
            n_modules,
        )
        noiseless = bool(
            np.array_equal(trace.coolant_inlet_sensed_c, trace.coolant_inlet_c)
            and np.array_equal(
                trace.coolant_flow_sensed_kg_s, trace.coolant_flow_kg_s
            )
        )
        if noiseless:
            sensed_solution = true_solution
        else:
            sensed_solution = boundary.solve_trace(
                trace.coolant_inlet_sensed_c,
                trace.coolant_flow_sensed_kg_s,
                trace.ambient_c,
                trace.air_flow_kg_s,
                n_modules,
            )
        sensed_temps_c = trace.ambient_c[:, None] + sensed_solution.delta_t_k

        # Mirror TEGArray.emf_vector / resistance_vector / ideal_power
        # operation-for-operation so the precomputed series are
        # bit-identical to what the per-step path would produce.  EMFs
        # evaluate at the boundary-solved mean junction temperatures —
        # for nominal single-material modules the drift scale is exactly
        # 1.0, so this is bitwise the historical nominal expression.
        mean_true_c = (
            true_solution.surface_temps_c + true_solution.sink_temps_c
        ) / 2.0
        emf_true = module.emf(true_solution.delta_t_k, mean_true_c)
        return cls(
            trace=trace,
            boundary=boundary,
            module=module,
            n_modules=int(n_modules),
            true_solution=true_solution,
            sensed_solution=sensed_solution,
            sensed_temps_c=sensed_temps_c,
            emf_true=emf_true,
            module_resistance_ohm=float(module.internal_resistance()),
            ideal_power_w=ideal_power_from_delta_t(
                module, true_solution.delta_t_k, mean_true_c
            ),
            noiseless=noiseless,
        )


def _concat_trace_solutions(
    parts: Sequence[BoundaryTraceSolution],
) -> BoundaryTraceSolution:
    """Row-concatenate per-chunk boundary solutions into one.

    Every column of a :class:`BoundaryTraceSolution` is per-sample
    (row) data, so concatenation along axis 0 reassembles exactly the
    arrays a whole-trace ``solve_trace`` call produces — the solve
    itself is row-wise elementwise (pinned in the stream parity suite).
    Dispatches on the concrete solution type so richer subclasses (the
    radiator's exchanger columns) reassemble their own fields too.
    """
    return type(parts[0]).concat(parts)


@dataclass(frozen=True)
class TraceChunkState:
    """Thermal + EMF state of one streamed telemetry chunk.

    Row ``j`` of every array corresponds to global trace sample
    ``start_index + j`` and is bit-identical to the same row of the
    whole-trace :meth:`TracePhysics.compute` fields.
    """

    start_index: int
    true_solution: BoundaryTraceSolution
    sensed_solution: BoundaryTraceSolution
    sensed_temps_c: np.ndarray
    emf_true: np.ndarray
    ideal_power_w: np.ndarray
    noiseless: bool

    @property
    def n_samples(self) -> int:
        """Number of samples in this chunk."""
        return int(self.sensed_temps_c.shape[0])


class TracePhysicsStream:
    """Chunked/incremental counterpart of :meth:`TracePhysics.compute`.

    The boundary solve, the Thevenin EMF map and the ``P_ideal``
    reduction are all per-sample (row-wise elementwise) operations, so
    a trace can be consumed as it arrives: :meth:`extend` appends a
    chunk of boundary-condition samples and returns that chunk's state
    **bit-identical** to the corresponding rows of the one-shot
    precompute, at any chunk size (pinned in
    ``tests/test_physics_stream.py`` for chunk sizes {1, 7, full} over
    every registry scenario).

    The only whole-trace quantity is the ``noiseless`` flag —
    ``compute()`` decides it from the full sensed columns; here it is
    the conjunction of the per-chunk checks (equality of a
    concatenation is exactly the conjunction of per-chunk equality, so
    :meth:`snapshot` reproduces the flag and the solution-aliasing
    behaviour bit-for-bit).
    """

    def __init__(
        self, boundary: ThermalBoundary, module: ModuleModel, n_modules: int
    ) -> None:
        self._boundary = boundary
        self._module = module
        self._n_modules = int(n_modules)
        self._chunks: List[TraceChunkState] = []
        self._n_seen = 0

    @property
    def n_samples_seen(self) -> int:
        """Total samples appended so far."""
        return self._n_seen

    @property
    def chunks(self) -> Sequence[TraceChunkState]:
        """Per-chunk states in arrival order."""
        return tuple(self._chunks)

    def extend(
        self,
        coolant_inlet_c: np.ndarray,
        coolant_flow_kg_s: np.ndarray,
        ambient_c: np.ndarray,
        air_flow_kg_s: np.ndarray,
        coolant_inlet_sensed_c: Optional[np.ndarray] = None,
        coolant_flow_sensed_kg_s: Optional[np.ndarray] = None,
    ) -> TraceChunkState:
        """Append a chunk of boundary-condition samples (1-D columns).

        Sensed columns default to the true columns (a noiseless chunk).
        Chunks may be as short as a single sample — unlike
        :class:`~repro.vehicle.trace.RadiatorTrace`, no minimum length
        applies, so a live feed can deliver one sample at a time.
        """
        inlet = np.asarray(coolant_inlet_c, dtype=float)
        flow = np.asarray(coolant_flow_kg_s, dtype=float)
        ambient = np.asarray(ambient_c, dtype=float)
        air_flow = np.asarray(air_flow_kg_s, dtype=float)
        if inlet.ndim != 1 or inlet.size < 1:
            raise SimulationError(
                f"chunk columns must be non-empty 1-D, got {inlet.shape}"
            )
        sensed_inlet = (
            inlet
            if coolant_inlet_sensed_c is None
            else np.asarray(coolant_inlet_sensed_c, dtype=float)
        )
        sensed_flow = (
            flow
            if coolant_flow_sensed_kg_s is None
            else np.asarray(coolant_flow_sensed_kg_s, dtype=float)
        )
        true_solution = self._boundary.solve_trace(
            inlet, flow, ambient, air_flow, self._n_modules
        )
        noiseless = bool(
            np.array_equal(sensed_inlet, inlet)
            and np.array_equal(sensed_flow, flow)
        )
        if noiseless:
            sensed_solution = true_solution
        else:
            sensed_solution = self._boundary.solve_trace(
                sensed_inlet, sensed_flow, ambient, air_flow, self._n_modules
            )
        sensed_temps_c = ambient[:, None] + sensed_solution.delta_t_k
        # Same expression order as TracePhysics.compute — bit-identical.
        mean_true_c = (
            true_solution.surface_temps_c + true_solution.sink_temps_c
        ) / 2.0
        emf_true = self._module.emf(true_solution.delta_t_k, mean_true_c)
        state = TraceChunkState(
            start_index=self._n_seen,
            true_solution=true_solution,
            sensed_solution=sensed_solution,
            sensed_temps_c=sensed_temps_c,
            emf_true=emf_true,
            ideal_power_w=ideal_power_from_delta_t(
                self._module, true_solution.delta_t_k, mean_true_c
            ),
            noiseless=noiseless,
        )
        self._chunks.append(state)
        self._n_seen += state.n_samples
        return state

    def extend_trace(
        self, trace: RadiatorTrace, lo: int, hi: int
    ) -> TraceChunkState:
        """Convenience: :meth:`extend` on trace sample slice ``[lo, hi)``."""
        return self.extend(
            trace.coolant_inlet_c[lo:hi],
            trace.coolant_flow_kg_s[lo:hi],
            trace.ambient_c[lo:hi],
            trace.air_flow_kg_s[lo:hi],
            trace.coolant_inlet_sensed_c[lo:hi],
            trace.coolant_flow_sensed_kg_s[lo:hi],
        )

    def snapshot(self, trace: RadiatorTrace) -> TracePhysics:
        """Assemble the streamed chunks into a whole-trace precompute.

        ``trace`` must be the trace whose samples were streamed (its
        sample count is validated); the returned object is bit-identical
        field-for-field to ``TracePhysics.compute(trace, ...)``,
        including the noiseless solution aliasing.
        """
        if trace.n_samples != self._n_seen:
            raise SimulationError(
                f"snapshot trace has {trace.n_samples} samples but "
                f"{self._n_seen} were streamed"
            )
        if not self._chunks:
            raise SimulationError("no chunks streamed yet")
        true_solution = _concat_trace_solutions(
            [c.true_solution for c in self._chunks]
        )
        noiseless = all(c.noiseless for c in self._chunks)
        if noiseless:
            sensed_solution = true_solution
        else:
            sensed_solution = _concat_trace_solutions(
                [c.sensed_solution for c in self._chunks]
            )
        return TracePhysics(
            trace=trace,
            boundary=self._boundary,
            module=self._module,
            n_modules=self._n_modules,
            true_solution=true_solution,
            sensed_solution=sensed_solution,
            sensed_temps_c=np.concatenate(
                [c.sensed_temps_c for c in self._chunks]
            ),
            emf_true=np.concatenate([c.emf_true for c in self._chunks]),
            module_resistance_ohm=float(self._module.internal_resistance()),
            ideal_power_w=np.concatenate(
                [c.ideal_power_w for c in self._chunks]
            ),
            noiseless=noiseless,
        )
