"""Trace-level physics precompute — the engine's first layer.

The closed-loop simulator used to re-solve the radiator twice per
control period (once at the true boundary conditions, once at the
sensed ones) and rebuild the per-module EMF vector from scratch each
step.  None of that depends on the controller's decisions: the thermal
world is fully determined by the trace.  :class:`TracePhysics` hoists
it all out of the control loop:

* one vectorised :meth:`repro.thermal.radiator.Radiator.solve_trace`
  pass over the *true* boundary conditions,
* a second pass over the *sensed* conditions — skipped entirely when
  the trace is noiseless (sensed columns identical to true), in which
  case the true solution is shared,
* the per-module EMF matrix and the ``P_ideal`` reference series,
  precomputed with exactly the same elementwise operations the
  per-step :class:`repro.teg.array.TEGArray` path uses, so downstream
  results are bit-identical.

The step loop (:class:`repro.sim.simulator.HarvestSimulator`) and the
batch experiment layer (:mod:`repro.sim.engine`) both consume this
object; computing it once and reusing it across policies amortises the
physics over a whole experiment grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.teg.module import TEGModule
from repro.thermal.radiator import Radiator, RadiatorTraceSolution
from repro.vehicle.trace import RadiatorTrace


def ideal_power_from_delta_t(
    module: TEGModule, delta_t_k: np.ndarray
) -> np.ndarray:
    """``P_ideal`` rows from a ``(T, N)`` temperature-difference matrix.

    Mirrors :meth:`repro.teg.array.TEGArray.ideal_power` operation-for-
    operation (back-biased modules contribute zero), batched over the
    trace.
    """
    emf = module.material.seebeck_v_per_k * delta_t_k * module.n_couples
    resistance_row = np.full(
        delta_t_k.shape[1], module.material.resistance_ohm * module.n_couples
    )
    per_module = np.where(emf > 0.0, emf * emf / (4.0 * resistance_row), 0.0)
    return per_module.sum(axis=1)


@dataclass(frozen=True)
class TracePhysics:
    """Everything the control loop needs from the thermal world.

    Attributes
    ----------
    trace:
        The driving boundary conditions.
    radiator:
        The radiator model both solutions were solved against.
    module:
        The shared TEG module model.
    n_modules:
        Chain length.
    true_solution:
        Vectorised radiator solution at the true boundary conditions —
        the temperatures the array physically experiences.
    sensed_solution:
        Radiator solution at the sensed boundary conditions (what the
        controller's model-derived distribution sees).  When the trace
        is noiseless this is the *same object* as ``true_solution``;
        the redundant second solve is skipped.
    sensed_temps_c:
        ``(T, N)`` effective hot-side temperatures fed to the policies:
        ambient plus the sensed per-module temperature difference
        (differential sensing across each module — see the simulator
        docstring).
    emf_true:
        ``(T, N)`` per-module open-circuit EMFs at the true temperature
        differences.
    module_resistance_ohm:
        Per-module internal resistance (constant-parameter model).
    ideal_power_w:
        ``P_ideal`` reference series (every module at its own MPP).
    noiseless:
        True when the sensed trace columns equal the true columns and
        the second radiator solve was skipped.
    """

    trace: RadiatorTrace
    radiator: Radiator
    module: TEGModule
    n_modules: int
    true_solution: RadiatorTraceSolution
    sensed_solution: RadiatorTraceSolution
    sensed_temps_c: np.ndarray
    emf_true: np.ndarray
    module_resistance_ohm: float
    ideal_power_w: np.ndarray
    noiseless: bool

    @property
    def n_samples(self) -> int:
        """Number of trace samples."""
        return self.trace.n_samples

    @property
    def true_delta_t_k(self) -> np.ndarray:
        """``(T, N)`` true per-module temperature differences."""
        return self.true_solution.delta_t_k

    @classmethod
    def compute(
        cls,
        trace: RadiatorTrace,
        radiator: Radiator,
        module: TEGModule,
        n_modules: int,
    ) -> "TracePhysics":
        """Precompute the physics of a whole trace in two NumPy passes.

        The second (sensed) pass is skipped when the trace carries no
        sensing error — ``sensed_solution`` then aliases
        ``true_solution``.
        """
        true_solution = radiator.solve_trace(
            trace.coolant_inlet_c,
            trace.coolant_flow_kg_s,
            trace.ambient_c,
            trace.air_flow_kg_s,
            n_modules,
        )
        noiseless = bool(
            np.array_equal(trace.coolant_inlet_sensed_c, trace.coolant_inlet_c)
            and np.array_equal(
                trace.coolant_flow_sensed_kg_s, trace.coolant_flow_kg_s
            )
        )
        if noiseless:
            sensed_solution = true_solution
        else:
            sensed_solution = radiator.solve_trace(
                trace.coolant_inlet_sensed_c,
                trace.coolant_flow_sensed_kg_s,
                trace.ambient_c,
                trace.air_flow_kg_s,
                n_modules,
            )
        sensed_temps_c = trace.ambient_c[:, None] + sensed_solution.delta_t_k

        # Mirror TEGArray.emf_vector / resistance_vector / ideal_power
        # operation-for-operation so the precomputed series are
        # bit-identical to what the per-step path would produce.
        emf_true = (
            module.material.seebeck_v_per_k
            * true_solution.delta_t_k
            * module.n_couples
        )
        return cls(
            trace=trace,
            radiator=radiator,
            module=module,
            n_modules=int(n_modules),
            true_solution=true_solution,
            sensed_solution=sensed_solution,
            sensed_temps_c=sensed_temps_c,
            emf_true=emf_true,
            module_resistance_ohm=float(
                module.material.resistance_ohm * module.n_couples
            ),
            ideal_power_w=ideal_power_from_delta_t(
                module, true_solution.delta_t_k
            ),
            noiseless=noiseless,
        )
