"""The closed-loop harvesting simulator.

One simulation step (= one 0.5 s control period) does what the real
platform does:

1. solve the radiator at the *true* boundary conditions — this yields
   the physical module temperatures the array actually experiences;
2. solve it again at the *sensed* boundary conditions and pass the
   scanned (noise-injected) distribution to the policy;
3. let the policy decide; apply any new configuration through the
   switch fabric and charge the switching bill (downtime at the
   pre-switch power + toggle energy);
4. operate the charger at the configured array's MPP and accumulate
   the delivered power, alongside the ``P_ideal`` reference.

Runtime accounting wraps every ``decide`` call with a wall-clock
timer; the measured time also feeds the overhead bill (the paper's
"longer runtime always results in a higher timing overhead").  For
bit-reproducible tests a ``nominal_compute_s`` override decouples the
energy numbers from machine speed.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.controller import ReconfigurationPolicy
from repro.core.overhead import OverheadEvent, SwitchingOverheadModel
from repro.errors import SimulationError
from repro.power.charger import TEGCharger
from repro.sim.results import SimulationResult
from repro.teg.array import TEGArray
from repro.teg.module import TEGModule
from repro.teg.switches import SwitchFabric
from repro.thermal.radiator import Radiator
from repro.vehicle.sensors import ModuleTemperatureScanner
from repro.vehicle.trace import RadiatorTrace


class HarvestSimulator:
    """Run reconfiguration policies against a radiator trace.

    Parameters
    ----------
    trace:
        The radiator boundary conditions (true + sensed).
    radiator:
        Radiator model used for both physics and the controller's
        model-derived distribution.
    module:
        TEG module model shared by the chain.
    n_modules:
        Chain length.
    overhead:
        Switching-bill model.
    scanner:
        Per-module sensing-noise injector; ``None`` means noiseless.
    nominal_compute_s:
        When set, the overhead bill uses this fixed compute time
        instead of the measured wall-clock (deterministic tests).
    """

    def __init__(
        self,
        trace: RadiatorTrace,
        radiator: Radiator,
        module: TEGModule,
        n_modules: int,
        overhead: Optional[SwitchingOverheadModel] = None,
        scanner: Optional[ModuleTemperatureScanner] = None,
        nominal_compute_s: Optional[float] = None,
    ) -> None:
        if n_modules < 1:
            raise SimulationError(f"n_modules must be >= 1, got {n_modules}")
        self._trace = trace
        self._radiator = radiator
        self._module = module
        self._n_modules = int(n_modules)
        self._overhead = overhead or SwitchingOverheadModel()
        self._scanner = scanner
        self._nominal_compute_s = nominal_compute_s

    @property
    def trace(self) -> RadiatorTrace:
        """The driving trace."""
        return self._trace

    @property
    def n_modules(self) -> int:
        """Chain length."""
        return self._n_modules

    def _operating_points(self, i: int):
        """True and sensed radiator solutions at trace sample ``i``."""
        tr = self._trace
        true_op = self._radiator.operating_point(
            coolant_inlet_c=float(tr.coolant_inlet_c[i]),
            coolant_flow_kg_s=float(tr.coolant_flow_kg_s[i]),
            ambient_c=float(tr.ambient_c[i]),
            air_flow_kg_s=float(tr.air_flow_kg_s[i]),
            n_modules=self._n_modules,
        )
        sensed_op = self._radiator.operating_point(
            coolant_inlet_c=float(tr.coolant_inlet_sensed_c[i]),
            coolant_flow_kg_s=float(tr.coolant_flow_sensed_kg_s[i]),
            ambient_c=float(tr.ambient_c[i]),
            air_flow_kg_s=float(tr.air_flow_kg_s[i]),
            n_modules=self._n_modules,
        )
        return true_op, sensed_op

    def run(
        self,
        policy: ReconfigurationPolicy,
        charger: Optional[TEGCharger] = None,
    ) -> SimulationResult:
        """Simulate one policy over the full trace.

        The policy is ``reset()`` before the run, so the same instance
        can be reused across experiments.
        """
        policy.reset()
        if self._scanner is not None:
            self._scanner.reset()
        charger = charger or TEGCharger()
        trace = self._trace
        dt = trace.dt_s
        n = trace.n_samples

        array = TEGArray(self._module, self._n_modules)
        fabric = SwitchFabric(self._n_modules)

        gross = np.zeros(n)
        delivered = np.zeros(n)
        ideal = np.zeros(n)
        voltage = np.zeros(n)
        runtimes = np.zeros(n)
        groups = np.zeros(n, dtype=np.int64)
        events: List[OverheadEvent] = []
        switch_times: List[float] = []
        previous_delivered = 0.0
        first_application = True

        for i in range(n):
            t = float(trace.time_s[i])
            true_op, sensed_op = self._operating_points(i)
            # The controller works on the paper's heatsink-at-ambient
            # model, so it must be fed the *effective* hot-side
            # temperature whose ambient-referenced difference equals the
            # module's actual driving dT (differential sensing across
            # each module).  Feeding raw surface temperatures would make
            # INOR balance currents the modules do not produce.
            sensed_temps = float(trace.ambient_c[i]) + sensed_op.delta_t_k
            if self._scanner is not None:
                sensed_temps = self._scanner.scan(sensed_temps)

            t0 = time.perf_counter()
            decision = policy.decide(t, sensed_temps, float(trace.ambient_c[i]))
            decide_seconds = time.perf_counter() - t0
            runtimes[i] = decide_seconds

            if decision is not None:
                toggles = fabric.toggles_to(decision.starts)
                fabric.apply(decision.starts)
                if first_application:
                    # Commissioning the initial wiring is free: every
                    # scheme starts from the same cold array.
                    first_application = False
                else:
                    # Every commanded reconfiguration pays the bill —
                    # the array is interrupted for switch settling and
                    # MPPT re-tracking even when the new partition
                    # happens to equal the old one (the paper's INOR
                    # and EHTR "switch at every time point").
                    compute_s = (
                        decide_seconds
                        if self._nominal_compute_s is None
                        else self._nominal_compute_s
                    )
                    events.append(
                        self._overhead.event(
                            time_s=t,
                            power_w=max(previous_delivered, 0.0),
                            compute_time_s=compute_s,
                            toggles=toggles,
                        )
                    )
                    switch_times.append(t)

            array.set_delta_t(true_op.delta_t_k)
            report = charger.step(array, fabric.starts, dt)
            gross[i] = report.array_power_w
            delivered[i] = report.delivered_power_w
            voltage[i] = report.array_voltage_v
            ideal[i] = array.ideal_power()
            groups[i] = len(fabric.starts)
            previous_delivered = report.delivered_power_w

        return SimulationResult(
            scheme=policy.name,
            time_s=trace.time_s.copy(),
            gross_power_w=gross,
            delivered_power_w=delivered,
            ideal_power_w=ideal,
            array_voltage_v=voltage,
            runtime_s=runtimes,
            overhead_events=tuple(events),
            switch_times_s=tuple(switch_times),
            n_groups_series=groups,
        )
