"""The closed-loop harvesting simulator.

One simulation step (= one 0.5 s control period) does what the real
platform does:

1. look up the *true* thermal-boundary operating point — the physical
   module temperatures the array actually experiences;
2. look up the operating point at the *sensed* boundary conditions and
   pass the scanned (noise-injected) distribution to the policy;
3. let the policy decide; apply any new configuration through the
   switch fabric and charge the switching bill (downtime at the
   pre-switch power + toggle energy);
4. operate the charger at the configured array's MPP and accumulate
   the delivered power, alongside the ``P_ideal`` reference.

Engine layering (see also :mod:`repro.sim.physics` and
:mod:`repro.sim.engine`): the thermal world is precomputed for the
whole trace by :class:`~repro.sim.physics.TracePhysics`, the step loop
here only sequences the *stateful* parts — sensor noise, policy
decisions, switch fabric — and the electrical series is evaluated in
batched segments of constant configuration through the converter's
row-vector API.  The policy decisions themselves are vectorised too:
INOR builds and scores its whole candidate window through the
``partition_multi`` / ``array_mpp_multi`` kernels and DNOR stacks its
epoch's horizon energies into one ``array_mpp_rows_multi`` call (both
bit-identical to their scalar reference loops, selectable via the
scenario's ``inor_kernel``), so no layer of the engine runs per-sample
or per-candidate Python.  The pre-refactor sample-by-sample path (two
boundary solves and a scalar charger step per sample) is retained as
``engine="reference"`` for cross-validation and benchmarking.

Runtime accounting wraps every ``decide`` call with a wall-clock
timer; the measured time also feeds the overhead bill (the paper's
"longer runtime always results in a higher timing overhead").  For
bit-reproducible tests a ``nominal_compute_s`` override decouples the
energy numbers from machine speed.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.controller import ReconfigurationPolicy
from repro.core.overhead import OverheadEvent, SwitchingOverheadModel
from repro.errors import SimulationError
from repro.power.charger import TEGCharger
from repro.sim.physics import TracePhysics
from repro.sim.results import SimulationResult
from repro.teg.array import TEGArray
from repro.teg.network import array_mpp_rows
from repro.teg.model import ModuleModel
from repro.teg.switches import SwitchFabric
from repro.thermal.boundary import ThermalBoundary
from repro.vehicle.sensors import ModuleTemperatureScanner
from repro.vehicle.trace import RadiatorTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.cache import PhysicsCache

#: Valid values of the ``engine`` constructor argument.
ENGINES = ("batched", "reference")


class HarvestSimulator:
    """Run reconfiguration policies against a boundary-condition trace.

    Parameters
    ----------
    trace:
        The boundary conditions (true + sensed).
    boundary:
        Thermal-boundary model used for both physics and the
        controller's model-derived distribution (any
        :class:`~repro.thermal.boundary.ThermalBoundary`).
    module:
        TEG module model shared by the chain.
    n_modules:
        Chain length.
    overhead:
        Switching-bill model.
    scanner:
        Per-module sensing-noise injector; ``None`` means noiseless.
    nominal_compute_s:
        When set, the overhead bill uses this fixed compute time
        instead of the measured wall-clock (deterministic tests).
    physics:
        Optionally inject a precomputed :class:`TracePhysics` (it must
        describe the same trace/module/chain); by default it is
        computed lazily on the first run and cached, so consecutive
        policy runs share one precompute.
    cache:
        Optional :class:`~repro.sim.cache.PhysicsCache` consulted by
        the lazy precompute instead of calling
        :meth:`TracePhysics.compute` directly, so simulators built at
        different times (or over content-equal scenario variants)
        share one solve.  Ignored when ``physics`` is injected.
    engine:
        ``"batched"`` (default) runs the layered engine —
        trace-physics lookup plus segment-batched electrical math.
        ``"reference"`` runs the pre-refactor per-sample loop (two
        boundary solves per step); it exists for cross-validation and
        benchmarking, not for production use.
    """

    def __init__(
        self,
        trace: RadiatorTrace,
        boundary: ThermalBoundary,
        module: ModuleModel,
        n_modules: int,
        overhead: Optional[SwitchingOverheadModel] = None,
        scanner: Optional[ModuleTemperatureScanner] = None,
        nominal_compute_s: Optional[float] = None,
        physics: Optional[TracePhysics] = None,
        engine: str = "batched",
        cache: Optional["PhysicsCache"] = None,
    ) -> None:
        if n_modules < 1:
            raise SimulationError(f"n_modules must be >= 1, got {n_modules}")
        if engine not in ENGINES:
            raise SimulationError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if physics is not None and (
            physics.trace is not trace
            or physics.boundary is not boundary
            or physics.n_modules != int(n_modules)
            or physics.module is not module
        ):
            raise SimulationError(
                "injected physics does not describe this simulator's "
                "trace/boundary/module/chain"
            )
        self._trace = trace
        self._boundary = boundary
        self._module = module
        self._n_modules = int(n_modules)
        self._overhead = overhead or SwitchingOverheadModel()
        self._scanner = scanner
        self._nominal_compute_s = nominal_compute_s
        self._physics = physics
        self._engine = engine
        self._cache = cache

    @property
    def trace(self) -> RadiatorTrace:
        """The driving trace."""
        return self._trace

    @property
    def n_modules(self) -> int:
        """Chain length."""
        return self._n_modules

    @property
    def engine(self) -> str:
        """Active engine mode (``"batched"`` or ``"reference"``)."""
        return self._engine

    @property
    def physics(self) -> TracePhysics:
        """The trace-level physics precompute (computed once, cached)."""
        if self._physics is None:
            if self._cache is not None:
                self._physics = self._cache.get_or_compute(
                    self._trace, self._boundary, self._module, self._n_modules
                )
            else:
                self._physics = TracePhysics.compute(
                    self._trace, self._boundary, self._module, self._n_modules
                )
        return self._physics

    def _operating_points(self, i: int):
        """True and sensed boundary solutions at trace sample ``i``.

        Only the reference engine solves per sample; the batched engine
        reads both from the :class:`TracePhysics` precompute.  Calls
        the protocol's positional scalar ``operating_point`` (hot
        inlet, hot flow, ambient, cold flow, chain length).
        """
        tr = self._trace
        true_op = self._boundary.operating_point(
            float(tr.coolant_inlet_c[i]),
            float(tr.coolant_flow_kg_s[i]),
            float(tr.ambient_c[i]),
            float(tr.air_flow_kg_s[i]),
            self._n_modules,
        )
        sensed_op = self._boundary.operating_point(
            float(tr.coolant_inlet_sensed_c[i]),
            float(tr.coolant_flow_sensed_kg_s[i]),
            float(tr.ambient_c[i]),
            float(tr.air_flow_kg_s[i]),
            self._n_modules,
        )
        return true_op, sensed_op

    def run(
        self,
        policy: ReconfigurationPolicy,
        charger: Optional[TEGCharger] = None,
    ) -> SimulationResult:
        """Simulate one policy over the full trace.

        The policy is ``reset()`` before the run, so the same instance
        can be reused across experiments.
        """
        policy.reset()
        if self._scanner is not None:
            self._scanner.reset()
        charger = charger or TEGCharger()
        if self._engine == "reference":
            return self._run_reference(policy, charger)
        return self._run_batched(policy, charger)

    # ------------------------------------------------------------------
    # Batched engine: sequential decisions, vectorised electrical pass
    # ------------------------------------------------------------------
    def _run_batched(
        self, policy: ReconfigurationPolicy, charger: TEGCharger
    ) -> SimulationResult:
        physics = self.physics
        trace = self._trace
        dt = trace.dt_s
        n = trace.n_samples
        fabric = SwitchFabric(self._n_modules)

        runtimes = np.zeros(n)
        groups = np.zeros(n, dtype=np.int64)
        # Chronological bill of executed reconfigurations; the energy
        # charge needs the pre-switch delivered power, which is only
        # known after the electrical pass.
        billed: List[Tuple[int, float, int, float]] = []
        switch_times: List[float] = []
        # Runs of constant configuration: (first sample index, starts).
        segments: List[Tuple[int, Tuple[int, ...]]] = []
        first_application = True

        # The controller works on the paper's heatsink-at-ambient
        # model, so it must be fed the *effective* hot-side temperature
        # whose ambient-referenced difference equals the module's
        # actual driving dT (differential sensing across each module).
        # Feeding raw surface temperatures would make INOR balance
        # currents the modules do not produce.  The whole scan is one
        # batched draw — bit-identical to per-step scanning.
        if self._scanner is not None:
            scanned = self._scanner.scan_batch(physics.sensed_temps_c)
        else:
            scanned = physics.sensed_temps_c.copy()

        for i in range(n):
            t = float(trace.time_s[i])
            sensed_temps = scanned[i]

            t0 = time.perf_counter()
            decision = policy.decide(t, sensed_temps, float(trace.ambient_c[i]))
            decide_seconds = time.perf_counter() - t0
            runtimes[i] = decide_seconds

            if decision is not None:
                toggles = fabric.toggles_to(decision.starts)
                fabric.apply(decision.starts)
                if first_application:
                    # Commissioning the initial wiring is free: every
                    # scheme starts from the same cold array.
                    first_application = False
                else:
                    # Every commanded reconfiguration pays the bill —
                    # the array is interrupted for switch settling and
                    # MPPT re-tracking even when the new partition
                    # happens to equal the old one (the paper's INOR
                    # and EHTR "switch at every time point").
                    billed.append((i, t, toggles, decide_seconds))
                    switch_times.append(t)
            starts = tuple(fabric.starts)
            if not segments or segments[-1][1] != starts:
                segments.append((i, starts))
            groups[i] = len(starts)

        gross, delivered, voltage = self._electrical_series(
            physics, segments, charger
        )

        events: List[OverheadEvent] = []
        for i, t, toggles, decide_seconds in billed:
            previous_delivered = float(delivered[i - 1]) if i > 0 else 0.0
            compute_s = (
                decide_seconds
                if self._nominal_compute_s is None
                else self._nominal_compute_s
            )
            events.append(
                self._overhead.event(
                    time_s=t,
                    power_w=max(previous_delivered, 0.0),
                    compute_time_s=compute_s,
                    toggles=toggles,
                )
            )

        if charger.battery is not None and charger.exact_tracking:
            # Replay the bus power into the battery so its state of
            # charge ends exactly where the per-step loop would leave
            # it (the accepted power itself is not a recorded series).
            # The P&O fallback already charged it inside charger.step.
            for i in range(n):
                charger.battery.accept(float(delivered[i]), dt)

        return SimulationResult(
            scheme=policy.name,
            time_s=trace.time_s.copy(),
            gross_power_w=gross,
            delivered_power_w=delivered,
            ideal_power_w=physics.ideal_power_w.copy(),
            array_voltage_v=voltage,
            runtime_s=runtimes,
            overhead_events=tuple(events),
            switch_times_s=tuple(switch_times),
            n_groups_series=groups,
        )

    def _electrical_series(
        self,
        physics: TracePhysics,
        segments: List[Tuple[int, Tuple[int, ...]]],
        charger: TEGCharger,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array power / delivered power / voltage for the whole trace.

        Each run of constant configuration is evaluated as one batched
        Thevenin reduction over the precomputed EMF matrix followed by
        one call into the converter's row-vector API.  Chargers with
        P&O tracking enabled fall back to the scalar per-step path
        (the tracker's limit cycle is inherently sequential).
        """
        n = physics.n_samples
        if not charger.exact_tracking:
            return self._electrical_series_stepwise(physics, segments, charger)
        gross = np.empty(n)
        delivered = np.empty(n)
        voltage = np.empty(n)
        # Identical elementwise ops to TEGArray.resistance_vector —
        # the constant-parameter chain has one shared resistance.
        resistance = np.full(physics.n_modules, physics.module_resistance_ohm)
        bounds = [idx for idx, _ in segments] + [n]
        for (lo, starts), hi in zip(segments, bounds[1:]):
            power, volt = array_mpp_rows(
                physics.emf_true[lo:hi], resistance, starts
            )
            power = np.maximum(power, 0.0)
            gross[lo:hi] = power
            voltage[lo:hi] = volt
            delivered[lo:hi] = charger.converter.output_power_batch(power, volt)
        return gross, delivered, voltage

    def _electrical_series_stepwise(
        self,
        physics: TracePhysics,
        segments: List[Tuple[int, Tuple[int, ...]]],
        charger: TEGCharger,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-step charger operation (P&O tracking) on precomputed physics."""
        n = physics.n_samples
        dt = self._trace.dt_s
        gross = np.empty(n)
        delivered = np.empty(n)
        voltage = np.empty(n)
        array = TEGArray(self._module, self._n_modules)
        mean_temps = physics.true_mean_temps_c
        bounds = [idx for idx, _ in segments] + [n]
        for (lo, starts), hi in zip(segments, bounds[1:]):
            for i in range(lo, hi):
                array.set_thermal_state(
                    physics.true_delta_t_k[i], mean_temps[i]
                )
                report = charger.step(array, starts, dt)
                gross[i] = report.array_power_w
                delivered[i] = report.delivered_power_w
                voltage[i] = report.array_voltage_v
        return gross, delivered, voltage

    # ------------------------------------------------------------------
    # Reference engine: the pre-refactor per-sample loop
    # ------------------------------------------------------------------
    def _run_reference(
        self, policy: ReconfigurationPolicy, charger: TEGCharger
    ) -> SimulationResult:
        trace = self._trace
        dt = trace.dt_s
        n = trace.n_samples

        array = TEGArray(self._module, self._n_modules)
        fabric = SwitchFabric(self._n_modules)

        gross = np.zeros(n)
        delivered = np.zeros(n)
        ideal = np.zeros(n)
        voltage = np.zeros(n)
        runtimes = np.zeros(n)
        groups = np.zeros(n, dtype=np.int64)
        events: List[OverheadEvent] = []
        switch_times: List[float] = []
        previous_delivered = 0.0
        first_application = True

        for i in range(n):
            t = float(trace.time_s[i])
            true_op, sensed_op = self._operating_points(i)
            sensed_temps = float(trace.ambient_c[i]) + sensed_op.delta_t_k
            if self._scanner is not None:
                sensed_temps = self._scanner.scan(sensed_temps)

            t0 = time.perf_counter()
            decision = policy.decide(t, sensed_temps, float(trace.ambient_c[i]))
            decide_seconds = time.perf_counter() - t0
            runtimes[i] = decide_seconds

            if decision is not None:
                toggles = fabric.toggles_to(decision.starts)
                fabric.apply(decision.starts)
                if first_application:
                    first_application = False
                else:
                    compute_s = (
                        decide_seconds
                        if self._nominal_compute_s is None
                        else self._nominal_compute_s
                    )
                    events.append(
                        self._overhead.event(
                            time_s=t,
                            power_w=max(previous_delivered, 0.0),
                            compute_time_s=compute_s,
                            toggles=toggles,
                        )
                    )
                    switch_times.append(t)

            array.set_thermal_state(
                true_op.delta_t_k,
                (true_op.surface_temps_c + true_op.sink_temps_c) / 2.0,
            )
            report = charger.step(array, fabric.starts, dt)
            gross[i] = report.array_power_w
            delivered[i] = report.delivered_power_w
            voltage[i] = report.array_voltage_v
            ideal[i] = array.ideal_power()
            groups[i] = len(fabric.starts)
            previous_delivered = report.delivered_power_w

        return SimulationResult(
            scheme=policy.name,
            time_s=trace.time_s.copy(),
            gross_power_w=gross,
            delivered_power_w=delivered,
            ideal_power_w=ideal,
            array_voltage_v=voltage,
            runtime_s=runtimes,
            overhead_events=tuple(events),
            switch_times_s=tuple(switch_times),
            n_groups_series=groups,
        )
