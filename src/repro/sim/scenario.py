"""The canonical experiment scenario (the paper's evaluation platform).

Bundles every component the experiments share — the TGM-199-1.4-0.8
module, the 100-module chain, the calibrated radiator, the 800-second
Porter-II trace, the LTM4607-class charger with the 13.8 V lead-acid
bus, the switching-overhead model and the four policies — so that
examples, tests and benchmarks all run the *same* system and differ
only in what they measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.baseline import grid_for_square_array
from repro.core.controller import (
    DNORPolicy,
    PeriodicPolicy,
    ReconfigurationPolicy,
    StaticPolicy,
)
from repro.core.dnor import DNORPlanner
from repro.core.overhead import SwitchingOverheadModel
from repro.power.battery import LeadAcidBattery
from repro.power.charger import TEGCharger
from repro.power.converter import BuckBoostConverter
from repro.prediction.mlr import MLRPredictor
from repro.sim.simulator import HarvestSimulator
from repro.teg.datasheet import TGM_199_1_4_0_8
from repro.teg.module import TEGModule
from repro.thermal.radiator import Radiator
from repro.vehicle.sensors import ModuleTemperatureScanner
from repro.vehicle.trace import RadiatorTrace, default_radiator, porter_ii_trace


@dataclass
class Scenario:
    """A complete, reproducible experiment setup.

    Attributes
    ----------
    module:
        The shared TEG module model.
    n_modules:
        Chain length (100 in the paper).
    radiator:
        The radiator thermal model.
    trace:
        Radiator boundary conditions over the run.
    overhead:
        Switching-bill model.
    tp_seconds:
        DNOR prediction horizon.
    control_period_s:
        INOR/EHTR reconfiguration period (0.5 s per the paper).
    sensor_seed:
        Seed for the module-temperature scanner.
    nominal_compute_s:
        Optional fixed compute time for deterministic overhead bills.
    """

    module: TEGModule
    n_modules: int
    radiator: Radiator
    trace: RadiatorTrace
    overhead: SwitchingOverheadModel = field(default_factory=SwitchingOverheadModel)
    tp_seconds: float = 1.0
    control_period_s: float = 0.5
    sensor_seed: int = 99
    nominal_compute_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Component factories (fresh instances per run, so schemes never
    # share mutable state)
    # ------------------------------------------------------------------
    def make_charger(self, with_battery: bool = True) -> TEGCharger:
        """A fresh charger (converter + optional battery)."""
        battery = LeadAcidBattery() if with_battery else None
        return TEGCharger(converter=BuckBoostConverter(), battery=battery)

    def make_scanner(self) -> ModuleTemperatureScanner:
        """A fresh, seeded module-temperature scanner."""
        return ModuleTemperatureScanner(seed=self.sensor_seed)

    def make_simulator(self) -> HarvestSimulator:
        """The simulator bound to this scenario's physics."""
        return HarvestSimulator(
            trace=self.trace,
            radiator=self.radiator,
            module=self.module,
            n_modules=self.n_modules,
            overhead=self.overhead,
            scanner=self.make_scanner(),
            nominal_compute_s=self.nominal_compute_s,
        )

    # ------------------------------------------------------------------
    # The four schemes of the paper's evaluation
    # ------------------------------------------------------------------
    def make_inor_policy(self) -> PeriodicPolicy:
        """INOR at the fixed control period."""
        return PeriodicPolicy(
            module=self.module,
            algorithm="inor",
            period_s=self.control_period_s,
            charger=self.make_charger(with_battery=False),
        )

    def make_ehtr_policy(self) -> PeriodicPolicy:
        """EHTR (prior work) at the fixed control period."""
        return PeriodicPolicy(
            module=self.module,
            algorithm="ehtr",
            period_s=self.control_period_s,
        )

    def make_dnor_policy(self, predictor=None) -> DNORPolicy:
        """DNOR with the paper's MLR predictor (or a supplied one).

        Parameters
        ----------
        predictor:
            Any :class:`repro.prediction.base.LagSeriesPredictor`;
            defaults to the paper's choice, MLR.  Supplying BPNN or SVR
            reproduces the predictor-selection ablation.
        """
        planner = DNORPlanner(
            module=self.module,
            charger=self.make_charger(with_battery=False),
            overhead=self.overhead,
            predictor=predictor if predictor is not None else MLRPredictor(),
            tp_seconds=self.tp_seconds,
            sample_dt_s=self.trace.dt_s,
        )
        return DNORPolicy(planner)

    def make_baseline_policy(self) -> StaticPolicy:
        """The static sqrt(N) x sqrt(N) grid baseline."""
        return StaticPolicy(grid_for_square_array(self.n_modules))

    def make_policies(self) -> Dict[str, ReconfigurationPolicy]:
        """All four schemes, keyed by their Table I names."""
        return {
            "DNOR": self.make_dnor_policy(),
            "INOR": self.make_inor_policy(),
            "EHTR": self.make_ehtr_policy(),
            "Baseline": self.make_baseline_policy(),
        }


def default_scenario(
    duration_s: float = 800.0,
    seed: int = 2018,
    n_modules: int = 100,
    tp_seconds: float = 1.0,
    nominal_compute_s: Optional[float] = None,
) -> Scenario:
    """The paper's evaluation setup: 100 modules, 800 s, 0.5 s period."""
    radiator = default_radiator()
    trace = porter_ii_trace(duration_s=duration_s, seed=seed, radiator=radiator)
    return Scenario(
        module=TGM_199_1_4_0_8,
        n_modules=n_modules,
        radiator=radiator,
        trace=trace,
        tp_seconds=tp_seconds,
        sensor_seed=seed + 77,
        nominal_compute_s=nominal_compute_s,
    )
