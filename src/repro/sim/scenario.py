"""The canonical experiment scenario (the paper's evaluation platform).

Bundles every component the experiments share — the TGM-199-1.4-0.8
module, the 100-module chain, the calibrated radiator, the 800-second
Porter-II trace, the LTM4607-class charger with the 13.8 V lead-acid
bus, the switching-overhead model and the four policies — so that
examples, tests and benchmarks all run the *same* system and differ
only in what they measure.

Beyond the paper's platform, :class:`ScenarioRegistry` names the other
workloads the batch engine fans out over — an NEDC-style certification
drive, a cold start, a boiler-scale economiser and a degraded-sensing
fault-injection variant — so examples, benchmarks and the
``repro batch`` CLI all build them from one place instead of
hand-rolling setups.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.baseline import grid_for_square_array
from repro.core.controller import (
    DNORPolicy,
    PeriodicPolicy,
    ReconfigurationPolicy,
    StaticPolicy,
)
from repro.core.dnor import DNORPlanner
from repro.core.overhead import SwitchingOverheadModel
from repro.power.battery import LeadAcidBattery
from repro.power.charger import TEGCharger
from repro.power.converter import BuckBoostConverter
from repro.errors import ConfigurationError
from repro.prediction.mlr import MLRPredictor
from repro.sim.simulator import HarvestSimulator
from repro.teg.datasheet import TGM_199_1_4_0_8
from repro.teg.model import (
    ModuleModel,
    module_model_from_json_dict,
    module_model_to_json_dict,
)
from repro.teg.module import TEGModule
from repro.teg.segmented import ModuleSegment, SegmentedModule, hybrid_module
from repro.thermal.boundary import (
    ThermalBoundary,
    boundary_from_json_dict,
    boundary_to_json_dict,
)
from repro.thermal.coolant import AIR, WATER
from repro.thermal.coupling import FiniteCouplingBoundary
from repro.thermal.exhaust import ExhaustGasBoundary
from repro.thermal.heat_exchanger import CrossFlowHeatExchanger, UAModel
from repro.thermal.radiator import Radiator, RadiatorGeometry
from repro.vehicle.drive_cycle import synthetic_nedc, synthetic_urban
from repro.vehicle.engine import EngineModel
from repro.vehicle.sensors import ModuleTemperatureScanner
from repro.teg.materials import (
    BISMUTH_TELLURIDE,
    LEAD_TELLURIDE,
    SKUTTERUDITE,
    CoupleMaterial,
)
from repro.vehicle.trace import (
    RadiatorTrace,
    build_trace,
    default_radiator,
    porter_ii_trace,
)

#: Version tag of the scenario JSON layout; bumped on breaking changes
#: so a shard manifest written by a newer library is refused instead of
#: silently misread.  v2 wrapped the thermal model in a tagged
#: ``"boundary": {"type": ..., "params": ...}`` envelope; v3 does the
#: same for the module — ``"module": {"type": ..., "params": ...}``
#: behind the :mod:`repro.teg.model` registry.  The loader still
#: accepts v2's flat single-material module dict and v1's top-level
#: ``"radiator"`` key, so pre-existing shard manifests resume
#: unchanged.
SCENARIO_FORMAT_VERSION = 3

#: Trace columns serialised into the JSON form (every array field).
_TRACE_COLUMNS = (
    "time_s",
    "coolant_inlet_c",
    "coolant_flow_kg_s",
    "air_flow_kg_s",
    "ambient_c",
    "speed_mps",
    "coolant_inlet_sensed_c",
    "coolant_flow_sensed_kg_s",
)

_OVERHEAD_FIELDS = (
    "sensing_delay_s",
    "reconfiguration_delay_s",
    "mppt_settle_s",
    "per_toggle_energy_j",
    "compute_staleness_factor",
)


def _encode_array(arr: np.ndarray) -> str:
    """Base64 of the raw little-endian float64 bytes — loss-free.

    Scalar JSON floats round-trip exactly too (Python emits the
    shortest repr that parses back to the same double), but a decimal
    rendering of a whole trace would be ~3x the size and slower to
    parse, so arrays travel as raw bytes.
    """
    data = np.ascontiguousarray(arr, dtype="<f8")
    return base64.b64encode(data.tobytes()).decode("ascii")


def _decode_array(text: str) -> np.ndarray:
    """Inverse of :func:`_encode_array` (a fresh writable array)."""
    raw = base64.b64decode(text.encode("ascii"))
    return np.frombuffer(raw, dtype="<f8").astype(float)


def _legacy_module_from_dict(module_data: Dict[str, object]) -> TEGModule:
    """Rebuild the v1/v2 flat single-material module dict.

    Pre-PR-9 manifests carried ``{"name", "n_couples", "material"}``
    directly — byte-compatible with the single-material model's params
    dict, so the rebuild is loss-free.
    """
    return TEGModule(
        name=str(module_data["name"]),
        material=CoupleMaterial(**module_data["material"]),
        n_couples=int(module_data["n_couples"]),
    )


@dataclass
class Scenario:
    """A complete, reproducible experiment setup.

    Attributes
    ----------
    module:
        The shared TEG module model.
    n_modules:
        Chain length (100 in the paper).
    boundary:
        The thermal-boundary model (any registered
        :class:`~repro.thermal.boundary.ThermalBoundary`; the paper's
        platform uses the radiator).
    trace:
        Boundary conditions over the run.
    overhead:
        Switching-bill model.
    tp_seconds:
        DNOR prediction horizon.
    control_period_s:
        INOR/EHTR reconfiguration period (0.5 s per the paper).
    sensor_seed:
        Seed for the module-temperature scanner.
    scanner_noise_std_k:
        Per-module scanner reading noise (1 sigma, kelvin); an axis of
        the batch engine's experiment grids.
    nominal_compute_s:
        Optional fixed compute time for deterministic overhead bills.
    inor_kernel:
        Candidate-evaluation kernel the INOR and DNOR policies use —
        ``"batched"`` (default: the vectorised build + score fast
        path) or ``"scalar"`` (the per-candidate reference loop).
        Decisions are bit-identical either way; the knob exists for
        cross-validation and profiling (``repro batch --kernel``).
    """

    module: ModuleModel
    n_modules: int
    boundary: ThermalBoundary
    trace: RadiatorTrace
    overhead: SwitchingOverheadModel = field(default_factory=SwitchingOverheadModel)
    tp_seconds: float = 1.0
    control_period_s: float = 0.5
    sensor_seed: int = 99
    scanner_noise_std_k: float = 0.08
    nominal_compute_s: Optional[float] = None
    inor_kernel: str = "batched"

    @property
    def radiator(self) -> ThermalBoundary:
        """Backward-compatible alias of :attr:`boundary`."""
        return self.boundary

    # ------------------------------------------------------------------
    # Component factories (fresh instances per run, so schemes never
    # share mutable state)
    # ------------------------------------------------------------------
    def make_charger(self, with_battery: bool = True) -> TEGCharger:
        """A fresh charger (converter + optional battery)."""
        battery = LeadAcidBattery() if with_battery else None
        return TEGCharger(converter=BuckBoostConverter(), battery=battery)

    def make_scanner(self) -> ModuleTemperatureScanner:
        """A fresh, seeded module-temperature scanner."""
        return ModuleTemperatureScanner(
            noise_std_k=self.scanner_noise_std_k, seed=self.sensor_seed
        )

    def make_simulator(self, physics=None, cache=None) -> HarvestSimulator:
        """The simulator bound to this scenario's physics.

        Parameters
        ----------
        physics:
            Optionally inject a shared
            :class:`~repro.sim.physics.TracePhysics` precompute (it
            must describe this scenario's trace/boundary/module/chain)
            so several simulators over the same scenario skip the
            redundant solve; by default each simulator computes its
            own lazily.
        cache:
            Optional :class:`~repro.sim.cache.PhysicsCache` the
            simulator's lazy precompute consults, so content-equal
            scenarios (grid variants, repeated builds) share one
            boundary solve.  Ignored when ``physics`` is given.
        """
        return HarvestSimulator(
            trace=self.trace,
            boundary=self.boundary,
            module=self.module,
            n_modules=self.n_modules,
            overhead=self.overhead,
            scanner=self.make_scanner(),
            nominal_compute_s=self.nominal_compute_s,
            physics=physics,
            cache=cache,
        )

    def physics_fingerprint(self) -> str:
        """Content fingerprint of this scenario's physics inputs.

        Two scenarios with equal fingerprints share one
        :class:`~repro.sim.cache.PhysicsCache` entry (policy, charger
        and scanner settings deliberately do not enter the key — they
        cannot change the physics).
        """
        from repro.sim.cache import physics_fingerprint

        return physics_fingerprint(
            self.trace, self.boundary, self.module, self.n_modules
        )

    # ------------------------------------------------------------------
    # Loss-free JSON round trip (the shard manifest format)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-safe dictionary reproducing this scenario exactly.

        Everything the scenario carries is serialised by *value* — the
        module material, the thermal boundary's full parameter dict
        behind its registered type tag, every trace column (as raw
        float64 bytes, base64), the overhead model and all control
        knobs — so :meth:`from_json_dict` on any host rebuilds a
        scenario whose physics fingerprint, simulation results and
        policy decisions are bit-identical (pinned in
        ``tests/test_sim_shard.py`` for every registry scenario).
        Scalars travel as plain JSON numbers, which round-trip float64
        exactly.
        """
        trace = self.trace
        return {
            "format_version": SCENARIO_FORMAT_VERSION,
            "module": module_model_to_json_dict(self.module),
            "n_modules": int(self.n_modules),
            "boundary": boundary_to_json_dict(self.boundary),
            "trace": {
                "name": trace.name,
                "columns": {
                    column: _encode_array(getattr(trace, column))
                    for column in _TRACE_COLUMNS
                },
            },
            "overhead": {
                name: float(getattr(self.overhead, name))
                for name in _OVERHEAD_FIELDS
            },
            "tp_seconds": float(self.tp_seconds),
            "control_period_s": float(self.control_period_s),
            "sensor_seed": int(self.sensor_seed),
            "scanner_noise_std_k": float(self.scanner_noise_std_k),
            "nominal_compute_s": (
                None
                if self.nominal_compute_s is None
                else float(self.nominal_compute_s)
            ),
            "inor_kernel": self.inor_kernel,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json_dict` output.

        Reads the current (v3) layout with its tagged ``"boundary"``
        and ``"module"`` envelopes, the v2 layout whose module was a
        flat single-material dict, and the legacy v1 layout whose
        thermal model was a top-level ``"radiator"`` parameter dict —
        v1's sub-dict is byte-compatible with
        :meth:`Radiator.params_dict` and the v1/v2 module dict with the
        single-material params, so pre-PR-8 and pre-PR-9 shard
        manifests rebuild the identical scenario (pinned against frozen
        fixtures in ``tests/test_scenario_compat.py``).
        """
        version = data.get("format_version")
        if version == SCENARIO_FORMAT_VERSION:
            boundary = boundary_from_json_dict(data["boundary"])
            module = module_model_from_json_dict(data["module"])
        elif version == 2:
            boundary = boundary_from_json_dict(data["boundary"])
            module = _legacy_module_from_dict(data["module"])
        elif version == 1:
            boundary = Radiator.from_params_dict(data["radiator"])
            module = _legacy_module_from_dict(data["module"])
        else:
            raise ConfigurationError(
                f"unsupported scenario format version {version!r} "
                f"(this library reads versions 1 through "
                f"{SCENARIO_FORMAT_VERSION})"
            )
        trace_data = data["trace"]
        trace = RadiatorTrace(
            name=str(trace_data["name"]),
            **{
                column: _decode_array(trace_data["columns"][column])
                for column in _TRACE_COLUMNS
            },
        )
        nominal = data["nominal_compute_s"]
        return cls(
            module=module,
            n_modules=int(data["n_modules"]),
            boundary=boundary,
            trace=trace,
            overhead=SwitchingOverheadModel(**data["overhead"]),
            tp_seconds=float(data["tp_seconds"]),
            control_period_s=float(data["control_period_s"]),
            sensor_seed=int(data["sensor_seed"]),
            scanner_noise_std_k=float(data["scanner_noise_std_k"]),
            nominal_compute_s=None if nominal is None else float(nominal),
            inor_kernel=str(data["inor_kernel"]),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialised :meth:`to_json_dict` (strict JSON, no NaN tokens)."""
        return json.dumps(self.to_json_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        return cls.from_json_dict(json.loads(text))

    # ------------------------------------------------------------------
    # The four schemes of the paper's evaluation
    # ------------------------------------------------------------------
    def make_inor_policy(self) -> PeriodicPolicy:
        """INOR at the fixed control period."""
        return PeriodicPolicy(
            module=self.module,
            algorithm="inor",
            period_s=self.control_period_s,
            charger=self.make_charger(with_battery=False),
            kernel=self.inor_kernel,
        )

    def make_ehtr_policy(self) -> PeriodicPolicy:
        """EHTR (prior work) at the fixed control period."""
        return PeriodicPolicy(
            module=self.module,
            algorithm="ehtr",
            period_s=self.control_period_s,
        )

    def make_dnor_policy(self, predictor=None, refit: str = "full") -> DNORPolicy:
        """DNOR with the paper's MLR predictor (or a supplied one).

        Parameters
        ----------
        predictor:
            Any :class:`repro.prediction.base.LagSeriesPredictor`;
            defaults to the paper's choice, MLR.  Supplying BPNN or SVR
            reproduces the predictor-selection ablation.
        refit:
            Predictor refit strategy per epoch — ``"full"`` (default,
            the pinned batch behaviour) or ``"incremental"`` (windowed
            normal-equation updates, the streaming service's hot
            path).  Not a serialised scenario field: the offline
            decision sequence is compared like-for-like against the
            online one under whichever mode both use.
        """
        planner = DNORPlanner(
            module=self.module,
            charger=self.make_charger(with_battery=False),
            overhead=self.overhead,
            predictor=predictor if predictor is not None else MLRPredictor(),
            tp_seconds=self.tp_seconds,
            sample_dt_s=self.trace.dt_s,
            nominal_compute_s=self.nominal_compute_s,
            inor_kernel=self.inor_kernel,
            refit=refit,
        )
        return DNORPolicy(planner)

    def make_baseline_policy(self) -> StaticPolicy:
        """The static sqrt(N) x sqrt(N) grid baseline."""
        return StaticPolicy(grid_for_square_array(self.n_modules))

    def make_policies(self) -> Dict[str, ReconfigurationPolicy]:
        """All four schemes, keyed by their Table I names."""
        return {
            "DNOR": self.make_dnor_policy(),
            "INOR": self.make_inor_policy(),
            "EHTR": self.make_ehtr_policy(),
            "Baseline": self.make_baseline_policy(),
        }


def default_scenario(
    duration_s: float = 800.0,
    seed: int = 2018,
    n_modules: int = 100,
    tp_seconds: float = 1.0,
    nominal_compute_s: Optional[float] = None,
) -> Scenario:
    """The paper's evaluation setup: 100 modules, 800 s, 0.5 s period."""
    radiator = default_radiator()
    trace = porter_ii_trace(duration_s=duration_s, seed=seed, radiator=radiator)
    return Scenario(
        module=TGM_199_1_4_0_8,
        n_modules=n_modules,
        boundary=radiator,
        trace=trace,
        tp_seconds=tp_seconds,
        sensor_seed=seed + 77,
        nominal_compute_s=nominal_compute_s,
    )


# ----------------------------------------------------------------------
# Named scenarios
# ----------------------------------------------------------------------
#: Registry-built scenarios bill reconfigurations at this fixed compute
#: time (the Table-I millisecond scale) instead of the measured
#: wall-clock, so batch-engine results are bit-reproducible across
#: machines, workers and repeated runs — the engine's determinism
#: contract.  Build a :class:`Scenario` directly (or override the
#: field) to study measured-runtime billing.
REGISTRY_NOMINAL_COMPUTE_S = 2.0e-3

#: Builder signature: ``builder(duration_s, seed, n_modules)`` where any
#: argument may be ``None`` to use the scenario's own default.
ScenarioBuilder = Callable[
    [Optional[float], Optional[int], Optional[int]], Scenario
]


class ScenarioRegistry:
    """Named, reproducible experiment setups.

    The registry is how the batch engine and the ``repro batch`` CLI
    talk about workloads: a scenario name plus ``(duration, seed,
    n_modules)`` fully determines a :class:`Scenario`, so an experiment
    grid is just a list of names.
    """

    def __init__(self) -> None:
        self._builders: Dict[str, Tuple[ScenarioBuilder, str]] = {}

    def register(
        self, name: str, builder: ScenarioBuilder, description: str
    ) -> None:
        """Add (or replace) a named scenario builder."""
        if not name:
            raise ConfigurationError("scenario name must be non-empty")
        self._builders[name] = (builder, description)

    def names(self) -> Tuple[str, ...]:
        """Registered scenario names, in registration order."""
        return tuple(self._builders)

    def describe(self) -> Dict[str, str]:
        """Mapping of scenario name to one-line description."""
        return {name: desc for name, (_, desc) in self._builders.items()}

    def build(
        self,
        name: str,
        duration_s: Optional[float] = None,
        seed: Optional[int] = None,
        n_modules: Optional[int] = None,
    ) -> Scenario:
        """Build a registered scenario, overriding its defaults."""
        if name not in self._builders:
            raise ConfigurationError(
                f"unknown scenario {name!r} "
                f"(registered: {', '.join(self._builders) or 'none'})"
            )
        builder, _ = self._builders[name]
        return builder(duration_s, seed, n_modules)


def _build_porter_ii(
    duration_s: Optional[float], seed: Optional[int], n_modules: Optional[int]
) -> Scenario:
    return default_scenario(
        duration_s=800.0 if duration_s is None else duration_s,
        seed=2018 if seed is None else seed,
        n_modules=100 if n_modules is None else n_modules,
        nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
    )


def _build_nedc_drive(
    duration_s: Optional[float], seed: Optional[int], n_modules: Optional[int]
) -> Scenario:
    duration = 1180.0 if duration_s is None else float(duration_s)
    seed = 2018 if seed is None else int(seed)
    radiator = default_radiator()
    cycle = synthetic_nedc(duration_s=duration, seed=seed)
    trace = build_trace(
        cycle,
        EngineModel(radiator),
        sensor_seed=seed + 13,
        name=f"nedc-{int(duration)}s-seed{seed}",
    )
    return Scenario(
        module=TGM_199_1_4_0_8,
        n_modules=100 if n_modules is None else n_modules,
        boundary=radiator,
        trace=trace,
        sensor_seed=seed + 77,
        nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
    )


def _build_cold_start(
    duration_s: Optional[float], seed: Optional[int], n_modules: Optional[int]
) -> Scenario:
    duration = 300.0 if duration_s is None else float(duration_s)
    seed = 77 if seed is None else int(seed)
    radiator = default_radiator()
    cycle = synthetic_urban(duration_s=duration, seed=seed)
    # Overnight soak: thermostat initially closed, coolant at ambient.
    engine = EngineModel(radiator, start_temp_c=21.0)
    trace = build_trace(
        cycle,
        engine,
        sensor_seed=seed + 1,
        name=f"cold-start-{int(duration)}s-seed{seed}",
    )
    return Scenario(
        module=TGM_199_1_4_0_8,
        n_modules=100 if n_modules is None else n_modules,
        boundary=radiator,
        trace=trace,
        sensor_seed=seed + 2,
        nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
    )


def boiler_radiator(path_length_m: float = 6.0) -> Radiator:
    """A boiler-economiser "radiator": feedwater tubes in a flue duct.

    Same 1-D surface model as the truck radiator, scaled to economiser
    conductances and path length — the "larger scale systems such as
    industrial boilers" regime of the paper's outlook section.
    """
    geometry = RadiatorGeometry(path_length_m=path_length_m, n_rows=20)
    ua_model = UAModel(
        hot_conductance_ref_w_k=12000.0,
        cold_conductance_ref_w_k=6000.0,
        hot_ref_flow_kg_s=0.9,
        cold_ref_flow_kg_s=2.5,
        wall_resistance_k_w=1.0e-5,
    )
    return Radiator(
        geometry=geometry,
        exchanger=CrossFlowHeatExchanger(ua_model),
        coolant=WATER,
        air=AIR,
        sink_preheat_fraction=0.5,
    )


def industrial_boiler_trace(
    duration_s: float = 400.0, seed: int = 2018, dt_s: float = 0.5
) -> RadiatorTrace:
    """Boundary conditions of a boiler economiser under load swings.

    No vehicle in the loop: the feedwater inlet follows slow firing-
    rate oscillations with stochastic load steps, and the sensed
    columns carry plant-instrumentation noise.  Deterministic for a
    given ``(duration_s, seed)``.
    """
    rng = np.random.default_rng(seed)
    n = int(round(duration_s / dt_s)) + 1
    time_s = np.arange(n) * dt_s

    # Firing-rate setpoint: piecewise-constant load steps every ~2 min,
    # low-pass filtered to boiler-thermal-mass time scales.
    setpoint = np.empty(n)
    level = 150.0 + float(rng.uniform(-5.0, 5.0))
    step_every = max(int(round(120.0 / dt_s)), 1)
    for i in range(n):
        if i % step_every == 0 and i > 0:
            level = float(np.clip(level + rng.uniform(-12.0, 12.0), 130.0, 170.0))
        setpoint[i] = level
    inlet = np.empty(n)
    state = setpoint[0]
    blend = dt_s / 45.0  # ~45 s economiser inlet time constant
    for i in range(n):
        state += (setpoint[i] - state) * blend
        inlet[i] = state
    inlet = inlet + 1.5 * np.sin(2.0 * np.pi * time_s / 90.0)

    flow = 0.9 + 0.04 * np.sin(2.0 * np.pi * time_s / 150.0)
    air_flow = 2.5 + 0.1 * np.sin(2.0 * np.pi * time_s / 60.0 + 1.0)
    ambient = np.full(n, 32.0)

    return RadiatorTrace(
        time_s=time_s,
        coolant_inlet_c=inlet,
        coolant_flow_kg_s=flow,
        air_flow_kg_s=air_flow,
        ambient_c=ambient,
        speed_mps=np.zeros(n),
        coolant_inlet_sensed_c=inlet + rng.normal(0.0, 0.4, n),
        coolant_flow_sensed_kg_s=np.maximum(
            flow + rng.normal(0.0, 0.008, n), 1.0e-4
        ),
        name=f"industrial-boiler-{int(duration_s)}s-seed{seed}",
    )


def _build_industrial_boiler(
    duration_s: Optional[float], seed: Optional[int], n_modules: Optional[int]
) -> Scenario:
    duration = 400.0 if duration_s is None else float(duration_s)
    seed = 2018 if seed is None else int(seed)
    return Scenario(
        module=TGM_199_1_4_0_8,
        n_modules=144 if n_modules is None else n_modules,
        boundary=boiler_radiator(),
        trace=industrial_boiler_trace(duration_s=duration, seed=seed),
        sensor_seed=seed + 77,
        nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
    )


def exhaust_gas_trace(
    duration_s: float = 600.0, seed: int = 2018, dt_s: float = 0.5
) -> RadiatorTrace:
    """Boundary conditions of an exhaust-duct TEG chain under load.

    The generic trace columns carry the exhaust-gas domain's streams:
    ``coolant_inlet_c`` is the *gas* temperature entering the duct
    (250–450 °C following engine-load steps filtered to turbo/manifold
    time scales), ``coolant_flow_kg_s`` the gas mass flow (rises with
    load), ``ambient_c`` the cold-loop supply temperature and
    ``air_flow_kg_s`` the cold-loop mass flow.  Sensed columns carry
    exhaust-instrumentation noise (thermocouples in hot gas are far
    noisier than coolant probes).  Deterministic for a given
    ``(duration_s, seed)``.
    """
    rng = np.random.default_rng(seed)
    n = int(round(duration_s / dt_s)) + 1
    time_s = np.arange(n) * dt_s

    # Engine-load setpoint: steps every ~45 s, low-pass filtered to the
    # exhaust-manifold thermal time constant (~20 s).
    setpoint = np.empty(n)
    level = 380.0 + float(rng.uniform(-30.0, 30.0))
    step_every = max(int(round(45.0 / dt_s)), 1)
    for i in range(n):
        if i % step_every == 0 and i > 0:
            level = float(
                np.clip(level + rng.uniform(-60.0, 60.0), 250.0, 450.0)
            )
        setpoint[i] = level
    inlet = np.empty(n)
    state = setpoint[0]
    blend = dt_s / 20.0
    for i in range(n):
        state += (setpoint[i] - state) * blend
        inlet[i] = state
    inlet = inlet + 4.0 * np.sin(2.0 * np.pi * time_s / 30.0)

    # Gas flow tracks load; cold loop is a pump with a small ripple.
    gas_flow = 0.05 + 2.5e-4 * (inlet - 250.0) + 0.004 * np.sin(
        2.0 * np.pi * time_s / 25.0 + 0.7
    )
    cold_flow = 0.5 + 0.05 * np.sin(2.0 * np.pi * time_s / 80.0)
    ambient = np.full(n, 35.0)

    return RadiatorTrace(
        time_s=time_s,
        coolant_inlet_c=inlet,
        coolant_flow_kg_s=gas_flow,
        air_flow_kg_s=cold_flow,
        ambient_c=ambient,
        speed_mps=np.zeros(n),
        coolant_inlet_sensed_c=inlet + rng.normal(0.0, 2.0, n),
        coolant_flow_sensed_kg_s=np.maximum(
            gas_flow + rng.normal(0.0, 0.002, n), 1.0e-4
        ),
        name=f"exhaust-gas-{int(duration_s)}s-seed{seed}",
    )


def _build_exhaust_gas(
    duration_s: Optional[float], seed: Optional[int], n_modules: Optional[int]
) -> Scenario:
    duration = 600.0 if duration_s is None else float(duration_s)
    seed = 2018 if seed is None else int(seed)
    return Scenario(
        module=TGM_199_1_4_0_8,
        n_modules=64 if n_modules is None else n_modules,
        boundary=ExhaustGasBoundary(),
        trace=exhaust_gas_trace(duration_s=duration, seed=seed),
        sensor_seed=seed + 77,
        scanner_noise_std_k=0.3,
        nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
    )


#: Three-stage segmented chain for the exhaust duct: skutterudite at
#: the hot face, lead telluride mid-stack, bismuth telluride on the
#: cold plate — 240 couples total, matching the high-gradient regime of
#: Gaurav & Pandey (arXiv 1708.02920).
SEGMENTED_EXHAUST_MODULE = SegmentedModule(
    name="SEG-3-EXHAUST",
    segments=(
        ModuleSegment(material=SKUTTERUDITE, n_couples=100),
        ModuleSegment(material=LEAD_TELLURIDE, n_couples=80),
        ModuleSegment(material=BISMUTH_TELLURIDE, n_couples=60),
    ),
)

#: Two-segment hybrid for the steel-industry flue: a lead-telluride
#: bank takes 60% of the module temperature drop at the hot face,
#: bismuth telluride finishes the chain (arXiv 1603.02883's hybrid
#: arrangement).
STEEL_HYBRID_MODULE = hybrid_module(
    name="HYB-2-STEEL",
    hot_material=LEAD_TELLURIDE,
    cold_material=BISMUTH_TELLURIDE,
    n_couples_hot=140,
    n_couples_cold=100,
    hot_fraction=0.6,
)


def _build_segmented_exhaust(
    duration_s: Optional[float], seed: Optional[int], n_modules: Optional[int]
) -> Scenario:
    duration = 600.0 if duration_s is None else float(duration_s)
    seed = 2018 if seed is None else int(seed)
    trace = exhaust_gas_trace(duration_s=duration, seed=seed)
    # Distinct trace name: grid case names are trace-derived, and this
    # scenario shares the exhaust-gas boundary conditions by design.
    trace = dataclasses.replace(
        trace, name=f"segmented-exhaust-{int(duration)}s-seed{seed}"
    )
    return Scenario(
        module=SEGMENTED_EXHAUST_MODULE,
        n_modules=64 if n_modules is None else n_modules,
        boundary=ExhaustGasBoundary(),
        trace=trace,
        sensor_seed=seed + 77,
        scanner_noise_std_k=0.3,
        nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
    )


def steel_flue_trace(
    duration_s: float = 500.0, seed: int = 2018, dt_s: float = 0.5
) -> RadiatorTrace:
    """Boundary conditions of a steel-plant flue TEG bank.

    The reheating-furnace regime of arXiv 1603.02883: flue gas entering
    at 450–600 °C following slow charge/discharge cycles of the
    furnace, much higher gas mass flow than a vehicle duct, and a
    water-cooled cold loop.  Columns carry the exhaust-gas domain's
    streams (gas temperature/flow in the coolant columns, cold loop in
    the ambient/air columns).  Deterministic for a given
    ``(duration_s, seed)``.
    """
    rng = np.random.default_rng(seed)
    n = int(round(duration_s / dt_s)) + 1
    time_s = np.arange(n) * dt_s

    # Furnace charge cycles: load steps every ~90 s, filtered to the
    # flue-duct thermal time constant (~35 s).
    setpoint = np.empty(n)
    level = 520.0 + float(rng.uniform(-25.0, 25.0))
    step_every = max(int(round(90.0 / dt_s)), 1)
    for i in range(n):
        if i % step_every == 0 and i > 0:
            level = float(
                np.clip(level + rng.uniform(-50.0, 50.0), 450.0, 600.0)
            )
        setpoint[i] = level
    inlet = np.empty(n)
    state = setpoint[0]
    blend = dt_s / 35.0
    for i in range(n):
        state += (setpoint[i] - state) * blend
        inlet[i] = state
    inlet = inlet + 3.0 * np.sin(2.0 * np.pi * time_s / 70.0)

    # Flue fan runs near-constant; cold loop is a plant water circuit.
    gas_flow = 0.30 + 2.0e-4 * (inlet - 450.0) + 0.01 * np.sin(
        2.0 * np.pi * time_s / 40.0 + 0.4
    )
    cold_flow = 1.0 + 0.06 * np.sin(2.0 * np.pi * time_s / 110.0)
    ambient = np.full(n, 30.0)

    return RadiatorTrace(
        time_s=time_s,
        coolant_inlet_c=inlet,
        coolant_flow_kg_s=gas_flow,
        air_flow_kg_s=cold_flow,
        ambient_c=ambient,
        speed_mps=np.zeros(n),
        coolant_inlet_sensed_c=inlet + rng.normal(0.0, 2.5, n),
        coolant_flow_sensed_kg_s=np.maximum(
            gas_flow + rng.normal(0.0, 0.004, n), 1.0e-4
        ),
        name=f"steel-flue-{int(duration_s)}s-seed{seed}",
    )


def steel_flue_boundary() -> ExhaustGasBoundary:
    """An exhaust-gas boundary scaled to a steel-plant flue duct.

    Higher reference gas flow and duct conductance than the vehicle
    exhaust defaults, a hotter property reference point, and a
    water-cooled cold side.
    """
    return ExhaustGasBoundary(
        t_ref_c=500.0,
        ua_gas_ref_w_k=14.0,
        gas_ref_flow_kg_s=0.30,
        module_conductance_w_k=3.5,
        ua_cold_w_k=35.0,
        cold_ref_flow_kg_s=1.0,
    )


def _build_steel_hybrid(
    duration_s: Optional[float], seed: Optional[int], n_modules: Optional[int]
) -> Scenario:
    duration = 500.0 if duration_s is None else float(duration_s)
    seed = 2018 if seed is None else int(seed)
    return Scenario(
        module=STEEL_HYBRID_MODULE,
        n_modules=49 if n_modules is None else n_modules,
        boundary=steel_flue_boundary(),
        trace=steel_flue_trace(duration_s=duration, seed=seed),
        sensor_seed=seed + 77,
        scanner_noise_std_k=0.4,
        nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
    )


def _build_finite_coupling(
    duration_s: Optional[float], seed: Optional[int], n_modules: Optional[int]
) -> Scenario:
    duration = 800.0 if duration_s is None else float(duration_s)
    seed = 2018 if seed is None else int(seed)
    radiator = default_radiator()
    trace = porter_ii_trace(duration_s=duration, seed=seed, radiator=radiator)
    # Distinct trace name: grid case names are trace-derived, and this
    # scenario shares porter-ii's boundary conditions by design.
    trace = dataclasses.replace(
        trace, name=f"finite-coupling-{int(duration)}s-seed{seed}"
    )
    return Scenario(
        module=TGM_199_1_4_0_8,
        n_modules=100 if n_modules is None else n_modules,
        boundary=FiniteCouplingBoundary(inner=radiator),
        trace=trace,
        sensor_seed=seed + 77,
        nominal_compute_s=REGISTRY_NOMINAL_COMPUTE_S,
    )


def fault_injected_trace(
    base: RadiatorTrace,
    seed: int = 2018,
    extra_inlet_noise_k: float = 1.5,
    extra_flow_noise_kg_s: float = 0.01,
    stuck_probability: float = 0.02,
    stuck_hold_samples: int = 8,
) -> RadiatorTrace:
    """Degrade a trace's *sensed* columns with instrumentation faults.

    Adds heavy zero-mean noise plus stuck-sensor episodes (the reading
    freezes for ``stuck_hold_samples`` control periods) to the sensed
    coolant temperature and flow.  True columns are untouched — the
    physics stays healthy, only the controller's view degrades.
    """
    rng = np.random.default_rng(seed)
    n = base.n_samples
    inlet = base.coolant_inlet_sensed_c + rng.normal(0.0, extra_inlet_noise_k, n)
    flow = base.coolant_flow_sensed_kg_s + rng.normal(
        0.0, extra_flow_noise_kg_s, n
    )
    stuck_starts = np.flatnonzero(rng.uniform(size=n) < stuck_probability)
    for start in stuck_starts:
        stop = min(start + stuck_hold_samples, n)
        inlet[start:stop] = inlet[start]
        flow[start:stop] = flow[start]
    return dataclasses.replace(
        base,
        coolant_inlet_sensed_c=inlet,
        coolant_flow_sensed_kg_s=np.maximum(flow, 1.0e-4),
        name=f"{base.name}+faults",
    )


def _build_fault_injection(
    duration_s: Optional[float], seed: Optional[int], n_modules: Optional[int]
) -> Scenario:
    base = _build_porter_ii(duration_s, seed, n_modules)
    seed = 2018 if seed is None else int(seed)
    return dataclasses.replace(
        base,
        trace=fault_injected_trace(base.trace, seed=seed + 101),
        scanner_noise_std_k=0.5,
    )


def default_registry() -> ScenarioRegistry:
    """The registry of named scenarios every frontend shares."""
    return _DEFAULT_REGISTRY


def build_named_scenario(
    name: str,
    duration_s: Optional[float] = None,
    seed: Optional[int] = None,
    n_modules: Optional[int] = None,
) -> Scenario:
    """Convenience wrapper over :func:`default_registry`."""
    return _DEFAULT_REGISTRY.build(
        name, duration_s=duration_s, seed=seed, n_modules=n_modules
    )


_DEFAULT_REGISTRY = ScenarioRegistry()
_DEFAULT_REGISTRY.register(
    "porter-ii",
    _build_porter_ii,
    "the paper's platform: 100 modules on the 800 s Porter-II drive",
)
_DEFAULT_REGISTRY.register(
    "nedc-drive",
    _build_nedc_drive,
    "NEDC-style certification drive (4 x ECE-15 urban + EUDC)",
)
_DEFAULT_REGISTRY.register(
    "cold-start",
    _build_cold_start,
    "overnight-soak cold start: coolant climbs from ambient to ~90 degC",
)
_DEFAULT_REGISTRY.register(
    "industrial-boiler",
    _build_industrial_boiler,
    "boiler-economiser bank (144 modules) under firing-rate swings",
)
_DEFAULT_REGISTRY.register(
    "fault-injection",
    _build_fault_injection,
    "Porter-II with stuck/noisy sensing faults injected into the "
    "controller's view",
)
_DEFAULT_REGISTRY.register(
    "exhaust-gas",
    _build_exhaust_gas,
    "exhaust-duct waste-heat chain (64 modules) with "
    "temperature-dependent gas properties",
)
_DEFAULT_REGISTRY.register(
    "finite-coupling",
    _build_finite_coupling,
    "Porter-II radiator behind finite contact conductances "
    "(Apertet-style non-ideal coupling)",
)
_DEFAULT_REGISTRY.register(
    "segmented-exhaust",
    _build_segmented_exhaust,
    "exhaust duct with a 3-stage segmented module chain "
    "(skutterudite / PbTe / Bi2Te3 along the gradient)",
)
_DEFAULT_REGISTRY.register(
    "steel-hybrid",
    _build_steel_hybrid,
    "steel-plant flue bank (49 modules) with a 2-segment "
    "PbTe + Bi2Te3 hybrid module",
)
