"""Content-addressed caching of :class:`~repro.sim.physics.TracePhysics`.

The physics precompute is a pure function of ``(trace, radiator,
module, n_modules)``: nothing the controller or charger does can change
it.  Experiment grids exploit exactly that purity — a scanner-noise or
policy axis fans tens of cases over the *same* trace — but before this
layer every grid cell paid the radiator solves again (the batch engine
shared per ``id(scenario)`` only, so ``dataclasses.replace`` variants
and process-pool workers each re-solved from scratch).

:class:`PhysicsCache` closes that gap with two tiers keyed by one
content fingerprint (:func:`physics_fingerprint`):

* an in-process LRU, shared by the serial/thread executors and by
  consecutive :class:`~repro.sim.simulator.HarvestSimulator` builds;
* an optional on-disk artifact store (one ``<fingerprint>.npz`` per
  entry) that process-pool workers — and, eventually, machines sharing
  a filesystem in a sharded grid — warm once and then load instead of
  solving.

Both tiers reproduce the compute path bit-for-bit: the artifact stores
the solved arrays losslessly (raw float64), and a loaded entry is
rebound to the caller's live trace/radiator/module objects, so cached
and uncached experiments are indistinguishable.  Artifacts are written
atomically (temp file + ``os.replace``) and a corrupt or truncated file
is treated as a miss: the entry is recomputed and the artifact
rewritten.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Tuple

import hashlib

import numpy as np

from repro.sim._atomic import atomic_write
from repro.sim.physics import TracePhysics
from repro.teg.module import TEGModule
from repro.thermal.heat_exchanger import HeatExchangerTraceSolution
from repro.thermal.radiator import Radiator, RadiatorTraceSolution
from repro.vehicle.trace import RadiatorTrace

#: Bumped whenever the artifact layout changes; artifacts carrying a
#: different version are treated as misses and rewritten.
CACHE_FORMAT_VERSION = 1

#: Trace columns entering the fingerprint (everything the solves read).
_TRACE_COLUMNS = (
    "time_s",
    "coolant_inlet_c",
    "coolant_flow_kg_s",
    "air_flow_kg_s",
    "ambient_c",
    "coolant_inlet_sensed_c",
    "coolant_flow_sensed_kg_s",
)

#: Array attributes of :class:`HeatExchangerTraceSolution`.
_EXCHANGER_FIELDS = (
    "duty_w",
    "effectiveness",
    "ntu",
    "ua_w_k",
    "hot_outlet_c",
    "cold_outlet_c",
    "hot_capacity_w_k",
    "cold_capacity_w_k",
)

#: Non-exchanger array attributes of :class:`RadiatorTraceSolution`.
_SOLUTION_FIELDS = (
    "decay_per_m",
    "surface_temps_c",
    "sink_temps_c",
    "delta_t_k",
    "ambient_c",
    "active",
)


def _scalar_token(name: str, value: float) -> bytes:
    """A lossless text token for one scalar parameter."""
    return f"{name}={float(value).hex()};".encode()


def physics_fingerprint(
    trace: RadiatorTrace,
    radiator: Radiator,
    module: TEGModule,
    n_modules: int,
) -> str:
    """Content fingerprint of one :meth:`TracePhysics.compute` input set.

    Hashes the raw bytes of every trace column the solves read plus
    every model parameter that enters the thermal/electrical chain —
    radiator geometry, UA model, fluid properties, sink preheat, module
    material — and the chain length.  Two inputs with equal
    fingerprints produce bit-identical :class:`TracePhysics` objects;
    object identity, trace names and scanner settings are deliberately
    excluded so grid variants built via ``dataclasses.replace`` (and
    re-built scenarios in other processes) share one entry.
    """
    h = hashlib.sha256()
    h.update(f"tegkit-physics-v{CACHE_FORMAT_VERSION};".encode())
    h.update(f"n_modules={int(n_modules)};".encode())

    for column in _TRACE_COLUMNS:
        arr = np.ascontiguousarray(getattr(trace, column), dtype=float)
        h.update(f"{column}[{arr.size}];".encode())
        h.update(arr.tobytes())

    material = module.material
    h.update(f"module={module.name};n_couples={int(module.n_couples)};".encode())
    for name in (
        "seebeck_v_per_k",
        "resistance_ohm",
        "seebeck_temp_coeff_per_k",
        "resistance_temp_coeff_per_k",
    ):
        h.update(_scalar_token(name, getattr(material, name)))

    geometry = radiator.geometry
    h.update(_scalar_token("path_length_m", geometry.path_length_m))
    h.update(_scalar_token("sink_preheat", radiator.sink_preheat_fraction))
    exchanger = radiator.exchanger
    h.update(
        f"exchanger={type(exchanger).__name__};"
        f"both_unmixed={exchanger.both_unmixed};".encode()
    )
    ua = exchanger.ua_model
    for name in (
        "hot_conductance_ref_w_k",
        "cold_conductance_ref_w_k",
        "hot_ref_flow_kg_s",
        "cold_ref_flow_kg_s",
        "wall_resistance_k_w",
        "hot_flow_exponent",
        "cold_flow_exponent",
    ):
        h.update(_scalar_token(name, getattr(ua, name)))
    for label, fluid in (("coolant", radiator.coolant), ("air", radiator.air)):
        h.update(f"{label}={fluid.name};".encode())
        h.update(_scalar_token("cp", fluid.specific_heat_j_kg_k))
        h.update(_scalar_token("rho", fluid.density_kg_m3))
    return h.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of one :class:`PhysicsCache`.

    Attributes
    ----------
    memory_hits:
        Lookups answered by the in-process LRU.
    disk_hits:
        Lookups answered by loading an on-disk artifact.
    misses:
        Lookups that had to run :meth:`TracePhysics.compute` (equals
        the number of radiator solve passes paid, up to the noiseless
        single-solve optimisation).
    corrupt_artifacts:
        On-disk artifacts that failed to load and were recomputed.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    corrupt_artifacts: int = 0

    @property
    def hits(self) -> int:
        """Total lookups that avoided a recompute."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided a recompute (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PhysicsCache:
    """Two-tier memoisation of :meth:`TracePhysics.compute`.

    Parameters
    ----------
    max_entries:
        Capacity of the in-process LRU tier.  The working set of an
        experiment grid is its number of *unique* scenarios, so the
        default comfortably covers the registry-driven grids; least
        recently used entries are evicted beyond it.
    cache_dir:
        Optional directory for the on-disk artifact tier.  Created on
        first store.  Process-pool executors need this tier — workers
        cannot share the parent's memory — and a warm directory
        survives across runs and processes.
    """

    def __init__(
        self,
        max_entries: int = 32,
        cache_dir: Optional[os.PathLike] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = int(max_entries)
        self._dir: Optional[Path] = Path(cache_dir) if cache_dir is not None else None
        self._lru: "OrderedDict[str, TracePhysics]" = OrderedDict()
        self._lock = threading.Lock()
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._corrupt = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Optional[Path]:
        """The on-disk tier's directory (``None`` when memory-only)."""
        return self._dir

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss accounting."""
        return CacheStats(
            memory_hits=self._memory_hits,
            disk_hits=self._disk_hits,
            misses=self._misses,
            corrupt_artifacts=self._corrupt,
        )

    def __len__(self) -> int:
        return len(self._lru)

    def artifacts(self) -> Tuple[Path, ...]:
        """Artifact files currently present in the on-disk tier."""
        if self._dir is None or not self._dir.is_dir():
            return ()
        return tuple(sorted(self._dir.glob("*.npz")))

    def clear(self, disk: bool = False) -> None:
        """Drop the LRU tier; with ``disk=True`` also delete artifacts."""
        with self._lock:
            self._lru.clear()
            if disk:
                for path in self.artifacts():
                    path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # The cache operation
    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        trace: RadiatorTrace,
        radiator: Radiator,
        module: TEGModule,
        n_modules: int,
    ) -> TracePhysics:
        """Return the memoised physics for the inputs, computing on miss.

        The returned object is always bound to *these* trace/radiator/
        module objects (a hit under a content-equal but distinct trace
        is rebound via ``dataclasses.replace``; the solved arrays are
        shared), so it passes the simulator's identity validation and
        downstream results are bit-identical to an uncached compute.
        """
        key = physics_fingerprint(trace, radiator, module, n_modules)
        with self._lock:
            physics = self._lru.get(key)
            if physics is not None:
                self._lru.move_to_end(key)
                self._memory_hits += 1
                return self._rebind(physics, trace, radiator, module)

            physics = self._load(key, trace, radiator, module, n_modules)
            if physics is not None:
                self._disk_hits += 1
                self._insert(key, physics)
                return physics

            physics = TracePhysics.compute(trace, radiator, module, n_modules)
            self._misses += 1
            self._insert(key, physics)
            if self._dir is not None:
                self._save(key, physics)
            return physics

    def warm(self, scenarios) -> int:
        """Precompute (or load) the physics of each scenario's inputs.

        Returns the number of entries that had to be computed.  Used by
        the batch engine before a process-pool fan-out and by the
        ``repro cache --warm`` CLI.
        """
        before = self._misses
        for scenario in scenarios:
            self.get_or_compute(
                scenario.trace, scenario.radiator, scenario.module,
                scenario.n_modules,
            )
        return self._misses - before

    # ------------------------------------------------------------------
    # LRU tier
    # ------------------------------------------------------------------
    def _insert(self, key: str, physics: TracePhysics) -> None:
        self._lru[key] = physics
        self._lru.move_to_end(key)
        while len(self._lru) > self._max_entries:
            self._lru.popitem(last=False)

    @staticmethod
    def _rebind(
        physics: TracePhysics,
        trace: RadiatorTrace,
        radiator: Radiator,
        module: TEGModule,
    ) -> TracePhysics:
        """Point a cached entry at the caller's live model objects."""
        if (
            physics.trace is trace
            and physics.radiator is radiator
            and physics.module is module
        ):
            return physics
        return replace(physics, trace=trace, radiator=radiator, module=module)

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _artifact_path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}.npz"

    def _save(self, key: str, physics: TracePhysics) -> None:
        """Write one artifact atomically (temp file + rename)."""
        assert self._dir is not None
        self._dir.mkdir(parents=True, exist_ok=True)
        arrays = {}
        self._pack_solution(arrays, "true", physics.true_solution)
        if not physics.noiseless:
            self._pack_solution(arrays, "sensed", physics.sensed_solution)
        arrays["sensed_temps_c"] = physics.sensed_temps_c
        arrays["emf_true"] = physics.emf_true
        arrays["ideal_power_w"] = physics.ideal_power_w
        meta = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": key,
            "noiseless": bool(physics.noiseless),
            "n_modules": int(physics.n_modules),
            "module_resistance_ohm": physics.module_resistance_ohm.hex(),
        }
        path = self._artifact_path(key)

        def write(tmp: Path) -> None:
            with open(tmp, "wb") as handle:
                np.savez(handle, meta_json=np.array(json.dumps(meta)), **arrays)

        atomic_write(path, write)

    def _load(
        self,
        key: str,
        trace: RadiatorTrace,
        radiator: Radiator,
        module: TEGModule,
        n_modules: int,
    ) -> Optional[TracePhysics]:
        """Load one artifact; a broken file counts as a miss."""
        if self._dir is None:
            return None
        path = self._artifact_path(key)
        if not path.is_file():
            return None
        try:
            with np.load(path) as data:
                meta = json.loads(str(data["meta_json"]))
                if (
                    meta.get("version") != CACHE_FORMAT_VERSION
                    or meta.get("fingerprint") != key
                    or meta.get("n_modules") != int(n_modules)
                ):
                    raise ValueError("artifact metadata mismatch")
                noiseless = bool(meta["noiseless"])
                true_solution = self._unpack_solution(data, "true")
                sensed_solution = (
                    true_solution
                    if noiseless
                    else self._unpack_solution(data, "sensed")
                )
                return TracePhysics(
                    trace=trace,
                    radiator=radiator,
                    module=module,
                    n_modules=int(n_modules),
                    true_solution=true_solution,
                    sensed_solution=sensed_solution,
                    sensed_temps_c=data["sensed_temps_c"],
                    emf_true=data["emf_true"],
                    module_resistance_ohm=float.fromhex(
                        meta["module_resistance_ohm"]
                    ),
                    ideal_power_w=data["ideal_power_w"],
                    noiseless=noiseless,
                )
        except Exception:
            # Truncated download, version skew, concurrent writer crash:
            # recompute and let the fresh _save overwrite the artifact.
            self._corrupt += 1
            return None

    @staticmethod
    def _pack_solution(
        arrays: dict, prefix: str, solution: RadiatorTraceSolution
    ) -> None:
        for name in _EXCHANGER_FIELDS:
            arrays[f"{prefix}_x_{name}"] = getattr(solution.exchanger, name)
        for name in _SOLUTION_FIELDS:
            arrays[f"{prefix}_{name}"] = getattr(solution, name)

    @staticmethod
    def _unpack_solution(data, prefix: str) -> RadiatorTraceSolution:
        exchanger = HeatExchangerTraceSolution(
            **{name: data[f"{prefix}_x_{name}"] for name in _EXCHANGER_FIELDS}
        )
        return RadiatorTraceSolution(
            exchanger=exchanger,
            **{name: data[f"{prefix}_{name}"] for name in _SOLUTION_FIELDS},
        )
