"""Content-addressed caching of :class:`~repro.sim.physics.TracePhysics`.

The physics precompute is a pure function of ``(trace, boundary,
module, n_modules)``: nothing the controller or charger does can change
it.  Experiment grids exploit exactly that purity — a scanner-noise or
policy axis fans tens of cases over the *same* trace — but before this
layer every grid cell paid the boundary solves again (the batch engine
shared per ``id(scenario)`` only, so ``dataclasses.replace`` variants
and process-pool workers each re-solved from scratch).

:class:`PhysicsCache` closes that gap with two tiers keyed by one
content fingerprint (:func:`physics_fingerprint`):

* an in-process LRU, shared by the serial/thread executors and by
  consecutive :class:`~repro.sim.simulator.HarvestSimulator` builds;
* an optional on-disk artifact store (one ``<fingerprint>.npz`` per
  entry) that process-pool workers — and machines sharing a filesystem
  in a sharded grid — warm once and then load instead of solving.

Both tiers reproduce the compute path bit-for-bit: the artifact stores
the solved arrays losslessly (raw float64, via the solution's own
``to_arrays``/``solution_from_arrays`` round trip, so boundary types
with richer solutions keep every column), and a loaded entry is rebound
to the caller's live trace/boundary/module objects, so cached and
uncached experiments are indistinguishable.  Artifacts are written
atomically (temp file + ``os.replace``) and a corrupt or truncated file
is treated as a miss: the entry is recomputed and the artifact
rewritten.

The fingerprint leads with the boundary's registered type tag: two
boundary models with identical parameter floats can never collide in
the store (pinned by the cross-type cache-miss test).
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Tuple

import hashlib

import numpy as np

from repro.sim._atomic import atomic_write
from repro.sim.physics import TracePhysics
from repro.teg.model import ModuleModel
from repro.thermal.boundary import ThermalBoundary
from repro.vehicle.trace import RadiatorTrace

#: Bumped whenever the artifact layout or fingerprint recipe changes;
#: artifacts carrying a different version are treated as misses and
#: rewritten.  v2: boundary type tag + canonical parameter tokens
#: replace the hard-wired radiator parameter walk.  v3: module-model
#: type tag + full parameter tokens replace the hard-wired
#: single-material field walk, so two module models of different
#: registered types can never share an artifact.
CACHE_FORMAT_VERSION = 3

#: Trace columns entering the fingerprint (everything the solves read).
_TRACE_COLUMNS = (
    "time_s",
    "coolant_inlet_c",
    "coolant_flow_kg_s",
    "air_flow_kg_s",
    "ambient_c",
    "coolant_inlet_sensed_c",
    "coolant_flow_sensed_kg_s",
)


def _scalar_token(name: str, value: float) -> bytes:
    """A lossless text token for one scalar parameter."""
    return f"{name}={float(value).hex()};".encode()


def physics_fingerprint(
    trace: RadiatorTrace,
    boundary: ThermalBoundary,
    module: ModuleModel,
    n_modules: int,
) -> str:
    """Content fingerprint of one :meth:`TracePhysics.compute` input set.

    Hashes the raw bytes of every trace column the solves read, the
    boundary's registered type tag plus its full parameter dict (via
    :meth:`~repro.thermal.boundary.ThermalBoundary.fingerprint_tokens`
    — lossless ``float.hex`` tokens, nested params included), the
    module model's registered type tag plus its full parameter dict
    (:meth:`~repro.teg.model.ModuleModel.fingerprint_tokens`), and the
    chain length.  Two inputs with equal fingerprints produce
    bit-identical :class:`TracePhysics` objects; object identity, trace
    names and scanner settings are deliberately excluded so grid
    variants built via ``dataclasses.replace`` (and re-built scenarios
    in other processes) share one entry.  Module models of different
    registered types never collide even with identical parameter
    floats — the type tag leads the module tokens.
    """
    h = hashlib.sha256()
    h.update(f"tegkit-physics-v{CACHE_FORMAT_VERSION};".encode())
    h.update(f"n_modules={int(n_modules)};".encode())

    for column in _TRACE_COLUMNS:
        arr = np.ascontiguousarray(getattr(trace, column), dtype=float)
        h.update(f"{column}[{arr.size}];".encode())
        h.update(arr.tobytes())

    h.update(module.fingerprint_tokens())
    h.update(boundary.fingerprint_tokens())
    return h.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of one :class:`PhysicsCache`.

    Attributes
    ----------
    memory_hits:
        Lookups answered by the in-process LRU.
    disk_hits:
        Lookups answered by loading an on-disk artifact.
    misses:
        Lookups that had to run :meth:`TracePhysics.compute` (equals
        the number of boundary solve passes paid, up to the noiseless
        single-solve optimisation).
    corrupt_artifacts:
        On-disk artifacts that failed to load and were recomputed.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    corrupt_artifacts: int = 0

    @property
    def hits(self) -> int:
        """Total lookups that avoided a recompute."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided a recompute (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PhysicsCache:
    """Two-tier memoisation of :meth:`TracePhysics.compute`.

    Parameters
    ----------
    max_entries:
        Capacity of the in-process LRU tier.  The working set of an
        experiment grid is its number of *unique* scenarios, so the
        default comfortably covers the registry-driven grids; least
        recently used entries are evicted beyond it.
    cache_dir:
        Optional directory for the on-disk artifact tier.  Created on
        first store.  Process-pool executors need this tier — workers
        cannot share the parent's memory — and a warm directory
        survives across runs and processes.
    """

    def __init__(
        self,
        max_entries: int = 32,
        cache_dir: Optional[os.PathLike] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = int(max_entries)
        self._dir: Optional[Path] = Path(cache_dir) if cache_dir is not None else None
        self._lru: "OrderedDict[str, TracePhysics]" = OrderedDict()
        self._lock = threading.Lock()
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._corrupt = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Optional[Path]:
        """The on-disk tier's directory (``None`` when memory-only)."""
        return self._dir

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss accounting."""
        return CacheStats(
            memory_hits=self._memory_hits,
            disk_hits=self._disk_hits,
            misses=self._misses,
            corrupt_artifacts=self._corrupt,
        )

    def __len__(self) -> int:
        return len(self._lru)

    def artifacts(self) -> Tuple[Path, ...]:
        """Artifact files currently present in the on-disk tier."""
        if self._dir is None or not self._dir.is_dir():
            return ()
        return tuple(sorted(self._dir.glob("*.npz")))

    def clear(self, disk: bool = False) -> None:
        """Drop the LRU tier; with ``disk=True`` also delete artifacts."""
        with self._lock:
            self._lru.clear()
            if disk:
                for path in self.artifacts():
                    path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # The cache operation
    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        trace: RadiatorTrace,
        boundary: ThermalBoundary,
        module: ModuleModel,
        n_modules: int,
    ) -> TracePhysics:
        """Return the memoised physics for the inputs, computing on miss.

        The returned object is always bound to *these* trace/boundary/
        module objects (a hit under a content-equal but distinct trace
        is rebound via ``dataclasses.replace``; the solved arrays are
        shared), so it passes the simulator's identity validation and
        downstream results are bit-identical to an uncached compute.
        """
        key = physics_fingerprint(trace, boundary, module, n_modules)
        with self._lock:
            physics = self._lru.get(key)
            if physics is not None:
                self._lru.move_to_end(key)
                self._memory_hits += 1
                return self._rebind(physics, trace, boundary, module)

            physics = self._load(key, trace, boundary, module, n_modules)
            if physics is not None:
                self._disk_hits += 1
                self._insert(key, physics)
                return physics

            physics = TracePhysics.compute(trace, boundary, module, n_modules)
            self._misses += 1
            self._insert(key, physics)
            if self._dir is not None:
                self._save(key, physics)
            return physics

    def warm(self, scenarios) -> int:
        """Precompute (or load) the physics of each scenario's inputs.

        Returns the number of entries that had to be computed.  Used by
        the batch engine before a process-pool fan-out and by the
        ``repro cache --warm`` CLI.
        """
        before = self._misses
        for scenario in scenarios:
            self.get_or_compute(
                scenario.trace, scenario.boundary, scenario.module,
                scenario.n_modules,
            )
        return self._misses - before

    # ------------------------------------------------------------------
    # LRU tier
    # ------------------------------------------------------------------
    def _insert(self, key: str, physics: TracePhysics) -> None:
        self._lru[key] = physics
        self._lru.move_to_end(key)
        while len(self._lru) > self._max_entries:
            self._lru.popitem(last=False)

    @staticmethod
    def _rebind(
        physics: TracePhysics,
        trace: RadiatorTrace,
        boundary: ThermalBoundary,
        module: ModuleModel,
    ) -> TracePhysics:
        """Point a cached entry at the caller's live model objects."""
        if (
            physics.trace is trace
            and physics.boundary is boundary
            and physics.module is module
        ):
            return physics
        return replace(physics, trace=trace, boundary=boundary, module=module)

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _artifact_path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}.npz"

    def _save(self, key: str, physics: TracePhysics) -> None:
        """Write one artifact atomically (temp file + rename)."""
        assert self._dir is not None
        self._dir.mkdir(parents=True, exist_ok=True)
        arrays = {}
        solution_keys = self._pack_solution(
            arrays, "true", physics.true_solution
        )
        if not physics.noiseless:
            self._pack_solution(arrays, "sensed", physics.sensed_solution)
        arrays["sensed_temps_c"] = physics.sensed_temps_c
        arrays["emf_true"] = physics.emf_true
        arrays["ideal_power_w"] = physics.ideal_power_w
        meta = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": key,
            "boundary_type": physics.boundary.boundary_type,
            "module_type": physics.module.model_type,
            "solution_keys": solution_keys,
            "noiseless": bool(physics.noiseless),
            "n_modules": int(physics.n_modules),
            "module_resistance_ohm": physics.module_resistance_ohm.hex(),
        }
        path = self._artifact_path(key)

        def write(tmp: Path) -> None:
            with open(tmp, "wb") as handle:
                np.savez(handle, meta_json=np.array(json.dumps(meta)), **arrays)

        atomic_write(path, write)

    def _load(
        self,
        key: str,
        trace: RadiatorTrace,
        boundary: ThermalBoundary,
        module: ModuleModel,
        n_modules: int,
    ) -> Optional[TracePhysics]:
        """Load one artifact; a broken file counts as a miss."""
        if self._dir is None:
            return None
        path = self._artifact_path(key)
        if not path.is_file():
            return None
        try:
            with np.load(path) as data:
                meta = json.loads(str(data["meta_json"]))
                if (
                    meta.get("version") != CACHE_FORMAT_VERSION
                    or meta.get("fingerprint") != key
                    or meta.get("boundary_type") != boundary.boundary_type
                    or meta.get("module_type") != module.model_type
                    or meta.get("n_modules") != int(n_modules)
                ):
                    raise ValueError("artifact metadata mismatch")
                noiseless = bool(meta["noiseless"])
                solution_keys = list(meta["solution_keys"])
                true_solution = self._unpack_solution(
                    data, "true", boundary, solution_keys
                )
                sensed_solution = (
                    true_solution
                    if noiseless
                    else self._unpack_solution(
                        data, "sensed", boundary, solution_keys
                    )
                )
                return TracePhysics(
                    trace=trace,
                    boundary=boundary,
                    module=module,
                    n_modules=int(n_modules),
                    true_solution=true_solution,
                    sensed_solution=sensed_solution,
                    sensed_temps_c=data["sensed_temps_c"],
                    emf_true=data["emf_true"],
                    module_resistance_ohm=float.fromhex(
                        meta["module_resistance_ohm"]
                    ),
                    ideal_power_w=data["ideal_power_w"],
                    noiseless=noiseless,
                )
        except Exception:
            # Truncated download, version skew, concurrent writer crash:
            # recompute and let the fresh _save overwrite the artifact.
            self._corrupt += 1
            return None

    @staticmethod
    def _pack_solution(arrays: dict, prefix: str, solution) -> list:
        """Flatten one solution into ``{prefix}_{key}`` npz entries.

        Returns the solution's own key list — recorded in the artifact
        metadata so :meth:`_unpack_solution` never guesses which npz
        entries belong to the solution (``sensed_temps_c`` is a
        top-level field, not a ``sensed``-prefixed solution column).
        """
        flat = solution.to_arrays()
        for name, arr in flat.items():
            arrays[f"{prefix}_{name}"] = arr
        return sorted(flat)

    @staticmethod
    def _unpack_solution(data, prefix: str, boundary: ThermalBoundary, keys):
        """Rebuild the boundary's solution type from ``{prefix}_*`` entries."""
        return type(boundary).solution_from_arrays(
            {name: data[f"{prefix}_{name}"] for name in keys}
        )
