"""Crash-safe file publishing shared by the cache/export/shard layers.

One protocol everywhere: assemble the content in a uuid-suffixed
sibling temp file, then ``os.replace`` it into place.  Readers only
ever observe complete files — a crashed writer leaves at most a temp
file behind, and a re-run of the same deterministic producer simply
replaces the artifact.  The temp name carries a uuid rather than the
pid because sharded-grid workers on *different hosts* share these
directories and can collide on pid.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path
from typing import Callable


def atomic_write(path: Path, writer: Callable[[Path], None]) -> None:
    """Publish ``path`` by writing a temp sibling and renaming it in.

    ``writer`` receives the temp path and must create/fill it; the
    rename only happens if it returns without raising.
    """
    tmp = path.with_name(f".{path.name}.tmp-{uuid.uuid4().hex}")
    try:
        writer(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
