"""The batch experiment layer — many scenarios, one call.

Layer three of the simulation stack (physics precompute → step loop →
batch engine): :class:`ExperimentRunner` fans a list of
:class:`ExperimentCase` objects — typically a grid of
``trace × policy × chain length × scanner noise`` built by
:func:`grid_cases` — across ``concurrent.futures`` workers and collates
the per-case :class:`~repro.sim.results.SimulationResult` objects into
comparison tables.

Determinism: every case carries its own fully-seeded
:class:`~repro.sim.scenario.Scenario`; workers construct the policy,
scanner and charger *inside* the worker from those seeds, so results
are bit-identical to running the same case sequentially in the parent
process, regardless of worker count or scheduling order — **provided
the scenario sets** ``nominal_compute_s`` (all registry-built
scenarios do).  With it unset, overhead bills — and through them DNOR
decisions — use the measured ``decide`` wall-clock, which varies
between runs by design.
"""

from __future__ import annotations

import dataclasses
import json
import math
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from itertools import repeat
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.cache import PhysicsCache
from repro.sim.results import SimulationResult, comparison_table, summary_row
from repro.sim.scenario import Scenario

#: Valid values of the ``executor`` argument.
EXECUTORS = ("serial", "thread", "process", "shard", "gridstack")


@dataclass(frozen=True)
class ExperimentCase:
    """One (scenario, policy) cell of an experiment grid.

    Attributes
    ----------
    name:
        Unique label of the case in the collation (e.g.
        ``"porter-ii-800s-seed2018/DNOR"``).
    scenario:
        The fully-seeded scenario to simulate.  Everything stochastic
        (trace sensors, module scanner) is derived from its seeds, so a
        case is reproducible wherever it runs — bit-exactly when the
        scenario also pins ``nominal_compute_s`` (registry scenarios
        do), within measured-runtime jitter otherwise.
    policy:
        Scheme name, a key of :meth:`Scenario.make_policies`
        (``"DNOR"``, ``"INOR"``, ``"EHTR"``, ``"Baseline"``).
    with_battery:
        Whether the charger carries a battery sink.
    """

    name: str
    scenario: Scenario
    policy: str
    with_battery: bool = True

    # ------------------------------------------------------------------
    # Loss-free JSON round trip (the shard manifest format)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary reproducing this case exactly.

        Together with :meth:`Scenario.to_json_dict` this is what makes
        an experiment grid *portable*: a sharded run writes the cases
        into a manifest and independent hosts rebuild them bit-exactly
        (pinned in ``tests/test_sim_shard.py``).
        """
        return {
            "name": self.name,
            "policy": self.policy,
            "with_battery": bool(self.with_battery),
            "scenario": self.scenario.to_json_dict(),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "ExperimentCase":
        """Rebuild a case from :meth:`to_json_dict` output."""
        return cls(
            name=str(data["name"]),
            scenario=Scenario.from_json_dict(data["scenario"]),
            policy=str(data["policy"]),
            with_battery=bool(data["with_battery"]),
        )


#: Per-process :class:`PhysicsCache` instances, keyed by directory.
#: Pool workers are reused across cases, so a worker's first case pays
#: one artifact load and later cases over the same scenario hit the
#: worker-local LRU.
_WORKER_CACHES: Dict[str, PhysicsCache] = {}


def _worker_cache(cache_dir: str) -> PhysicsCache:
    cache = _WORKER_CACHES.get(cache_dir)
    if cache is None:
        cache = PhysicsCache(cache_dir=cache_dir)
        _WORKER_CACHES[cache_dir] = cache
    return cache


def run_case(
    case: ExperimentCase, physics=None, cache_dir: Optional[str] = None
) -> SimulationResult:
    """Execute one case: build the simulator and policy, run, return.

    Module-level so process pools can pickle it; also the single code
    path for every executor, which is what makes parallel results
    bit-identical to sequential ones.  ``physics`` optionally injects
    a shared :class:`~repro.sim.physics.TracePhysics` so in-process
    cases over the same scenario split one precompute; ``cache_dir``
    instead points a (typically pool-worker) process at a shared
    on-disk :class:`~repro.sim.cache.PhysicsCache` tier, which the
    parent runner warms before fanning out.  Neither can change
    results — the precompute is a pure function of the scenario and
    cached entries are bit-identical to fresh ones.
    """
    policies = case.scenario.make_policies()
    if case.policy not in policies:
        raise SimulationError(
            f"unknown policy {case.policy!r} for case {case.name!r} "
            f"(available: {', '.join(policies)})"
        )
    cache = (
        _worker_cache(cache_dir)
        if physics is None and cache_dir is not None
        else None
    )
    try:
        simulator = case.scenario.make_simulator(physics=physics, cache=cache)
        charger = case.scenario.make_charger(with_battery=case.with_battery)
        return simulator.run(policies[case.policy], charger)
    except Exception as exc:
        # Name the failing cell: a pooled or sharded grid surfaces the
        # worker's traceback far from the submission site, and without
        # the case name one bad cell in a 100-case grid is anonymous.
        raise SimulationError(f"case {case.name!r} failed: {exc}") from exc


def grid_cases(
    scenarios: Sequence[Scenario],
    policies: Sequence[str],
    n_modules: Optional[Sequence[int]] = None,
    scanner_noise_std_k: Optional[Sequence[float]] = None,
) -> List[ExperimentCase]:
    """Build the full ``trace × policy × N × noise`` case grid.

    ``n_modules`` / ``scanner_noise_std_k`` axes default to "keep the
    scenario's own value".  Case names encode only the axes that vary,
    so a plain scenario × policy grid keeps short names.
    """
    module_axis: Sequence[Optional[int]] = (
        [None] if n_modules is None else list(n_modules)
    )
    noise_axis: Sequence[Optional[float]] = (
        [None] if scanner_noise_std_k is None else list(scanner_noise_std_k)
    )
    cases: List[ExperimentCase] = []
    for scenario in scenarios:
        for m in module_axis:
            for noise in noise_axis:
                variant = scenario
                suffix = ""
                if m is not None:
                    variant = dataclasses.replace(variant, n_modules=int(m))
                    suffix += f"/N={int(m)}"
                if noise is not None:
                    variant = dataclasses.replace(
                        variant, scanner_noise_std_k=float(noise)
                    )
                    suffix += f"/noise={noise:g}K"
                for policy in policies:
                    cases.append(
                        ExperimentCase(
                            name=f"{scenario.trace.name}{suffix}/{policy}",
                            scenario=variant,
                            policy=policy,
                        )
                    )
    return cases


@dataclass(frozen=True)
class ExperimentCollation:
    """Collated results of one :class:`ExperimentRunner` invocation."""

    cases: Tuple[ExperimentCase, ...]
    results: Tuple[SimulationResult, ...]

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        """Iterate ``(case, result)`` pairs in collation order."""
        return iter(zip(self.cases, self.results))

    def __getitem__(self, name: str) -> SimulationResult:
        for case, result in zip(self.cases, self.results):
            if case.name == name:
                return result
        raise KeyError(name)

    def by_scenario(self) -> Dict[str, List[Tuple[ExperimentCase, SimulationResult]]]:
        """Group (case, result) pairs by their scenario grouping key.

        The key is the case name minus the trailing ``/<policy>``
        component, so every variant of a scenario collates its schemes
        into one Table-I style block.
        """
        groups: Dict[str, List[Tuple[ExperimentCase, SimulationResult]]] = {}
        for case, result in zip(self.cases, self.results):
            key = case.name.rsplit("/", 1)[0] if "/" in case.name else case.name
            groups.setdefault(key, []).append((case, result))
        return groups

    def tables(self) -> str:
        """Render one comparison table per scenario grouping."""
        blocks = []
        for key, pairs in self.by_scenario().items():
            blocks.append(f"== {key} ==")
            blocks.append(comparison_table(result for _, result in pairs))
        return "\n\n".join(blocks)

    def summary_rows(
        self, deterministic_only: bool = False
    ) -> List[Dict[str, object]]:
        """Flat per-case summary dictionaries (JSON-friendly).

        ``deterministic_only`` drops ``average_runtime_ms`` — the one
        summary quantity derived from measured ``decide`` wall-clock,
        which varies between hosts and runs by design — leaving
        exactly the fields the engine's determinism contract pins.
        Sharded and serial collations of the same grid then serialise
        to identical bytes, which is what ``repro shard collate``
        artifacts and the CI shard-vs-serial diff compare.
        """
        rows: List[Dict[str, object]] = []
        for case, result in zip(self.cases, self.results):
            row: Dict[str, object] = {"case": case.name, "policy": case.policy}
            row.update(summary_row(result))
            if deterministic_only:
                row.pop("average_runtime_ms", None)
            rows.append(row)
        return rows

    def to_json(
        self, indent: int = 2, deterministic_only: bool = False
    ) -> str:
        """Serialised :meth:`summary_rows`, always valid JSON.

        Degenerate cases (zero-power periods, faulted sensing) can put
        NaN/Inf into summary values; ``json.dumps`` would happily emit
        the non-standard ``NaN``/``Infinity`` tokens that strict
        parsers — including shard collation diffing — reject.  Such
        values are sanitised to ``null`` and ``allow_nan=False`` keeps
        any future leak from producing unparseable artifacts.
        """
        rows = [
            {key: _json_safe(value) for key, value in row.items()}
            for row in self.summary_rows(deterministic_only=deterministic_only)
        ]
        return json.dumps(rows, indent=indent, allow_nan=False)


def _json_safe(value: object) -> object:
    """Map non-finite floats to ``None`` (JSON ``null``)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class ExperimentRunner:
    """Fan an experiment grid across workers, deterministically.

    Parameters
    ----------
    cases:
        The grid (see :func:`grid_cases`); names must be unique.
    executor:
        ``"process"`` (default) uses a :class:`ProcessPoolExecutor` —
        right for CPU-bound policy loops; ``"thread"`` avoids pickling
        and process start-up for small grids; ``"serial"`` runs inline
        (debugging, exact-equivalence tests); ``"shard"`` drives the
        grid through a durable :mod:`repro.sim.shard` directory — the
        same substrate independent hosts use — and collates the
        per-case artifacts (bit-identical to serial);
        ``"gridstack"`` fuses homogeneous INOR cases into stacked
        decision passes (:mod:`repro.sim.gridstack`), bit-identical to
        serial for everything but the wall-clock ``runtime_s`` series.
    max_workers:
        Worker count for the pooled executors; ``None`` lets
        ``concurrent.futures`` pick.
    cache:
        Optional :class:`~repro.sim.cache.PhysicsCache` shared with the
        caller (and, across runs, with other runners).  By default each
        runner owns a private in-memory cache, which is already enough
        to solve each *unique* scenario once per run: cases are keyed
        by content fingerprint, so grid variants built via
        ``dataclasses.replace`` over one trace — an ``n_modules`` axis
        aside — share a single solve.
    cache_dir:
        Directory for the on-disk cache tier.  Enables physics sharing
        with process-pool workers (which cannot see the parent's
        memory): the runner warms the artifact store before fanning
        out and workers load instead of solving.  A warm directory
        also persists across runs, machines sharing a filesystem, and
        the ``repro cache`` CLI.
    shard_dir:
        Directory of the durable shard (``executor="shard"`` only).
        ``None`` runs the shard in a temporary directory that is
        removed after collation; pass a path to keep the manifest,
        queue and result artifacts around — e.g. so more hosts can
        join via ``repro shard work`` or an interrupted run can be
        resumed.
    """

    def __init__(
        self,
        cases: Iterable[ExperimentCase],
        executor: str = "process",
        max_workers: Optional[int] = None,
        cache: Optional[PhysicsCache] = None,
        cache_dir=None,
        shard_dir=None,
    ) -> None:
        self._cases: Tuple[ExperimentCase, ...] = tuple(cases)
        if not self._cases:
            raise SimulationError("an experiment needs at least one case")
        counts = Counter(case.name for case in self._cases)
        dupes = sorted(name for name, count in counts.items() if count > 1)
        if dupes:
            raise SimulationError(f"duplicate case names: {', '.join(dupes)}")
        if executor not in EXECUTORS:
            raise SimulationError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if shard_dir is not None and executor != "shard":
            raise SimulationError(
                f"shard_dir is only meaningful with executor='shard', "
                f"got executor={executor!r}"
            )
        self._executor = executor
        self._max_workers = max_workers
        self._shard_dir = Path(shard_dir) if shard_dir is not None else None
        if cache is not None and cache_dir is not None and (
            cache.cache_dir is None or Path(cache_dir) != cache.cache_dir
        ):
            # A memory-only (or differently-located) cache cannot warm
            # the directory the workers will read; failing beats
            # silently re-solving in every pool worker.
            raise SimulationError(
                f"cache_dir {cache_dir!r} does not match the supplied "
                f"cache's directory ({cache.cache_dir}); pass one or the "
                f"other, or a cache built with this cache_dir"
            )
        if cache is None:
            cache = PhysicsCache(cache_dir=cache_dir)
        self._cache = cache
        self._cache_dir = cache.cache_dir

    @property
    def cases(self) -> Tuple[ExperimentCase, ...]:
        """The grid, in submission (= collation) order."""
        return self._cases

    @property
    def cache(self) -> PhysicsCache:
        """The physics cache serving this runner's grid."""
        return self._cache

    def _shared_physics(self) -> List[object]:
        """One TracePhysics slot per case, deduplicated by fingerprint.

        Content-keyed through the :class:`PhysicsCache`, so every grid
        cell sharing a trace/boundary/chain — including scanner-noise
        variants and scenarios rebuilt from the registry — reuses one
        solve (and one on-disk artifact when the cache has a
        directory).
        """
        return [
            self._cache.get_or_compute(
                case.scenario.trace,
                case.scenario.boundary,
                case.scenario.module,
                case.scenario.n_modules,
            )
            for case in self._cases
        ]

    def run(self) -> ExperimentCollation:
        """Execute every case and collate results in case order."""
        if self._executor == "serial":
            physics = self._shared_physics()
            results = [
                run_case(case, p) for case, p in zip(self._cases, physics)
            ]
        elif self._executor == "gridstack":
            # Imported here: gridstack builds on this module (run_case),
            # so a top-level import would be circular.
            from repro.sim.gridstack import run_grid_stacked

            physics = self._shared_physics()
            results = run_grid_stacked(self._cases, physics)
        elif self._executor == "thread":
            physics = self._shared_physics()
            with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
                results = list(pool.map(run_case, self._cases, physics))
        elif self._executor == "shard":
            # Imported here: shard builds on this module (run_case,
            # ExperimentCase), so a top-level import would be circular.
            from repro.sim.shard import run_sharded

            results = run_sharded(
                self._cases,
                shard_dir=self._shard_dir,
                n_workers=self._max_workers,
                cache_dir=self._cache_dir,
            )
        elif self._cache_dir is not None:
            # Warm the shared artifact store in-process (one solve or
            # disk load per unique scenario), then let the workers read
            # it back instead of re-solving per case.
            self._shared_physics()
            with ProcessPoolExecutor(max_workers=self._max_workers) as pool:
                results = list(
                    pool.map(
                        run_case,
                        self._cases,
                        repeat(None),
                        repeat(str(self._cache_dir)),
                    )
                )
        else:
            with ProcessPoolExecutor(max_workers=self._max_workers) as pool:
                results = list(pool.map(run_case, self._cases))
        return ExperimentCollation(cases=self._cases, results=tuple(results))
