"""Command-line interface: ``python -m repro <command>``.

Eight commands cover the everyday uses of the library:

* ``info``        — paper identity, module catalog, default scenario.
* ``reconfigure`` — run INOR once on a synthetic or CSV-described
  temperature profile and print the chosen configuration.
* ``simulate``    — run the closed-loop schemes over a drive trace and
  print the Table-I style comparison (optionally save the trace CSV).
* ``batch``       — fan a grid of named scenarios × schemes across
  workers through the batch experiment engine and print collated
  tables (``--list`` shows the scenario registry; ``--cache-dir``
  shares the physics precompute through an on-disk store).
* ``shard``       — the same grids across independent *hosts*:
  ``shard init`` writes a durable work-queue directory, any number of
  ``shard work`` processes (one per host/core, pointed at the shared
  directory) drain it crash-safely, ``shard status`` reports progress
  (``--watch`` for a live view with per-lease trouble detail) and
  ``shard collate`` reassembles the collation bit-identically to a
  serial run.
* ``serve``       — the layer-6 streaming decision service: a demo
  that drives concurrent asyncio vehicle sessions over a registry
  trace through the micro-batching hub (``--offline`` writes the
  byte-identical batch reference for diffing; ``--listen`` runs the
  TCP JSON-lines server for external clients).
* ``cache``       — inspect, warm or clear an on-disk physics cache
  directory.
* ``sweep-period``— the prior-work fixed-period trade-off table.

Every command is deterministic given its ``--seed``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro._about import PAPER_ARXIV, PAPER_TITLE, PAPER_VENUE, __version__
from repro.core.inor import inor, parse_inor_kernel
from repro.core.period_tradeoff import sweep_fixed_period
from repro.power.charger import TEGCharger
from repro.errors import TegkitError
from repro.sim.cache import PhysicsCache
from repro.sim.engine import (
    EXECUTORS,
    ExperimentCase,
    ExperimentRunner,
    grid_cases,
)
from repro.sim.results import comparison_table
from repro.sim.scenario import default_registry, default_scenario
from repro.sim.shard import (
    collate_shard,
    init_shard,
    shard_status,
    watch_shard,
    work_shard,
)
from repro.teg.array import TEGArray
from repro.teg.datasheet import MODULE_CATALOG, get_module
from repro.vehicle.trace_io import save_trace


def _kernel_arg(value: str) -> str:
    """argparse type for ``--kernel``: any ``parse_inor_kernel`` spelling."""
    try:
        parse_inor_kernel(value)
    except TegkitError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"tegkit {__version__} — reproduction of:")
    print(f"  {PAPER_TITLE}")
    print(f"  {PAPER_VENUE}, arXiv:{PAPER_ARXIV}")
    print()
    print("Module catalog:")
    for name, module in sorted(MODULE_CATALOG.items()):
        mpp = module.mpp(35.0)
        print(
            f"  {name:28s} {module.n_couples:4d} couples, "
            f"R = {module.internal_resistance():5.2f} Ohm, "
            f"P_mpp(35 K) = {mpp.power_w:5.2f} W"
        )
    print()
    print("Default scenario: 100 x TGM-199-1.4-0.8, 800 s synthetic")
    print("Porter-II trace, 0.5 s control period, 13.8 V lead-acid bus.")
    return 0


def _profile(args: argparse.Namespace) -> np.ndarray:
    x = np.linspace(0.0, 1.0, args.modules)
    return args.dt_floor + (args.dt_peak - args.dt_floor) * np.exp(
        -args.steepness * x
    )


def _cmd_reconfigure(args: argparse.Namespace) -> int:
    module = get_module(args.module)
    array = TEGArray(module, args.modules)
    array.set_delta_t(_profile(args))
    charger = TEGCharger()
    result = inor(
        array.emf_vector(),
        array.resistance_vector(),
        charger=charger,
        kernel=args.kernel,
    )
    print(f"module:        {module.name} x {args.modules}")
    print(
        f"dT profile:    {args.dt_peak:.1f} K -> {args.dt_floor:.1f} K "
        f"(steepness {args.steepness:g})"
    )
    print(f"configuration: {result.config}")
    print(f"paper form:    {result.config.paper_form()}")
    print(f"group sizes:   {result.config.group_sizes}")
    print(
        f"array MPP:     {result.mpp.power_w:.2f} W at "
        f"{result.mpp.voltage_v:.2f} V / {result.mpp.current_a:.2f} A"
    )
    print(f"delivered:     {result.delivered_power_w:.2f} W (after converter)")
    print(f"P_ideal:       {array.ideal_power():.2f} W")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = dataclasses.replace(
        default_scenario(duration_s=args.duration, seed=args.seed),
        inor_kernel=args.kernel,
    )
    if args.save_trace:
        path = save_trace(scenario.trace, args.save_trace)
        print(f"trace saved to {path}")
    simulator = scenario.make_simulator()
    wanted = [s.strip() for s in args.schemes.split(",") if s.strip()]
    policies = scenario.make_policies()
    unknown = [s for s in wanted if s not in policies]
    if unknown:
        print(
            f"unknown schemes: {', '.join(unknown)} "
            f"(available: {', '.join(policies)})",
            file=sys.stderr,
        )
        return 2
    results = []
    for name in wanted:
        print(f"running {name} ...", file=sys.stderr)
        results.append(simulator.run(policies[name], scenario.make_charger()))
    print(comparison_table(results))
    return 0


def _parse_name_list(text: str) -> List[str]:
    """Split a comma list, de-duplicated but order-preserving.

    Repeating a name would otherwise produce duplicate case names
    downstream.
    """
    return list(dict.fromkeys(s.strip() for s in text.split(",") if s.strip()))


def _build_grid(args: argparse.Namespace) -> Optional[List[ExperimentCase]]:
    """Build the scenario × scheme case grid shared by batch and shard.

    Prints the offending names and returns ``None`` on unknown
    scenarios/schemes (callers exit 2).
    """
    registry = default_registry()
    wanted = _parse_name_list(args.scenarios)
    unknown = [s for s in wanted if s not in registry.names()]
    if unknown:
        print(
            f"unknown scenarios: {', '.join(unknown)} "
            f"(available: {', '.join(registry.names())})",
            file=sys.stderr,
        )
        return None
    schemes = _parse_name_list(args.schemes)
    known_schemes = ("DNOR", "INOR", "EHTR", "Baseline")
    bad_schemes = [s for s in schemes if s not in known_schemes]
    if bad_schemes:
        print(
            f"unknown schemes: {', '.join(bad_schemes)} "
            f"(available: {', '.join(known_schemes)})",
            file=sys.stderr,
        )
        return None
    scenarios = [
        dataclasses.replace(
            registry.build(
                name,
                duration_s=args.duration,
                seed=args.seed,
                n_modules=args.modules,
            ),
            inor_kernel=args.kernel,
        )
        for name in wanted
    ]
    return grid_cases(scenarios, schemes)


def _cmd_batch(args: argparse.Namespace) -> int:
    registry = default_registry()
    if args.list:
        print("Registered scenarios:")
        for name, description in registry.describe().items():
            scenario = registry.build(name, duration_s=20.0)
            tags = (
                f"{scenario.boundary.boundary_type}/"
                f"{scenario.module.model_type}"
            )
            print(f"  {name:20s} [{tags}] {description}")
        return 0

    cases = _build_grid(args)
    if cases is None:
        return 2
    print(
        f"running {len(cases)} cases on the {args.executor} executor ...",
        file=sys.stderr,
    )
    runner = ExperimentRunner(
        cases,
        executor=args.executor,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
    )
    try:
        collation = runner.run()
    except TegkitError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(collation.tables())
    stats = runner.cache.stats
    if stats.lookups:
        print(
            f"physics cache: {stats.hits}/{stats.lookups} hits "
            f"({stats.memory_hits} memory, {stats.disk_hits} disk), "
            f"{stats.misses} solves",
            file=sys.stderr,
        )
    if args.json:
        path = Path(args.json)
        path.write_text(
            collation.to_json(deterministic_only=args.json_deterministic)
        )
        print(f"summary JSON saved to {path}", file=sys.stderr)
    return 0


def _cmd_shard_init(args: argparse.Namespace) -> int:
    cases = _build_grid(args)
    if cases is None:
        return 2
    try:
        manifest = init_shard(
            args.dir, cases, warm=not args.no_warm,
            lease_ttl_s=args.lease_ttl,
        )
        status = shard_status(args.dir)
    except TegkitError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"shard at {args.dir}: {len(manifest)} cases ({status.describe()})")
    if manifest.groups:
        fused = sum(len(members) for _, members in manifest.groups)
        print(
            f"fused groups: {len(manifest.groups)} "
            f"({fused} cases run grid-stacked)"
        )
    print(f"physics store: {manifest.cache_dir}")
    print(f"run 'repro shard work --dir {args.dir}' on each host to drain it")
    return 0


def _cmd_shard_work(args: argparse.Namespace) -> int:
    try:
        completed = work_shard(
            args.dir,
            worker_id=args.worker_id,
            lease_ttl_s=args.lease_ttl,
            max_cases=args.max_cases,
        )
        status = shard_status(args.dir)
    except TegkitError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(
        f"worker finished {len(completed)} case(s); shard now "
        f"{status.describe()}"
    )
    return 0


def _cmd_shard_status(args: argparse.Namespace) -> int:
    try:
        if args.watch:
            status = watch_shard(args.dir, interval_s=args.interval)
            print(f"shard at {args.dir}: {status.describe()}")
            return 0 if status.complete else 1
        status = shard_status(args.dir)
    except TegkitError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"shard at {args.dir}: {status.describe()}")
    for line in status.group_lines():
        print(f"  {line}")
    for line in status.detail_lines():
        print(f"  {line}")
    return 0


def _cmd_shard_collate(args: argparse.Namespace) -> int:
    try:
        collation = collate_shard(args.dir)
    except TegkitError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(collation.tables())
    if args.json:
        path = Path(args.json)
        path.write_text(collation.to_json(deterministic_only=True))
        print(f"summary JSON saved to {path}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_demo, run_offline_reference, serve_forever

    if args.listen:
        serve_forever(host=args.host, port=args.port)
        return 0
    try:
        if args.offline:
            counts = run_offline_reference(
                scenario_name=args.scenario,
                sessions=args.sessions,
                duration_s=args.duration,
                n_modules=args.modules,
                policy=args.policy,
                out_dir=args.decisions_dir,
                sensor_seed_base=args.seed,
            )
            total = sum(counts.values())
            print(
                f"offline reference: {len(counts)} session log(s), "
                f"{total} decision(s) -> {args.decisions_dir}"
            )
            return 0
        stats = run_demo(
            scenario_name=args.scenario,
            sessions=args.sessions,
            duration_s=args.duration,
            n_modules=args.modules,
            chunk=args.chunk,
            policy=args.policy,
            out_dir=args.decisions_dir,
            sensor_seed_base=args.seed,
        )
    except TegkitError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(
        f"served {stats['sessions']} concurrent session(s): "
        f"{stats['rows_decided']} decision(s) through "
        f"{stats['stacked_passes']} stacked kernel pass(es) "
        f"(max {stats['max_sessions_per_pass']} sessions / "
        f"{stats['max_rows_per_pass']} rows per pass)"
    )
    print(f"decision logs -> {args.decisions_dir}")
    if args.offline_check:
        import filecmp
        import tempfile

        with tempfile.TemporaryDirectory() as reference_dir:
            run_offline_reference(
                scenario_name=args.scenario,
                sessions=args.sessions,
                duration_s=args.duration,
                n_modules=args.modules,
                policy=args.policy,
                out_dir=reference_dir,
                sensor_seed_base=args.seed,
            )
            names = sorted(
                p.name for p in Path(reference_dir).glob("*.jsonl")
            )
            _, mismatch, errors = filecmp.cmpfiles(
                args.decisions_dir, reference_dir, names, shallow=False
            )
            if mismatch or errors:
                print(
                    f"ONLINE/OFFLINE MISMATCH: {mismatch or errors}",
                    file=sys.stderr,
                )
                return 1
        print(f"offline check: {len(names)} log(s) byte-identical")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = PhysicsCache(cache_dir=args.dir)
    if args.clear:
        count = len(cache.artifacts())
        cache.clear(disk=True)
        print(f"removed {count} artifact(s) from {args.dir}")
        return 0
    if args.warm:
        registry = default_registry()
        wanted = list(
            dict.fromkeys(s.strip() for s in args.warm.split(",") if s.strip())
        )
        unknown = [s for s in wanted if s not in registry.names()]
        if unknown:
            print(
                f"unknown scenarios: {', '.join(unknown)} "
                f"(available: {', '.join(registry.names())})",
                file=sys.stderr,
            )
            return 2
        scenarios = [
            registry.build(
                name,
                duration_s=args.duration,
                seed=args.seed,
                n_modules=args.modules,
            )
            for name in wanted
        ]
        solved = cache.warm(scenarios)
        stats = cache.stats
        print(
            f"warmed {len(scenarios)} scenario(s): {solved} solved, "
            f"{stats.disk_hits} loaded from disk"
        )
        for scenario, name in zip(scenarios, wanted):
            print(f"  {name:20s} {scenario.physics_fingerprint()[:16]}...")
        return 0
    artifacts = cache.artifacts()
    print(f"physics cache at {args.dir}: {len(artifacts)} artifact(s)")
    for path in artifacts:
        size_kib = path.stat().st_size / 1024.0
        print(f"  {path.stem[:16]}...  {size_kib:8.1f} KiB")
    return 0


def _cmd_sweep_period(args: argparse.Namespace) -> int:
    scenario = default_scenario(duration_s=args.duration, seed=args.seed)
    periods = [float(p) for p in args.periods.split(",")]
    tradeoff = sweep_fixed_period(scenario, periods)
    print("Fixed-period INOR trade-off (prior-work approach):")
    print(tradeoff.table())
    simulator = scenario.make_simulator()
    dnor = simulator.run(scenario.make_dnor_policy(), scenario.make_charger())
    best = tradeoff.best
    print()
    print(
        f"DNOR on the same trace: {dnor.energy_output_j:.1f} J "
        f"({dnor.switch_count} switches) vs best fixed period "
        f"{best.period_s:g} s: {best.energy_output_j:.1f} J"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prediction-based fast TEG reconfiguration (DATE 2018 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="paper identity and module catalog").set_defaults(
        handler=_cmd_info
    )

    recon = sub.add_parser(
        "reconfigure", help="run INOR once on a synthetic gradient"
    )
    recon.add_argument("--module", default="TGM-199-1.4-0.8")
    recon.add_argument("--modules", type=int, default=100)
    recon.add_argument("--dt-peak", type=float, default=67.0, dest="dt_peak")
    recon.add_argument("--dt-floor", type=float, default=12.0, dest="dt_floor")
    recon.add_argument("--steepness", type=float, default=2.2)
    recon.add_argument(
        "--kernel",
        type=_kernel_arg,
        default="batched",
        metavar="KERNEL",
        help=(
            "INOR candidate kernel: 'batched', 'scalar', or "
            "'batched:<backend>' naming an array backend "
            "(bit-identical results; batched is faster)"
        ),
    )
    recon.set_defaults(handler=_cmd_reconfigure)

    simulate = sub.add_parser(
        "simulate", help="closed-loop scheme comparison on a drive trace"
    )
    simulate.add_argument("--duration", type=float, default=120.0)
    simulate.add_argument("--seed", type=int, default=2018)
    simulate.add_argument(
        "--schemes",
        default="DNOR,INOR,Baseline",
        help="comma list from DNOR,INOR,EHTR,Baseline (EHTR is slow)",
    )
    simulate.add_argument(
        "--save-trace", default=None, help="also write the trace CSV here"
    )
    simulate.add_argument(
        "--kernel",
        type=_kernel_arg,
        default="batched",
        metavar="KERNEL",
        help=(
            "INOR candidate kernel: 'batched', 'scalar', or "
            "'batched:<backend>' naming an array backend "
            "(bit-identical results; batched is faster)"
        ),
    )
    simulate.set_defaults(handler=_cmd_simulate)

    batch = sub.add_parser(
        "batch", help="multi-scenario scheme comparison via the batch engine"
    )
    batch.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    batch.add_argument(
        "--scenarios",
        default="porter-ii",
        help="comma list of registry names (see --list)",
    )
    batch.add_argument(
        "--schemes",
        default="DNOR,INOR,Baseline",
        help="comma list from DNOR,INOR,EHTR,Baseline (EHTR is slow)",
    )
    batch.add_argument("--duration", type=float, default=None)
    batch.add_argument("--seed", type=int, default=None)
    batch.add_argument(
        "--modules", type=int, default=None, help="override chain length N"
    )
    batch.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="process",
        help=(
            "case scheduler; 'gridstack' fuses homogeneous INOR/DNOR/"
            "Baseline groups into stacked kernel passes (bit-identical "
            "to serial)"
        ),
    )
    batch.add_argument("--workers", type=int, default=None)
    batch.add_argument(
        "--json", default=None, help="also write the summary rows here"
    )
    batch.add_argument(
        "--json-deterministic",
        action="store_true",
        dest="json_deterministic",
        help="drop measured-runtime fields from --json so outputs of "
        "equal grids diff clean across hosts/executors",
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="on-disk physics cache shared across cases, workers and runs",
    )
    batch.add_argument(
        "--kernel",
        type=_kernel_arg,
        default="batched",
        metavar="KERNEL",
        help=(
            "INOR candidate kernel: 'batched', 'scalar', or "
            "'batched:<backend>' naming an array backend "
            "(bit-identical results; batched is faster)"
        ),
    )
    batch.set_defaults(handler=_cmd_batch)

    shard = sub.add_parser(
        "shard",
        help="durable multi-host experiment grids over a shared directory",
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    shard_init = shard_sub.add_parser(
        "init", help="write the manifest + work queue and warm the physics store"
    )
    shard_init.add_argument(
        "--dir", required=True, help="shard directory (shared across hosts)"
    )
    shard_init.add_argument(
        "--scenarios",
        default="porter-ii",
        help="comma list of registry names (see batch --list)",
    )
    shard_init.add_argument(
        "--schemes",
        default="DNOR,INOR,Baseline",
        help="comma list from DNOR,INOR,EHTR,Baseline (EHTR is slow)",
    )
    shard_init.add_argument("--duration", type=float, default=None)
    shard_init.add_argument("--seed", type=int, default=None)
    shard_init.add_argument(
        "--modules", type=int, default=None, help="override chain length N"
    )
    shard_init.add_argument(
        "--kernel",
        type=_kernel_arg,
        default="batched",
        metavar="KERNEL",
        help=(
            "INOR candidate kernel: 'batched', 'scalar', or "
            "'batched:<backend>' naming an array backend "
            "(bit-identical results; batched is faster)"
        ),
    )
    shard_init.add_argument(
        "--no-warm",
        action="store_true",
        dest="no_warm",
        help="skip precomputing the shared physics artifacts",
    )
    shard_init.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        dest="lease_ttl",
        help="configured lease TTL recorded in the manifest and used by "
        "every worker (default 900 s)",
    )
    shard_init.set_defaults(handler=_cmd_shard_init)

    shard_work = shard_sub.add_parser(
        "work", help="claim and run cases until the queue is drained"
    )
    shard_work.add_argument("--dir", required=True)
    shard_work.add_argument(
        "--worker-id",
        default=None,
        dest="worker_id",
        help="lease owner label (default: <hostname>-pid<pid>)",
    )
    shard_work.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        dest="lease_ttl",
        help="seconds before an unfinished claim is re-queued (crash "
        "safety); default: the shard's configured TTL from the manifest",
    )
    shard_work.add_argument(
        "--max-cases",
        type=int,
        default=None,
        dest="max_cases",
        help="stop after completing this many cases",
    )
    shard_work.set_defaults(handler=_cmd_shard_work)

    shard_state = shard_sub.add_parser(
        "status", help="done/pending/leased/expired accounting"
    )
    shard_state.add_argument("--dir", required=True)
    shard_state.add_argument(
        "--watch",
        action="store_true",
        help="poll and print progress until the shard completes",
    )
    shard_state.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --watch polls",
    )
    shard_state.set_defaults(handler=_cmd_shard_status)

    shard_collate = shard_sub.add_parser(
        "collate", help="reassemble the collation from a finished shard"
    )
    shard_collate.add_argument("--dir", required=True)
    shard_collate.add_argument(
        "--json",
        default=None,
        help="also write deterministic summary rows here (diffable "
        "against 'repro batch --json --json-deterministic')",
    )
    shard_collate.set_defaults(handler=_cmd_shard_collate)

    serve = sub.add_parser(
        "serve",
        help="streaming decision service (concurrent asyncio sessions)",
    )
    serve.add_argument(
        "--listen",
        action="store_true",
        help="run the TCP JSON-lines server instead of the demo",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7787)
    serve.add_argument(
        "--offline",
        action="store_true",
        help="write the offline batch reference logs instead of serving "
        "(same file names; byte-diffable against the demo output)",
    )
    serve.add_argument(
        "--scenario",
        default="porter-ii",
        help="registry scenario streamed by the demo sessions",
    )
    serve.add_argument(
        "--sessions", type=int, default=4, help="concurrent vehicle sessions"
    )
    serve.add_argument("--duration", type=float, default=30.0)
    serve.add_argument(
        "--modules", type=int, default=16, help="chain length N per session"
    )
    serve.add_argument(
        "--chunk", type=int, default=16, help="telemetry samples per feed"
    )
    serve.add_argument(
        "--policy",
        default="INOR",
        choices=("INOR", "DNOR", "EHTR", "Baseline"),
    )
    serve.add_argument(
        "--decisions-dir",
        default="serve-decisions",
        dest="decisions_dir",
        help="directory receiving one decision-log JSONL per session",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=777,
        help="sensor-seed base; session k streams with seed+k",
    )
    serve.add_argument(
        "--offline-check",
        action="store_true",
        dest="offline_check",
        help="after serving, recompute the offline reference and fail "
        "unless every session log is byte-identical",
    )
    serve.set_defaults(handler=_cmd_serve)

    cache = sub.add_parser(
        "cache", help="inspect, warm or clear an on-disk physics cache"
    )
    cache.add_argument(
        "--dir", required=True, help="cache directory (see batch --cache-dir)"
    )
    cache.add_argument(
        "--warm",
        default=None,
        help="comma list of registry scenarios to precompute into the cache",
    )
    cache.add_argument(
        "--clear", action="store_true", help="delete all cached artifacts"
    )
    cache.add_argument("--duration", type=float, default=None)
    cache.add_argument("--seed", type=int, default=None)
    cache.add_argument("--modules", type=int, default=None)
    cache.set_defaults(handler=_cmd_cache)

    sweep = sub.add_parser(
        "sweep-period", help="prior-work fixed-period trade-off vs DNOR"
    )
    sweep.add_argument("--duration", type=float, default=200.0)
    sweep.add_argument("--seed", type=int, default=2018)
    sweep.add_argument("--periods", default="0.5,1,2,4,8")
    sweep.set_defaults(handler=_cmd_sweep_period)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.handler(args))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
