"""CSV persistence for radiator traces and drive cycles.

A downstream user of this library will sooner or later have *real*
logged data — coolant temperatures from an OBD dongle, a flow meter, a
GPS speed trace.  These helpers give :class:`RadiatorTrace` and
:class:`DriveCycle` a plain-CSV round trip so such data drops straight
into every experiment that accepts the synthetic trace.

Format: one header row, comma-separated, one sample per line.  Columns
are fixed and documented in :data:`TRACE_COLUMNS` / :data:`CYCLE_COLUMNS`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import SimulationError
from repro.vehicle.drive_cycle import DriveCycle
from repro.vehicle.trace import RadiatorTrace

#: Column order of the trace CSV format.
TRACE_COLUMNS = (
    "time_s",
    "coolant_inlet_c",
    "coolant_flow_kg_s",
    "air_flow_kg_s",
    "ambient_c",
    "speed_mps",
    "coolant_inlet_sensed_c",
    "coolant_flow_sensed_kg_s",
)

#: Column order of the drive-cycle CSV format.
CYCLE_COLUMNS = ("time_s", "speed_mps")


def save_trace(trace: RadiatorTrace, path: Union[str, Path]) -> Path:
    """Write a trace to CSV; returns the path written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_COLUMNS)
        columns = [getattr(trace, name) for name in TRACE_COLUMNS]
        for row in zip(*columns):
            writer.writerow(f"{value:.10g}" for value in row)
    return path


def load_trace(path: Union[str, Path], name: str | None = None) -> RadiatorTrace:
    """Read a trace from CSV.

    Raises
    ------
    SimulationError
        If the header does not match :data:`TRACE_COLUMNS` or a row is
        malformed.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = tuple(next(reader))
        except StopIteration:
            raise SimulationError(f"{path} is empty") from None
        if header != TRACE_COLUMNS:
            raise SimulationError(
                f"{path} has unexpected header {header!r}; "
                f"expected {TRACE_COLUMNS!r}"
            )
        rows = []
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(TRACE_COLUMNS):
                raise SimulationError(
                    f"{path}:{line_no}: expected {len(TRACE_COLUMNS)} fields, "
                    f"got {len(row)}"
                )
            try:
                rows.append([float(v) for v in row])
            except ValueError as exc:
                raise SimulationError(f"{path}:{line_no}: {exc}") from None
    if len(rows) < 2:
        raise SimulationError(f"{path} holds fewer than two samples")
    data = np.asarray(rows, dtype=float)
    kwargs = {
        column: data[:, i].copy() for i, column in enumerate(TRACE_COLUMNS)
    }
    return RadiatorTrace(name=name or path.stem, **kwargs)


def save_cycle(cycle: DriveCycle, path: Union[str, Path]) -> Path:
    """Write a drive cycle to CSV; returns the path written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CYCLE_COLUMNS)
        for t, v in zip(cycle.time_s, cycle.speed_mps):
            writer.writerow((f"{t:.10g}", f"{v:.10g}"))
    return path


def load_cycle(path: Union[str, Path], name: str | None = None) -> DriveCycle:
    """Read a drive cycle from CSV (``time_s,speed_mps`` columns)."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = tuple(next(reader))
        except StopIteration:
            raise SimulationError(f"{path} is empty") from None
        if header != CYCLE_COLUMNS:
            raise SimulationError(
                f"{path} has unexpected header {header!r}; "
                f"expected {CYCLE_COLUMNS!r}"
            )
        times, speeds = [], []
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 2:
                raise SimulationError(
                    f"{path}:{line_no}: expected 2 fields, got {len(row)}"
                )
            try:
                times.append(float(row[0]))
                speeds.append(float(row[1]))
            except ValueError as exc:
                raise SimulationError(f"{path}:{line_no}: {exc}") from None
    return DriveCycle(
        time_s=np.asarray(times),
        speed_mps=np.asarray(speeds),
        name=name or path.stem,
    )
