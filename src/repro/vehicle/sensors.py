"""Instrumentation models.

The paper samples the radiator with TC-K-NPT-U-72 thermocouple probes
and a Recordall industrial flow meter.  These classes model the
relevant imperfections — first-order response lag, zero-mean noise,
quantisation — so the controller operates on *sensed* rather than true
values, as the real system would.

All sensors are deterministic given their seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelParameterError
from repro.units import require_non_negative, require_positive


class _FirstOrderSensor:
    """Shared lag + noise + quantisation machinery."""

    def __init__(
        self,
        tau_s: float,
        noise_std: float,
        quantization: float,
        seed: Optional[int],
    ) -> None:
        require_non_negative(tau_s, "tau_s")
        require_non_negative(noise_std, "noise_std")
        require_non_negative(quantization, "quantization")
        self._tau_s = tau_s
        self._noise_std = noise_std
        self._quantization = quantization
        self._rng = np.random.default_rng(seed)
        self._state: Optional[float] = None

    def reset(self) -> None:
        """Forget the lag state (e.g. on probe re-attachment)."""
        self._state = None

    def sample(self, true_value: float, dt_s: float) -> float:
        """Advance the sensor by ``dt_s`` and return a reading."""
        require_positive(dt_s, "dt_s")
        if not np.isfinite(true_value):
            raise ModelParameterError(f"true_value must be finite, got {true_value!r}")
        if self._state is None or self._tau_s == 0.0:
            self._state = float(true_value)
        else:
            blend = min(dt_s / self._tau_s, 1.0)
            self._state += (float(true_value) - self._state) * blend
        reading = self._state + float(self._rng.normal(0.0, self._noise_std))
        if self._quantization > 0.0:
            reading = round(reading / self._quantization) * self._quantization
        return reading


class Thermocouple(_FirstOrderSensor):
    """K-type thermocouple probe model.

    Defaults follow a sheathed TC-K probe in flowing coolant: ~1.5 s
    response, 0.1 K noise, 0.1 K acquisition quantisation.
    """

    def __init__(
        self,
        tau_s: float = 1.5,
        noise_std_k: float = 0.10,
        quantization_k: float = 0.1,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(tau_s, noise_std_k, quantization_k, seed)


class FlowMeter(_FirstOrderSensor):
    """Positive-displacement flow meter model (kg/s readings).

    Defaults: fast response (0.5 s), 1% of ~0.3 kg/s noise,
    0.002 kg/s register quantisation.
    """

    def __init__(
        self,
        tau_s: float = 0.5,
        noise_std_kg_s: float = 0.003,
        quantization_kg_s: float = 0.002,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(tau_s, noise_std_kg_s, quantization_kg_s, seed)

    def sample(self, true_value: float, dt_s: float) -> float:
        """Sample and clamp to physical (non-negative) flow."""
        return max(super().sample(true_value, dt_s), 1.0e-4)


class ModuleTemperatureScanner:
    """Per-module hot-side temperature acquisition.

    The controller needs the whole temperature distribution each control
    period (Alg. 1 input).  Physically this is either a thermocouple per
    module or, as in the paper, inlet/flow measurements propagated
    through the Eq. (1) model; either way the readings carry small
    independent errors, which this scanner injects.
    """

    def __init__(self, noise_std_k: float = 0.08, seed: Optional[int] = None) -> None:
        require_non_negative(noise_std_k, "noise_std_k")
        self._noise_std_k = noise_std_k
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Rewind the noise stream to its seed.

        The simulator calls this at the start of every run so each
        scheme sees the *same* sensing-noise realisation — a fair
        comparison and bit-reproducible results.
        """
        self._rng = np.random.default_rng(self._seed)

    @property
    def noise_std_k(self) -> float:
        """Per-module reading noise (kelvin, 1 sigma)."""
        return self._noise_std_k

    def scan(self, true_temps_c: np.ndarray) -> np.ndarray:
        """Return one noisy reading of the module temperature vector."""
        temps = np.asarray(true_temps_c, dtype=float)
        if temps.ndim != 1:
            raise ModelParameterError("true_temps_c must be 1-D")
        if self._noise_std_k == 0.0:
            return temps.copy()
        return temps + self._rng.normal(0.0, self._noise_std_k, temps.shape)

    def scan_batch(self, true_temps_c: np.ndarray) -> np.ndarray:
        """Scan a whole ``(T, N)`` matrix of readings in one draw.

        NumPy generators fill arrays from the bit stream in C order, so
        this consumes exactly the same noise realisation as ``T``
        successive :meth:`scan` calls — row ``i`` of the result is
        bit-identical to the ``i``-th sequential scan.  The batch
        engine uses this to hoist sensing out of the control loop.
        """
        temps = np.asarray(true_temps_c, dtype=float)
        if temps.ndim != 2:
            raise ModelParameterError("true_temps_c must be 2-D")
        if self._noise_std_k == 0.0:
            return temps.copy()
        return temps + self._rng.normal(0.0, self._noise_std_k, temps.shape)
