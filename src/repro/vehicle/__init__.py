"""Vehicle substrate: the source of the radiator boundary conditions.

The paper measured coolant inlet/outlet temperature and flow rate on a
Hyundai Porter II pickup during an 800-second drive.  We do not have
that data, so this subpackage synthesises it from first principles
(DESIGN.md section 3):

* :mod:`repro.vehicle.drive_cycle` — seeded synthetic speed profiles
  (urban stop-and-go, highway, mixed).
* :mod:`repro.vehicle.engine` — tractive-power, heat-rejection and
  coolant-loop thermal model with thermostat and fan logic.
* :mod:`repro.vehicle.sensors` — thermocouple and flow-meter models
  (lag, noise, quantisation) standing in for the paper's TC-K probes
  and Recordall meter.
* :mod:`repro.vehicle.trace` — the glue that integrates everything into
  a :class:`~repro.vehicle.trace.RadiatorTrace`, including the canonical
  :func:`~repro.vehicle.trace.porter_ii_trace`.
"""

from repro.vehicle.drive_cycle import (
    DriveCycle,
    synthetic_highway,
    synthetic_mixed,
    synthetic_nedc,
    synthetic_urban,
)
from repro.vehicle.engine import (
    EngineModel,
    EngineParameters,
    EngineTelemetry,
    FanParameters,
    RamAirParameters,
    ThermostatParameters,
)
from repro.vehicle.sensors import FlowMeter, ModuleTemperatureScanner, Thermocouple
from repro.vehicle.trace import (
    DEFAULT_SINK_PREHEAT_FRACTION,
    RadiatorTrace,
    build_trace,
    default_radiator,
    porter_ii_trace,
)
from repro.vehicle.trace_io import load_cycle, load_trace, save_cycle, save_trace

__all__ = [
    "DEFAULT_SINK_PREHEAT_FRACTION",
    "DriveCycle",
    "EngineModel",
    "EngineParameters",
    "EngineTelemetry",
    "FanParameters",
    "FlowMeter",
    "ModuleTemperatureScanner",
    "RadiatorTrace",
    "RamAirParameters",
    "Thermocouple",
    "ThermostatParameters",
    "build_trace",
    "default_radiator",
    "load_cycle",
    "load_trace",
    "porter_ii_trace",
    "save_cycle",
    "save_trace",
    "synthetic_highway",
    "synthetic_mixed",
    "synthetic_nedc",
    "synthetic_urban",
]
