"""Synthetic drive cycles.

A drive cycle is a speed-vs-time profile.  The generators here compose
randomised segments — idle, acceleration ramps, cruises with speed
jitter, decelerations — into deterministic (seeded) cycles whose
statistics resemble urban and highway driving.  ``synthetic_mixed``
is the default stand-in for the paper's 800-second measurement drive:
it interleaves urban and highway stretches so the coolant loop sees
both slow thermostat cycling and sharp load transients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ModelParameterError
from repro.units import require_positive


@dataclass(frozen=True)
class DriveCycle:
    """An immutable speed profile.

    Attributes
    ----------
    time_s:
        Strictly increasing sample times starting at 0.
    speed_mps:
        Vehicle speed at each sample, m/s (never negative).
    name:
        Human-readable label.
    """

    time_s: np.ndarray
    speed_mps: np.ndarray
    name: str = "custom"

    def __post_init__(self) -> None:
        time = np.asarray(self.time_s, dtype=float)
        speed = np.asarray(self.speed_mps, dtype=float)
        if time.ndim != 1 or time.size < 2:
            raise ModelParameterError("time_s must be 1-D with >= 2 samples")
        if speed.shape != time.shape:
            raise ModelParameterError("speed_mps must match time_s in shape")
        if time[0] != 0.0 or np.any(np.diff(time) <= 0.0):
            raise ModelParameterError("time_s must start at 0 and strictly increase")
        if np.any(speed < 0.0) or not np.all(np.isfinite(speed)):
            raise ModelParameterError("speed_mps must be finite and >= 0")
        object.__setattr__(self, "time_s", time)
        object.__setattr__(self, "speed_mps", speed)

    @property
    def duration_s(self) -> float:
        """Cycle duration in seconds."""
        return float(self.time_s[-1])

    def speed_at(self, t_s: float) -> float:
        """Linearly interpolated speed; clamped to the cycle ends."""
        return float(np.interp(t_s, self.time_s, self.speed_mps))

    def acceleration_at(self, t_s: float, dt_s: float = 0.5) -> float:
        """Centred-difference acceleration estimate at time ``t_s``."""
        require_positive(dt_s, "dt_s")
        before = self.speed_at(max(t_s - dt_s / 2.0, 0.0))
        after = self.speed_at(min(t_s + dt_s / 2.0, self.duration_s))
        return (after - before) / dt_s

    def mean_speed_mps(self) -> float:
        """Time-weighted mean speed over the cycle."""
        # np.trapezoid on numpy >= 2, np.trapz before that.
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.speed_mps, self.time_s) / self.duration_s)


def _append_ramp(
    points: List[Tuple[float, float]], duration: float, target: float
) -> None:
    """Append a linear ramp from the last point to ``target``."""
    t0, _ = points[-1]
    points.append((t0 + duration, target))


def _append_cruise(
    points: List[Tuple[float, float]],
    rng: np.random.Generator,
    duration: float,
    speed: float,
    jitter: float,
) -> None:
    """Append a cruise at ``speed`` with small random speed jitter."""
    t0, _ = points[-1]
    t = t0
    while t < t0 + duration:
        step = float(rng.uniform(3.0, 8.0))
        t = min(t + step, t0 + duration)
        wobble = float(rng.normal(0.0, jitter))
        points.append((t, max(speed + wobble, 0.0)))


def _finalise(points: List[Tuple[float, float]], name: str) -> DriveCycle:
    times, speeds = zip(*points)
    return DriveCycle(
        time_s=np.asarray(times), speed_mps=np.asarray(speeds), name=name
    )


def synthetic_urban(duration_s: float = 400.0, seed: int = 0) -> DriveCycle:
    """Stop-and-go city driving: 0-14 m/s with frequent stops."""
    require_positive(duration_s, "duration_s")
    rng = np.random.default_rng(seed)
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    while points[-1][0] < duration_s:
        idle = float(rng.uniform(4.0, 15.0))
        _append_ramp(points, idle, 0.0)
        target = float(rng.uniform(6.0, 14.0))
        _append_ramp(points, target / float(rng.uniform(1.0, 2.0)), target)
        _append_cruise(points, rng, float(rng.uniform(10.0, 35.0)), target, 0.6)
        _append_ramp(points, target / float(rng.uniform(1.5, 3.0)), 0.0)
    return _trim(_finalise(points, "synthetic-urban"), duration_s)


def synthetic_highway(duration_s: float = 400.0, seed: int = 0) -> DriveCycle:
    """Sustained 22-30 m/s cruising with overtakes and one slowdown."""
    require_positive(duration_s, "duration_s")
    rng = np.random.default_rng(seed)
    points: List[Tuple[float, float]] = [(0.0, 18.0)]
    while points[-1][0] < duration_s:
        target = float(rng.uniform(22.0, 30.0))
        _append_ramp(points, abs(target - points[-1][1]) / 1.2 + 2.0, target)
        _append_cruise(points, rng, float(rng.uniform(40.0, 90.0)), target, 0.8)
        if rng.uniform() < 0.3:
            slow = float(rng.uniform(12.0, 18.0))
            _append_ramp(points, 8.0, slow)
            _append_cruise(points, rng, float(rng.uniform(8.0, 20.0)), slow, 0.5)
    return _trim(_finalise(points, "synthetic-highway"), duration_s)


def synthetic_mixed(duration_s: float = 800.0, seed: int = 2018) -> DriveCycle:
    """Urban/highway mix — the stand-in for the paper's measured drive.

    Alternates city blocks and highway stretches so the 800-second
    window contains warm idles, hard pulls and sustained cruises; the
    resulting coolant trace exhibits both the slow drift and the
    "radical fluctuation" episodes the paper's Fig. 5 discussion
    mentions.
    """
    require_positive(duration_s, "duration_s")
    rng = np.random.default_rng(seed)
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    urban_phase = True
    while points[-1][0] < duration_s:
        if urban_phase:
            for _ in range(int(rng.integers(2, 4))):
                idle = float(rng.uniform(5.0, 18.0))
                _append_ramp(points, idle, 0.0)
                target = float(rng.uniform(7.0, 15.0))
                _append_ramp(points, target / float(rng.uniform(1.2, 2.2)), target)
                _append_cruise(
                    points, rng, float(rng.uniform(12.0, 30.0)), target, 0.6
                )
                _append_ramp(points, target / float(rng.uniform(1.5, 3.0)), 0.0)
        else:
            target = float(rng.uniform(22.0, 29.0))
            _append_ramp(points, target / 1.1, target)
            _append_cruise(points, rng, float(rng.uniform(60.0, 120.0)), target, 0.8)
            _append_ramp(points, 10.0, float(rng.uniform(5.0, 10.0)))
        urban_phase = not urban_phase
    return _trim(_finalise(points, "synthetic-mixed"), duration_s)


def _trim(cycle: DriveCycle, duration_s: float) -> DriveCycle:
    """Clip a generated cycle to exactly ``duration_s``."""
    mask = cycle.time_s < duration_s
    times = np.append(cycle.time_s[mask], duration_s)
    speeds = np.append(cycle.speed_mps[mask], cycle.speed_at(duration_s))
    return DriveCycle(time_s=times, speed_mps=speeds, name=cycle.name)


#: One ECE-15 urban element of the NEDC, as (time offset s, speed m/s)
#: breakpoints: idle, three accelerate/cruise/brake humps (15, 32 and
#: 50 km/h), 195 s total.
_ECE15_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (11.0, 0.0), (15.0, 4.17), (23.0, 4.17), (28.0, 0.0),
    (49.0, 0.0), (61.0, 8.89), (85.0, 8.89), (96.0, 0.0),
    (117.0, 0.0), (143.0, 13.89), (155.0, 13.89), (163.0, 9.72),
    (176.0, 9.72), (188.0, 0.0), (195.0, 0.0),
)

#: The extra-urban (EUDC) element: climb through the gears to 120 km/h
#: with two sustained cruises, 400 s total.
_EUDC_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0), (41.0, 19.44), (91.0, 19.44), (111.0, 13.89),
    (180.0, 13.89), (215.0, 27.78), (265.0, 27.78), (285.0, 33.33),
    (295.0, 33.33), (315.0, 0.0), (340.0, 0.0), (400.0, 0.0),
)


def synthetic_nedc(duration_s: float = 1180.0, seed: int = 0) -> DriveCycle:
    """NEDC-style certification profile: 4 x ECE-15 urban + EUDC.

    Unlike the randomised generators above, the backbone is the
    standard's deterministic breakpoint profile (scaled speeds in m/s);
    the seed only adds a small cruise-speed jitter so that repeated
    cycles do not produce a perfectly periodic coolant trace.  Requests
    longer than one 1180 s cycle repeat it; shorter requests truncate.
    """
    require_positive(duration_s, "duration_s")
    rng = np.random.default_rng(seed)
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    while points[-1][0] < duration_s:
        base = points[-1][0]
        for _ in range(4):
            offset = points[-1][0]
            for t, v in _ECE15_POINTS[1:]:
                jitter = float(rng.normal(0.0, 0.15)) if v > 1.0 else 0.0
                points.append((offset + t, max(v + jitter, 0.0)))
        offset = points[-1][0]
        for t, v in _EUDC_POINTS[1:]:
            jitter = float(rng.normal(0.0, 0.25)) if v > 1.0 else 0.0
            points.append((offset + t, max(v + jitter, 0.0)))
        if points[-1][0] <= base:  # pragma: no cover - defensive
            break
    return _trim(_finalise(points, "synthetic-nedc"), duration_s)
