"""Radiator boundary-condition traces.

A :class:`RadiatorTrace` is the time series the paper measured on the
truck: coolant inlet temperature and flow, plus the ambient/air state —
both the *true* values (used by the physics) and the *sensed* values
(used by the controller).  :func:`build_trace` produces one by
integrating the engine model over a drive cycle;
:func:`porter_ii_trace` is the canonical 800-second trace every
experiment defaults to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.thermal.coolant import AIR, ETHYLENE_GLYCOL_50_50
from repro.thermal.heat_exchanger import CrossFlowHeatExchanger, UAModel
from repro.thermal.radiator import Radiator, RadiatorGeometry
from repro.units import require_positive
from repro.vehicle.drive_cycle import DriveCycle, synthetic_mixed
from repro.vehicle.engine import EngineModel
from repro.vehicle.sensors import FlowMeter, Thermocouple

#: Default sink preheat fraction for the calibrated Porter-II scenario;
#: see :class:`repro.thermal.radiator.Radiator` and DESIGN.md section 3.
DEFAULT_SINK_PREHEAT_FRACTION = 0.65


def default_radiator(
    sink_preheat_fraction: float = DEFAULT_SINK_PREHEAT_FRACTION,
) -> Radiator:
    """The calibrated truck radiator used by the canonical scenario.

    Conductances are sized so the core rejects ~25-40 kW at highway
    load with an Eq. (1) decay of ``K L / C_c`` between roughly 1.5 and
    3 across the trace's flow range — the regime in which the module
    temperature spread makes reconfiguration worthwhile.
    """
    geometry = RadiatorGeometry(path_length_m=2.0, n_rows=10)
    ua_model = UAModel(
        hot_conductance_ref_w_k=5000.0,
        cold_conductance_ref_w_k=2200.0,
        hot_ref_flow_kg_s=0.30,
        cold_ref_flow_kg_s=0.70,
        wall_resistance_k_w=1.0e-5,
    )
    return Radiator(
        geometry=geometry,
        exchanger=CrossFlowHeatExchanger(ua_model),
        coolant=ETHYLENE_GLYCOL_50_50,
        air=AIR,
        sink_preheat_fraction=sink_preheat_fraction,
    )


@dataclass(frozen=True)
class RadiatorTrace:
    """Sampled radiator boundary conditions over a drive.

    All arrays share one time axis with a fixed step.  ``*_sensed``
    columns are what the instrumentation reported; the plain columns
    are ground truth.
    """

    time_s: np.ndarray
    coolant_inlet_c: np.ndarray
    coolant_flow_kg_s: np.ndarray
    air_flow_kg_s: np.ndarray
    ambient_c: np.ndarray
    speed_mps: np.ndarray
    coolant_inlet_sensed_c: np.ndarray
    coolant_flow_sensed_kg_s: np.ndarray
    name: str = field(default="trace")

    def __post_init__(self) -> None:
        n = self.time_s.size
        for label in (
            "coolant_inlet_c",
            "coolant_flow_kg_s",
            "air_flow_kg_s",
            "ambient_c",
            "speed_mps",
            "coolant_inlet_sensed_c",
            "coolant_flow_sensed_kg_s",
        ):
            arr = getattr(self, label)
            if arr.shape != (n,):
                raise SimulationError(
                    f"{label} must have shape ({n},), got {arr.shape}"
                )
        if n < 2:
            raise SimulationError("a trace needs at least two samples")

    @property
    def n_samples(self) -> int:
        """Number of time samples."""
        return int(self.time_s.size)

    @property
    def dt_s(self) -> float:
        """Sample period."""
        return float(self.time_s[1] - self.time_s[0])

    @property
    def duration_s(self) -> float:
        """Trace duration."""
        return float(self.time_s[-1])

    def window(self, start_s: float, stop_s: float) -> "RadiatorTrace":
        """A sub-trace covering ``[start_s, stop_s]`` (inclusive)."""
        mask = (self.time_s >= start_s) & (self.time_s <= stop_s)
        if mask.sum() < 2:
            raise SimulationError(
                f"window [{start_s}, {stop_s}] selects fewer than two samples"
            )
        return RadiatorTrace(
            time_s=self.time_s[mask] - self.time_s[mask][0],
            coolant_inlet_c=self.coolant_inlet_c[mask],
            coolant_flow_kg_s=self.coolant_flow_kg_s[mask],
            air_flow_kg_s=self.air_flow_kg_s[mask],
            ambient_c=self.ambient_c[mask],
            speed_mps=self.speed_mps[mask],
            coolant_inlet_sensed_c=self.coolant_inlet_sensed_c[mask],
            coolant_flow_sensed_kg_s=self.coolant_flow_sensed_kg_s[mask],
            name=f"{self.name}[{start_s:g}-{stop_s:g}s]",
        )


def build_trace(
    cycle: DriveCycle,
    engine: EngineModel,
    dt_s: float = 0.5,
    internal_dt_s: float = 0.1,
    sensor_seed: Optional[int] = 7,
    name: Optional[str] = None,
) -> RadiatorTrace:
    """Integrate the engine model over a drive cycle into a trace.

    Parameters
    ----------
    cycle:
        The speed profile.
    engine:
        Engine/coolant-loop model (already bound to its radiator).
    dt_s:
        Output sample period — 0.5 s matches the paper's control period.
    internal_dt_s:
        Euler step of the thermal integration.
    sensor_seed:
        Seed for the thermocouple/flow-meter noise; ``None`` draws an
        unseeded generator (not recommended for experiments).
    name:
        Trace label; defaults to the cycle name.
    """
    require_positive(dt_s, "dt_s")
    require_positive(internal_dt_s, "internal_dt_s")
    if internal_dt_s > dt_s:
        raise SimulationError("internal_dt_s must not exceed dt_s")

    thermocouple = Thermocouple(seed=sensor_seed)
    flow_meter = FlowMeter(seed=None if sensor_seed is None else sensor_seed + 1)

    n_steps = int(round(cycle.duration_s / dt_s)) + 1
    substeps = max(int(round(dt_s / internal_dt_s)), 1)
    sub_dt = dt_s / substeps

    times = np.zeros(n_steps)
    inlet = np.zeros(n_steps)
    flow = np.zeros(n_steps)
    air = np.zeros(n_steps)
    ambient = np.zeros(n_steps)
    speed = np.zeros(n_steps)
    inlet_sensed = np.zeros(n_steps)
    flow_sensed = np.zeros(n_steps)

    ambient_c = 25.0
    telemetry = engine.step(
        sub_dt, cycle.speed_at(0.0), cycle.acceleration_at(0.0), ambient_c
    )
    for i in range(n_steps):
        t = i * dt_s
        if i > 0:
            for k in range(substeps):
                t_sub = (i - 1) * dt_s + (k + 1) * sub_dt
                telemetry = engine.step(
                    sub_dt,
                    cycle.speed_at(t_sub),
                    cycle.acceleration_at(t_sub),
                    ambient_c,
                )
        times[i] = t
        inlet[i] = telemetry.coolant_temp_c
        flow[i] = telemetry.radiator_flow_kg_s
        air[i] = telemetry.air_flow_kg_s
        ambient[i] = ambient_c
        speed[i] = cycle.speed_at(t)
        inlet_sensed[i] = thermocouple.sample(telemetry.coolant_temp_c, dt_s)
        flow_sensed[i] = flow_meter.sample(telemetry.radiator_flow_kg_s, dt_s)

    return RadiatorTrace(
        time_s=times,
        coolant_inlet_c=inlet,
        coolant_flow_kg_s=flow,
        air_flow_kg_s=air,
        ambient_c=ambient,
        speed_mps=speed,
        coolant_inlet_sensed_c=inlet_sensed,
        coolant_flow_sensed_kg_s=flow_sensed,
        name=name or cycle.name,
    )


def porter_ii_trace(
    duration_s: float = 800.0,
    seed: int = 2018,
    radiator: Optional[Radiator] = None,
    dt_s: float = 0.5,
) -> RadiatorTrace:
    """The canonical 800-second trace standing in for the paper's drive.

    Deterministic for a given ``(duration_s, seed)``; every experiment
    and benchmark defaults to this trace.
    """
    radiator = radiator or default_radiator()
    cycle = synthetic_mixed(duration_s=duration_s, seed=seed)
    engine = EngineModel(radiator)
    return build_trace(
        cycle,
        engine,
        dt_s=dt_s,
        sensor_seed=seed + 13,
        name=f"porter-ii-{int(duration_s)}s-seed{seed}",
    )
