"""Engine heat rejection and coolant-loop thermal model.

Converts a drive cycle into the radiator's boundary conditions: the
coolant temperature at the radiator inlet, the coolant mass flow
through the radiator branch, and the air mass flow through the core.

Model structure
---------------
* **Tractive power** from the standard road-load equation
  ``P = (m a + m g C_rr + 0.5 rho C_d A v^2) v`` (braking absorbed by
  the brakes, not the coolant).
* **Heat to coolant**: a base idle term plus a fraction of the fuel
  waste heat, ``Q = q_idle + chi * P_mech * (1 - eta) / eta``.
* **Coolant loop**: single lumped thermal mass ``C_th`` holding the
  engine-out coolant temperature, cooled by the radiator through a
  thermostat-throttled branch flow.
* **Thermostat**: first-order valve tracking a linear opening law
  between ``t_open`` and ``t_full``.
* **Fan**: hysteretic on/off adding a fixed air mass flow; ram air
  grows linearly with speed.

The model integrates with explicit Euler at a small internal step; the
thermostat time constant and thermal mass make the dynamics stiff-free
at ``dt <= 0.25 s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.thermal.radiator import Radiator
from repro.units import require_fraction, require_positive

#: Standard gravity, m/s^2.
GRAVITY = 9.81
#: Air density for the road-load drag term, kg/m^3.
AIR_DENSITY = 1.20


@dataclass(frozen=True)
class EngineParameters:
    """Road-load and thermal parameters of the vehicle powertrain.

    Defaults approximate a laden 3.0 L diesel light truck (the paper's
    Hyundai Porter II class).
    """

    mass_kg: float = 2200.0
    drag_area_m2: float = 2.4
    rolling_resistance: float = 0.012
    driveline_efficiency: float = 0.90
    engine_efficiency: float = 0.38
    coolant_waste_fraction: float = 0.45
    idle_heat_w: float = 3500.0
    thermal_mass_j_per_k: float = 7.5e4
    ambient_loss_w_per_k: float = 12.0
    idle_rpm: float = 800.0
    rpm_per_mps: float = 52.0
    pump_flow_kg_s_per_krpm: float = 0.16

    def __post_init__(self) -> None:
        require_positive(self.mass_kg, "mass_kg")
        require_positive(self.drag_area_m2, "drag_area_m2")
        require_positive(self.rolling_resistance, "rolling_resistance")
        require_fraction(self.driveline_efficiency, "driveline_efficiency")
        require_fraction(self.engine_efficiency, "engine_efficiency")
        require_fraction(self.coolant_waste_fraction, "coolant_waste_fraction")
        require_positive(self.thermal_mass_j_per_k, "thermal_mass_j_per_k")

    def tractive_power_w(self, speed_mps: float, accel_mps2: float) -> float:
        """Road-load power demand at the wheels, clipped at zero."""
        force = (
            self.mass_kg * accel_mps2
            + self.mass_kg * GRAVITY * self.rolling_resistance
            + 0.5 * AIR_DENSITY * self.drag_area_m2 * speed_mps * speed_mps
        )
        return max(force * speed_mps, 0.0)

    def coolant_heat_w(self, speed_mps: float, accel_mps2: float) -> float:
        """Heat deposited into the coolant at a drive state."""
        mech = self.tractive_power_w(speed_mps, accel_mps2) / self.driveline_efficiency
        waste = mech * (1.0 - self.engine_efficiency) / self.engine_efficiency
        return self.idle_heat_w + self.coolant_waste_fraction * waste

    def engine_rpm(self, speed_mps: float) -> float:
        """Crude gearing model mapping vehicle speed to engine speed."""
        return self.idle_rpm + self.rpm_per_mps * speed_mps

    def pump_flow_kg_s(self, speed_mps: float) -> float:
        """Total coolant pump output (before the thermostat split)."""
        return self.pump_flow_kg_s_per_krpm * self.engine_rpm(speed_mps) / 1000.0


@dataclass(frozen=True)
class ThermostatParameters:
    """Linear thermostat with first-order valve dynamics.

    The valve opening tracks ``clip((T - t_open)/(t_full - t_open),
    leak, 1)`` with time constant ``tau_s``; ``leak`` models the bypass
    bleed that keeps some radiator flow even when nominally closed.
    """

    t_open_c: float = 82.0
    t_full_c: float = 92.0
    tau_s: float = 14.0
    leak: float = 0.04

    def __post_init__(self) -> None:
        if self.t_full_c <= self.t_open_c:
            raise ModelParameterError(
                f"t_full_c ({self.t_full_c}) must exceed t_open_c ({self.t_open_c})"
            )
        require_positive(self.tau_s, "tau_s")
        require_fraction(self.leak, "leak")

    def target_opening(self, coolant_temp_c: float) -> float:
        """Steady-state opening fraction at a coolant temperature."""
        span = (coolant_temp_c - self.t_open_c) / (self.t_full_c - self.t_open_c)
        return min(max(span, self.leak), 1.0)


@dataclass(frozen=True)
class FanParameters:
    """Hysteretic radiator fan with first-order spin-up dynamics.

    The fan's air-flow contribution follows its on/off command through
    a ``tau_s`` lag — a real fan takes seconds to spin up or coast
    down, which keeps the radiator boundary conditions free of
    instantaneous steps.
    """

    on_above_c: float = 90.5
    off_below_c: float = 87.5
    air_flow_kg_s: float = 0.50
    tau_s: float = 2.5

    def __post_init__(self) -> None:
        if self.off_below_c >= self.on_above_c:
            raise ModelParameterError("off_below_c must be below on_above_c")
        require_positive(self.air_flow_kg_s, "air_flow_kg_s")
        require_positive(self.tau_s, "tau_s")


@dataclass(frozen=True)
class RamAirParameters:
    """Speed-proportional ram air through the radiator core.

    ``air_flow = floor + slope * speed`` — the floor models natural
    convection and underhood leakage at standstill.
    """

    floor_kg_s: float = 0.10
    slope_kg_s_per_mps: float = 0.040

    def __post_init__(self) -> None:
        require_positive(self.floor_kg_s, "floor_kg_s")
        require_positive(self.slope_kg_s_per_mps, "slope_kg_s_per_mps")

    def flow_kg_s(self, speed_mps: float) -> float:
        """Ram air mass flow at a vehicle speed."""
        return self.floor_kg_s + self.slope_kg_s_per_mps * speed_mps


@dataclass
class EngineTelemetry:
    """State snapshot produced by :meth:`EngineModel.step`.

    Attributes mirror what the paper measures or derives: the radiator
    inlet temperature, the radiator-branch coolant mass flow, and the
    air mass flow (plus diagnostics).
    """

    time_s: float
    coolant_temp_c: float
    radiator_flow_kg_s: float
    air_flow_kg_s: float
    thermostat_opening: float
    fan_on: bool
    heat_in_w: float
    heat_rejected_w: float


class EngineModel:
    """Time-integrated coolant loop driven by a drive cycle.

    Parameters
    ----------
    params, thermostat, fan, ram_air:
        Component parameter sets (all have truck-scale defaults).
    radiator:
        The radiator that rejects the loop's heat; the same object the
        harvesting simulator uses, so the thermal worlds agree.
    start_temp_c:
        Initial coolant temperature; defaults to 88 degC (engine already
        warm, as in the paper's measurement drive).
    """

    def __init__(
        self,
        radiator: Radiator,
        params: EngineParameters | None = None,
        thermostat: ThermostatParameters | None = None,
        fan: FanParameters | None = None,
        ram_air: RamAirParameters | None = None,
        start_temp_c: float = 88.0,
    ) -> None:
        self._radiator = radiator
        self._params = params or EngineParameters()
        self._thermostat = thermostat or ThermostatParameters()
        self._fan = fan or FanParameters()
        self._ram_air = ram_air or RamAirParameters()
        self._coolant_temp_c = float(start_temp_c)
        self._opening = self._thermostat.target_opening(start_temp_c)
        self._fan_on = False
        self._fan_flow_kg_s = 0.0
        self._time_s = 0.0

    @property
    def coolant_temp_c(self) -> float:
        """Current engine-out coolant temperature."""
        return self._coolant_temp_c

    @property
    def params(self) -> EngineParameters:
        """Road-load/thermal parameter set."""
        return self._params

    def step(
        self,
        dt_s: float,
        speed_mps: float,
        accel_mps2: float,
        ambient_c: float,
        n_probe_modules: int = 2,
    ) -> EngineTelemetry:
        """Advance the loop by ``dt_s`` and return the new telemetry.

        ``n_probe_modules`` sizes the radiator solve used for heat
        rejection; the duty is independent of module count, so a tiny
        probe keeps the engine integration cheap.
        """
        require_positive(dt_s, "dt_s")
        params = self._params

        # Fan hysteresis with first-order spin-up/coast-down.
        if self._coolant_temp_c > self._fan.on_above_c:
            self._fan_on = True
        elif self._coolant_temp_c < self._fan.off_below_c:
            self._fan_on = False
        fan_target = self._fan.air_flow_kg_s if self._fan_on else 0.0
        fan_blend = min(dt_s / self._fan.tau_s, 1.0)
        self._fan_flow_kg_s += (fan_target - self._fan_flow_kg_s) * fan_blend
        air_flow = self._ram_air.flow_kg_s(speed_mps) + self._fan_flow_kg_s

        # First-order thermostat valve.
        target = self._thermostat.target_opening(self._coolant_temp_c)
        blend = min(dt_s / self._thermostat.tau_s, 1.0)
        self._opening += (target - self._opening) * blend
        radiator_flow = max(
            self._opening * params.pump_flow_kg_s(speed_mps), 1.0e-3
        )

        # Heat balance.
        heat_in = params.coolant_heat_w(speed_mps, accel_mps2)
        if self._coolant_temp_c > ambient_c + 0.5:
            op = self._radiator.operating_point(
                coolant_inlet_c=self._coolant_temp_c,
                coolant_flow_kg_s=radiator_flow,
                ambient_c=ambient_c,
                air_flow_kg_s=air_flow,
                n_modules=max(n_probe_modules, 1),
            )
            rejected = op.solution.duty_w
        else:
            rejected = 0.0
        ambient_loss = params.ambient_loss_w_per_k * (
            self._coolant_temp_c - ambient_c
        )
        dT = (heat_in - rejected - ambient_loss) * dt_s / params.thermal_mass_j_per_k
        self._coolant_temp_c += dT
        self._time_s += dt_s

        return EngineTelemetry(
            time_s=self._time_s,
            coolant_temp_c=self._coolant_temp_c,
            radiator_flow_kg_s=radiator_flow,
            air_flow_kg_s=air_flow,
            thermostat_opening=self._opening,
            fan_on=self._fan_on,
            heat_in_w=heat_in,
            heat_rejected_w=rejected,
        )
