"""Finite thermal-coupling wrapper (arXiv 1108.6164 regime).

The radiator (and every other ideal-coupling boundary) hands the TEG
the full reservoir temperature difference: module faces sit *at* the
hot-surface and heatsink temperatures.  Real modules are clamped
through finite contact conductances, and under operation the module
itself carries heat convectively (the Peltier back-flow term), so the
working ``delta_t`` across the couples is a — temperature dependent —
fraction of the reservoir difference.  Apertet et al. show this moves
the optimal electrical operating point away from the ideal
``R_load = R_int`` matching, which makes it a genuinely different
decision regime for INOR/DNOR reconfiguration.

:class:`FiniteCouplingBoundary` is a *wrapper*: it composes any inner
:class:`~repro.thermal.boundary.ThermalBoundary` (the reservoir model)
with a hot-contact → module → cold-contact series conductance divider
applied per module position, per sample.  The module's effective
thermal conductance grows with its mean absolute temperature
(``K_eff = K_module * (1 + peltier_zt_per_k * T_mean_K)``), so hotter
modules lose proportionally more of the reservoir difference across
the contacts — a non-uniform squeeze an ideal-coupling model cannot
produce, and the source of the MPP/partition shift the pinned tests
measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError
from repro.thermal.boundary import (
    BoundaryTraceSolution,
    ThermalBoundary,
    boundary_from_json_dict,
    boundary_to_json_dict,
    register_boundary,
)
from repro.units import require_positive


@dataclass(frozen=True)
class FiniteCouplingBoundary(ThermalBoundary):
    """Contact-conductance divider around any inner boundary.

    Parameters
    ----------
    inner:
        The reservoir model whose surface/sink fields are being
        divided (any registered boundary — including another wrapper).
    hot_contact_w_k:
        Contact conductance between the hot reservoir surface and the
        module hot face, per module.
    cold_contact_w_k:
        Contact conductance between the module cold face and the
        heatsink, per module.
    module_conductance_w_k:
        Open-circuit through-module conductance.
    peltier_zt_per_k:
        Temperature coefficient of the operating module's effective
        conductance (the convective Peltier share, ~ZT/2 per kelvin of
        mean absolute temperature).  ``0.0`` gives a fixed divider.
    """

    inner: ThermalBoundary
    hot_contact_w_k: float = 5.0
    cold_contact_w_k: float = 8.0
    module_conductance_w_k: float = 1.5
    peltier_zt_per_k: float = 6.0e-4

    boundary_type = "finite-coupling"

    def __post_init__(self) -> None:
        if not isinstance(self.inner, ThermalBoundary):
            raise ModelParameterError(
                f"inner must be a ThermalBoundary, got {type(self.inner)!r}"
            )
        require_positive(self.hot_contact_w_k, "hot_contact_w_k")
        require_positive(self.cold_contact_w_k, "cold_contact_w_k")
        require_positive(self.module_conductance_w_k, "module_conductance_w_k")
        if self.peltier_zt_per_k < 0.0:
            raise ModelParameterError(
                f"peltier_zt_per_k must be >= 0, got {self.peltier_zt_per_k}"
            )

    # ------------------------------------------------------------------
    # ThermalBoundary serialisation contract
    # ------------------------------------------------------------------
    def params_dict(self):
        return {
            "inner": boundary_to_json_dict(self.inner),
            "hot_contact_w_k": float(self.hot_contact_w_k),
            "cold_contact_w_k": float(self.cold_contact_w_k),
            "module_conductance_w_k": float(self.module_conductance_w_k),
            "peltier_zt_per_k": float(self.peltier_zt_per_k),
        }

    @classmethod
    def from_params_dict(cls, params) -> "FiniteCouplingBoundary":
        return cls(
            inner=boundary_from_json_dict(params["inner"]),
            hot_contact_w_k=float(params["hot_contact_w_k"]),
            cold_contact_w_k=float(params["cold_contact_w_k"]),
            module_conductance_w_k=float(params["module_conductance_w_k"]),
            peltier_zt_per_k=float(params["peltier_zt_per_k"]),
        )

    # ------------------------------------------------------------------
    # The thermal contract
    # ------------------------------------------------------------------
    def solve_trace(
        self,
        hot_inlet_c: np.ndarray,
        hot_flow_kg_s: np.ndarray,
        ambient_c: np.ndarray,
        cold_flow_kg_s: np.ndarray,
        n_modules: int,
    ) -> BoundaryTraceSolution:
        """Inner reservoir solve, then the contact-conductance divider.

        Elementwise per (sample, module) on top of the inner solution,
        so the wrapper preserves the inner boundary's row-wise parity
        contract.
        """
        sol = self.inner.solve_trace(
            hot_inlet_c, hot_flow_kg_s, ambient_c, cold_flow_kg_s, n_modules
        )
        dt_reservoir = sol.delta_t_k
        t_mean_k = 0.5 * (sol.surface_temps_c + sol.sink_temps_c) + 273.15
        k_module = self.module_conductance_w_k * (
            1.0 + self.peltier_zt_per_k * t_mean_k
        )
        k_total = 1.0 / (
            1.0 / self.hot_contact_w_k
            + 1.0 / k_module
            + 1.0 / self.cold_contact_w_k
        )
        q = k_total * dt_reservoir
        surface = sol.surface_temps_c - q / self.hot_contact_w_k
        sink = sol.sink_temps_c + q / self.cold_contact_w_k
        return BoundaryTraceSolution(
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=sol.ambient_c,
            active=sol.active,
        )


register_boundary(FiniteCouplingBoundary)
