"""The S-shaped 1-D radiator with TEG modules on its surface (Fig. 2).

The paper reduces the 2-D radiator to a 1-D coolant path (an actual
radiator is a parallel bank of such paths) and places ``N`` TEG modules
along it.  The surface temperature at distance ``d`` from the coolant
entrance follows Eq. (1):

.. math::

    T(d) = (T_{h,i} - T_{c,a}) e^{-\\frac{K}{C_c} d} + T_{c,a}

with ``T_h,i`` the coolant inlet temperature, ``T_c,a`` the arithmetic
mean of the air inlet/outlet temperatures, ``K`` the overall heat
transfer coefficient per unit path length and ``C_c`` the cold-stream
capacity rate.  ``T_c,a`` and ``K`` come from the effectiveness-NTU
solution of :mod:`repro.thermal.heat_exchanger`.

Cold-side model
---------------
The paper assumes the module heatsinks sit at ambient temperature.
:class:`Radiator` implements that assumption by default and adds an
optional *sink preheat gradient*: heatsinks further along the path
breathe air already warmed by the upstream core, so their temperature
rises linearly toward a fraction of the total air temperature rise.
This is the lever the default scenario uses to reproduce the module
temperature spread implied by the paper's baseline-vs-reconfiguration
gap; setting ``sink_preheat_fraction=0`` recovers the paper's stated
assumption exactly.  See DESIGN.md section 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError
from repro.thermal.coolant import FluidProperties, FluidStream
from repro.thermal.heat_exchanger import CrossFlowHeatExchanger, HeatExchangerSolution
from repro.units import require_fraction, require_positive


def surface_temperature_profile(
    coolant_inlet_c: float,
    cold_mean_c: float,
    decay_per_m: float,
    distances_m: np.ndarray,
) -> np.ndarray:
    """Evaluate the paper's Eq. (1) at the given path distances.

    Parameters
    ----------
    coolant_inlet_c:
        ``T_h,i`` — coolant temperature at the radiator entrance.
    cold_mean_c:
        ``T_c,a`` — arithmetic mean of air inlet/outlet temperatures.
    decay_per_m:
        ``K / C_c`` — spatial decay constant along the path, 1/m.
    distances_m:
        Distances from the entrance, metres.
    """
    if decay_per_m < 0.0:
        raise ModelParameterError(f"decay_per_m must be >= 0, got {decay_per_m}")
    d = np.asarray(distances_m, dtype=float)
    return (coolant_inlet_c - cold_mean_c) * np.exp(-decay_per_m * d) + cold_mean_c


@dataclass(frozen=True)
class RadiatorGeometry:
    """Geometry of the S-shaped radiator path and module placement.

    Parameters
    ----------
    path_length_m:
        Total coolant path length following the S shape.
    n_rows:
        Number of straight rows forming the S (documentation only; the
        1-D model depends on path length alone).
    """

    path_length_m: float
    n_rows: int = 10

    def __post_init__(self) -> None:
        require_positive(self.path_length_m, "path_length_m")
        if self.n_rows < 1:
            raise ModelParameterError(f"n_rows must be >= 1, got {self.n_rows}")

    def module_positions(self, n_modules: int) -> np.ndarray:
        """Centre positions of ``n_modules`` equally pitched modules.

        Module ``i`` (0-based) sits at ``(i + 0.5) * L / N`` from the
        coolant entrance, following the S-path.
        """
        if n_modules < 1:
            raise ModelParameterError(f"n_modules must be >= 1, got {n_modules}")
        pitch = self.path_length_m / n_modules
        return (np.arange(n_modules) + 0.5) * pitch


@dataclass(frozen=True)
class RadiatorOperatingPoint:
    """Solved thermal state of the radiator at one time instant.

    Attributes
    ----------
    solution:
        The effectiveness-NTU solution of the core.
    decay_per_m:
        Eq. (1) decay constant ``K / C_c``.
    surface_temps_c:
        Hot-side surface temperature at each module position.
    sink_temps_c:
        Cold-side (heatsink) temperature at each module position.
    delta_t_k:
        Per-module temperature differences driving the TEGs.
    ambient_c:
        Ambient temperature used for the sink model.
    """

    solution: HeatExchangerSolution
    decay_per_m: float
    surface_temps_c: np.ndarray
    sink_temps_c: np.ndarray
    delta_t_k: np.ndarray
    ambient_c: float

    @property
    def coolant_outlet_c(self) -> float:
        """Coolant temperature leaving the radiator."""
        return self.solution.hot_outlet_c


class Radiator:
    """Finned-tube radiator with a TEG array along its coolant path.

    Parameters
    ----------
    geometry:
        Path geometry and module placement.
    exchanger:
        The cross-flow core model.
    coolant, air:
        Property sets of the two streams.
    sink_preheat_fraction:
        Fraction of the total air temperature rise that the *last*
        module's heatsink sees; intermediate modules interpolate
        linearly.  ``0.0`` reproduces the paper's heatsink-at-ambient
        assumption.
    """

    def __init__(
        self,
        geometry: RadiatorGeometry,
        exchanger: CrossFlowHeatExchanger,
        coolant: FluidProperties,
        air: FluidProperties,
        sink_preheat_fraction: float = 0.0,
    ) -> None:
        self._geometry = geometry
        self._exchanger = exchanger
        self._coolant = coolant
        self._air = air
        self._sink_preheat_fraction = require_fraction(
            sink_preheat_fraction, "sink_preheat_fraction"
        )

    @property
    def geometry(self) -> RadiatorGeometry:
        """Radiator geometry."""
        return self._geometry

    @property
    def exchanger(self) -> CrossFlowHeatExchanger:
        """The cross-flow core model."""
        return self._exchanger

    @property
    def coolant(self) -> FluidProperties:
        """Coolant property set."""
        return self._coolant

    @property
    def air(self) -> FluidProperties:
        """Air property set."""
        return self._air

    @property
    def sink_preheat_fraction(self) -> float:
        """Configured sink preheat fraction."""
        return self._sink_preheat_fraction

    def operating_point(
        self,
        coolant_inlet_c: float,
        coolant_flow_kg_s: float,
        ambient_c: float,
        air_flow_kg_s: float,
        n_modules: int,
    ) -> RadiatorOperatingPoint:
        """Solve the radiator state and per-module temperatures.

        Parameters
        ----------
        coolant_inlet_c:
            Coolant temperature entering the radiator (``T_h,i``).
        coolant_flow_kg_s:
            Coolant mass flow.
        ambient_c:
            Ambient air temperature (= air inlet, and the heatsink
            reference).
        air_flow_kg_s:
            Air mass flow through the core.
        n_modules:
            Number of TEG modules along the path.

        Notes
        -----
        A cold start can present coolant at or below ambient; the
        exchanger model only covers heat rejection, so that regime is
        returned as a degenerate zero-duty operating point (flat
        profile at the coolant temperature, zero-to-negative module
        dT) instead of an error — the array then simply produces
        nothing until the engine warms past ambient.
        """
        if coolant_inlet_c <= ambient_c + 0.05:
            return self._inactive_operating_point(
                coolant_inlet_c, coolant_flow_kg_s, ambient_c, air_flow_kg_s,
                n_modules,
            )
        hot = FluidStream(self._coolant, coolant_flow_kg_s, coolant_inlet_c)
        cold = FluidStream(self._air, air_flow_kg_s, ambient_c)
        solution = self._exchanger.solve(hot, cold)

        # Eq. (1): K is the overall coefficient per unit path length,
        # C_c the cold-stream capacity rate.
        decay_per_m = solution.ua_w_k / (
            self._geometry.path_length_m * solution.cold_capacity_w_k
        )
        positions = self._geometry.module_positions(n_modules)
        surface = surface_temperature_profile(
            coolant_inlet_c, solution.cold_mean_c, decay_per_m, positions
        )

        air_rise_k = solution.cold_outlet_c - ambient_c
        sink = ambient_c + (
            self._sink_preheat_fraction
            * air_rise_k
            * positions
            / self._geometry.path_length_m
        )
        return RadiatorOperatingPoint(
            solution=solution,
            decay_per_m=decay_per_m,
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=float(ambient_c),
        )

    def _inactive_operating_point(
        self,
        coolant_inlet_c: float,
        coolant_flow_kg_s: float,
        ambient_c: float,
        air_flow_kg_s: float,
        n_modules: int,
    ) -> RadiatorOperatingPoint:
        """Zero-duty state for coolant at/below ambient (cold start)."""
        c_hot = self._coolant.capacity_rate(coolant_flow_kg_s)
        c_cold = self._air.capacity_rate(air_flow_kg_s)
        ua = self._exchanger.ua_model.ua(coolant_flow_kg_s, air_flow_kg_s)
        solution = HeatExchangerSolution(
            duty_w=0.0,
            effectiveness=0.0,
            ntu=ua / min(c_hot, c_cold),
            ua_w_k=ua,
            hot_outlet_c=float(coolant_inlet_c),
            cold_outlet_c=float(ambient_c),
            hot_capacity_w_k=c_hot,
            cold_capacity_w_k=c_cold,
        )
        surface = np.full(n_modules, float(coolant_inlet_c))
        sink = np.full(n_modules, float(ambient_c))
        return RadiatorOperatingPoint(
            solution=solution,
            decay_per_m=0.0,
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=float(ambient_c),
        )
