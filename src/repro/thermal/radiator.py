"""The S-shaped 1-D radiator with TEG modules on its surface (Fig. 2).

The paper reduces the 2-D radiator to a 1-D coolant path (an actual
radiator is a parallel bank of such paths) and places ``N`` TEG modules
along it.  The surface temperature at distance ``d`` from the coolant
entrance follows Eq. (1):

.. math::

    T(d) = (T_{h,i} - T_{c,a}) e^{-\\frac{K}{C_c} d} + T_{c,a}

with ``T_h,i`` the coolant inlet temperature, ``T_c,a`` the arithmetic
mean of the air inlet/outlet temperatures, ``K`` the overall heat
transfer coefficient per unit path length and ``C_c`` the cold-stream
capacity rate.  ``T_c,a`` and ``K`` come from the effectiveness-NTU
solution of :mod:`repro.thermal.heat_exchanger`.

Cold-side model
---------------
The paper assumes the module heatsinks sit at ambient temperature.
:class:`Radiator` implements that assumption by default and adds an
optional *sink preheat gradient*: heatsinks further along the path
breathe air already warmed by the upstream core, so their temperature
rises linearly toward a fraction of the total air temperature rise.
This is the lever the default scenario uses to reproduce the module
temperature spread implied by the paper's baseline-vs-reconfiguration
gap; setting ``sink_preheat_fraction=0`` recovers the paper's stated
assumption exactly.  See DESIGN.md section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.errors import ModelParameterError
from repro.thermal.boundary import (
    BoundaryOperatingPoint,
    BoundaryTraceSolution,
    ThermalBoundary,
    register_boundary,
)
from repro.thermal.coolant import FluidProperties, FluidStream
from repro.thermal.heat_exchanger import (
    CrossFlowHeatExchanger,
    HeatExchangerSolution,
    HeatExchangerTraceSolution,
    UAModel,
)
from repro.units import require_fraction, require_positive

#: UAModel parameters serialised by value into the boundary params dict.
_UA_FIELDS = (
    "hot_conductance_ref_w_k",
    "cold_conductance_ref_w_k",
    "hot_ref_flow_kg_s",
    "cold_ref_flow_kg_s",
    "wall_resistance_k_w",
    "hot_flow_exponent",
    "cold_flow_exponent",
)

#: FluidProperties parameters serialised by value.
_FLUID_FIELDS = (
    "name",
    "density_kg_m3",
    "specific_heat_j_kg_k",
    "thermal_conductivity_w_m_k",
    "kinematic_viscosity_m2_s",
)


def fluid_to_dict(fluid: FluidProperties) -> Dict[str, object]:
    """JSON-safe dictionary of one fluid property set."""
    return {
        name: (fluid.name if name == "name" else float(getattr(fluid, name)))
        for name in _FLUID_FIELDS
    }


def surface_temperature_profile(
    coolant_inlet_c: float,
    cold_mean_c: float,
    decay_per_m: float,
    distances_m: np.ndarray,
) -> np.ndarray:
    """Evaluate the paper's Eq. (1) at the given path distances.

    Parameters
    ----------
    coolant_inlet_c:
        ``T_h,i`` — coolant temperature at the radiator entrance.
    cold_mean_c:
        ``T_c,a`` — arithmetic mean of air inlet/outlet temperatures.
    decay_per_m:
        ``K / C_c`` — spatial decay constant along the path, 1/m.
    distances_m:
        Distances from the entrance, metres.
    """
    if decay_per_m < 0.0:
        raise ModelParameterError(f"decay_per_m must be >= 0, got {decay_per_m}")
    d = np.asarray(distances_m, dtype=float)
    return (coolant_inlet_c - cold_mean_c) * np.exp(-decay_per_m * d) + cold_mean_c


@dataclass(frozen=True)
class RadiatorGeometry:
    """Geometry of the S-shaped radiator path and module placement.

    Parameters
    ----------
    path_length_m:
        Total coolant path length following the S shape.
    n_rows:
        Number of straight rows forming the S (documentation only; the
        1-D model depends on path length alone).
    """

    path_length_m: float
    n_rows: int = 10

    def __post_init__(self) -> None:
        require_positive(self.path_length_m, "path_length_m")
        if self.n_rows < 1:
            raise ModelParameterError(f"n_rows must be >= 1, got {self.n_rows}")

    def module_positions(self, n_modules: int) -> np.ndarray:
        """Centre positions of ``n_modules`` equally pitched modules.

        Module ``i`` (0-based) sits at ``(i + 0.5) * L / N`` from the
        coolant entrance, following the S-path.
        """
        if n_modules < 1:
            raise ModelParameterError(f"n_modules must be >= 1, got {n_modules}")
        pitch = self.path_length_m / n_modules
        return (np.arange(n_modules) + 0.5) * pitch


@dataclass(frozen=True)
class RadiatorOperatingPoint(BoundaryOperatingPoint):
    """Solved thermal state of the radiator at one time instant.

    Extends the protocol-level :class:`BoundaryOperatingPoint` (module
    surface/sink/delta-T fields plus ambient) with the radiator's own
    effectiveness-NTU solution and Eq. (1) decay constant.

    Attributes
    ----------
    solution:
        The effectiveness-NTU solution of the core.
    decay_per_m:
        Eq. (1) decay constant ``K / C_c``.
    """

    solution: HeatExchangerSolution
    decay_per_m: float

    @property
    def coolant_outlet_c(self) -> float:
        """Coolant temperature leaving the radiator."""
        return self.solution.hot_outlet_c


@dataclass(frozen=True)
class RadiatorTraceSolution(BoundaryTraceSolution):
    """Vectorised radiator state over a whole boundary-condition trace.

    Row ``i`` of every array is exactly the operating point a scalar
    :meth:`Radiator.operating_point` call at sample ``i`` would produce
    — including the degenerate zero-duty state for cold-start samples
    whose coolant sits at or below ambient (``active[i] == False``).

    Extends the protocol-level :class:`BoundaryTraceSolution` columns
    with the radiator's own state:

    Attributes
    ----------
    exchanger:
        Effectiveness-NTU solution columns (degenerate rows hold the
        zero-duty solution).
    decay_per_m:
        Eq. (1) decay constant per sample (0 for inactive samples).
    """

    exchanger: HeatExchangerTraceSolution
    decay_per_m: np.ndarray

    def operating_point(self, i: int) -> RadiatorOperatingPoint:
        """Scalar :class:`RadiatorOperatingPoint` view of sample ``i``."""
        return RadiatorOperatingPoint(
            solution=self.exchanger.sample(i),
            decay_per_m=float(self.decay_per_m[i]),
            surface_temps_c=self.surface_temps_c[i].copy(),
            sink_temps_c=self.sink_temps_c[i].copy(),
            delta_t_k=self.delta_t_k[i].copy(),
            ambient_c=float(self.ambient_c[i]),
        )

    # ------------------------------------------------------------------
    # Flat-array round trip: exchanger columns travel as ``x_<name>``
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {
            "surface_temps_c": self.surface_temps_c,
            "sink_temps_c": self.sink_temps_c,
            "delta_t_k": self.delta_t_k,
            "ambient_c": self.ambient_c,
            "active": self.active,
            "decay_per_m": self.decay_per_m,
        }
        for f in fields(HeatExchangerTraceSolution):
            arrays[f"x_{f.name}"] = getattr(self.exchanger, f.name)
        return arrays

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]):
        return cls(
            exchanger=HeatExchangerTraceSolution(
                **{
                    f.name: arrays[f"x_{f.name}"]
                    for f in fields(HeatExchangerTraceSolution)
                }
            ),
            decay_per_m=arrays["decay_per_m"],
            surface_temps_c=arrays["surface_temps_c"],
            sink_temps_c=arrays["sink_temps_c"],
            delta_t_k=arrays["delta_t_k"],
            ambient_c=arrays["ambient_c"],
            active=arrays["active"],
        )

    @classmethod
    def concat(cls, parts: Sequence["RadiatorTraceSolution"]):
        return cls(
            exchanger=HeatExchangerTraceSolution(
                **{
                    f.name: np.concatenate(
                        [getattr(p.exchanger, f.name) for p in parts]
                    )
                    for f in fields(HeatExchangerTraceSolution)
                }
            ),
            decay_per_m=np.concatenate([p.decay_per_m for p in parts]),
            surface_temps_c=np.concatenate([p.surface_temps_c for p in parts]),
            sink_temps_c=np.concatenate([p.sink_temps_c for p in parts]),
            delta_t_k=np.concatenate([p.delta_t_k for p in parts]),
            ambient_c=np.concatenate([p.ambient_c for p in parts]),
            active=np.concatenate([p.active for p in parts]),
        )


class Radiator(ThermalBoundary):
    """Finned-tube radiator with a TEG array along its coolant path.

    The original — and first registered — thermal boundary
    (``boundary_type == "radiator"``): the protocol's generic hot
    stream is the coolant loop and the cold stream is the air through
    the core.

    Parameters
    ----------
    geometry:
        Path geometry and module placement.
    exchanger:
        The cross-flow core model.
    coolant, air:
        Property sets of the two streams.
    sink_preheat_fraction:
        Fraction of the total air temperature rise that the *last*
        module's heatsink sees; intermediate modules interpolate
        linearly.  ``0.0`` reproduces the paper's heatsink-at-ambient
        assumption.
    """

    boundary_type = "radiator"

    def __init__(
        self,
        geometry: RadiatorGeometry,
        exchanger: CrossFlowHeatExchanger,
        coolant: FluidProperties,
        air: FluidProperties,
        sink_preheat_fraction: float = 0.0,
    ) -> None:
        self._geometry = geometry
        self._exchanger = exchanger
        self._coolant = coolant
        self._air = air
        self._sink_preheat_fraction = require_fraction(
            sink_preheat_fraction, "sink_preheat_fraction"
        )

    @property
    def geometry(self) -> RadiatorGeometry:
        """Radiator geometry."""
        return self._geometry

    @property
    def exchanger(self) -> CrossFlowHeatExchanger:
        """The cross-flow core model."""
        return self._exchanger

    @property
    def coolant(self) -> FluidProperties:
        """Coolant property set."""
        return self._coolant

    @property
    def air(self) -> FluidProperties:
        """Air property set."""
        return self._air

    @property
    def sink_preheat_fraction(self) -> float:
        """Configured sink preheat fraction."""
        return self._sink_preheat_fraction

    # ------------------------------------------------------------------
    # ThermalBoundary serialisation contract
    # ------------------------------------------------------------------
    def params_dict(self) -> Dict[str, object]:
        """Every radiator parameter by value, JSON-safe.

        The layout is byte-for-byte the legacy top-level ``"radiator"``
        sub-dict of pre-versioned scenario JSON, so the compat loader
        is simply ``Radiator.from_params_dict(legacy["radiator"])``.
        """
        ua = self._exchanger.ua_model
        return {
            "geometry": {
                "path_length_m": float(self._geometry.path_length_m),
                "n_rows": int(self._geometry.n_rows),
            },
            "ua_model": {
                name: float(getattr(ua, name)) for name in _UA_FIELDS
            },
            "both_unmixed": bool(self._exchanger.both_unmixed),
            "coolant": fluid_to_dict(self._coolant),
            "air": fluid_to_dict(self._air),
            "sink_preheat_fraction": float(self._sink_preheat_fraction),
        }

    @classmethod
    def from_params_dict(cls, params: Dict[str, object]) -> "Radiator":
        """Rebuild a radiator from :meth:`params_dict` output."""
        return cls(
            geometry=RadiatorGeometry(**params["geometry"]),
            exchanger=CrossFlowHeatExchanger(
                UAModel(**params["ua_model"]),
                both_unmixed=bool(params["both_unmixed"]),
            ),
            coolant=FluidProperties(**params["coolant"]),
            air=FluidProperties(**params["air"]),
            sink_preheat_fraction=float(params["sink_preheat_fraction"]),
        )

    @classmethod
    def solution_from_arrays(
        cls, arrays: Mapping[str, np.ndarray]
    ) -> RadiatorTraceSolution:
        return RadiatorTraceSolution.from_arrays(arrays)

    def operating_point(
        self,
        coolant_inlet_c: float,
        coolant_flow_kg_s: float,
        ambient_c: float,
        air_flow_kg_s: float,
        n_modules: int,
    ) -> RadiatorOperatingPoint:
        """Solve the radiator state and per-module temperatures.

        Parameters
        ----------
        coolant_inlet_c:
            Coolant temperature entering the radiator (``T_h,i``).
        coolant_flow_kg_s:
            Coolant mass flow.
        ambient_c:
            Ambient air temperature (= air inlet, and the heatsink
            reference).
        air_flow_kg_s:
            Air mass flow through the core.
        n_modules:
            Number of TEG modules along the path.

        Notes
        -----
        A cold start can present coolant at or below ambient; the
        exchanger model only covers heat rejection, so that regime is
        returned as a degenerate zero-duty operating point (flat
        profile at the coolant temperature, zero-to-negative module
        dT) instead of an error — the array then simply produces
        nothing until the engine warms past ambient.
        """
        if coolant_inlet_c <= ambient_c + 0.05:
            return self._inactive_operating_point(
                coolant_inlet_c, coolant_flow_kg_s, ambient_c, air_flow_kg_s,
                n_modules,
            )
        hot = FluidStream(self._coolant, coolant_flow_kg_s, coolant_inlet_c)
        cold = FluidStream(self._air, air_flow_kg_s, ambient_c)
        solution = self._exchanger.solve(hot, cold)

        # Eq. (1): K is the overall coefficient per unit path length,
        # C_c the cold-stream capacity rate.
        decay_per_m = solution.ua_w_k / (
            self._geometry.path_length_m * solution.cold_capacity_w_k
        )
        positions = self._geometry.module_positions(n_modules)
        surface = surface_temperature_profile(
            coolant_inlet_c, solution.cold_mean_c, decay_per_m, positions
        )

        air_rise_k = solution.cold_outlet_c - ambient_c
        sink = ambient_c + (
            self._sink_preheat_fraction
            * air_rise_k
            * positions
            / self._geometry.path_length_m
        )
        return RadiatorOperatingPoint(
            solution=solution,
            decay_per_m=decay_per_m,
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=float(ambient_c),
        )

    def solve_trace(
        self,
        coolant_inlet_c: np.ndarray,
        coolant_flow_kg_s: np.ndarray,
        ambient_c: np.ndarray,
        air_flow_kg_s: np.ndarray,
        n_modules: int,
    ) -> RadiatorTraceSolution:
        """Solve every sample of a boundary-condition trace in one pass.

        This is the vectorised counterpart of :meth:`operating_point`:
        instead of re-solving the exchanger sample by sample, the whole
        effectiveness-NTU chain and the Eq. (1) surface profile are
        evaluated as array algebra over the trace.  Cold-start samples
        (coolant at or below ambient) are masked out and filled with the
        same degenerate zero-duty state the scalar path returns.

        Parameters
        ----------
        coolant_inlet_c, coolant_flow_kg_s, ambient_c, air_flow_kg_s:
            Matching 1-D boundary-condition columns (one row per trace
            sample).
        n_modules:
            Number of TEG modules along the path.
        """
        inlet = np.asarray(coolant_inlet_c, dtype=float)
        flow = np.asarray(coolant_flow_kg_s, dtype=float)
        ambient = np.asarray(ambient_c, dtype=float)
        air_flow = np.asarray(air_flow_kg_s, dtype=float)
        for label, arr in (
            ("coolant_flow_kg_s", flow),
            ("ambient_c", ambient),
            ("air_flow_kg_s", air_flow),
        ):
            if arr.shape != inlet.shape or inlet.ndim != 1:
                raise ModelParameterError(
                    f"{label} must match coolant_inlet_c in shape, got "
                    f"{arr.shape} vs {inlet.shape}"
                )
        n = inlet.size
        positions = self._geometry.module_positions(n_modules)
        length = self._geometry.path_length_m

        active = inlet > ambient + 0.05
        all_active = bool(active.all())

        if all_active:
            # Fast path (the usual warm-engine trace): no degenerate
            # rows, so skip the mask scatter/gather entirely.
            sol = self._exchanger.solve_batch(
                inlet,
                flow,
                ambient,
                air_flow,
                self._coolant.specific_heat_j_kg_k,
                self._air.specific_heat_j_kg_k,
            )
            decay, surface, sink = self._profile_fields(
                sol, inlet, ambient, positions
            )
            return RadiatorTraceSolution(
                exchanger=sol,
                decay_per_m=decay,
                surface_temps_c=surface,
                sink_temps_c=sink,
                delta_t_k=surface - sink,
                ambient_c=ambient.copy(),
                active=active,
            )

        # Degenerate (cold-start) defaults; active samples overwrite.
        c_hot = flow * self._coolant.specific_heat_j_kg_k
        c_cold = air_flow * self._air.specific_heat_j_kg_k
        ua = self._exchanger.ua_model.ua_batch(flow, air_flow)
        duty = np.zeros(n)
        eff = np.zeros(n)
        ntu = ua / np.minimum(c_hot, c_cold)
        hot_outlet = inlet.copy()
        cold_outlet = ambient.copy()
        decay = np.zeros(n)
        surface = np.repeat(inlet[:, None], n_modules, axis=1)
        sink = np.repeat(ambient[:, None], n_modules, axis=1)

        if bool(active.any()):
            idx = np.flatnonzero(active)
            sol = self._exchanger.solve_batch(
                inlet[idx],
                flow[idx],
                ambient[idx],
                air_flow[idx],
                self._coolant.specific_heat_j_kg_k,
                self._air.specific_heat_j_kg_k,
            )
            duty[idx] = sol.duty_w
            eff[idx] = sol.effectiveness
            ntu[idx] = sol.ntu
            ua[idx] = sol.ua_w_k
            hot_outlet[idx] = sol.hot_outlet_c
            cold_outlet[idx] = sol.cold_outlet_c
            c_hot[idx] = sol.hot_capacity_w_k
            c_cold[idx] = sol.cold_capacity_w_k
            decay_a, surface_a, sink_a = self._profile_fields(
                sol, inlet[idx], ambient[idx], positions
            )
            decay[idx] = decay_a
            surface[idx] = surface_a
            sink[idx] = sink_a

        return RadiatorTraceSolution(
            exchanger=HeatExchangerTraceSolution(
                duty_w=duty,
                effectiveness=eff,
                ntu=ntu,
                ua_w_k=ua,
                hot_outlet_c=hot_outlet,
                cold_outlet_c=cold_outlet,
                hot_capacity_w_k=c_hot,
                cold_capacity_w_k=c_cold,
            ),
            decay_per_m=decay,
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=ambient.copy(),
            active=active,
        )

    def _profile_fields(
        self,
        sol: HeatExchangerTraceSolution,
        inlet: np.ndarray,
        ambient: np.ndarray,
        positions: np.ndarray,
    ) -> tuple:
        """Eq. (1) decay/surface plus the sink model for solved rows.

        The one copy of the profile math both ``solve_trace`` branches
        share; row ``i`` matches the scalar :meth:`operating_point`
        path operation-for-operation.
        """
        length = self._geometry.path_length_m
        decay = sol.ua_w_k / (length * sol.cold_capacity_w_k)
        cold_mean = sol.cold_mean_c
        surface = (inlet - cold_mean)[:, None] * np.exp(
            -decay[:, None] * positions[None, :]
        ) + cold_mean[:, None]
        air_rise_k = sol.cold_outlet_c - ambient
        sink = ambient[:, None] + (
            self._sink_preheat_fraction
            * air_rise_k[:, None]
            * positions[None, :]
            / length
        )
        return decay, surface, sink

    def _inactive_operating_point(
        self,
        coolant_inlet_c: float,
        coolant_flow_kg_s: float,
        ambient_c: float,
        air_flow_kg_s: float,
        n_modules: int,
    ) -> RadiatorOperatingPoint:
        """Zero-duty state for coolant at/below ambient (cold start)."""
        c_hot = self._coolant.capacity_rate(coolant_flow_kg_s)
        c_cold = self._air.capacity_rate(air_flow_kg_s)
        ua = self._exchanger.ua_model.ua(coolant_flow_kg_s, air_flow_kg_s)
        solution = HeatExchangerSolution(
            duty_w=0.0,
            effectiveness=0.0,
            ntu=ua / min(c_hot, c_cold),
            ua_w_k=ua,
            hot_outlet_c=float(coolant_inlet_c),
            cold_outlet_c=float(ambient_c),
            hot_capacity_w_k=c_hot,
            cold_capacity_w_k=c_cold,
        )
        surface = np.full(n_modules, float(coolant_inlet_c))
        sink = np.full(n_modules, float(ambient_c))
        return RadiatorOperatingPoint(
            solution=solution,
            decay_per_m=0.0,
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=float(ambient_c),
        )


register_boundary(Radiator)
