"""The S-shaped 1-D radiator with TEG modules on its surface (Fig. 2).

The paper reduces the 2-D radiator to a 1-D coolant path (an actual
radiator is a parallel bank of such paths) and places ``N`` TEG modules
along it.  The surface temperature at distance ``d`` from the coolant
entrance follows Eq. (1):

.. math::

    T(d) = (T_{h,i} - T_{c,a}) e^{-\\frac{K}{C_c} d} + T_{c,a}

with ``T_h,i`` the coolant inlet temperature, ``T_c,a`` the arithmetic
mean of the air inlet/outlet temperatures, ``K`` the overall heat
transfer coefficient per unit path length and ``C_c`` the cold-stream
capacity rate.  ``T_c,a`` and ``K`` come from the effectiveness-NTU
solution of :mod:`repro.thermal.heat_exchanger`.

Cold-side model
---------------
The paper assumes the module heatsinks sit at ambient temperature.
:class:`Radiator` implements that assumption by default and adds an
optional *sink preheat gradient*: heatsinks further along the path
breathe air already warmed by the upstream core, so their temperature
rises linearly toward a fraction of the total air temperature rise.
This is the lever the default scenario uses to reproduce the module
temperature spread implied by the paper's baseline-vs-reconfiguration
gap; setting ``sink_preheat_fraction=0`` recovers the paper's stated
assumption exactly.  See DESIGN.md section 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError
from repro.thermal.coolant import FluidProperties, FluidStream
from repro.thermal.heat_exchanger import (
    CrossFlowHeatExchanger,
    HeatExchangerSolution,
    HeatExchangerTraceSolution,
)
from repro.units import require_fraction, require_positive


def surface_temperature_profile(
    coolant_inlet_c: float,
    cold_mean_c: float,
    decay_per_m: float,
    distances_m: np.ndarray,
) -> np.ndarray:
    """Evaluate the paper's Eq. (1) at the given path distances.

    Parameters
    ----------
    coolant_inlet_c:
        ``T_h,i`` — coolant temperature at the radiator entrance.
    cold_mean_c:
        ``T_c,a`` — arithmetic mean of air inlet/outlet temperatures.
    decay_per_m:
        ``K / C_c`` — spatial decay constant along the path, 1/m.
    distances_m:
        Distances from the entrance, metres.
    """
    if decay_per_m < 0.0:
        raise ModelParameterError(f"decay_per_m must be >= 0, got {decay_per_m}")
    d = np.asarray(distances_m, dtype=float)
    return (coolant_inlet_c - cold_mean_c) * np.exp(-decay_per_m * d) + cold_mean_c


@dataclass(frozen=True)
class RadiatorGeometry:
    """Geometry of the S-shaped radiator path and module placement.

    Parameters
    ----------
    path_length_m:
        Total coolant path length following the S shape.
    n_rows:
        Number of straight rows forming the S (documentation only; the
        1-D model depends on path length alone).
    """

    path_length_m: float
    n_rows: int = 10

    def __post_init__(self) -> None:
        require_positive(self.path_length_m, "path_length_m")
        if self.n_rows < 1:
            raise ModelParameterError(f"n_rows must be >= 1, got {self.n_rows}")

    def module_positions(self, n_modules: int) -> np.ndarray:
        """Centre positions of ``n_modules`` equally pitched modules.

        Module ``i`` (0-based) sits at ``(i + 0.5) * L / N`` from the
        coolant entrance, following the S-path.
        """
        if n_modules < 1:
            raise ModelParameterError(f"n_modules must be >= 1, got {n_modules}")
        pitch = self.path_length_m / n_modules
        return (np.arange(n_modules) + 0.5) * pitch


@dataclass(frozen=True)
class RadiatorOperatingPoint:
    """Solved thermal state of the radiator at one time instant.

    Attributes
    ----------
    solution:
        The effectiveness-NTU solution of the core.
    decay_per_m:
        Eq. (1) decay constant ``K / C_c``.
    surface_temps_c:
        Hot-side surface temperature at each module position.
    sink_temps_c:
        Cold-side (heatsink) temperature at each module position.
    delta_t_k:
        Per-module temperature differences driving the TEGs.
    ambient_c:
        Ambient temperature used for the sink model.
    """

    solution: HeatExchangerSolution
    decay_per_m: float
    surface_temps_c: np.ndarray
    sink_temps_c: np.ndarray
    delta_t_k: np.ndarray
    ambient_c: float

    @property
    def coolant_outlet_c(self) -> float:
        """Coolant temperature leaving the radiator."""
        return self.solution.hot_outlet_c


@dataclass(frozen=True)
class RadiatorTraceSolution:
    """Vectorised radiator state over a whole boundary-condition trace.

    Row ``i`` of every array is exactly the operating point a scalar
    :meth:`Radiator.operating_point` call at sample ``i`` would produce
    — including the degenerate zero-duty state for cold-start samples
    whose coolant sits at or below ambient (``active[i] == False``).

    Attributes
    ----------
    exchanger:
        Effectiveness-NTU solution columns (degenerate rows hold the
        zero-duty solution).
    decay_per_m:
        Eq. (1) decay constant per sample (0 for inactive samples).
    surface_temps_c, sink_temps_c, delta_t_k:
        ``(T, N)`` module-position temperature fields.
    ambient_c:
        Ambient temperature per sample.
    active:
        Boolean mask of samples solved by the exchanger (coolant above
        ambient).
    """

    exchanger: HeatExchangerTraceSolution
    decay_per_m: np.ndarray
    surface_temps_c: np.ndarray
    sink_temps_c: np.ndarray
    delta_t_k: np.ndarray
    ambient_c: np.ndarray
    active: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of trace samples."""
        return int(self.decay_per_m.size)

    @property
    def n_modules(self) -> int:
        """Number of module positions along the path."""
        return int(self.delta_t_k.shape[1])

    def operating_point(self, i: int) -> RadiatorOperatingPoint:
        """Scalar :class:`RadiatorOperatingPoint` view of sample ``i``."""
        return RadiatorOperatingPoint(
            solution=self.exchanger.sample(i),
            decay_per_m=float(self.decay_per_m[i]),
            surface_temps_c=self.surface_temps_c[i].copy(),
            sink_temps_c=self.sink_temps_c[i].copy(),
            delta_t_k=self.delta_t_k[i].copy(),
            ambient_c=float(self.ambient_c[i]),
        )


class Radiator:
    """Finned-tube radiator with a TEG array along its coolant path.

    Parameters
    ----------
    geometry:
        Path geometry and module placement.
    exchanger:
        The cross-flow core model.
    coolant, air:
        Property sets of the two streams.
    sink_preheat_fraction:
        Fraction of the total air temperature rise that the *last*
        module's heatsink sees; intermediate modules interpolate
        linearly.  ``0.0`` reproduces the paper's heatsink-at-ambient
        assumption.
    """

    def __init__(
        self,
        geometry: RadiatorGeometry,
        exchanger: CrossFlowHeatExchanger,
        coolant: FluidProperties,
        air: FluidProperties,
        sink_preheat_fraction: float = 0.0,
    ) -> None:
        self._geometry = geometry
        self._exchanger = exchanger
        self._coolant = coolant
        self._air = air
        self._sink_preheat_fraction = require_fraction(
            sink_preheat_fraction, "sink_preheat_fraction"
        )

    @property
    def geometry(self) -> RadiatorGeometry:
        """Radiator geometry."""
        return self._geometry

    @property
    def exchanger(self) -> CrossFlowHeatExchanger:
        """The cross-flow core model."""
        return self._exchanger

    @property
    def coolant(self) -> FluidProperties:
        """Coolant property set."""
        return self._coolant

    @property
    def air(self) -> FluidProperties:
        """Air property set."""
        return self._air

    @property
    def sink_preheat_fraction(self) -> float:
        """Configured sink preheat fraction."""
        return self._sink_preheat_fraction

    def operating_point(
        self,
        coolant_inlet_c: float,
        coolant_flow_kg_s: float,
        ambient_c: float,
        air_flow_kg_s: float,
        n_modules: int,
    ) -> RadiatorOperatingPoint:
        """Solve the radiator state and per-module temperatures.

        Parameters
        ----------
        coolant_inlet_c:
            Coolant temperature entering the radiator (``T_h,i``).
        coolant_flow_kg_s:
            Coolant mass flow.
        ambient_c:
            Ambient air temperature (= air inlet, and the heatsink
            reference).
        air_flow_kg_s:
            Air mass flow through the core.
        n_modules:
            Number of TEG modules along the path.

        Notes
        -----
        A cold start can present coolant at or below ambient; the
        exchanger model only covers heat rejection, so that regime is
        returned as a degenerate zero-duty operating point (flat
        profile at the coolant temperature, zero-to-negative module
        dT) instead of an error — the array then simply produces
        nothing until the engine warms past ambient.
        """
        if coolant_inlet_c <= ambient_c + 0.05:
            return self._inactive_operating_point(
                coolant_inlet_c, coolant_flow_kg_s, ambient_c, air_flow_kg_s,
                n_modules,
            )
        hot = FluidStream(self._coolant, coolant_flow_kg_s, coolant_inlet_c)
        cold = FluidStream(self._air, air_flow_kg_s, ambient_c)
        solution = self._exchanger.solve(hot, cold)

        # Eq. (1): K is the overall coefficient per unit path length,
        # C_c the cold-stream capacity rate.
        decay_per_m = solution.ua_w_k / (
            self._geometry.path_length_m * solution.cold_capacity_w_k
        )
        positions = self._geometry.module_positions(n_modules)
        surface = surface_temperature_profile(
            coolant_inlet_c, solution.cold_mean_c, decay_per_m, positions
        )

        air_rise_k = solution.cold_outlet_c - ambient_c
        sink = ambient_c + (
            self._sink_preheat_fraction
            * air_rise_k
            * positions
            / self._geometry.path_length_m
        )
        return RadiatorOperatingPoint(
            solution=solution,
            decay_per_m=decay_per_m,
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=float(ambient_c),
        )

    def solve_trace(
        self,
        coolant_inlet_c: np.ndarray,
        coolant_flow_kg_s: np.ndarray,
        ambient_c: np.ndarray,
        air_flow_kg_s: np.ndarray,
        n_modules: int,
    ) -> RadiatorTraceSolution:
        """Solve every sample of a boundary-condition trace in one pass.

        This is the vectorised counterpart of :meth:`operating_point`:
        instead of re-solving the exchanger sample by sample, the whole
        effectiveness-NTU chain and the Eq. (1) surface profile are
        evaluated as array algebra over the trace.  Cold-start samples
        (coolant at or below ambient) are masked out and filled with the
        same degenerate zero-duty state the scalar path returns.

        Parameters
        ----------
        coolant_inlet_c, coolant_flow_kg_s, ambient_c, air_flow_kg_s:
            Matching 1-D boundary-condition columns (one row per trace
            sample).
        n_modules:
            Number of TEG modules along the path.
        """
        inlet = np.asarray(coolant_inlet_c, dtype=float)
        flow = np.asarray(coolant_flow_kg_s, dtype=float)
        ambient = np.asarray(ambient_c, dtype=float)
        air_flow = np.asarray(air_flow_kg_s, dtype=float)
        for label, arr in (
            ("coolant_flow_kg_s", flow),
            ("ambient_c", ambient),
            ("air_flow_kg_s", air_flow),
        ):
            if arr.shape != inlet.shape or inlet.ndim != 1:
                raise ModelParameterError(
                    f"{label} must match coolant_inlet_c in shape, got "
                    f"{arr.shape} vs {inlet.shape}"
                )
        n = inlet.size
        positions = self._geometry.module_positions(n_modules)
        length = self._geometry.path_length_m

        active = inlet > ambient + 0.05
        all_active = bool(active.all())

        if all_active:
            # Fast path (the usual warm-engine trace): no degenerate
            # rows, so skip the mask scatter/gather entirely.
            sol = self._exchanger.solve_batch(
                inlet,
                flow,
                ambient,
                air_flow,
                self._coolant.specific_heat_j_kg_k,
                self._air.specific_heat_j_kg_k,
            )
            decay, surface, sink = self._profile_fields(
                sol, inlet, ambient, positions
            )
            return RadiatorTraceSolution(
                exchanger=sol,
                decay_per_m=decay,
                surface_temps_c=surface,
                sink_temps_c=sink,
                delta_t_k=surface - sink,
                ambient_c=ambient.copy(),
                active=active,
            )

        # Degenerate (cold-start) defaults; active samples overwrite.
        c_hot = flow * self._coolant.specific_heat_j_kg_k
        c_cold = air_flow * self._air.specific_heat_j_kg_k
        ua = self._exchanger.ua_model.ua_batch(flow, air_flow)
        duty = np.zeros(n)
        eff = np.zeros(n)
        ntu = ua / np.minimum(c_hot, c_cold)
        hot_outlet = inlet.copy()
        cold_outlet = ambient.copy()
        decay = np.zeros(n)
        surface = np.repeat(inlet[:, None], n_modules, axis=1)
        sink = np.repeat(ambient[:, None], n_modules, axis=1)

        if bool(active.any()):
            idx = np.flatnonzero(active)
            sol = self._exchanger.solve_batch(
                inlet[idx],
                flow[idx],
                ambient[idx],
                air_flow[idx],
                self._coolant.specific_heat_j_kg_k,
                self._air.specific_heat_j_kg_k,
            )
            duty[idx] = sol.duty_w
            eff[idx] = sol.effectiveness
            ntu[idx] = sol.ntu
            ua[idx] = sol.ua_w_k
            hot_outlet[idx] = sol.hot_outlet_c
            cold_outlet[idx] = sol.cold_outlet_c
            c_hot[idx] = sol.hot_capacity_w_k
            c_cold[idx] = sol.cold_capacity_w_k
            decay_a, surface_a, sink_a = self._profile_fields(
                sol, inlet[idx], ambient[idx], positions
            )
            decay[idx] = decay_a
            surface[idx] = surface_a
            sink[idx] = sink_a

        return RadiatorTraceSolution(
            exchanger=HeatExchangerTraceSolution(
                duty_w=duty,
                effectiveness=eff,
                ntu=ntu,
                ua_w_k=ua,
                hot_outlet_c=hot_outlet,
                cold_outlet_c=cold_outlet,
                hot_capacity_w_k=c_hot,
                cold_capacity_w_k=c_cold,
            ),
            decay_per_m=decay,
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=ambient.copy(),
            active=active,
        )

    def _profile_fields(
        self,
        sol: HeatExchangerTraceSolution,
        inlet: np.ndarray,
        ambient: np.ndarray,
        positions: np.ndarray,
    ) -> tuple:
        """Eq. (1) decay/surface plus the sink model for solved rows.

        The one copy of the profile math both ``solve_trace`` branches
        share; row ``i`` matches the scalar :meth:`operating_point`
        path operation-for-operation.
        """
        length = self._geometry.path_length_m
        decay = sol.ua_w_k / (length * sol.cold_capacity_w_k)
        cold_mean = sol.cold_mean_c
        surface = (inlet - cold_mean)[:, None] * np.exp(
            -decay[:, None] * positions[None, :]
        ) + cold_mean[:, None]
        air_rise_k = sol.cold_outlet_c - ambient
        sink = ambient[:, None] + (
            self._sink_preheat_fraction
            * air_rise_k[:, None]
            * positions[None, :]
            / length
        )
        return decay, surface, sink

    def _inactive_operating_point(
        self,
        coolant_inlet_c: float,
        coolant_flow_kg_s: float,
        ambient_c: float,
        air_flow_kg_s: float,
        n_modules: int,
    ) -> RadiatorOperatingPoint:
        """Zero-duty state for coolant at/below ambient (cold start)."""
        c_hot = self._coolant.capacity_rate(coolant_flow_kg_s)
        c_cold = self._air.capacity_rate(air_flow_kg_s)
        ua = self._exchanger.ua_model.ua(coolant_flow_kg_s, air_flow_kg_s)
        solution = HeatExchangerSolution(
            duty_w=0.0,
            effectiveness=0.0,
            ntu=ua / min(c_hot, c_cold),
            ua_w_k=ua,
            hot_outlet_c=float(coolant_inlet_c),
            cold_outlet_c=float(ambient_c),
            hot_capacity_w_k=c_hot,
            cold_capacity_w_k=c_cold,
        )
        surface = np.full(n_modules, float(coolant_inlet_c))
        sink = np.full(n_modules, float(ambient_c))
        return RadiatorOperatingPoint(
            solution=solution,
            decay_per_m=0.0,
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=float(ambient_c),
        )
