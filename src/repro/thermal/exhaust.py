"""Exhaust-gas waste-heat recovery boundary (arXiv 1708.02920 regime).

An automotive/industrial exhaust duct with TEG modules mounted in
series along the flow: hot combustion gas sweeps the module hot faces
through a gas-side convection film while a liquid cold loop holds the
cold faces near ambient.  Unlike the radiator's effectiveness-NTU core,
the gas-side physics here is *temperature dependent* — the gas specific
heat and the convective conductance both drift with the local gas
temperature, so every module segment is solved with properties
evaluated at its own upstream gas state, per sample.

The model marches the gas temperature module by module (a 1-D
finite-volume sweep): segment ``j`` sees gas at ``T_g[j]``, computes
its local ``cp(T)``/``UA(T)``, extracts duty through the series
gas-film → module → cold-film conductance path and cools the gas by
``q / C_gas`` before segment ``j+1``.  All per-sample math inside the
march is vectorised over the whole trace — :meth:`solve_trace` touches
Python once per *module*, never per sample — which is what the
``benchmarks/bench_boundary.py`` ≥3x gate measures against the scalar
per-sample reference.

Mapped onto the generic :class:`~repro.thermal.boundary.ThermalBoundary`
trace columns: the *hot stream* is the exhaust gas (inlet temperature +
mass flow) and the *cold stream* is the cold-loop coolant (ambient
temperature = cold-loop supply temperature, plus its mass flow).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import ModelParameterError
from repro.thermal.boundary import (
    BoundaryTraceSolution,
    ThermalBoundary,
    register_boundary,
)
from repro.units import require_positive


@dataclass(frozen=True)
class ExhaustGasBoundary(ThermalBoundary):
    """Series TEG chain in an exhaust duct with a liquid cold loop.

    Parameters
    ----------
    cp_ref_j_kg_k:
        Gas specific heat at the reference temperature.
    cp_coeff_per_k:
        Linear temperature coefficient of the gas specific heat:
        ``cp(T) = cp_ref * (1 + cp_coeff * (T - t_ref))``.
    t_ref_c:
        Reference temperature of the property fits.
    ua_gas_ref_w_k:
        Gas-film conductance of one module segment at the reference
        gas flow and temperature.
    gas_ref_flow_kg_s, gas_flow_exponent:
        Flow scaling of the gas film:
        ``UA_gas ∝ (m_dot / ref) ** exponent`` (0.8 = turbulent
        internal convection).
    ua_temp_coeff_per_k:
        Linear temperature coefficient of the gas film (gas thermal
        conductivity rises with temperature).
    module_conductance_w_k:
        Through-module thermal conductance (ceramic + couples); the
        share of the gas-to-coolant drop this keeps is the TEG's
        working ``delta_t``.
    ua_cold_w_k, cold_ref_flow_kg_s, cold_flow_exponent:
        Cold-plate film conductance per module and its flow scaling.
    """

    cp_ref_j_kg_k: float = 1100.0
    cp_coeff_per_k: float = 3.0e-4
    t_ref_c: float = 300.0
    ua_gas_ref_w_k: float = 8.0
    gas_ref_flow_kg_s: float = 0.08
    gas_flow_exponent: float = 0.8
    ua_temp_coeff_per_k: float = 5.0e-4
    module_conductance_w_k: float = 3.0
    ua_cold_w_k: float = 20.0
    cold_ref_flow_kg_s: float = 0.5
    cold_flow_exponent: float = 0.8

    boundary_type = "exhaust-gas"

    def __post_init__(self) -> None:
        require_positive(self.cp_ref_j_kg_k, "cp_ref_j_kg_k")
        require_positive(self.ua_gas_ref_w_k, "ua_gas_ref_w_k")
        require_positive(self.gas_ref_flow_kg_s, "gas_ref_flow_kg_s")
        require_positive(self.module_conductance_w_k, "module_conductance_w_k")
        require_positive(self.ua_cold_w_k, "ua_cold_w_k")
        require_positive(self.cold_ref_flow_kg_s, "cold_ref_flow_kg_s")

    # ------------------------------------------------------------------
    # ThermalBoundary serialisation contract
    # ------------------------------------------------------------------
    def params_dict(self):
        return {name: float(value) for name, value in asdict(self).items()}

    @classmethod
    def from_params_dict(cls, params) -> "ExhaustGasBoundary":
        return cls(**{name: float(value) for name, value in params.items()})

    # ------------------------------------------------------------------
    # The thermal contract
    # ------------------------------------------------------------------
    def solve_trace(
        self,
        hot_inlet_c: np.ndarray,
        hot_flow_kg_s: np.ndarray,
        ambient_c: np.ndarray,
        cold_flow_kg_s: np.ndarray,
        n_modules: int,
    ) -> BoundaryTraceSolution:
        """March the gas down the module chain, vectorised over samples.

        Row-wise elementwise by construction: every array op combines
        same-row values only, so a length-1 solve is bit-identical to
        the corresponding row of a batched solve (the protocol's
        scalar/batched parity contract).
        """
        inlet = np.asarray(hot_inlet_c, dtype=float)
        gas_flow = np.asarray(hot_flow_kg_s, dtype=float)
        ambient = np.asarray(ambient_c, dtype=float)
        cold_flow = np.asarray(cold_flow_kg_s, dtype=float)
        for label, arr in (
            ("hot_flow_kg_s", gas_flow),
            ("ambient_c", ambient),
            ("cold_flow_kg_s", cold_flow),
        ):
            if arr.shape != inlet.shape or inlet.ndim != 1:
                raise ModelParameterError(
                    f"{label} must match hot_inlet_c in shape, got "
                    f"{arr.shape} vs {inlet.shape}"
                )
        if n_modules < 1:
            raise ModelParameterError(
                f"n_modules must be >= 1, got {n_modules}"
            )
        n = inlet.size
        surface = np.empty((n, n_modules))
        sink = np.empty((n, n_modules))

        # Flow scalings are temperature independent — hoisted out of
        # the module march.
        ua_gas_flow = self.ua_gas_ref_w_k * (
            gas_flow / self.gas_ref_flow_kg_s
        ) ** self.gas_flow_exponent
        ua_cold = self.ua_cold_w_k * (
            cold_flow / self.cold_ref_flow_kg_s
        ) ** self.cold_flow_exponent

        t_gas = inlet.copy()
        for j in range(n_modules):
            # Gas properties at this segment's upstream state.
            cp = self.cp_ref_j_kg_k * (
                1.0 + self.cp_coeff_per_k * (t_gas - self.t_ref_c)
            )
            c_gas = gas_flow * cp
            ua_gas = ua_gas_flow * (
                1.0 + self.ua_temp_coeff_per_k * (t_gas - self.t_ref_c)
            )
            # Series path: gas film -> module -> cold film.
            ua_total = 1.0 / (
                1.0 / ua_gas
                + 1.0 / self.module_conductance_w_k
                + 1.0 / ua_cold
            )
            eps = 1.0 - np.exp(-ua_total / c_gas)
            q = eps * c_gas * (t_gas - ambient)
            surface[:, j] = t_gas - q / ua_gas
            sink[:, j] = ambient + q / ua_cold
            t_gas = t_gas - q / c_gas

        # Degenerate fill for samples with no thermal gradient (gas at
        # or below the cold-loop temperature): flat zero-duty profile,
        # matching the radiator's cold-start convention.  Row-wise
        # np.where keeps scalar/batched bit-identity.
        active = inlet > ambient + 0.05
        mask = active[:, None]
        surface = np.where(mask, surface, inlet[:, None])
        sink = np.where(mask, sink, ambient[:, None])

        return BoundaryTraceSolution(
            surface_temps_c=surface,
            sink_temps_c=sink,
            delta_t_k=surface - sink,
            ambient_c=ambient.copy(),
            active=active,
        )


register_boundary(ExhaustGasBoundary)
