"""Effectiveness-NTU cross-flow heat exchanger (Bergman [8]).

The radiator is a finned-tube cross-flow exchanger with the engine
coolant in the tubes and ambient air across the fins.  This module
provides:

* the classic effectiveness relations for cross-flow exchangers,
* a flow-dependent overall-conductance model :class:`UAModel`
  (tube-side Dittus-Boelter-like scaling, fin-side forced-convection
  scaling), and
* :class:`CrossFlowHeatExchanger`, which solves an operating point to
  the full outlet-temperature / duty solution the radiator and vehicle
  substrates consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError
from repro.thermal.coolant import FluidStream
from repro.units import require_positive


def effectiveness_crossflow_both_unmixed(ntu: float, c_ratio: float) -> float:
    """Effectiveness of a cross-flow exchanger, both fluids unmixed.

    Uses the standard approximation (Bergman Eq. 11.32):

    .. math::

        \\varepsilon = 1 - \\exp\\left[\\frac{NTU^{0.22}}{C_r}
        \\left(\\exp(-C_r NTU^{0.78}) - 1\\right)\\right]

    with the exact single-stream limit for ``C_r -> 0``.
    """
    if ntu < 0.0:
        raise ModelParameterError(f"ntu must be >= 0, got {ntu}")
    if not 0.0 <= c_ratio <= 1.0:
        raise ModelParameterError(f"c_ratio must lie in [0, 1], got {c_ratio}")
    if ntu == 0.0:
        return 0.0
    if c_ratio < 1.0e-9:
        return 1.0 - math.exp(-ntu)
    exponent = (ntu ** 0.22 / c_ratio) * (math.exp(-c_ratio * ntu ** 0.78) - 1.0)
    return 1.0 - math.exp(exponent)


def effectiveness_crossflow_cmax_mixed(ntu: float, c_ratio: float) -> float:
    """Effectiveness with ``C_max`` mixed and ``C_min`` unmixed.

    Bergman Eq. 11.34: ``eps = (1/Cr) * (1 - exp(-Cr * (1 - exp(-NTU))))``.
    A radiator with a single water pass behind a mixed air plenum is
    sometimes modelled this way; offered for sensitivity studies.
    """
    if ntu < 0.0:
        raise ModelParameterError(f"ntu must be >= 0, got {ntu}")
    if not 0.0 <= c_ratio <= 1.0:
        raise ModelParameterError(f"c_ratio must lie in [0, 1], got {c_ratio}")
    if ntu == 0.0:
        return 0.0
    if c_ratio < 1.0e-9:
        return 1.0 - math.exp(-ntu)
    return (1.0 / c_ratio) * (1.0 - math.exp(-c_ratio * (1.0 - math.exp(-ntu))))


def effectiveness_crossflow_both_unmixed_batch(
    ntu: np.ndarray, c_ratio: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`effectiveness_crossflow_both_unmixed`.

    Evaluates whole trace columns of ``(NTU, C_r)`` pairs in one NumPy
    pass; the single-stream ``C_r -> 0`` and ``NTU = 0`` limits are
    resolved with masks rather than Python branches.
    """
    ntu = np.asarray(ntu, dtype=float)
    c_ratio = np.asarray(c_ratio, dtype=float)
    if np.any(ntu < 0.0):
        raise ModelParameterError("ntu must be >= 0")
    if np.any((c_ratio < 0.0) | (c_ratio > 1.0)):
        raise ModelParameterError("c_ratio must lie in [0, 1]")
    safe_cr = np.where(c_ratio < 1.0e-9, 1.0, c_ratio)
    exponent = (ntu ** 0.22 / safe_cr) * (np.exp(-safe_cr * ntu ** 0.78) - 1.0)
    general = 1.0 - np.exp(exponent)
    single_stream = 1.0 - np.exp(-ntu)
    eff = np.where(c_ratio < 1.0e-9, single_stream, general)
    return np.where(ntu == 0.0, 0.0, eff)


def effectiveness_crossflow_cmax_mixed_batch(
    ntu: np.ndarray, c_ratio: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`effectiveness_crossflow_cmax_mixed`."""
    ntu = np.asarray(ntu, dtype=float)
    c_ratio = np.asarray(c_ratio, dtype=float)
    if np.any(ntu < 0.0):
        raise ModelParameterError("ntu must be >= 0")
    if np.any((c_ratio < 0.0) | (c_ratio > 1.0)):
        raise ModelParameterError("c_ratio must lie in [0, 1]")
    safe_cr = np.where(c_ratio < 1.0e-9, 1.0, c_ratio)
    general = (1.0 / safe_cr) * (1.0 - np.exp(-safe_cr * (1.0 - np.exp(-ntu))))
    single_stream = 1.0 - np.exp(-ntu)
    eff = np.where(c_ratio < 1.0e-9, single_stream, general)
    return np.where(ntu == 0.0, 0.0, eff)


@dataclass(frozen=True)
class UAModel:
    """Flow-dependent overall conductance ``UA`` of the exchanger.

    The overall resistance is the series combination of the tube-side
    convection, the wall, and the air-side (finned) convection:

    .. math::

        \\frac{1}{UA} = \\frac{1}{h_h A_h} + R_{wall} + \\frac{1}{h_c A_c}

    Each film conductance scales with its stream's mass flow relative
    to a reference point: turbulent tube flow gives ``h ~ m^0.8``
    (Dittus-Boelter), and forced air over fin banks ``h ~ m^0.6``.

    Parameters
    ----------
    hot_conductance_ref_w_k:
        ``h_h * A_h`` at the hot-side reference mass flow.
    cold_conductance_ref_w_k:
        ``h_c * A_c`` at the cold-side reference mass flow.
    hot_ref_flow_kg_s, cold_ref_flow_kg_s:
        Reference mass flows for the scalings.
    wall_resistance_k_w:
        Conduction resistance of tube walls and fin roots.
    hot_flow_exponent, cold_flow_exponent:
        Convection scaling exponents.
    """

    hot_conductance_ref_w_k: float
    cold_conductance_ref_w_k: float
    hot_ref_flow_kg_s: float
    cold_ref_flow_kg_s: float
    wall_resistance_k_w: float = 0.0
    hot_flow_exponent: float = 0.8
    cold_flow_exponent: float = 0.6

    def __post_init__(self) -> None:
        require_positive(self.hot_conductance_ref_w_k, "hot_conductance_ref_w_k")
        require_positive(self.cold_conductance_ref_w_k, "cold_conductance_ref_w_k")
        require_positive(self.hot_ref_flow_kg_s, "hot_ref_flow_kg_s")
        require_positive(self.cold_ref_flow_kg_s, "cold_ref_flow_kg_s")
        if self.wall_resistance_k_w < 0.0:
            raise ModelParameterError(
                f"wall_resistance_k_w must be >= 0, got {self.wall_resistance_k_w}"
            )

    def ua(self, hot_flow_kg_s: float, cold_flow_kg_s: float) -> float:
        """Overall conductance (W/K) at the given stream mass flows."""
        require_positive(hot_flow_kg_s, "hot_flow_kg_s")
        require_positive(cold_flow_kg_s, "cold_flow_kg_s")
        hot_cond = self.hot_conductance_ref_w_k * (
            hot_flow_kg_s / self.hot_ref_flow_kg_s
        ) ** self.hot_flow_exponent
        cold_cond = self.cold_conductance_ref_w_k * (
            cold_flow_kg_s / self.cold_ref_flow_kg_s
        ) ** self.cold_flow_exponent
        resistance = 1.0 / hot_cond + self.wall_resistance_k_w + 1.0 / cold_cond
        return 1.0 / resistance

    def ua_batch(
        self, hot_flow_kg_s: np.ndarray, cold_flow_kg_s: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`ua` over matching arrays of stream flows."""
        hot = np.asarray(hot_flow_kg_s, dtype=float)
        cold = np.asarray(cold_flow_kg_s, dtype=float)
        if np.any(hot <= 0.0) or np.any(cold <= 0.0):
            raise ModelParameterError("stream mass flows must be > 0")
        hot_cond = self.hot_conductance_ref_w_k * (
            hot / self.hot_ref_flow_kg_s
        ) ** self.hot_flow_exponent
        cold_cond = self.cold_conductance_ref_w_k * (
            cold / self.cold_ref_flow_kg_s
        ) ** self.cold_flow_exponent
        resistance = 1.0 / hot_cond + self.wall_resistance_k_w + 1.0 / cold_cond
        return 1.0 / resistance


@dataclass(frozen=True)
class HeatExchangerSolution:
    """Solved operating point of the exchanger.

    Attributes
    ----------
    duty_w:
        Heat transferred from the hot to the cold stream.
    effectiveness:
        Ratio of duty to the thermodynamic maximum.
    ntu:
        Number of transfer units ``UA / C_min``.
    ua_w_k:
        Overall conductance used.
    hot_outlet_c, cold_outlet_c:
        Stream outlet temperatures.
    hot_capacity_w_k, cold_capacity_w_k:
        Stream heat capacity rates.
    """

    duty_w: float
    effectiveness: float
    ntu: float
    ua_w_k: float
    hot_outlet_c: float
    cold_outlet_c: float
    hot_capacity_w_k: float
    cold_capacity_w_k: float

    @property
    def cold_mean_c(self) -> float:
        """Arithmetic mean of the cold stream's inlet/outlet — the
        paper's ``T_c,a`` in Eq. (1)."""
        inlet = self.cold_outlet_c - self.duty_w / self.cold_capacity_w_k
        return (inlet + self.cold_outlet_c) / 2.0


@dataclass(frozen=True)
class HeatExchangerTraceSolution:
    """Column-vector form of :class:`HeatExchangerSolution`.

    Every attribute is an array over the trace's time samples; sample
    ``i`` holds exactly what a scalar :meth:`CrossFlowHeatExchanger.solve`
    call at that sample's boundary conditions would have produced.
    """

    duty_w: np.ndarray
    effectiveness: np.ndarray
    ntu: np.ndarray
    ua_w_k: np.ndarray
    hot_outlet_c: np.ndarray
    cold_outlet_c: np.ndarray
    hot_capacity_w_k: np.ndarray
    cold_capacity_w_k: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of time samples covered."""
        return int(self.duty_w.size)

    @property
    def cold_mean_c(self) -> np.ndarray:
        """Per-sample ``T_c,a`` (Eq. (1) cold mean)."""
        inlet = self.cold_outlet_c - self.duty_w / self.cold_capacity_w_k
        return (inlet + self.cold_outlet_c) / 2.0

    def sample(self, i: int) -> HeatExchangerSolution:
        """Scalar :class:`HeatExchangerSolution` view of sample ``i``."""
        return HeatExchangerSolution(
            duty_w=float(self.duty_w[i]),
            effectiveness=float(self.effectiveness[i]),
            ntu=float(self.ntu[i]),
            ua_w_k=float(self.ua_w_k[i]),
            hot_outlet_c=float(self.hot_outlet_c[i]),
            cold_outlet_c=float(self.cold_outlet_c[i]),
            hot_capacity_w_k=float(self.hot_capacity_w_k[i]),
            cold_capacity_w_k=float(self.cold_capacity_w_k[i]),
        )


class CrossFlowHeatExchanger:
    """Finned-tube cross-flow exchanger, coolant in tubes (paper Sec. II).

    Parameters
    ----------
    ua_model:
        Flow-dependent overall conductance.
    both_unmixed:
        Select the effectiveness relation; True (default) treats both
        streams as unmixed, matching a multi-pass finned radiator.
    """

    def __init__(self, ua_model: UAModel, both_unmixed: bool = True) -> None:
        self._ua_model = ua_model
        self._both_unmixed = bool(both_unmixed)

    @property
    def ua_model(self) -> UAModel:
        """The conductance model in use."""
        return self._ua_model

    @property
    def both_unmixed(self) -> bool:
        """Which effectiveness relation the core uses (see ``__init__``)."""
        return self._both_unmixed

    def solve(self, hot: FluidStream, cold: FluidStream) -> HeatExchangerSolution:
        """Solve one operating point with the effectiveness-NTU method.

        Raises
        ------
        ModelParameterError
            If the hot inlet is not warmer than the cold inlet — the
            radiator model only covers heat rejection.
        """
        if hot.inlet_temp_c <= cold.inlet_temp_c:
            raise ModelParameterError(
                "hot inlet must exceed cold inlet "
                f"({hot.inlet_temp_c} <= {cold.inlet_temp_c})"
            )
        c_hot = hot.capacity_rate_w_k
        c_cold = cold.capacity_rate_w_k
        c_min = min(c_hot, c_cold)
        c_max = max(c_hot, c_cold)
        ua = self._ua_model.ua(hot.mass_flow_kg_s, cold.mass_flow_kg_s)
        ntu = ua / c_min
        c_ratio = c_min / c_max
        if self._both_unmixed:
            eff = effectiveness_crossflow_both_unmixed(ntu, c_ratio)
        else:
            eff = effectiveness_crossflow_cmax_mixed(ntu, c_ratio)
        duty = eff * c_min * (hot.inlet_temp_c - cold.inlet_temp_c)
        return HeatExchangerSolution(
            duty_w=duty,
            effectiveness=eff,
            ntu=ntu,
            ua_w_k=ua,
            hot_outlet_c=hot.inlet_temp_c - duty / c_hot,
            cold_outlet_c=cold.inlet_temp_c + duty / c_cold,
            hot_capacity_w_k=c_hot,
            cold_capacity_w_k=c_cold,
        )

    def solve_batch(
        self,
        hot_inlet_c: np.ndarray,
        hot_flow_kg_s: np.ndarray,
        cold_inlet_c: np.ndarray,
        cold_flow_kg_s: np.ndarray,
        hot_cp_j_kg_k: float,
        cold_cp_j_kg_k: float,
    ) -> HeatExchangerTraceSolution:
        """Solve a whole trace of operating points in one NumPy pass.

        All four boundary-condition arguments are matching 1-D arrays;
        fluid heat capacities are passed as scalars because the property
        sets are constant over the operating band.  Every hot inlet must
        exceed its cold inlet — cold-start samples are the caller's
        responsibility (the radiator masks them out before calling).
        """
        hot_inlet = np.asarray(hot_inlet_c, dtype=float)
        cold_inlet = np.asarray(cold_inlet_c, dtype=float)
        if np.any(hot_inlet <= cold_inlet):
            raise ModelParameterError(
                "hot inlet must exceed cold inlet at every sample"
            )
        c_hot = np.asarray(hot_flow_kg_s, dtype=float) * float(hot_cp_j_kg_k)
        c_cold = np.asarray(cold_flow_kg_s, dtype=float) * float(cold_cp_j_kg_k)
        c_min = np.minimum(c_hot, c_cold)
        c_max = np.maximum(c_hot, c_cold)
        ua = self._ua_model.ua_batch(hot_flow_kg_s, cold_flow_kg_s)
        ntu = ua / c_min
        c_ratio = c_min / c_max
        if self._both_unmixed:
            eff = effectiveness_crossflow_both_unmixed_batch(ntu, c_ratio)
        else:
            eff = effectiveness_crossflow_cmax_mixed_batch(ntu, c_ratio)
        duty = eff * c_min * (hot_inlet - cold_inlet)
        return HeatExchangerTraceSolution(
            duty_w=duty,
            effectiveness=eff,
            ntu=ntu,
            ua_w_k=ua,
            hot_outlet_c=hot_inlet - duty / c_hot,
            cold_outlet_c=cold_inlet + duty / c_cold,
            hot_capacity_w_k=c_hot,
            cold_capacity_w_k=c_cold,
        )
