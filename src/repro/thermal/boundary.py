"""The pluggable thermal-boundary protocol.

The paper's pipeline — predict boundary conditions, precompute the
thermal/EMF state, reconfigure with INOR/DNOR — never actually needs a
*radiator*; it needs hot/cold film temperatures at every module
position for every trace sample.  :class:`ThermalBoundary` is that
contract:

* :meth:`ThermalBoundary.solve_trace` maps four boundary-condition
  columns (hot-stream inlet temperature, hot-stream mass flow, ambient
  temperature, cold-stream mass flow — the four columns every
  :class:`~repro.vehicle.trace.RadiatorTrace` carries, whatever
  physical stream they describe) to a
  :class:`BoundaryTraceSolution`: per-sample, per-module hot-face and
  cold-face temperatures.  The solve must be *row-wise elementwise* —
  sample ``i`` of the output depends only on sample ``i`` of the
  inputs — which is what lets the streaming service evaluate chunks
  bit-identically to the one-shot precompute.
* :meth:`ThermalBoundary.params_dict` /
  :meth:`ThermalBoundary.from_params_dict` give a loss-free JSON form,
  and the module-level registry (:func:`register_boundary`,
  :func:`boundary_to_json_dict`, :func:`boundary_from_json_dict`)
  dispatches on a ``boundary_type`` tag so shard manifests and cache
  fingerprints name the model, not just its parameter floats.

:class:`~repro.thermal.radiator.Radiator` is simply the first
registered boundary (``"radiator"``); the exhaust-gas waste-heat model
(:mod:`repro.thermal.exhaust`) and the finite thermal-coupling wrapper
(:mod:`repro.thermal.coupling`) are the next two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import Dict, Mapping, Sequence, Type

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BoundaryOperatingPoint:
    """Solved thermal state of a boundary at one time instant.

    The protocol-level scalar view: hot-face / cold-face temperatures
    at every module position, their difference, and the ambient
    reference.  Concrete boundaries may return a richer subclass (the
    radiator adds its effectiveness-NTU solution) — consumers of the
    protocol read only these fields.
    """

    surface_temps_c: np.ndarray
    sink_temps_c: np.ndarray
    delta_t_k: np.ndarray
    ambient_c: float


@dataclass(frozen=True)
class BoundaryTraceSolution:
    """Vectorised boundary state over a whole boundary-condition trace.

    Row ``i`` of every array is exactly the operating point a scalar
    :meth:`ThermalBoundary.operating_point` call at sample ``i`` would
    produce (the solve is row-wise elementwise, so a length-1 solve is
    bit-identical to the corresponding row of a batched one).

    Attributes
    ----------
    surface_temps_c, sink_temps_c, delta_t_k:
        ``(T, N)`` module-position temperature fields.
    ambient_c:
        Ambient temperature per sample.
    active:
        Boolean mask of samples with a live thermal gradient (hot
        stream above ambient); inactive samples hold the degenerate
        zero-duty state.
    """

    surface_temps_c: np.ndarray
    sink_temps_c: np.ndarray
    delta_t_k: np.ndarray
    ambient_c: np.ndarray
    active: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of trace samples."""
        return int(self.ambient_c.size)

    @property
    def n_modules(self) -> int:
        """Number of module positions."""
        return int(self.delta_t_k.shape[1])

    def operating_point(self, i: int) -> BoundaryOperatingPoint:
        """Scalar :class:`BoundaryOperatingPoint` view of sample ``i``."""
        return BoundaryOperatingPoint(
            surface_temps_c=self.surface_temps_c[i].copy(),
            sink_temps_c=self.sink_temps_c[i].copy(),
            delta_t_k=self.delta_t_k[i].copy(),
            ambient_c=float(self.ambient_c[i]),
        )

    # ------------------------------------------------------------------
    # Loss-free array round trip (the physics-cache artifact format)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flat name-to-array mapping reproducing this solution exactly.

        Subclasses with nested fields (the radiator's exchanger
        solution) override this pair to flatten them; keys must be
        valid npz entry names.
        """
        return {f.name: getattr(self, f.name) for f in fields(type(self))}

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]):
        """Inverse of :meth:`to_arrays`."""
        return cls(**{f.name: arrays[f.name] for f in fields(cls)})

    @classmethod
    def concat(cls, parts: Sequence["BoundaryTraceSolution"]):
        """Row-concatenate per-chunk solutions into one.

        Every column is per-sample (row) data, so concatenation along
        axis 0 reassembles exactly the arrays a whole-trace
        :meth:`ThermalBoundary.solve_trace` call produces (pinned in
        the stream parity suite).
        """
        return cls(
            **{
                f.name: np.concatenate([getattr(p, f.name) for p in parts])
                for f in fields(cls)
            }
        )


class ThermalBoundary(ABC):
    """A thermal domain the TEG chain can be mounted on.

    Subclasses set a unique :attr:`boundary_type` tag, implement the
    batched :meth:`solve_trace` and the loss-free
    :meth:`params_dict` / :meth:`from_params_dict` pair, and call
    :func:`register_boundary` so manifests and cache fingerprints can
    dispatch on the tag.
    """

    #: Registered type tag; unique per concrete boundary model.
    boundary_type: str = ""

    # ------------------------------------------------------------------
    # The thermal contract
    # ------------------------------------------------------------------
    @abstractmethod
    def solve_trace(
        self,
        hot_inlet_c: np.ndarray,
        hot_flow_kg_s: np.ndarray,
        ambient_c: np.ndarray,
        cold_flow_kg_s: np.ndarray,
        n_modules: int,
    ) -> BoundaryTraceSolution:
        """Solve every sample of a boundary-condition trace in one pass.

        The four columns are the generic hot-stream inlet temperature,
        hot-stream mass flow, ambient (cold-stream inlet) temperature
        and cold-stream mass flow; what physical streams they describe
        is the boundary's business (coolant/air for the radiator,
        exhaust gas/cold loop for the waste-heat model).  The solve
        must be row-wise elementwise: chunked evaluation has to be
        bit-identical to one-shot evaluation.
        """

    def operating_point(
        self,
        hot_inlet_c: float,
        hot_flow_kg_s: float,
        ambient_c: float,
        cold_flow_kg_s: float,
        n_modules: int,
    ) -> BoundaryOperatingPoint:
        """Scalar solve at one time instant (the reference-engine path).

        The default runs a length-1 :meth:`solve_trace` — bit-identical
        to the corresponding row of a batched solve because the solve
        is row-wise elementwise.  Boundaries with a dedicated scalar
        path (the radiator) may override.
        """
        solution = self.solve_trace(
            np.array([float(hot_inlet_c)]),
            np.array([float(hot_flow_kg_s)]),
            np.array([float(ambient_c)]),
            np.array([float(cold_flow_kg_s)]),
            n_modules,
        )
        return solution.operating_point(0)

    # ------------------------------------------------------------------
    # Loss-free JSON round trip behind the type tag
    # ------------------------------------------------------------------
    @abstractmethod
    def params_dict(self) -> Dict[str, object]:
        """JSON-safe parameter dictionary reproducing this boundary.

        Scalars travel as plain JSON numbers (which round-trip float64
        exactly); nested boundaries (wrappers) embed the full
        ``{"type": ..., "params": ...}`` envelope of their inner model.
        """

    @classmethod
    @abstractmethod
    def from_params_dict(cls, params: Dict[str, object]) -> "ThermalBoundary":
        """Rebuild a boundary from :meth:`params_dict` output."""

    @classmethod
    def solution_from_arrays(
        cls, arrays: Mapping[str, np.ndarray]
    ) -> BoundaryTraceSolution:
        """Rebuild this boundary's trace-solution type from flat arrays.

        The physics cache stores solutions via
        :meth:`BoundaryTraceSolution.to_arrays` and rebuilds them here,
        so boundaries whose :meth:`solve_trace` returns a richer
        subclass override this to restore it.
        """
        return BoundaryTraceSolution.from_arrays(arrays)

    def to_json_dict(self) -> Dict[str, object]:
        """The tagged envelope: ``{"type": <tag>, "params": {...}}``."""
        return boundary_to_json_dict(self)

    def fingerprint_tokens(self) -> bytes:
        """Lossless byte tokens of the type tag plus every parameter.

        Feeds :func:`repro.sim.cache.physics_fingerprint`; two
        boundaries of different registered types never share tokens
        even with identical parameter floats.
        """
        return f"boundary={self.boundary_type};".encode() + _param_tokens(
            self.params_dict()
        )


def _param_tokens(value: object, prefix: str = "") -> bytes:
    """Canonical byte tokens of one (possibly nested) parameter value.

    Dict keys are visited in sorted order so the token stream does not
    depend on dict construction order; floats render as ``float.hex``
    (lossless), other JSON scalars by type-tagged repr.
    """
    if isinstance(value, dict):
        chunks = [f"{prefix}{{;".encode()]
        for key in sorted(value):
            chunks.append(_param_tokens(value[key], prefix=f"{prefix}{key}."))
        chunks.append(f"{prefix}}};".encode())
        return b"".join(chunks)
    if isinstance(value, bool):
        return f"{prefix}=b{int(value)};".encode()
    if isinstance(value, float):
        return f"{prefix}={value.hex()};".encode()
    if isinstance(value, int):
        return f"{prefix}=i{value};".encode()
    if value is None:
        return f"{prefix}=null;".encode()
    return f"{prefix}=s{value};".encode()


# ----------------------------------------------------------------------
# The type-tag registry
# ----------------------------------------------------------------------
_BOUNDARY_TYPES: Dict[str, Type[ThermalBoundary]] = {}
_BUILTINS_LOADED = False


def register_boundary(cls: Type[ThermalBoundary]) -> Type[ThermalBoundary]:
    """Register a boundary class under its ``boundary_type`` tag.

    Usable as a class decorator.  Re-registering the same class is a
    no-op; a *different* class under an already-taken tag is refused —
    silently shadowing a tag would make manifests ambiguous.
    """
    tag = cls.boundary_type
    if not tag:
        raise ConfigurationError(
            f"{cls.__name__} must set a non-empty boundary_type tag"
        )
    existing = _BOUNDARY_TYPES.get(tag)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"boundary type tag {tag!r} is already registered by "
            f"{existing.__name__}"
        )
    _BOUNDARY_TYPES[tag] = cls
    return cls


def _ensure_builtins() -> None:
    """Import the built-in boundaries so their tags are registered.

    Lazy because the radiator module imports *this* module; the
    registry only needs the concrete classes at lookup time.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.thermal.coupling  # noqa: F401  (registers on import)
    import repro.thermal.exhaust  # noqa: F401
    import repro.thermal.radiator  # noqa: F401

    _BUILTINS_LOADED = True


def boundary_class(tag: str) -> Type[ThermalBoundary]:
    """The registered boundary class for one type tag."""
    _ensure_builtins()
    cls = _BOUNDARY_TYPES.get(tag)
    if cls is None:
        raise ConfigurationError(
            f"unknown boundary type {tag!r} "
            f"(registered: {', '.join(sorted(_BOUNDARY_TYPES)) or 'none'})"
        )
    return cls


def registered_boundary_types() -> Dict[str, Type[ThermalBoundary]]:
    """Snapshot of the tag-to-class registry (built-ins included)."""
    _ensure_builtins()
    return dict(_BOUNDARY_TYPES)


def boundary_to_json_dict(boundary: ThermalBoundary) -> Dict[str, object]:
    """Serialise any boundary as its tagged envelope."""
    _ensure_builtins()
    tag = boundary.boundary_type
    if _BOUNDARY_TYPES.get(tag) is not type(boundary):
        raise ConfigurationError(
            f"{type(boundary).__name__} (tag {tag!r}) is not the "
            f"registered class for its tag; call register_boundary first"
        )
    return {"type": tag, "params": boundary.params_dict()}


def boundary_from_json_dict(data: Mapping[str, object]) -> ThermalBoundary:
    """Rebuild a boundary from its tagged envelope."""
    if not isinstance(data, Mapping) or "type" not in data:
        raise ConfigurationError(
            "boundary JSON must be a {'type': ..., 'params': ...} envelope"
        )
    cls = boundary_class(str(data["type"]))
    return cls.from_params_dict(dict(data.get("params") or {}))
