"""Radiator thermal substrate.

Implements Section II of the paper:

* :mod:`repro.thermal.coolant` — fluid property sets and capacity rates
  for the engine coolant and ambient air streams.
* :mod:`repro.thermal.heat_exchanger` — the finned-tube cross-flow
  exchanger (coolant in tubes) evaluated with the effectiveness-NTU
  method from Bergman, *Introduction to Heat Transfer* [8].
* :mod:`repro.thermal.radiator` — the S-shaped 1-D radiator of Fig. 2
  with the paper's Eq. (1) exponential surface-temperature profile and
  the TEG module placement along it.
"""

from repro.thermal.coolant import (
    AIR,
    ETHYLENE_GLYCOL_50_50,
    FluidProperties,
    FluidStream,
)
from repro.thermal.heat_exchanger import (
    CrossFlowHeatExchanger,
    HeatExchangerSolution,
    UAModel,
    effectiveness_crossflow_both_unmixed,
    effectiveness_crossflow_cmax_mixed,
)
from repro.thermal.multipath import MultiPathRadiator, PathImbalance
from repro.thermal.radiator import (
    Radiator,
    RadiatorGeometry,
    RadiatorOperatingPoint,
    surface_temperature_profile,
)

__all__ = [
    "AIR",
    "CrossFlowHeatExchanger",
    "ETHYLENE_GLYCOL_50_50",
    "FluidProperties",
    "FluidStream",
    "HeatExchangerSolution",
    "MultiPathRadiator",
    "PathImbalance",
    "Radiator",
    "RadiatorGeometry",
    "RadiatorOperatingPoint",
    "UAModel",
    "effectiveness_crossflow_both_unmixed",
    "effectiveness_crossflow_cmax_mixed",
    "surface_temperature_profile",
]
