"""Thermal substrate: pluggable boundaries the TEG chain mounts on.

Implements Section II of the paper and the boundary domains beyond it:

* :mod:`repro.thermal.boundary` — the :class:`ThermalBoundary`
  protocol (batched ``solve_trace`` → per-module hot/cold film
  temperatures, loss-free tagged JSON) and the type-tag registry the
  scenario/shard serialisers and the physics cache dispatch on.
* :mod:`repro.thermal.coolant` — fluid property sets and capacity rates
  for the engine coolant and ambient air streams.
* :mod:`repro.thermal.heat_exchanger` — the finned-tube cross-flow
  exchanger (coolant in tubes) evaluated with the effectiveness-NTU
  method from Bergman, *Introduction to Heat Transfer* [8].
* :mod:`repro.thermal.radiator` — the S-shaped 1-D radiator of Fig. 2
  with the paper's Eq. (1) exponential surface-temperature profile and
  the TEG module placement along it; the first registered boundary
  (``"radiator"``).
* :mod:`repro.thermal.exhaust` — exhaust-gas waste-heat recovery with
  temperature-dependent gas properties (``"exhaust-gas"``).
* :mod:`repro.thermal.coupling` — the finite thermal-coupling contact
  divider wrapping any inner boundary (``"finite-coupling"``).
"""

from repro.thermal.boundary import (
    BoundaryOperatingPoint,
    BoundaryTraceSolution,
    ThermalBoundary,
    boundary_from_json_dict,
    boundary_to_json_dict,
    register_boundary,
    registered_boundary_types,
)
from repro.thermal.coolant import (
    AIR,
    ETHYLENE_GLYCOL_50_50,
    FluidProperties,
    FluidStream,
)
from repro.thermal.coupling import FiniteCouplingBoundary
from repro.thermal.exhaust import ExhaustGasBoundary
from repro.thermal.heat_exchanger import (
    CrossFlowHeatExchanger,
    HeatExchangerSolution,
    UAModel,
    effectiveness_crossflow_both_unmixed,
    effectiveness_crossflow_cmax_mixed,
)
from repro.thermal.multipath import MultiPathRadiator, PathImbalance
from repro.thermal.radiator import (
    Radiator,
    RadiatorGeometry,
    RadiatorOperatingPoint,
    surface_temperature_profile,
)

__all__ = [
    "AIR",
    "BoundaryOperatingPoint",
    "BoundaryTraceSolution",
    "CrossFlowHeatExchanger",
    "ETHYLENE_GLYCOL_50_50",
    "ExhaustGasBoundary",
    "FiniteCouplingBoundary",
    "FluidProperties",
    "FluidStream",
    "HeatExchangerSolution",
    "MultiPathRadiator",
    "PathImbalance",
    "Radiator",
    "RadiatorGeometry",
    "RadiatorOperatingPoint",
    "ThermalBoundary",
    "UAModel",
    "boundary_from_json_dict",
    "boundary_to_json_dict",
    "effectiveness_crossflow_both_unmixed",
    "effectiveness_crossflow_cmax_mixed",
    "register_boundary",
    "registered_boundary_types",
    "surface_temperature_profile",
]
