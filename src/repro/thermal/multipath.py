"""The 2-D radiator as a bank of parallel 1-D coolant paths.

The paper reduces the radiator to one dimension with the remark that
"the actual 2-dimensional radiator structure in a vehicle is a parallel
connection of multiple 1-dimensional ones" (Sec. III-A).  This module
implements exactly that structure: ``n_paths`` identical S-paths share
the coolant supply, each carries its own TEG chain, and per-path
*maldistribution factors* capture the real-world asymmetries (a fan
blowing harder on one side, a partially clogged tube) that make the
2-D case more than ``n_paths`` copies of the 1-D one.

Electrically, each path's chain is reconfigured on its own and the
chains are paralleled at the charger input (see
:mod:`repro.teg.bank`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ModelParameterError
from repro.thermal.radiator import Radiator, RadiatorOperatingPoint


@dataclass(frozen=True)
class PathImbalance:
    """Per-path deviation factors from the even split.

    Attributes
    ----------
    coolant_flow_factors:
        Multipliers on each path's share of the coolant flow; they are
        renormalised so total flow is conserved.
    air_flow_factors:
        Multipliers on each path's share of the air flow, renormalised
        likewise.
    """

    coolant_flow_factors: tuple
    air_flow_factors: tuple

    @classmethod
    def even(cls, n_paths: int) -> "PathImbalance":
        """No maldistribution."""
        return cls((1.0,) * n_paths, (1.0,) * n_paths)

    @classmethod
    def random(
        cls, n_paths: int, spread: float = 0.15, seed: int = 0
    ) -> "PathImbalance":
        """Lognormal-ish maldistribution with the given relative spread."""
        if not 0.0 <= spread < 1.0:
            raise ModelParameterError(f"spread must lie in [0, 1), got {spread}")
        rng = np.random.default_rng(seed)
        coolant = np.clip(rng.normal(1.0, spread, n_paths), 0.3, None)
        air = np.clip(rng.normal(1.0, spread, n_paths), 0.3, None)
        return cls(tuple(coolant), tuple(air))

    def normalised(self, n_paths: int) -> tuple:
        """Return per-path (coolant_share, air_share) fractions."""
        coolant = np.asarray(self.coolant_flow_factors, dtype=float)
        air = np.asarray(self.air_flow_factors, dtype=float)
        if coolant.size != n_paths or air.size != n_paths:
            raise ModelParameterError(
                f"imbalance factors must have length {n_paths}"
            )
        return coolant / coolant.sum(), air / air.sum()


class MultiPathRadiator:
    """A radiator made of ``n_paths`` parallel 1-D coolant paths.

    Parameters
    ----------
    path_radiator:
        The single-path model (its geometry describes one path).
    n_paths:
        Number of parallel paths (rows of the 2-D structure).
    imbalance:
        Flow maldistribution across paths; even by default.
    """

    def __init__(
        self,
        path_radiator: Radiator,
        n_paths: int,
        imbalance: PathImbalance | None = None,
    ) -> None:
        if n_paths < 1:
            raise ModelParameterError(f"n_paths must be >= 1, got {n_paths}")
        self._radiator = path_radiator
        self._n_paths = int(n_paths)
        self._imbalance = imbalance or PathImbalance.even(n_paths)
        # Validate factor lengths eagerly.
        self._imbalance.normalised(n_paths)

    @property
    def n_paths(self) -> int:
        """Number of parallel coolant paths."""
        return self._n_paths

    @property
    def path_radiator(self) -> Radiator:
        """The per-path 1-D model."""
        return self._radiator

    def operating_points(
        self,
        coolant_inlet_c: float,
        total_coolant_flow_kg_s: float,
        ambient_c: float,
        total_air_flow_kg_s: float,
        modules_per_path: int,
    ) -> List[RadiatorOperatingPoint]:
        """Solve every path at the shared boundary conditions.

        The coolant and air flows are split according to the imbalance
        factors; each path then behaves exactly like the paper's 1-D
        radiator.
        """
        coolant_shares, air_shares = self._imbalance.normalised(self._n_paths)
        points = []
        for path in range(self._n_paths):
            points.append(
                self._radiator.operating_point(
                    coolant_inlet_c=coolant_inlet_c,
                    coolant_flow_kg_s=max(
                        total_coolant_flow_kg_s * float(coolant_shares[path]),
                        1.0e-4,
                    ),
                    ambient_c=ambient_c,
                    air_flow_kg_s=max(
                        total_air_flow_kg_s * float(air_shares[path]), 1.0e-4
                    ),
                    n_modules=modules_per_path,
                )
            )
        return points

    def delta_t_matrix(
        self,
        coolant_inlet_c: float,
        total_coolant_flow_kg_s: float,
        ambient_c: float,
        total_air_flow_kg_s: float,
        modules_per_path: int,
    ) -> np.ndarray:
        """Per-path module temperature differences, shape
        ``(n_paths, modules_per_path)``."""
        points = self.operating_points(
            coolant_inlet_c,
            total_coolant_flow_kg_s,
            ambient_c,
            total_air_flow_kg_s,
            modules_per_path,
        )
        return np.vstack([op.delta_t_k for op in points])
