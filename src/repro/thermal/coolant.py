"""Fluid property sets and capacity rates for the radiator streams.

The effectiveness-NTU formulation needs only each stream's *heat
capacity rate* ``C = m_dot * c_p`` (W/K).  Density and viscosity are
carried so the vehicle substrate can convert the flow meter's
volumetric reading (litres/minute, as in the paper's Recordall
instrument) into a mass flow, and so convection scalings have a
physical anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import lpm_to_m3s, require_positive


@dataclass(frozen=True)
class FluidProperties:
    """Thermophysical properties of a heat-exchanger stream.

    Properties are treated as constants over the radiator's operating
    band (~20-110 degC), which is the same simplification the paper's
    Eq. (1) derivation makes.

    Attributes
    ----------
    name:
        Human-readable fluid name.
    density_kg_m3:
        Density, kg/m^3.
    specific_heat_j_kg_k:
        Specific heat capacity c_p, J/(kg K).
    thermal_conductivity_w_m_k:
        Thermal conductivity, W/(m K).
    kinematic_viscosity_m2_s:
        Kinematic viscosity, m^2/s.
    """

    name: str
    density_kg_m3: float
    specific_heat_j_kg_k: float
    thermal_conductivity_w_m_k: float
    kinematic_viscosity_m2_s: float

    def __post_init__(self) -> None:
        require_positive(self.density_kg_m3, "density_kg_m3")
        require_positive(self.specific_heat_j_kg_k, "specific_heat_j_kg_k")
        require_positive(self.thermal_conductivity_w_m_k, "thermal_conductivity_w_m_k")
        require_positive(self.kinematic_viscosity_m2_s, "kinematic_viscosity_m2_s")

    def capacity_rate(self, mass_flow_kg_s: float) -> float:
        """Heat capacity rate ``C = m_dot * c_p`` in W/K."""
        require_positive(mass_flow_kg_s, "mass_flow_kg_s")
        return mass_flow_kg_s * self.specific_heat_j_kg_k

    def mass_flow_from_lpm(self, flow_lpm: float) -> float:
        """Mass flow (kg/s) from a volumetric reading in litres/minute."""
        require_positive(flow_lpm, "flow_lpm")
        return lpm_to_m3s(flow_lpm) * self.density_kg_m3


#: 50/50 water / ethylene-glycol engine coolant around 90 degC.
ETHYLENE_GLYCOL_50_50 = FluidProperties(
    name="water-glycol 50/50",
    density_kg_m3=1030.0,
    specific_heat_j_kg_k=3680.0,
    thermal_conductivity_w_m_k=0.40,
    kinematic_viscosity_m2_s=1.1e-6,
)

#: Pressurised boiler feedwater around 150 degC (industrial-boiler
#: economiser scenarios; liquid phase, so constant properties hold).
WATER = FluidProperties(
    name="water",
    density_kg_m3=917.0,
    specific_heat_j_kg_k=4310.0,
    thermal_conductivity_w_m_k=0.68,
    kinematic_viscosity_m2_s=2.0e-7,
)

#: Ambient air around 35 degC (the radiator's cold stream).
AIR = FluidProperties(
    name="air",
    density_kg_m3=1.12,
    specific_heat_j_kg_k=1007.0,
    thermal_conductivity_w_m_k=0.027,
    kinematic_viscosity_m2_s=1.7e-5,
)


@dataclass(frozen=True)
class FluidStream:
    """A fluid together with its instantaneous flow state.

    Attributes
    ----------
    fluid:
        The property set.
    mass_flow_kg_s:
        Instantaneous mass flow.
    inlet_temp_c:
        Inlet temperature in Celsius.
    """

    fluid: FluidProperties
    mass_flow_kg_s: float
    inlet_temp_c: float

    def __post_init__(self) -> None:
        require_positive(self.mass_flow_kg_s, "mass_flow_kg_s")

    @property
    def capacity_rate_w_k(self) -> float:
        """Heat capacity rate of the stream, W/K."""
        return self.fluid.capacity_rate(self.mass_flow_kg_s)
