"""tegkit — prediction-based fast TEG array reconfiguration.

A faithful, self-contained reproduction of *"Prediction-Based Fast
Thermoelectric Generator Reconfiguration for Energy Harvesting from
Vehicle Radiators"* (DATE 2018): the INOR and DNOR reconfiguration
algorithms, the prior-work EHTR baseline, and every substrate they run
on — TEG device/array electrical models, the effectiveness-NTU
radiator, a vehicle coolant-loop simulator, an MPPT charger, and
MLR/BPNN/SVR temperature predictors.

Quick start::

    from repro import default_scenario, comparison_table

    scenario = default_scenario(duration_s=120.0)
    simulator = scenario.make_simulator()
    results = [
        simulator.run(policy, scenario.make_charger())
        for policy in scenario.make_policies().values()
    ]
    print(comparison_table(results))

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro._about import PAPER_ARXIV, PAPER_TITLE, PAPER_VENUE, __version__
from repro.core import (
    ArrayConfiguration,
    DNORPlanner,
    DNORPolicy,
    PeriodicPolicy,
    ReconfigurationPolicy,
    StaticPolicy,
    SwitchingOverheadModel,
    converter_aware_group_range,
    ehtr,
    grid_configuration,
    grid_for_square_array,
    inor,
)
from repro.errors import (
    ConfigurationError,
    ModelParameterError,
    PredictionError,
    SimulationError,
    TegkitError,
)
from repro.power import (
    BuckBoostConverter,
    LeadAcidBattery,
    PerturbObserveMPPT,
    TEGCharger,
)
from repro.prediction import (
    BPNNPredictor,
    MLRPredictor,
    SVRPredictor,
    mape,
    walk_forward_evaluation,
)
from repro.sim import (
    ExperimentCase,
    ExperimentRunner,
    HarvestSimulator,
    Scenario,
    ScenarioRegistry,
    SimulationResult,
    TracePhysics,
    build_named_scenario,
    comparison_table,
    default_registry,
    default_scenario,
    grid_cases,
    ideal_power_series,
)
from repro.teg import (
    MODULE_CATALOG,
    SwitchFabric,
    TEGArray,
    TEGModule,
    TGM_199_1_4_0_8,
    get_module,
)
from repro.thermal import (
    BoundaryTraceSolution,
    ExhaustGasBoundary,
    FiniteCouplingBoundary,
    Radiator,
    RadiatorGeometry,
    ThermalBoundary,
    boundary_from_json_dict,
    boundary_to_json_dict,
    registered_boundary_types,
)
from repro.vehicle import (
    DriveCycle,
    EngineModel,
    RadiatorTrace,
    build_trace,
    default_radiator,
    porter_ii_trace,
    synthetic_highway,
    synthetic_mixed,
    synthetic_urban,
)

__all__ = [
    "ArrayConfiguration",
    "BPNNPredictor",
    "BoundaryTraceSolution",
    "BuckBoostConverter",
    "ConfigurationError",
    "DNORPlanner",
    "DNORPolicy",
    "DriveCycle",
    "EngineModel",
    "ExhaustGasBoundary",
    "ExperimentCase",
    "ExperimentRunner",
    "FiniteCouplingBoundary",
    "HarvestSimulator",
    "LeadAcidBattery",
    "MLRPredictor",
    "MODULE_CATALOG",
    "ModelParameterError",
    "PAPER_ARXIV",
    "PAPER_TITLE",
    "PAPER_VENUE",
    "PerturbObserveMPPT",
    "PeriodicPolicy",
    "PredictionError",
    "Radiator",
    "RadiatorGeometry",
    "RadiatorTrace",
    "ReconfigurationPolicy",
    "SVRPredictor",
    "Scenario",
    "ScenarioRegistry",
    "SimulationError",
    "SimulationResult",
    "StaticPolicy",
    "SwitchFabric",
    "SwitchingOverheadModel",
    "TEGArray",
    "TEGCharger",
    "TEGModule",
    "TGM_199_1_4_0_8",
    "TegkitError",
    "ThermalBoundary",
    "TracePhysics",
    "__version__",
    "boundary_from_json_dict",
    "boundary_to_json_dict",
    "build_named_scenario",
    "build_trace",
    "comparison_table",
    "converter_aware_group_range",
    "default_radiator",
    "default_registry",
    "default_scenario",
    "ehtr",
    "get_module",
    "grid_cases",
    "grid_configuration",
    "grid_for_square_array",
    "ideal_power_series",
    "inor",
    "mape",
    "porter_ii_trace",
    "registered_boundary_types",
    "synthetic_highway",
    "synthetic_mixed",
    "synthetic_urban",
    "walk_forward_evaluation",
]
