"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`TegkitError` so applications can
catch every library-originated failure with a single ``except`` clause
while still distinguishing configuration problems from numerical ones.
"""


class TegkitError(Exception):
    """Base class for every error raised by the tegkit library."""


class ConfigurationError(TegkitError):
    """An array configuration is structurally invalid.

    Raised when a partition does not cover the module chain, group
    boundaries are out of order, or a configuration is applied to an
    array of a different size.
    """


class ModelParameterError(TegkitError):
    """A physical model received parameters outside its validity domain.

    Examples: negative resistance, non-positive couple count, zero fluid
    capacity rate, or a converter efficiency outside ``(0, 1]``.
    """


class PredictionError(TegkitError):
    """A predictor was used incorrectly.

    Raised for unfitted predictors asked to forecast, inconsistent
    feature dimensions, or insufficient history for the requested lag
    window.
    """


class SimulationError(TegkitError):
    """The closed-loop simulation was configured inconsistently.

    Raised when trace length, module count and controller wiring do not
    line up, or when a simulation step produces physically impossible
    values (for example negative gross power).
    """
