"""The static grid baseline (the paper's "10 x 10 TEG module array").

The baseline never reconfigures: the chain is hard-wired into equal
parallel groups in series — for the paper's 100-module array, ten
groups of ten.  The charger still performs MPPT on the fixed topology,
so everything the baseline loses comes from module mismatch under the
temperature gradient plus whatever the converter loses when the fixed
voltage drifts from its preference.
"""

from __future__ import annotations

import math

from repro.core.config import ArrayConfiguration
from repro.errors import ConfigurationError


def grid_configuration(n_modules: int, n_groups: int) -> ArrayConfiguration:
    """Equal-size series-of-parallel grid, e.g. ``grid_configuration(100, 10)``."""
    return ArrayConfiguration.uniform(n_modules, n_groups)


def grid_for_square_array(n_modules: int) -> ArrayConfiguration:
    """The paper's square baseline: ``sqrt(N)`` groups of ``sqrt(N)`` modules.

    Raises
    ------
    ConfigurationError
        If ``n_modules`` is not a perfect square, since the paper's
        baseline is only defined for square arrays.
    """
    root = math.isqrt(int(n_modules))
    if root * root != n_modules:
        raise ConfigurationError(
            f"square baseline needs a perfect-square module count, got {n_modules}"
        )
    return ArrayConfiguration.uniform(n_modules, root)
