"""Oracle DNOR — Algorithm 2 with perfect future knowledge.

Replaces the MLR forecast inside the DNOR decision with the *actual*
future temperature distribution.  The oracle is unrealisable on a
vehicle, but it bounds from above what any better predictor could buy:
if MLR-DNOR harvests within a hair of oracle-DNOR, prediction accuracy
is not the binding constraint — the paper's implicit argument for
settling on a simple linear model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import ArrayConfiguration
from repro.core.controller import ReconfigurationPolicy
from repro.core.dnor import DNORPlanner
from repro.errors import ConfigurationError
from repro.prediction.base import LagSeriesPredictor


class _OracleForecaster(LagSeriesPredictor):
    """A 'predictor' that replays a known future.

    The closed-loop simulator advances one row per control period;
    this forecaster is driven by :class:`OracleDNORPolicy`, which tells
    it the current row index before every plan() call.
    """

    def __init__(self, future_temps: np.ndarray) -> None:
        super().__init__(lags=1, train_window=None)
        self._future = np.asarray(future_temps, dtype=float)
        if self._future.ndim != 2:
            raise ConfigurationError(
                f"future_temps must be 2-D, got shape {self._future.shape}"
            )
        self._cursor = 0

    @property
    def name(self) -> str:
        """Display name."""
        return "Oracle"

    def set_cursor(self, row_index: int) -> None:
        """Position the oracle at the current simulation row."""
        if not 0 <= row_index < self._future.shape[0]:
            raise ConfigurationError(
                f"row_index {row_index} out of range for "
                f"{self._future.shape[0]} rows"
            )
        self._cursor = int(row_index)

    def _fit_impl(self, history: np.ndarray) -> None:
        # Nothing to learn: the future is known.
        return None

    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        raise NotImplementedError  # forecast() is overridden

    def forecast(self, history: np.ndarray, n_steps: int) -> np.ndarray:
        """Return the true next ``n_steps`` rows (clamped at the end)."""
        if n_steps < 1:
            raise ConfigurationError(f"n_steps must be >= 1, got {n_steps}")
        rows = []
        for k in range(1, n_steps + 1):
            idx = min(self._cursor + k, self._future.shape[0] - 1)
            rows.append(self._future[idx])
        return np.vstack(rows)


class OracleDNORPolicy(ReconfigurationPolicy):
    """DNOR with the forecast replaced by ground truth.

    Parameters
    ----------
    planner:
        A planner whose predictor IS an oracle built over the full
        per-step temperature matrix (use :func:`make_oracle_policy`).
    future_temps:
        ``(n_steps, N)`` true module temperatures, one row per control
        period, aligned with the simulation's trace.
    """

    def __init__(self, planner: DNORPlanner, future_temps: np.ndarray) -> None:
        if not isinstance(planner.predictor, _OracleForecaster):
            raise ConfigurationError(
                "planner must be built around the oracle forecaster; "
                "use make_oracle_policy()"
            )
        self._planner = planner
        self._future = np.asarray(future_temps, dtype=float)
        self._history: list = []
        self._current: Optional[ArrayConfiguration] = None
        self._next_epoch_s = 0.0
        self._step = 0
        self._switch_count = 0

    @property
    def name(self) -> str:
        """Scheme name."""
        return "OracleDNOR"

    @property
    def planner(self) -> DNORPlanner:
        """The decision engine."""
        return self._planner

    def decide(
        self, time_s: float, module_temps_c: np.ndarray, ambient_c: float
    ) -> Optional[ArrayConfiguration]:
        """Epoch decisions exactly like DNOR, with the true future."""
        self._history.append(np.asarray(module_temps_c, dtype=float))
        step = self._step
        self._step += 1
        if time_s + 1.0e-9 < self._next_epoch_s:
            return None
        self._next_epoch_s = time_s + self._planner.epoch_seconds

        oracle: _OracleForecaster = self._planner.predictor  # type: ignore[assignment]
        oracle.set_cursor(min(step, self._future.shape[0] - 1))
        history = np.vstack(self._history[-8:])
        decision = self._planner.plan(history, ambient_c, self._current, time_s)
        if decision.switch:
            self._current = decision.config
            self._switch_count += 1
            return decision.config
        return None

    def reset(self) -> None:
        """Clear history and epoch state."""
        self._history = []
        self._current = None
        self._next_epoch_s = 0.0
        self._step = 0
        self._switch_count = 0


def make_oracle_policy(scenario, future_temps: np.ndarray) -> OracleDNORPolicy:
    """Build an oracle-DNOR policy for a scenario.

    Parameters
    ----------
    scenario:
        A :class:`repro.sim.scenario.Scenario`; supplies module,
        charger, overhead and horizon settings.
    future_temps:
        The true per-step module temperatures the simulator will
        produce (e.g. from
        :func:`repro.sim.ideal.ideal_power_series`-style precomputation
        of the radiator at the trace's true boundary conditions).
    """
    planner = DNORPlanner(
        module=scenario.module,
        charger=scenario.make_charger(with_battery=False),
        overhead=scenario.overhead,
        predictor=_OracleForecaster(future_temps),
        tp_seconds=scenario.tp_seconds,
        sample_dt_s=scenario.trace.dt_s,
    )
    return OracleDNORPolicy(planner, future_temps)
