"""EHTR — the prior-work reconfiguration baseline, reconstructed.

The paper compares against the *Efficient Heuristic TEG
Reconfiguration* algorithm of Baek et al. (ISLPED 2017) [2], for which
no source is available.  This reconstruction matches every published
fact about it (see DESIGN.md section 3):

* near-optimal output — Table I puts it within 1% of INOR;
* **no** converter-aware group-count restriction (that refinement is
  this paper's contribution), so it scans every ``n`` from 1 to N and
  ranks by raw electrical MPP power;
* a balance-refinement phase on top of the greedy split — the extra
  thoroughness that gives it its higher complexity: worst case the
  sweeps run O(n) times per group count, giving the O(N^3) the paper
  quotes; in practice they converge in a few passes, landing the
  measured runtime around an order of magnitude above INOR at N = 100,
  consistent with Table I's 9x gap.

The refinement minimises the squared imbalance of group MPP-current
sums by hill-climbing on boundary positions, using prefix sums for
O(1) move evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ArrayConfiguration
from repro.core.inor import greedy_balanced_partition
from repro.errors import ConfigurationError
from repro.teg.module import MPPPoint
from repro.teg.network import array_mpp


@dataclass(frozen=True)
class EHTRResult:
    """Outcome of one EHTR invocation.

    Attributes
    ----------
    config:
        The selected configuration.
    mpp:
        Its exact electrical MPP.
    refinement_sweeps:
        Total boundary-refinement sweeps executed across all group
        counts (diagnostic for the complexity claims).
    """

    config: ArrayConfiguration
    mpp: MPPPoint
    refinement_sweeps: int


def _refine_boundaries(
    starts: np.ndarray,
    prefix_currents: np.ndarray,
    n_modules: int,
    ideal: float,
    max_sweeps: int,
) -> int:
    """Hill-climb boundary positions to minimise current imbalance.

    Mutates ``starts`` in place; returns the number of sweeps run.
    A move shifts one internal boundary by +/-1 module when that
    reduces the summed squared deviation of the two adjacent groups'
    MPP-current sums from ``ideal``.
    """
    n_groups = starts.size
    if n_groups < 2:
        return 0

    def group_sum(j: int) -> float:
        lo = starts[j]
        hi = starts[j + 1] if j + 1 < n_groups else n_modules
        return prefix_currents[hi] - prefix_currents[lo]

    sweeps = 0
    improved = True
    while improved and sweeps < max_sweeps:
        improved = False
        sweeps += 1
        for j in range(1, n_groups):
            left = group_sum(j - 1)
            right = group_sum(j)
            base_cost = (left - ideal) ** 2 + (right - ideal) ** 2
            boundary = starts[j]
            # Shift right: move module `boundary` into the left group.
            hi = starts[j + 1] if j + 1 < n_groups else n_modules
            if boundary + 1 < hi:
                moved = prefix_currents[boundary + 1] - prefix_currents[boundary]
                cost = (left + moved - ideal) ** 2 + (right - moved - ideal) ** 2
                if cost < base_cost:
                    starts[j] = boundary + 1
                    improved = True
                    continue
            # Shift left: move module `boundary - 1` into the right group.
            if boundary - 1 > starts[j - 1]:
                moved = prefix_currents[boundary] - prefix_currents[boundary - 1]
                cost = (left - moved - ideal) ** 2 + (right + moved - ideal) ** 2
                if cost < base_cost:
                    starts[j] = boundary - 1
                    improved = True
    return sweeps


def ehtr(
    emf: np.ndarray,
    resistance: np.ndarray,
    max_sweeps_per_n: Optional[int] = None,
) -> EHTRResult:
    """Run the reconstructed EHTR on per-module Thevenin parameters.

    Parameters
    ----------
    emf, resistance:
        Module EMFs and internal resistances.
    max_sweeps_per_n:
        Cap on refinement sweeps per group count; ``None`` uses the
        group count itself (the O(N^3) worst case the paper quotes).
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    if emf.shape != resistance.shape or emf.ndim != 1 or emf.size == 0:
        raise ConfigurationError(
            f"emf/resistance must be matching 1-D arrays, got "
            f"{emf.shape} and {resistance.shape}"
        )
    n_modules = emf.size
    mpp_currents = emf / (2.0 * resistance)
    prefix = np.concatenate(([0.0], np.cumsum(mpp_currents)))
    total = float(prefix[-1])

    best_power = -math.inf
    best_starts: Optional[np.ndarray] = None
    best_mpp: Optional[MPPPoint] = None
    total_sweeps = 0

    for n_groups in range(1, n_modules + 1):
        starts = greedy_balanced_partition(mpp_currents, n_groups)
        cap = n_groups if max_sweeps_per_n is None else max_sweeps_per_n
        if cap > 0:
            total_sweeps += _refine_boundaries(
                starts, prefix, n_modules, total / n_groups, cap
            )
        mpp = array_mpp(emf, resistance, starts)
        if mpp.power_w > best_power:
            best_power = mpp.power_w
            best_starts = starts.copy()
            best_mpp = mpp

    assert best_starts is not None and best_mpp is not None
    return EHTRResult(
        config=ArrayConfiguration(
            starts=tuple(int(s) for s in best_starts), n_modules=n_modules
        ),
        mpp=best_mpp,
        refinement_sweeps=total_sweeps,
    )
