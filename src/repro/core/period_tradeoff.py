"""The prior-work alternative: tuning a fixed reconfiguration period.

Before prediction-gated switching, the literature (Kim et al. [5],
Ding et al. [6, 7]) attacked switching overhead by sweeping the fixed
reconfiguration period for the best net energy — the paper's
introduction notes "the results are not remarkable".  This module
implements that approach faithfully so the claim can be tested: run
INOR at a range of fixed periods, pick the best, and compare it
against DNOR on the same trace.

Expected result (and what the bench asserts): the tuned fixed period
recovers part of the overhead but stays below DNOR, because no single
period suits both the calm stretches and the transients — which is
precisely the paper's motivation for prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import SimulationError
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class PeriodSweepPoint:
    """Net-energy outcome of one fixed reconfiguration period."""

    period_s: float
    result: SimulationResult

    @property
    def energy_output_j(self) -> float:
        """Net output energy at this period."""
        return self.result.energy_output_j


@dataclass(frozen=True)
class PeriodTradeoff:
    """Full sweep outcome plus the tuned-period winner."""

    points: List[PeriodSweepPoint]

    @property
    def best(self) -> PeriodSweepPoint:
        """The period with the highest net energy."""
        return max(self.points, key=lambda p: p.energy_output_j)

    def table(self) -> str:
        """Render the sweep as the trade-off table of the prior work."""
        lines = [
            f"{'period (s)':>11s} {'net energy (J)':>15s} "
            f"{'overhead (J)':>13s} {'switches':>9s}"
        ]
        for point in self.points:
            marker = "  <- best" if point is self.best else ""
            lines.append(
                f"{point.period_s:11.2f} {point.energy_output_j:15.1f} "
                f"{point.result.switch_overhead_j:13.1f} "
                f"{point.result.switch_count:9d}{marker}"
            )
        return "\n".join(lines)


def sweep_fixed_period(
    scenario: Scenario,
    periods_s: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
) -> PeriodTradeoff:
    """Run INOR at each fixed period over the scenario's trace.

    Parameters
    ----------
    scenario:
        The experiment setup; its control-period field is overridden
        per sweep point.
    periods_s:
        Fixed reconfiguration periods to evaluate.  Each must be a
        multiple of the trace sampling period.

    Raises
    ------
    SimulationError
        If a period is not a (near-)multiple of the trace step.
    """
    if len(periods_s) == 0:
        raise SimulationError("period sweep needs at least one period")
    dt = scenario.trace.dt_s
    points: List[PeriodSweepPoint] = []
    for period in periods_s:
        steps = period / dt
        if abs(steps - round(steps)) > 1e-9:
            raise SimulationError(
                f"period {period} s is not a multiple of the trace step {dt} s"
            )
        simulator = scenario.make_simulator()
        from repro.core.controller import PeriodicPolicy  # local: avoid cycle

        policy = PeriodicPolicy(
            module=scenario.module,
            algorithm="inor",
            period_s=float(period),
            charger=scenario.make_charger(with_battery=False),
        )
        result = simulator.run(policy, scenario.make_charger())
        points.append(PeriodSweepPoint(period_s=float(period), result=result))
    return PeriodTradeoff(points=points)
