"""Core reconfiguration algorithms — the paper's contribution.

* :mod:`repro.core.config` — the configuration value type.
* :mod:`repro.core.inor` — Algorithm 1: Instantaneous Near-Optimal
  Reconfiguration, O(N).
* :mod:`repro.core.dnor` — Algorithm 2: Durable Near-Optimal
  Reconfiguration (prediction-gated switching).
* :mod:`repro.core.ehtr` — reconstruction of the prior-work Efficient
  Heuristic TEG Reconfiguration baseline (Baek et al., ISLPED'17).
* :mod:`repro.core.baseline` — the static 10 x 10 grid baseline.
* :mod:`repro.core.exhaustive` — exact optima (brute force and
  parametric DP) used as references in tests and ablations.
* :mod:`repro.core.overhead` — the switching-overhead model
  (Sec. III-C, after Kim et al. [5]).
* :mod:`repro.core.controller` — policy objects the closed-loop
  simulator drives.
"""

from repro.core.baseline import grid_configuration, grid_for_square_array
from repro.core.config import ArrayConfiguration
from repro.core.dnor import DNORDecision, DNORPlanner
from repro.core.ehtr import EHTRResult, ehtr
from repro.core.exhaustive import (
    best_partition_brute_force,
    best_partition_parametric_dp,
)
from repro.core.fault_aware import (
    FaultAwareResult,
    fault_aware_candidates,
    fault_aware_inor,
)
from repro.core.inor import (
    InorResult,
    converter_aware_group_range,
    greedy_balanced_partition,
    inor,
)
from repro.core.oracle import OracleDNORPolicy, make_oracle_policy
from repro.core.overhead import OverheadEvent, SwitchingOverheadModel
from repro.core.period_tradeoff import (
    PeriodSweepPoint,
    PeriodTradeoff,
    sweep_fixed_period,
)
from repro.core.controller import (
    DNORPolicy,
    PeriodicPolicy,
    ReconfigurationPolicy,
    StaticPolicy,
)

__all__ = [
    "ArrayConfiguration",
    "DNORDecision",
    "DNORPlanner",
    "DNORPolicy",
    "EHTRResult",
    "FaultAwareResult",
    "InorResult",
    "OracleDNORPolicy",
    "OverheadEvent",
    "PeriodSweepPoint",
    "PeriodTradeoff",
    "PeriodicPolicy",
    "ReconfigurationPolicy",
    "StaticPolicy",
    "SwitchingOverheadModel",
    "best_partition_brute_force",
    "best_partition_parametric_dp",
    "converter_aware_group_range",
    "ehtr",
    "fault_aware_candidates",
    "fault_aware_inor",
    "greedy_balanced_partition",
    "grid_configuration",
    "grid_for_square_array",
    "inor",
    "make_oracle_policy",
    "sweep_fixed_period",
]
