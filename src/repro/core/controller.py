"""Reconfiguration policies — the objects the simulator drives.

A policy sees, at every control period, the sensed module temperature
distribution and answers with either a new configuration to apply or
``None`` to keep the current one.  Four policies cover the paper's
four schemes:

* :class:`PeriodicPolicy` with ``algorithm="inor"`` — INOR at a fixed
  0.5 s period (the paper's INOR scheme).
* :class:`PeriodicPolicy` with ``algorithm="ehtr"`` — the prior-work
  baseline at the same period.
* :class:`DNORPolicy` — Algorithm 2 with prediction-gated switching.
* :class:`StaticPolicy` — the hard-wired grid baseline.
"""

from __future__ import annotations

import abc
from typing import Deque, Optional, Tuple
from collections import deque

import numpy as np

from repro.core.config import ArrayConfiguration
from repro.core.dnor import DNORDecision, DNORPlanner, thevenin_from_temps
from repro.core.ehtr import ehtr
from repro.core.inor import inor, parse_inor_kernel
from repro.errors import ConfigurationError
from repro.power.charger import TEGCharger
from repro.teg.model import ModuleModel


class ReconfigurationPolicy(abc.ABC):
    """Interface between the simulator and a reconfiguration scheme."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Scheme name as it appears in result tables."""

    @abc.abstractmethod
    def decide(
        self, time_s: float, module_temps_c: np.ndarray, ambient_c: float
    ) -> Optional[ArrayConfiguration]:
        """Return a configuration to apply now, or ``None`` to keep.

        Called once per control period with the *sensed* hot-side
        temperature distribution.
        """

    def reset(self) -> None:
        """Forget internal state between simulation runs."""


class StaticPolicy(ReconfigurationPolicy):
    """A fixed configuration, applied once and never changed.

    The paper's baseline is ``StaticPolicy`` with the 10 x 10 grid.
    """

    def __init__(self, config: ArrayConfiguration, name: str = "Baseline") -> None:
        self._config = config
        self._name = name
        self._applied = False

    @property
    def name(self) -> str:
        """Scheme name."""
        return self._name

    @property
    def config(self) -> ArrayConfiguration:
        """The wired-in configuration."""
        return self._config

    def decide(
        self, time_s: float, module_temps_c: np.ndarray, ambient_c: float
    ) -> Optional[ArrayConfiguration]:
        """Apply the fixed configuration on the first call only."""
        if self._applied:
            return None
        self._applied = True
        return self._config

    def reset(self) -> None:
        """Allow the initial application again."""
        self._applied = False


class PeriodicPolicy(ReconfigurationPolicy):
    """Run a reconfiguration algorithm at a fixed period.

    Parameters
    ----------
    module:
        TEG module model for the temperature -> Thevenin mapping.
    algorithm:
        ``"inor"`` or ``"ehtr"``.
    period_s:
        Reconfiguration period; the paper fixes 0.5 s following Kim et
        al. [5].
    charger:
        Supplied to INOR for its converter-aware ranking; EHTR (the
        prior work) ignores it by design.
    kernel:
        INOR candidate-evaluation kernel (``"batched"`` — the default
        fast path — the ``"scalar"`` reference loop, or
        ``"batched:<backend>"`` naming the :mod:`repro.backend`
        implementation of the segmented reductions); bit-identical
        decisions either way.  EHTR ignores it.
    """

    def __init__(
        self,
        module: ModuleModel,
        algorithm: str = "inor",
        period_s: float = 0.5,
        charger: Optional[TEGCharger] = None,
        kernel: str = "batched",
    ) -> None:
        if algorithm not in ("inor", "ehtr"):
            raise ConfigurationError(
                f"algorithm must be 'inor' or 'ehtr', got {algorithm!r}"
            )
        if period_s <= 0.0:
            raise ConfigurationError(f"period_s must be > 0, got {period_s}")
        parse_inor_kernel(kernel)  # name validation only; fails loudly here
        self._module = module
        self._algorithm = algorithm
        self._period_s = float(period_s)
        self._charger = charger
        self._kernel = kernel
        self._next_run_s = 0.0

    @property
    def name(self) -> str:
        """Scheme name."""
        return self._algorithm.upper()

    @property
    def period_s(self) -> float:
        """Reconfiguration period."""
        return self._period_s

    def decide(
        self, time_s: float, module_temps_c: np.ndarray, ambient_c: float
    ) -> Optional[ArrayConfiguration]:
        """Recompute the configuration whenever the period elapses."""
        if time_s + 1.0e-9 < self._next_run_s:
            return None
        self._next_run_s = time_s + self._period_s
        emf, res = thevenin_from_temps(self._module, module_temps_c, ambient_c)
        if self._algorithm == "inor":
            return inor(
                emf, res, charger=self._charger, kernel=self._kernel
            ).config
        return ehtr(emf, res).config

    def reset(self) -> None:
        """Restart the period clock."""
        self._next_run_s = 0.0


class DNORPolicy(ReconfigurationPolicy):
    """Algorithm 2 wired into the control loop.

    Collects the sensed temperature history at every control period and
    invokes the :class:`~repro.core.dnor.DNORPlanner` every
    ``t_p + 1`` seconds; between epochs the configuration is durable.

    Parameters
    ----------
    planner:
        The Algorithm 2 decision engine.
    history_rows:
        Maximum history kept for the predictor (rows of the control
        period's sampling).
    """

    def __init__(self, planner: DNORPlanner, history_rows: int = 360) -> None:
        if history_rows < 2:
            raise ConfigurationError(f"history_rows must be >= 2, got {history_rows}")
        self._planner = planner
        self._history: Deque[np.ndarray] = deque(maxlen=int(history_rows))
        self._current: Optional[ArrayConfiguration] = None
        self._next_epoch_s = 0.0
        self._timed_decisions: list = []
        self._rows_since_plan = 0

    @property
    def name(self) -> str:
        """Scheme name."""
        return "DNOR"

    @property
    def planner(self) -> DNORPlanner:
        """The decision engine."""
        return self._planner

    @property
    def decisions(self) -> Tuple[DNORDecision, ...]:
        """All epoch decisions taken so far (diagnostics)."""
        return tuple(decision for _, decision in self._timed_decisions)

    @property
    def switch_times_s(self) -> Tuple[float, ...]:
        """Simulation times of executed switches (Fig. 6/7 markers)."""
        return tuple(
            t for t, decision in self._timed_decisions if decision.switch
        )

    @property
    def current_config(self) -> Optional[ArrayConfiguration]:
        """The durable configuration of the running epoch (``None``
        before the first adoption) — the ``current`` argument an
        external epoch runner passes to the planner."""
        return self._current

    def observe(
        self, time_s: float, module_temps_c: np.ndarray
    ) -> Optional[Tuple[np.ndarray, int]]:
        """Record one sensed sample; report when an epoch is due.

        The sensing half of :meth:`decide`, split out so external
        epoch runners (the grid-stacked simulation fabric, the
        streaming hub's micro-batcher) can collect due epochs from many
        policies and plan them through one stacked
        :func:`~repro.core.dnor.dnor_stack` call.  Returns ``None``
        between epochs; at an epoch boundary, advances the epoch clock
        and returns ``(history, new_rows)`` — exactly the arguments
        :meth:`decide` would hand the planner.
        """
        self._history.append(np.asarray(module_temps_c, dtype=float))
        self._rows_since_plan += 1
        if time_s + 1.0e-9 < self._next_epoch_s:
            return None
        self._next_epoch_s = time_s + self._planner.epoch_seconds
        history = np.vstack(self._history)
        new_rows = self._rows_since_plan
        self._rows_since_plan = 0
        return history, new_rows

    def commit(
        self, time_s: float, decision: DNORDecision
    ) -> Optional[ArrayConfiguration]:
        """Record an epoch decision; return the configuration on switch.

        The bookkeeping half of :meth:`decide`: external epoch runners
        feed back the (stacked or per-lane) planner decision and get
        the policy's contract answer — the new configuration to apply,
        or ``None`` to keep.
        """
        self._timed_decisions.append((time_s, decision))
        if decision.switch:
            self._current = decision.config
            return decision.config
        return None

    def decide(
        self, time_s: float, module_temps_c: np.ndarray, ambient_c: float
    ) -> Optional[ArrayConfiguration]:
        """Record the sample; run an epoch decision when one is due."""
        due = self.observe(time_s, module_temps_c)
        if due is None:
            return None
        history, new_rows = due
        decision = self._planner.plan(
            history, ambient_c, self._current, time_s, new_rows=new_rows,
        )
        return self.commit(time_s, decision)

    def reset(self) -> None:
        """Clear history, epoch state and the predictor stream."""
        self._history.clear()
        self._current = None
        self._next_epoch_s = 0.0
        self._timed_decisions = []
        self._rows_since_plan = 0
        self._planner.reset_stream()
