"""Algorithm 1 — Instantaneous Near-Optimal Reconfiguration (INOR).

Pseudo-code from the paper::

    Function C(g1..gn) = INOR(Ti)
      compute I_MPP_i for every module
      Pmax = 0
      for n from n_min to n_max:
          g1 = 1; I_ideal = (1/n) * sum(I_MPP_i)
          for j from 2 to n:
              pick g_j minimising | sum_{i=g_{j-1}}^{g_j - 1} I_MPP_i - I_ideal |
          evaluate P_MPP of C_n
          keep the best
      return the best configuration

The inner boundary search is a single left-to-right walk (the group
sum grows monotonically for positive MPP currents, so the error is
V-shaped in the cut position), which makes one ``n`` cost O(N) and the
whole call O((n_max - n_min + 1) * N) — the paper's O(N) for the fixed
converter-friendly range of ``n``.

``[n_min, n_max]`` realises the paper's Section III-B requirement: the
range is derived from the charger's preferred input-voltage window so
every candidate keeps the converter near peak efficiency
(:func:`converter_aware_group_range`).  When a charger is supplied,
candidates are ranked by *delivered* power (array MPP power times
converter efficiency at the MPP voltage); without one, by raw
electrical MPP power.

The whole decision is vectorised: the default ``kernel="batched"``
builds the greedy partition of every group count in one
:func:`repro.teg.network.partition_multi` prefix-sum pass, evaluates
every candidate's exact MPP through one
:func:`repro.teg.network.array_mpp_multi` reduction and ranks the
window with the charger's row-vector API — build + score + rank with
no per-candidate Python, bit-identical to the retained
``kernel="scalar"`` reference loop (one greedy walk plus one
``array_mpp`` call per candidate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.backend import BACKEND_NAMES, available_backends
from repro.core.config import ArrayConfiguration
from repro.errors import ConfigurationError
from repro.power.charger import TEGCharger
from repro.teg.module import MPPPoint
from repro.teg.network import (
    array_mpp,
    array_mpp_multi,
    array_mpp_multi_stack,
    greedy_balanced_partition,
    partition_multi,
    partition_multi_stack,
)

__all__ = [
    "INOR_KERNELS",
    "InorResult",
    "converter_aware_group_range",
    "converter_aware_group_range_rows",
    "greedy_balanced_partition",
    "inor",
    "inor_stack",
    "parse_inor_kernel",
]

#: Valid values of the :func:`inor` ``kernel`` argument.  ``"batched"``
#: builds the whole candidate window through one
#: :func:`repro.teg.network.partition_multi` prefix-sum pass and scores
#: it through one :func:`repro.teg.network.array_mpp_multi` pass;
#: ``"scalar"`` is the pre-vectorisation per-candidate loop, retained as
#: the reference implementation the batched kernel is pinned
#: bit-identical against.
INOR_KERNELS = ("batched", "scalar")


def parse_inor_kernel(kernel: str) -> Tuple[str, Optional[str]]:
    """Split an INOR kernel spec into ``(mode, backend)``.

    Accepted spellings: ``"batched"``, ``"scalar"``, or
    ``"batched:<backend>"`` where ``<backend>`` names a
    :mod:`repro.backend` implementation executing the segmented
    reductions (e.g. ``"batched:numba"``).  Only the *names* are
    validated here — cheap enough for policy constructors — while
    backend availability (wheel installed, device present, parity probe
    passed) is checked at use time by :func:`repro.backend.get_backend`,
    which raises :class:`repro.backend.BackendUnavailableError` rather
    than silently substituting NumPy.
    """
    spec = str(kernel)
    mode, sep, backend = spec.partition(":")
    if mode not in INOR_KERNELS or (sep and mode != "batched"):
        raise ConfigurationError(
            f"kernel must be one of {INOR_KERNELS} or 'batched:<backend>', "
            f"got {kernel!r}"
        )
    if not sep:
        return mode, None
    if backend not in BACKEND_NAMES:
        usable = available_backends()
        raise ConfigurationError(
            f"unknown backend {backend!r} in kernel spec {kernel!r} "
            f"(known: {', '.join(BACKEND_NAMES)}; available on this "
            f"host: {', '.join(usable) if usable else 'none'})"
        )
    return mode, backend


@dataclass(frozen=True)
class InorResult:
    """Outcome of one INOR invocation.

    Attributes
    ----------
    config:
        The selected near-optimal configuration.
    mpp:
        Exact electrical MPP of the selected configuration.
    delivered_power_w:
        Converter-degraded power used for ranking (equals ``mpp.power_w``
        when no charger was supplied).
    n_range:
        The ``(n_min, n_max)`` window that was scanned.
    candidates_evaluated:
        Number of group counts evaluated.
    """

    config: ArrayConfiguration
    mpp: MPPPoint
    delivered_power_w: float
    n_range: Tuple[int, int]
    candidates_evaluated: int


def converter_aware_group_range(
    emf: np.ndarray,
    n_modules: int,
    charger: Optional[TEGCharger] = None,
    efficiency_drop: float = 0.03,
) -> Tuple[int, int]:
    """Group-count window keeping the array MPP voltage converter-friendly.

    A balanced configuration of ``n`` groups has an MPP voltage of
    roughly ``n * mean(E) / 2`` (each group's Thevenin EMF is close to
    the chain's mean module EMF).  The window maps the charger's
    preferred input-voltage band through that estimate.  Without a
    charger the full ``[1, N]`` range is returned.

    The returned window always satisfies
    ``1 <= n_min <= n_max <= n_modules``: both ends are clamped into
    ``[1, N]`` symmetrically (an asymmetric clamp used to invert the
    window for very hot/cold arrays), and non-finite estimates — a
    non-finite mean EMF, or an unbounded preferred-voltage window from
    a zero-curvature converter side — degrade to the full range / the
    chain length instead of overflowing.
    """
    if charger is None:
        return 1, int(n_modules)
    emf = np.asarray(emf, dtype=float)
    mean_emf = float(emf.mean())
    if not math.isfinite(mean_emf) or mean_emf <= 0.0:
        # Array is effectively dead; any n works equally badly.
        return 1, int(n_modules)
    v_lo, v_hi = charger.preferred_voltage_window(efficiency_drop)
    # np.floor/np.ceil propagate inf through the clip instead of
    # overflowing int() the way math.floor/math.ceil would.
    n_min = int(np.clip(np.floor(2.0 * v_lo / mean_emf), 1, int(n_modules)))
    n_max = int(np.clip(np.ceil(2.0 * v_hi / mean_emf), 1, int(n_modules)))
    if n_max < n_min:  # unreachable after the symmetric clamp; kept as a guard
        n_min = n_max
    return n_min, n_max


def _score_candidates_scalar(
    emf: np.ndarray,
    resistance: np.ndarray,
    candidates: list,
    charger: Optional[TEGCharger],
) -> Tuple[int, MPPPoint, float]:
    """Reference per-candidate loop: one ``array_mpp`` call per ``n``.

    Kept as the ground truth the batched kernel is validated against
    (and for profiling comparisons); returns the winning candidate
    index, its MPP and its score.  Ties keep the earliest (smallest
    ``n``) candidate, like the paper's ascending scan.
    """
    best_index = -1
    best_score = -math.inf
    best_mpp: Optional[MPPPoint] = None
    for index, starts in enumerate(candidates):
        mpp = array_mpp(emf, resistance, starts)
        score = (
            charger.delivered_at_mpp(mpp) if charger is not None else mpp.power_w
        )
        if score > best_score:
            best_score = score
            best_index = index
            best_mpp = mpp
    assert best_mpp is not None
    return best_index, best_mpp, float(best_score)


def _score_candidates_batched(
    emf: np.ndarray,
    resistance: np.ndarray,
    candidates: list,
    charger: Optional[TEGCharger],
    backend: Optional[str] = None,
) -> Tuple[int, MPPPoint, float]:
    """Score the whole candidate window in one vectorised pass.

    One :func:`array_mpp_multi` reduction evaluates every candidate's
    exact MPP, and the charger ranking reuses the converter's
    row-vector API — both elementwise bit-identical to the scalar
    loop, so ``np.argmax`` (first maximum) reproduces the reference
    tie-breaking exactly.  ``candidates`` is typically the
    :class:`~repro.teg.network.PartitionSet` built by
    :func:`~repro.teg.network.partition_multi`, whose flat layout the
    kernel consumes without per-candidate Python.  Validation is
    skipped: the greedy walk produces partitions correct by
    construction.
    """
    power, voltage, current = array_mpp_multi(
        emf, resistance, candidates, validate=False, backend=backend
    )
    if charger is not None:
        scores = charger.delivered_batch(power, voltage)
    else:
        scores = power
    best_index = int(np.argmax(scores))
    best_mpp = MPPPoint(
        voltage_v=float(voltage[best_index]),
        current_a=float(current[best_index]),
        power_w=float(power[best_index]),
    )
    return best_index, best_mpp, float(scores[best_index])


def inor(
    emf: np.ndarray,
    resistance: np.ndarray,
    charger: Optional[TEGCharger] = None,
    n_min: Optional[int] = None,
    n_max: Optional[int] = None,
    efficiency_drop: float = 0.03,
    kernel: str = "batched",
) -> InorResult:
    """Run Algorithm 1 on per-module Thevenin parameters.

    Parameters
    ----------
    emf, resistance:
        Module EMFs and internal resistances at the current
        temperature distribution.
    charger:
        When given, bounds the group-count range via the converter's
        voltage preference and ranks candidates by delivered power.
    n_min, n_max:
        Explicit range overrides (either may be None to use the
        converter-derived value).
    efficiency_drop:
        Converter-efficiency tolerance used to derive the range.
    kernel:
        ``"batched"`` (default) builds every candidate partition in
        one :func:`repro.teg.network.partition_multi` prefix-sum pass
        and scores the window in one
        :func:`repro.teg.network.array_mpp_multi` pass; ``"scalar"``
        runs the original per-candidate loop (one greedy walk + one
        ``array_mpp`` per group count).  The two are bit-identical —
        same cut indices, same MPPs, same ranking (pinned in the test
        suite) — so the kernel is a speed choice, never a results
        choice.  The ``"batched:<backend>"`` spelling additionally
        names the :mod:`repro.backend` implementation executing the
        segmented reductions (see :func:`parse_inor_kernel`).

    Raises
    ------
    ConfigurationError
        If the explicit range or the kernel name is inconsistent.
    """
    mode, backend = parse_inor_kernel(kernel)
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    if emf.shape != resistance.shape or emf.ndim != 1 or emf.size == 0:
        raise ConfigurationError(
            f"emf/resistance must be matching 1-D arrays, got "
            f"{emf.shape} and {resistance.shape}"
        )
    n_modules = emf.size

    if n_min is None or n_max is None:
        auto_min, auto_max = converter_aware_group_range(
            emf, n_modules, charger, efficiency_drop
        )
    else:
        auto_min = auto_max = 0  # unused: window fully explicit
    lo = auto_min if n_min is None else int(n_min)
    hi = auto_max if n_max is None else int(n_max)
    if not 1 <= lo <= hi <= n_modules:
        raise ConfigurationError(
            f"invalid group-count range [{lo}, {hi}] for {n_modules} modules"
        )

    mpp_currents = emf / (2.0 * resistance)
    if mode == "batched":
        candidates = partition_multi(mpp_currents, lo, hi)
        best_index, best_mpp, best_score = _score_candidates_batched(
            emf, resistance, candidates, charger, backend=backend
        )
    else:
        candidates = [
            greedy_balanced_partition(mpp_currents, n_groups)
            for n_groups in range(lo, hi + 1)
        ]
        best_index, best_mpp, best_score = _score_candidates_scalar(
            emf, resistance, candidates, charger
        )

    return InorResult(
        config=ArrayConfiguration(
            starts=tuple(int(s) for s in candidates[best_index]),
            n_modules=n_modules,
        ),
        mpp=best_mpp,
        delivered_power_w=best_score,
        n_range=(lo, hi),
        candidates_evaluated=len(candidates),
    )


def converter_aware_group_range_rows(
    emf_rows: np.ndarray,
    n_modules: int,
    charger: Optional[TEGCharger] = None,
    efficiency_drop: float = 0.03,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-case group-count windows for a stacked case grid.

    The row-stacked sibling of :func:`converter_aware_group_range`:
    ``emf_rows`` holds one EMF vector per case and the returned
    ``(n_mins, n_maxs)`` int64 vectors match the scalar function
    case-by-case exactly — same mean, same clamps, same degenerate
    fallbacks — because every step is the same elementwise expression
    batched over the case axis (the per-row ``mean`` of a contiguous
    row is bitwise the 1-D ``mean``).
    """
    emf_rows = np.asarray(emf_rows, dtype=float)
    n_cases = emf_rows.shape[0]
    n = int(n_modules)
    if charger is None:
        return (
            np.ones(n_cases, dtype=np.int64),
            np.full(n_cases, n, dtype=np.int64),
        )
    mean_emf = emf_rows.mean(axis=1)
    usable = np.isfinite(mean_emf) & (mean_emf > 0.0)
    safe_mean = np.where(usable, mean_emf, 1.0)
    v_lo, v_hi = charger.preferred_voltage_window(efficiency_drop)
    n_mins = np.clip(np.floor(2.0 * v_lo / safe_mean), 1, n).astype(np.int64)
    n_maxs = np.clip(np.ceil(2.0 * v_hi / safe_mean), 1, n).astype(np.int64)
    n_mins = np.where(usable, n_mins, 1)
    n_maxs = np.where(usable, n_maxs, n)
    n_mins = np.where(n_maxs < n_mins, n_maxs, n_mins)
    return n_mins, n_maxs


def _inor_stack_raw(
    emf_rows: np.ndarray,
    resistance: np.ndarray,
    charger: Optional[TEGCharger],
    efficiency_drop: float,
    backend: Optional[str],
):
    """The fused INOR grid pass, returning flat kernel-layer arrays.

    Shared engine of :func:`inor_stack` and the grid-stacked simulation
    fabric (:mod:`repro.sim.gridstack`), which consumes the winner
    indices and :class:`~repro.teg.network.PartitionStack` directly —
    skipping per-case result-object packaging in its hot loop.
    Returns ``(stack, power, voltage, current, scores, winners,
    n_mins, n_maxs)`` with ``winners[c]`` the stacked index of case
    ``c``'s first-maximum candidate.
    """
    n_cases, n_modules = emf_rows.shape
    n_mins, n_maxs = converter_aware_group_range_rows(
        emf_rows, n_modules, charger, efficiency_drop
    )

    mpp_current_rows = emf_rows / (2.0 * resistance)
    stack = partition_multi_stack(
        mpp_current_rows, n_mins, n_maxs, backend=backend
    )
    power, voltage, current = array_mpp_multi_stack(
        emf_rows, resistance, stack, backend=backend
    )
    if charger is not None:
        scores = charger.delivered_batch(power, voltage)
    else:
        scores = power

    # Per-case first-maximum winners without a case loop: scatter each
    # case's scores into a -inf-padded row, argmax along the row.
    widths = np.diff(stack.case_offsets)
    w_max = int(widths.max())
    padded = np.full((n_cases, w_max), -np.inf)
    ragged = np.arange(w_max, dtype=np.int64)[None, :] < widths[:, None]
    padded[ragged] = scores
    winners = stack.case_offsets[:-1] + np.argmax(padded, axis=1)
    return stack, power, voltage, current, scores, winners, n_mins, n_maxs


def inor_stack(
    emf_rows: np.ndarray,
    resistance: np.ndarray,
    charger: Optional[TEGCharger] = None,
    efficiency_drop: float = 0.03,
    backend: Optional[str] = None,
) -> Tuple[InorResult, ...]:
    """Run Algorithm 1 for a whole homogeneous case grid at once.

    The grid-stacked fused decision pass: ``emf_rows`` holds one
    module-EMF vector per case (all cases sharing ``resistance`` and
    ``charger`` — the homogeneous-grid precondition), and the window
    derivation, greedy partition build, MPP evaluation and converter
    ranking each run as *one* stacked kernel call
    (:func:`converter_aware_group_range_rows`,
    :func:`repro.teg.network.partition_multi_stack`,
    :func:`repro.teg.network.array_mpp_multi_stack`) instead of one
    :func:`inor` call per case.  Results are **bit-identical** per case
    to ``inor(emf_rows[c], resistance, charger=charger)`` — pinned in
    the parity suite — including the first-maximum tie rule, which the
    per-case winner extraction preserves by ``argmax`` over a
    ``-inf``-padded per-case score matrix.
    """
    emf_rows = np.asarray(emf_rows, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    if (
        emf_rows.ndim != 2
        or emf_rows.size == 0
        or resistance.shape != (emf_rows.shape[1],)
    ):
        raise ConfigurationError(
            f"emf_rows must be a non-empty (C, N) matrix with matching "
            f"(N,) resistance, got {emf_rows.shape} and {resistance.shape}"
        )
    stack, power, voltage, current, scores, winners, n_mins, n_maxs = (
        _inor_stack_raw(emf_rows, resistance, charger, efficiency_drop, backend)
    )
    n_cases, n_modules = emf_rows.shape
    widths = np.diff(stack.case_offsets)

    results = []
    for c in range(n_cases):  # result packaging only — no kernel work
        best = int(winners[c])
        lo, hi = stack.offsets[best], stack.offsets[best + 1]
        results.append(
            InorResult(
                config=ArrayConfiguration(
                    starts=tuple(int(s) for s in stack.cat[lo:hi]),
                    n_modules=n_modules,
                ),
                mpp=MPPPoint(
                    voltage_v=float(voltage[best]),
                    current_a=float(current[best]),
                    power_w=float(power[best]),
                ),
                delivered_power_w=float(scores[best]),
                n_range=(int(n_mins[c]), int(n_maxs[c])),
                candidates_evaluated=int(widths[c]),
            )
        )
    return tuple(results)
