"""Fault-aware variant of Algorithm 1.

With stuck junctions (:mod:`repro.teg.faults`) the feasible
configurations are the partitions containing every *forced* boundary
and none of the *forbidden* ones.  The structure of INOR survives
intact: stuck-parallel junctions merge adjacent modules into atomic
blocks, stuck-series junctions split the chain into independent
segments, and the greedy current-balancing walk runs per segment over
the blocks.

This is an extension beyond the paper (its fabric is assumed healthy),
built because a production reconfiguration controller must keep
harvesting through single-switch failures; the tests quantify the
graceful degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import ArrayConfiguration
from repro.core.inor import converter_aware_group_range, greedy_balanced_partition
from repro.errors import ConfigurationError
from repro.power.charger import TEGCharger
from repro.teg.faults import FaultMask
from repro.teg.module import MPPPoint
from repro.teg.network import array_mpp_multi


@dataclass(frozen=True)
class FaultAwareResult:
    """Outcome of one fault-aware INOR invocation."""

    config: ArrayConfiguration
    mpp: MPPPoint
    delivered_power_w: float
    fault_mask: FaultMask


def _blocks(n_modules: int, mask: FaultMask) -> List[Tuple[int, int]]:
    """Atomic module blocks ``[lo, hi)`` induced by forbidden boundaries."""
    forbidden = set(mask.forbidden_boundaries())
    blocks = []
    lo = 0
    for position in range(1, n_modules):
        if position in forbidden:
            continue
        blocks.append((lo, position))
        lo = position
    blocks.append((lo, n_modules))
    return blocks


def fault_aware_candidates(
    emf: np.ndarray,
    resistance: np.ndarray,
    mask: FaultMask,
    charger: Optional[TEGCharger] = None,
    efficiency_drop: float = 0.03,
) -> List[ArrayConfiguration]:
    """Feasible Algorithm-1 proposals under a fault mask.

    Runs the greedy balanced partition over the fault-induced block
    structure for every group count in the converter-aware range and
    merges segment partitions across forced boundaries, returning the
    de-duplicated feasible configurations in ascending group-count
    order.  This is the proposal generator behind
    :func:`fault_aware_inor` (which batch-scores the whole list in one
    kernel pass) and the candidate source for
    :meth:`repro.core.dnor.DNORPlanner.plan_batch`, which scores every
    proposal over a forecast horizon in one stacked call.

    Raises
    ------
    ConfigurationError
        If the mask does not match the parameter arrays.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    if emf.shape != resistance.shape or emf.ndim != 1 or emf.size == 0:
        raise ConfigurationError(
            f"emf/resistance must be matching 1-D arrays, got "
            f"{emf.shape} and {resistance.shape}"
        )
    if mask.n_modules != emf.size:
        raise ConfigurationError(
            f"mask covers {mask.n_modules} modules, parameters {emf.size}"
        )

    n_modules = emf.size
    mpp_currents = emf / (2.0 * resistance)

    # Segments between forced boundaries; each must be partitioned
    # independently (its boundary set is fixed at both ends).
    forced = [0] + list(mask.forced_boundaries()) + [n_modules]
    segments = list(zip(forced, forced[1:]))

    # Atomic blocks inside each segment (forbidden boundaries merged).
    blocks = _blocks(n_modules, mask)

    def segment_blocks(lo: int, hi: int) -> List[Tuple[int, int]]:
        return [b for b in blocks if lo <= b[0] and b[1] <= hi]

    # Per-block summed MPP currents: the greedy walk operates on
    # blocks exactly as plain INOR operates on modules.
    lo_range, hi_range = converter_aware_group_range(
        emf, n_modules, charger, efficiency_drop
    )

    max_groups = min(hi_range, len(blocks))
    min_groups = max(lo_range, len(segments))
    if min_groups > max_groups:
        min_groups = max_groups

    candidates: List[ArrayConfiguration] = []
    seen = set()
    for n_groups in range(min_groups, max_groups + 1):
        # Distribute the group budget across segments proportionally to
        # their MPP-current sums: forced boundaries put the segments in
        # series, so every group anywhere should carry roughly the same
        # current — a segment holding a fraction f of the chain current
        # should hold the same fraction of the groups.
        seg_blocks = [segment_blocks(lo, hi) for lo, hi in segments]
        seg_sizes = np.array([len(b) for b in seg_blocks], dtype=float)
        seg_currents = np.array(
            [max(mpp_currents[lo:hi].sum(), 1.0e-12) for lo, hi in segments]
        )
        raw = seg_currents / seg_currents.sum() * n_groups
        counts = np.maximum(np.round(raw).astype(int), 1)
        counts = np.minimum(counts, seg_sizes.astype(int))
        while counts.sum() < n_groups:
            # Give spare groups to the segment most under its quota
            # (by current), among those with headroom.
            headroom = seg_sizes - counts
            deficit = np.where(headroom > 0, raw - counts, -np.inf)
            if not np.isfinite(deficit).any() or deficit.max() == -np.inf:
                break
            counts[int(np.argmax(deficit))] += 1
        while counts.sum() > n_groups:
            surplus = np.where(counts > 1, counts - raw, -np.inf)
            if not np.isfinite(surplus).any() or surplus.max() == -np.inf:
                break
            counts[int(np.argmax(surplus))] -= 1

        starts: List[int] = []
        for (seg_lo, _seg_hi), seg_block_list, seg_groups in zip(
            segments, seg_blocks, counts
        ):
            block_currents = np.array(
                [mpp_currents[lo:hi].sum() for lo, hi in seg_block_list]
            )
            block_starts = greedy_balanced_partition(
                block_currents, int(seg_groups)
            )
            for block_index in block_starts:
                starts.append(seg_block_list[int(block_index)][0])
        starts_tuple = tuple(sorted(set(starts)))

        if not mask.is_feasible(starts_tuple):
            starts_tuple = mask.repair(starts_tuple)
        if starts_tuple not in seen:
            seen.add(starts_tuple)
            candidates.append(
                ArrayConfiguration(starts=starts_tuple, n_modules=n_modules)
            )

    assert candidates
    return candidates


def fault_aware_inor(
    emf: np.ndarray,
    resistance: np.ndarray,
    mask: FaultMask,
    charger: Optional[TEGCharger] = None,
    efficiency_drop: float = 0.03,
) -> FaultAwareResult:
    """Algorithm 1 restricted to fault-feasible configurations.

    Generates the feasible candidate set with
    :func:`fault_aware_candidates` and ranks it by (charger-degraded)
    power — mirroring :func:`repro.core.inor.inor`, including its
    batched scoring: every candidate's exact MPP comes from one
    :func:`repro.teg.network.array_mpp_multi` pass and the charger
    ranking uses the row-vector converter API, bit-identical to the
    per-candidate loop it replaces (first maximum wins, like the
    ascending scan).

    Raises
    ------
    ConfigurationError
        If the mask does not match the parameter arrays.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    candidates = fault_aware_candidates(
        emf, resistance, mask, charger, efficiency_drop
    )
    power, voltage, current = array_mpp_multi(
        emf, resistance, [config.starts for config in candidates]
    )
    if charger is not None:
        scores = charger.delivered_batch(power, voltage)
    else:
        scores = power
    best = int(np.argmax(scores))
    best_mpp = MPPPoint(
        voltage_v=float(voltage[best]),
        current_a=float(current[best]),
        power_w=float(power[best]),
    )
    return FaultAwareResult(
        config=candidates[best],
        mpp=best_mpp,
        delivered_power_w=float(scores[best]),
        fault_mask=mask,
    )
