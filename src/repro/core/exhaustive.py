"""Exact optimal configurations — reference implementations.

The reconfiguration problem (maximise array MPP power over ordered
partitions into contiguous groups) is used in two exact forms:

* :func:`best_partition_brute_force` enumerates all ``2^(N-1)``
  boundary subsets — only viable for small chains, used by the test
  suite to certify the heuristics' near-optimality.
* :func:`best_partition_parametric_dp` solves the problem at scale by
  exploiting the objective's structure: ``P = E^2 / 4R`` with
  ``E = sum(E_g)`` and ``R = sum(R_g)``.  For any multiplier ``mu``,
  maximising the *separable* surrogate ``sum(E_g - mu * R_g)`` with a
  dynamic program traces the upper Pareto frontier of ``(R, E)``; the
  true optimum lies on that frontier, so sweeping ``mu`` and scoring
  each frontier point exactly yields the best partition found over the
  sweep.  With a dense sweep this matches brute force on every random
  instance in the test suite.

Neither routine is part of the control path — INOR exists precisely
because exact optimisation is too slow there (the underlying integer
program is NP-hard in general [3]).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.config import ArrayConfiguration
from repro.errors import ConfigurationError
from repro.teg.module import MPPPoint
from repro.teg.network import SegmentThevenin, array_mpp


@dataclass(frozen=True)
class ExactResult:
    """An exact-search outcome: configuration plus its MPP."""

    config: ArrayConfiguration
    mpp: MPPPoint


def _validated(emf: np.ndarray, resistance: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    if emf.shape != resistance.shape or emf.ndim != 1 or emf.size == 0:
        raise ConfigurationError(
            f"emf/resistance must be matching 1-D arrays, got "
            f"{emf.shape} and {resistance.shape}"
        )
    return emf, resistance


def best_partition_brute_force(
    emf: np.ndarray,
    resistance: np.ndarray,
    max_modules: int = 18,
) -> ExactResult:
    """Exhaustively search every contiguous partition.

    Parameters
    ----------
    emf, resistance:
        Module Thevenin parameters.
    max_modules:
        Safety limit — the search is ``O(2^(N-1))``.

    Raises
    ------
    ConfigurationError
        If the chain exceeds ``max_modules``.
    """
    emf, resistance = _validated(emf, resistance)
    n = emf.size
    if n > max_modules:
        raise ConfigurationError(
            f"brute force limited to {max_modules} modules, got {n}"
        )
    best_power = -math.inf
    best_starts: Tuple[int, ...] = (0,)
    for boundary_bits in itertools.product((False, True), repeat=n - 1):
        starts = (0,) + tuple(
            i + 1 for i, cut in enumerate(boundary_bits) if cut
        )
        mpp = array_mpp(emf, resistance, starts)
        if mpp.power_w > best_power:
            best_power = mpp.power_w
            best_starts = starts
    return ExactResult(
        config=ArrayConfiguration(starts=best_starts, n_modules=n),
        mpp=array_mpp(emf, resistance, best_starts),
    )


def _dp_max_surrogate(
    tables: SegmentThevenin, n_modules: int, mu: float
) -> Tuple[int, ...]:
    """DP maximising ``sum_g (E_g - mu * R_g)`` over all partitions.

    ``dp[i]`` is the best surrogate value for the prefix ``[0, i)``;
    each segment's contribution is O(1) via the prefix tables, so the
    DP is O(N^2).
    """
    dp = np.full(n_modules + 1, -math.inf)
    dp[0] = 0.0
    parent = np.zeros(n_modules + 1, dtype=np.int64)
    for hi in range(1, n_modules + 1):
        for lo in range(hi):
            e_seg, r_seg = tables.segment(lo, hi)
            value = dp[lo] + e_seg - mu * r_seg
            if value > dp[hi]:
                dp[hi] = value
                parent[hi] = lo
    cuts = []
    pos = n_modules
    while pos > 0:
        cuts.append(int(parent[pos]))
        pos = int(parent[pos])
    return tuple(sorted(cuts))


def best_partition_parametric_dp(
    emf: np.ndarray,
    resistance: np.ndarray,
    n_sweep: int = 64,
    mu_range: Optional[Tuple[float, float]] = None,
) -> ExactResult:
    """Parametric-DP search over the Pareto frontier of ``(R, E)``.

    Parameters
    ----------
    emf, resistance:
        Module Thevenin parameters.
    n_sweep:
        Number of multiplier values swept (log-spaced).
    mu_range:
        Explicit multiplier range; defaults to a span bracketing every
        meaningful trade-off for the given parameters.
    """
    emf, resistance = _validated(emf, resistance)
    n = emf.size
    if n_sweep < 2:
        raise ConfigurationError(f"n_sweep must be >= 2, got {n_sweep}")
    tables = SegmentThevenin.from_modules(emf, resistance)

    if mu_range is None:
        # mu has units of current; bracket well beyond the per-module
        # short-circuit currents so the frontier's ends are included.
        scale = float(np.max(np.abs(emf) / resistance)) + 1.0e-12
        mu_range = (scale * 1.0e-3, scale * 10.0)
    mu_lo, mu_hi = mu_range
    if not 0.0 < mu_lo < mu_hi:
        raise ConfigurationError(f"invalid mu_range {mu_range!r}")

    best_power = -math.inf
    best_starts: Tuple[int, ...] = (0,)
    for mu in np.geomspace(mu_lo, mu_hi, n_sweep):
        starts = _dp_max_surrogate(tables, n, float(mu))
        mpp = array_mpp(emf, resistance, starts)
        if mpp.power_w > best_power:
            best_power = mpp.power_w
            best_starts = starts
    return ExactResult(
        config=ArrayConfiguration(starts=best_starts, n_modules=n),
        mpp=array_mpp(emf, resistance, best_starts),
    )
