"""The array-configuration value type.

The paper encodes a configuration as ``C(g_1, ..., g_n)`` — the serial
number of each group's first module (1-indexed).
:class:`ArrayConfiguration` is the 0-indexed, validated, hashable
equivalent used across the library; modules inside a group are wired
in parallel and the groups in series (see
:mod:`repro.teg.network` for the electrical semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.teg.network import validate_starts
from repro.teg.switches import count_junction_flips, count_switch_toggles


@dataclass(frozen=True)
class ArrayConfiguration:
    """Ordered partition of the module chain into contiguous groups.

    Attributes
    ----------
    starts:
        0-based index of each group's first module; always begins at 0
        and strictly increases.
    n_modules:
        Chain length the partition covers.
    """

    starts: Tuple[int, ...]
    n_modules: int
    _sizes: Tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        starts = self.starts
        if (
            isinstance(starts, tuple)
            and starts
            and all(type(s) is int for s in starts)
        ):
            # Canonical plain-int tuple: validate with scalar ops — this
            # runs once per policy decision, and the numpy round-trip
            # below costs more than the whole greedy partition build.
            if self.n_modules <= 0:
                raise ConfigurationError(
                    f"n_modules must be positive, got {self.n_modules}"
                )
            if starts[0] != 0:
                raise ConfigurationError(
                    f"first group must start at module 0, got {starts[0]}"
                )
            previous = 0
            for start in starts[1:]:
                if start <= previous:
                    raise ConfigurationError(
                        f"starts must be strictly increasing, got {list(starts)}"
                    )
                previous = start
            if previous >= self.n_modules:
                raise ConfigurationError(
                    f"last group start {previous} out of range for "
                    f"{self.n_modules} modules"
                )
        else:
            idx = validate_starts(starts, self.n_modules)
            starts = tuple(int(s) for s in idx)
            object.__setattr__(self, "starts", starts)
        bounds = starts + (self.n_modules,)
        object.__setattr__(
            self,
            "_sizes",
            tuple(hi - lo for lo, hi in zip(bounds, bounds[1:])),
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, n_modules: int, n_groups: int) -> "ArrayConfiguration":
        """Equal-size groups (up to remainder spread over the first ones).

        ``uniform(100, 10)`` is the paper's static 10 x 10 baseline.
        """
        if n_groups < 1 or n_groups > n_modules:
            raise ConfigurationError(
                f"n_groups must lie in [1, {n_modules}], got {n_groups}"
            )
        base, extra = divmod(n_modules, n_groups)
        starts = []
        pos = 0
        for g in range(n_groups):
            starts.append(pos)
            pos += base + (1 if g < extra else 0)
        return cls(starts=tuple(starts), n_modules=n_modules)

    @classmethod
    def all_series(cls, n_modules: int) -> "ArrayConfiguration":
        """Every module its own group — the all-series chain."""
        return cls(starts=tuple(range(n_modules)), n_modules=n_modules)

    @classmethod
    def all_parallel(cls, n_modules: int) -> "ArrayConfiguration":
        """One group containing every module."""
        return cls(starts=(0,), n_modules=n_modules)

    @classmethod
    def from_group_sizes(cls, sizes: Sequence[int]) -> "ArrayConfiguration":
        """Build from group sizes, e.g. ``(3, 2, 5)``."""
        if len(sizes) == 0 or any(int(s) < 1 for s in sizes):
            raise ConfigurationError(f"sizes must be positive, got {sizes!r}")
        starts = [0]
        for s in list(sizes)[:-1]:
            starts.append(starts[-1] + int(s))
        return cls(starts=tuple(starts), n_modules=int(sum(int(s) for s in sizes)))

    @classmethod
    def from_paper_form(
        cls, g_values: Sequence[int], n_modules: int
    ) -> "ArrayConfiguration":
        """Build from the paper's 1-indexed ``(g_1, ..., g_n)`` encoding."""
        return cls(
            starts=tuple(int(g) - 1 for g in g_values), n_modules=n_modules
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of series-connected groups."""
        return len(self.starts)

    @property
    def group_sizes(self) -> Tuple[int, ...]:
        """Module count of each group, chain order."""
        return self._sizes

    def group_slices(self) -> Iterator[slice]:
        """Iterate ``slice`` objects selecting each group's modules."""
        bounds = list(self.starts) + [self.n_modules]
        for lo, hi in zip(bounds, bounds[1:]):
            yield slice(lo, hi)

    def paper_form(self) -> Tuple[int, ...]:
        """The paper's 1-indexed ``(g_1, ..., g_n)`` encoding."""
        return tuple(s + 1 for s in self.starts)

    def group_of_module(self, module_index: int) -> int:
        """Group index (0-based) containing a module."""
        if not 0 <= module_index < self.n_modules:
            raise ConfigurationError(
                f"module_index {module_index} out of range for {self.n_modules}"
            )
        return int(np.searchsorted(np.asarray(self.starts), module_index, "right")) - 1

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def junction_flips_to(self, other: "ArrayConfiguration") -> int:
        """Junctions changing state when switching to ``other``."""
        self._check_compatible(other)
        return count_junction_flips(self.starts, other.starts, self.n_modules)

    def switch_toggles_to(self, other: "ArrayConfiguration") -> int:
        """Individual switch toggles when switching to ``other``."""
        self._check_compatible(other)
        return count_switch_toggles(self.starts, other.starts, self.n_modules)

    def _check_compatible(self, other: "ArrayConfiguration") -> None:
        if self.n_modules != other.n_modules:
            raise ConfigurationError(
                f"configurations cover different chains: "
                f"{self.n_modules} vs {other.n_modules} modules"
            )

    def __str__(self) -> str:
        sizes = "x".join(str(s) for s in self.group_sizes[:8])
        if self.n_groups > 8:
            sizes += "..."
        return f"Config(n={self.n_modules}, groups={self.n_groups}: {sizes})"
