"""Switching-overhead model (Section III-C, after Kim et al. [5]).

Every executed reconfiguration interrupts harvesting for the sum of

* the sensing delay (reading the temperature distribution),
* the reconfiguration delay (switch gate charging and settling), and
* the MPPT re-settle time (the charger must re-find the new MPP),

during which the would-be output power is lost; on top of that, each
toggled switch costs a fixed gate-drive energy.

Computation time is charged differently: while the controller
computes, the array keeps harvesting on the *old* configuration, so
only a fraction of the compute window's output is forfeited — the
configuration being applied is stale by the compute time, which is the
"longer runtime always results in a higher timing overhead and
subsequent energy loss" effect the paper describes.  This split is
pinned by Table I itself: EHTR computes 33 ms longer than INOR per
event yet its overhead is only ~6% higher, which rules out charging
compute at full output power.

A controller that reconfigures every period pays this bill every
period — which is exactly why the paper's DNOR makes configurations
*durable*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import require_non_negative


@dataclass(frozen=True)
class OverheadEvent:
    """Accounting record of one executed reconfiguration.

    Attributes
    ----------
    time_s:
        Simulation time of the event.
    downtime_s:
        Harvest interruption duration.
    energy_j:
        Total energy charged (downtime loss + toggle energy).
    toggles:
        Individual switch toggles executed.
    compute_time_s:
        The algorithm runtime included in the downtime.
    """

    time_s: float
    downtime_s: float
    energy_j: float
    toggles: int
    compute_time_s: float


@dataclass(frozen=True)
class SwitchingOverheadModel:
    """Parameters of the per-event overhead bill.

    Defaults are sized for the paper's platform: a ~24 ms total
    downtime at ~52 W costs ~1.25 J per event, reproducing Table I's
    ~2 kJ for 1600 events (INOR/EHTR at 0.5 s) and ~20 J for DNOR's
    sparse switching.

    Parameters
    ----------
    sensing_delay_s:
        Time to acquire the temperature distribution.
    reconfiguration_delay_s:
        Switch settling time.
    mppt_settle_s:
        Charger re-tracking time after a topology change.
    per_toggle_energy_j:
        Gate-drive energy per individual switch toggle.
    compute_staleness_factor:
        Fraction of the output power effectively lost per second of
        computation (the applied configuration is stale by the compute
        time; the array itself keeps running meanwhile).
    """

    sensing_delay_s: float = 5.0e-3
    reconfiguration_delay_s: float = 12.0e-3
    mppt_settle_s: float = 8.0e-3
    per_toggle_energy_j: float = 2.0e-4
    compute_staleness_factor: float = 0.10

    def __post_init__(self) -> None:
        require_non_negative(self.sensing_delay_s, "sensing_delay_s")
        require_non_negative(self.reconfiguration_delay_s, "reconfiguration_delay_s")
        require_non_negative(self.mppt_settle_s, "mppt_settle_s")
        require_non_negative(self.per_toggle_energy_j, "per_toggle_energy_j")
        require_non_negative(self.compute_staleness_factor, "compute_staleness_factor")

    def interruption_s(self) -> float:
        """Harvest interruption per event (compute excluded)."""
        return (
            self.sensing_delay_s
            + self.reconfiguration_delay_s
            + self.mppt_settle_s
        )

    def downtime_s(self, compute_time_s: float) -> float:
        """Total timing overhead of one event (interruption + compute)."""
        require_non_negative(compute_time_s, "compute_time_s")
        return self.interruption_s() + compute_time_s

    def event_energy_j(
        self, power_w: float, compute_time_s: float, toggles: int
    ) -> float:
        """Energy bill of one executed reconfiguration.

        Parameters
        ----------
        power_w:
            Output power forfeited during the interruption (the
            operating power around the switch instant).
        compute_time_s:
            Algorithm runtime for this event (charged at the staleness
            factor, not at full power — see the module docstring).
        toggles:
            Individual switch toggles executed.
        """
        require_non_negative(power_w, "power_w")
        require_non_negative(compute_time_s, "compute_time_s")
        if toggles < 0:
            raise ValueError(f"toggles must be >= 0, got {toggles}")
        return (
            power_w * self.interruption_s()
            + power_w * compute_time_s * self.compute_staleness_factor
            + toggles * self.per_toggle_energy_j
        )

    def event(
        self,
        time_s: float,
        power_w: float,
        compute_time_s: float,
        toggles: int,
    ) -> OverheadEvent:
        """Build the accounting record for one executed reconfiguration."""
        return OverheadEvent(
            time_s=time_s,
            downtime_s=self.downtime_s(compute_time_s),
            energy_j=self.event_energy_j(power_w, compute_time_s, toggles),
            toggles=toggles,
            compute_time_s=compute_time_s,
        )
