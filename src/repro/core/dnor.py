"""Algorithm 2 — Durable Near-Optimal Reconfiguration (DNOR).

Pseudo-code from the paper::

    Input : temperature history T_{t,i}; old configuration C_old
    Output: configuration for the next t_p + 1 seconds
    C_new = INOR(T_i)
    predict the temperature distribution for the next t_p seconds (MLR)
    E_old = energy of C_old over the next t_p + 1 s (incl. current second)
    E_new = energy of C_new over the same horizon
    if E_old <= E_new - E_overhead:  switch to C_new
    else:                            keep C_old

:class:`DNORPlanner` implements exactly this decision, leaving the
closed-loop bookkeeping (history collection, epoch scheduling, fabric
application) to :class:`repro.core.controller.DNORPolicy`.

The energy horizon holds the current distribution for one second (the
paper's "including current second") followed by the ``t_p``-second
forecast, each sample scored as the charger-delivered power of the
configuration's exact MPP.  The whole comparison — old configuration
and every proposal, over every horizon sample — runs as **one**
stacked kernel call (:func:`repro.teg.network.array_mpp_rows_multi`
plus one batched charger evaluation); :meth:`DNORPlanner.plan_batch`
generalises the epoch to several candidate configurations (fault-aware
or exhaustive proposal generators) at the same single-pass cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ArrayConfiguration
from repro.core.inor import _inor_stack_raw, inor, parse_inor_kernel
from repro.core.overhead import SwitchingOverheadModel
from repro.errors import ConfigurationError, PredictionError
from repro.power.charger import TEGCharger
from repro.prediction.base import LagSeriesPredictor
from repro.teg.model import ModuleModel
from repro.teg.network import (
    array_mpp,
    array_mpp_rows,
    array_mpp_rows_multi,
    array_mpp_rows_multi_stack,
)


def thevenin_from_temps(
    module: ModuleModel, temps_c: np.ndarray, ambient_c: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-module ``(emf, resistance)`` vectors from hot-side temps.

    Uses the module model's nominal Thevenin linearisation (heatsink at
    ambient): ``E_i = alpha_module * (T_i - T_amb)``.
    """
    temps = np.asarray(temps_c, dtype=float)
    delta = temps - float(ambient_c)
    emf = module.emf_coefficient() * delta
    resistance = np.full(temps.shape, module.internal_resistance())
    return emf, resistance


@dataclass(frozen=True)
class DNORDecision:
    """Outcome of one DNOR epoch.

    Attributes
    ----------
    switch:
        Whether the new configuration is adopted.
    config:
        The configuration to run for the coming epoch.
    candidate:
        The INOR proposal (equals ``config`` when switching).
    energy_old_j, energy_new_j:
        Forecast-horizon energies of the old/new configurations.
    energy_overhead_j:
        Switching bill charged against the candidate.
    inor_seconds:
        Measured INOR runtime inside this decision.
    predict_seconds:
        Measured predictor fit+forecast runtime.
    used_fallback_forecast:
        True when history was too short for the predictor and a
        persistence forecast was used instead.
    """

    switch: bool
    config: ArrayConfiguration
    candidate: ArrayConfiguration
    energy_old_j: float
    energy_new_j: float
    energy_overhead_j: float
    inor_seconds: float
    predict_seconds: float
    used_fallback_forecast: bool


class DNORPlanner:
    """The Algorithm 2 decision engine.

    Parameters
    ----------
    module:
        Shared TEG module model (for temperature -> Thevenin mapping).
    charger:
        Charger whose delivered power defines the energy comparison and
        whose converter preference bounds INOR's group-count range.
    overhead:
        The switching bill model.
    predictor:
        Temperature-distribution forecaster (the paper selects MLR).
    tp_seconds:
        Prediction horizon ``t_p``; the epoch length is ``t_p + 1``.
    sample_dt_s:
        Sampling period of the temperature history rows.
    fit_module_stride:
        Fit the pooled predictor on every ``stride``-th module column
        only.  The one-step dynamics are shared physics, so the learned
        coefficients are unchanged while fitting cost drops by the
        stride factor — this is what keeps DNOR's amortised runtime
        below INOR's (Table I).  Forecasts still cover every module.
    nominal_compute_s:
        When set, the switching bill inside the epoch decision uses
        this fixed compute time instead of the measured INOR wall-clock
        — making the decision sequence machine-independent, which the
        batch engine's bit-reproducibility guarantees rely on.  ``None``
        (the default) keeps the measured-runtime behaviour.
    inor_kernel:
        Candidate-evaluation kernel forwarded to :func:`inor` for the
        per-epoch proposal — ``"batched"`` (default), ``"scalar"``, or
        ``"batched:<backend>"`` naming a :mod:`repro.backend`
        implementation.  Bit-identical results either way; the scalar
        kernel exists for cross-validation and profiling.
    refit:
        Predictor refit strategy per epoch.  ``"full"`` (default)
        refits from scratch on the strided history — the behaviour
        every existing pinned decision sequence was produced under.
        ``"incremental"`` streams only the rows that arrived since the
        previous epoch into
        :meth:`~repro.prediction.base.LagSeriesPredictor.partial_fit`
        (windowed normal-equation updates for MLR) — the refit is ~1/3
        of a DNOR epoch (``benchmarks/results/dnor_plan.json``), so
        this is the streaming service's hot-path win.  The incremental
        model is exact vs a full fit on the same streamed tail (pinned
        in the prediction suite); decision sequences are compared
        like-for-like (an online incremental run is bit-identical to an
        offline incremental run).
    """

    REFIT_MODES = ("full", "incremental")

    def __init__(
        self,
        module: ModuleModel,
        charger: TEGCharger,
        overhead: SwitchingOverheadModel,
        predictor: LagSeriesPredictor,
        tp_seconds: float = 1.0,
        sample_dt_s: float = 0.5,
        fit_module_stride: int = 8,
        nominal_compute_s: Optional[float] = None,
        inor_kernel: str = "batched",
        refit: str = "full",
    ) -> None:
        if tp_seconds <= 0.0:
            raise ConfigurationError(f"tp_seconds must be > 0, got {tp_seconds}")
        if sample_dt_s <= 0.0:
            raise ConfigurationError(f"sample_dt_s must be > 0, got {sample_dt_s}")
        if fit_module_stride < 1:
            raise ConfigurationError(
                f"fit_module_stride must be >= 1, got {fit_module_stride}"
            )
        parse_inor_kernel(inor_kernel)  # name validation only
        if refit not in self.REFIT_MODES:
            raise ConfigurationError(
                f"refit must be one of {self.REFIT_MODES}, got {refit!r}"
            )
        self._module = module
        self._charger = charger
        self._overhead = overhead
        self._predictor = predictor
        self._tp_seconds = float(tp_seconds)
        self._sample_dt_s = float(sample_dt_s)
        self._fit_module_stride = int(fit_module_stride)
        self._nominal_compute_s = (
            None if nominal_compute_s is None else float(nominal_compute_s)
        )
        self._inor_kernel = inor_kernel
        self._refit = refit
        self._stream_ok = False  # incremental refit: stream long enough

    @property
    def tp_seconds(self) -> float:
        """Prediction horizon ``t_p``."""
        return self._tp_seconds

    @property
    def epoch_seconds(self) -> float:
        """Decision epoch length ``t_p + 1``."""
        return self._tp_seconds + 1.0

    @property
    def predictor(self) -> LagSeriesPredictor:
        """The temperature forecaster in use."""
        return self._predictor

    @property
    def inor_kernel(self) -> str:
        """Kernel forwarded to :func:`inor` for the epoch proposal."""
        return self._inor_kernel

    @property
    def refit(self) -> str:
        """Predictor refit strategy (``"full"`` or ``"incremental"``)."""
        return self._refit

    def reset_stream(self) -> None:
        """Drop the predictor's streamed (incremental-refit) state."""
        self._predictor.reset_partial()
        self._stream_ok = False

    def _absorb_stream(
        self, history: np.ndarray, new_rows: Optional[int]
    ) -> float:
        """Stream newly arrived strided rows into the predictor.

        Runs on *every* incremental-refit epoch — including ones that
        keep the configuration for free and never forecast — so the
        predictor's sliding window always matches the history.  A
        too-short stream is retained (not fitted yet); forecasting then
        falls back to persistence until enough rows accumulate.
        Returns the wall-clock seconds spent.
        """
        t0 = time.perf_counter()
        strided = history[:, :: self._fit_module_stride]
        try:
            if new_rows is None:
                self._predictor.partial_fit(strided)
            else:
                fresh = min(int(new_rows), strided.shape[0])
                self._predictor.partial_fit(
                    strided[strided.shape[0] - fresh:]
                )
            self._stream_ok = True
        except PredictionError:
            pass
        return time.perf_counter() - t0

    # ------------------------------------------------------------------
    def _horizon_energy(
        self,
        config: ArrayConfiguration,
        temp_rows: np.ndarray,
        ambient_c: float,
    ) -> float:
        """Delivered energy of ``config`` over stacked temperature rows.

        Fully vectorised over the horizon: module resistance is
        constant, so each row's array Thevenin reduces to one
        ``reduceat`` over the EMF matrix
        (:func:`repro.teg.network.array_mpp_rows` — the same batched
        kernel the simulation engine uses), and the converter curve is
        evaluated for all rows at once through the batched charger API
        — no per-sample Python in this hot path.  The epoch decision
        itself uses :meth:`_horizon_energy_multi`, which additionally
        stacks the configurations; this single-configuration form is
        the reference it is pinned bit-identical against.
        """
        rows = np.asarray(temp_rows, dtype=float)
        alpha = self._module.emf_coefficient()
        emf_rows = alpha * (rows - float(ambient_c))
        resistance = np.full(rows.shape[1], self._module.internal_resistance())
        power, voltage = array_mpp_rows(emf_rows, resistance, config.starts)
        delivered = self._charger.delivered_batch(power, voltage)
        return float(delivered.sum() * self._sample_dt_s)

    def _horizon_energy_multi(
        self,
        configs: Sequence[ArrayConfiguration],
        temp_rows: np.ndarray,
        ambient_c: float,
    ) -> np.ndarray:
        """Delivered horizon energies of *many* configurations at once.

        The configuration-stacked sibling of :meth:`_horizon_energy`:
        one :func:`repro.teg.network.array_mpp_rows_multi` reduction
        evaluates every configuration over the whole horizon and one
        batched charger call converts the stacked ``(C, S)`` operating
        points — so an epoch decision (old configuration + every
        proposal) costs a single pass instead of one kernel invocation
        per configuration.  Bit-identical per entry to the
        single-configuration form.
        """
        rows = np.asarray(temp_rows, dtype=float)
        alpha = self._module.emf_coefficient()
        emf_rows = alpha * (rows - float(ambient_c))
        resistance = np.full(rows.shape[1], self._module.internal_resistance())
        power, voltage = array_mpp_rows_multi(
            emf_rows, resistance, [config.starts for config in configs]
        )
        delivered = self._charger.delivered_batch(power, voltage)
        return delivered.sum(axis=1) * self._sample_dt_s

    def plan(
        self,
        history_temps_c: np.ndarray,
        ambient_c: float,
        current: Optional[ArrayConfiguration],
        time_s: float = 0.0,
        new_rows: Optional[int] = None,
    ) -> DNORDecision:
        """Run one Algorithm 2 epoch.

        The single-proposal specialisation of :meth:`plan_batch`: one
        timed INOR call produces the epoch's candidate, the old and
        new configurations are scored over the forecast horizon in one
        stacked kernel pass, and the paper's inequality decides.

        Parameters
        ----------
        history_temps_c:
            ``(T, N)`` hot-side temperature history, newest row last.
        ambient_c:
            Ambient (= heatsink) temperature.
        current:
            The configuration of the previous epoch, or ``None`` on the
            very first call (then the INOR proposal is adopted
            unconditionally — there is nothing to keep).
        time_s:
            Simulation time, recorded into diagnostics only.
        new_rows:
            Number of history rows that arrived since the previous
            epoch (used only under ``refit="incremental"``; ``None``
            streams the whole history, e.g. on the first epoch).
        """
        return self.plan_batch(
            history_temps_c, ambient_c, current, time_s=time_s,
            new_rows=new_rows,
        )

    def _forecast_horizon(
        self, history: np.ndarray, temps_now: np.ndarray
    ) -> Tuple[np.ndarray, float, bool]:
        """Step 2: the ``t_p + 1``-second horizon temperature rows.

        Fits the pooled predictor on a module-strided column subset
        (every predictor learns one *column-wise* one-step map shared
        by all modules — see
        :class:`repro.prediction.base.LagSeriesPredictor` — so the
        coefficients are unchanged while the fit cost drops by the
        stride factor) and forecasts the full-width history, so the
        forecast covers every module regardless of the fitted width.
        Returns ``(horizon_rows, predict_seconds, used_fallback)``.
        """
        horizon_steps = max(int(round(self._tp_seconds / self._sample_dt_s)), 1)
        now_steps = max(int(round(1.0 / self._sample_dt_s)), 1)
        t0 = time.perf_counter()
        used_fallback = False
        try:
            if self._refit == "incremental":
                # The stream was already updated by _absorb_stream (it
                # runs on every epoch, including ones that keep for
                # free); until enough rows have accumulated this lands
                # on the same persistence fallback a too-short full
                # fit would.
                if not self._stream_ok:
                    raise PredictionError("stream shorter than lags")
            else:
                self._predictor.fit(history[:, :: self._fit_module_stride])
            forecast = self._predictor.forecast(history, horizon_steps)
        except PredictionError:
            forecast = np.tile(temps_now, (horizon_steps, 1))
            used_fallback = True
        predict_seconds = time.perf_counter() - t0
        horizon_rows = np.vstack([np.tile(temps_now, (now_steps, 1)), forecast])
        return horizon_rows, predict_seconds, used_fallback

    def plan_batch(
        self,
        history_temps_c: np.ndarray,
        ambient_c: float,
        current: Optional[ArrayConfiguration],
        candidates: Optional[Sequence[ArrayConfiguration]] = None,
        time_s: float = 0.0,
        compute_seconds: float = 0.0,
        new_rows: Optional[int] = None,
    ) -> DNORDecision:
        """One Algorithm 2 epoch over *several* candidate configurations.

        The many-proposal generalisation of :meth:`plan` for callers
        that generate more than one candidate per epoch — the
        fault-aware controller's feasible partitions
        (:func:`repro.core.fault_aware.fault_aware_candidates`) or an
        exhaustive search's short-list.  The old configuration and
        every candidate are scored over the same forecast horizon in
        **one** stacked kernel call
        (:meth:`_horizon_energy_multi`), each candidate is billed its
        own switching overhead, and the paper's inequality is applied
        to the best net-gain candidate:  switch to
        ``argmax_i (E_i - E_overhead_i)`` iff
        ``E_old <= E_best - E_overhead_best``.

        With ``candidates=None`` the single INOR proposal is used —
        this is Algorithm 2 verbatim, and exactly what :meth:`plan`
        delegates to (the batched decision is pinned against a
        sequential per-configuration evaluation in the test suite).

        Parameters
        ----------
        candidates:
            Candidate configurations to score, or ``None`` to run INOR
            (timed, exactly as :meth:`plan` does).  Candidates equal to
            ``current`` are skipped — keeping the current configuration
            is free; if nothing else remains the epoch keeps.
        compute_seconds:
            Generation cost billed against externally supplied
            candidates when ``nominal_compute_s`` is unset (INOR's
            measured runtime takes this role when ``candidates`` is
            ``None``).
        new_rows:
            Number of history rows that arrived since the previous
            epoch; used only under ``refit="incremental"``, where those
            rows are streamed into the predictor's sliding window
            (``None`` streams the whole history).
        """
        history = np.asarray(history_temps_c, dtype=float)
        if history.ndim != 2 or history.shape[0] < 1:
            raise ConfigurationError(
                f"history must be a non-empty (T, N) matrix, got {history.shape}"
            )
        absorb_seconds = (
            self._absorb_stream(history, new_rows)
            if self._refit == "incremental"
            else 0.0
        )
        temps_now = history[-1]
        emf, res = thevenin_from_temps(self._module, temps_now, ambient_c)

        if candidates is None:
            t0 = time.perf_counter()
            proposal = inor(
                emf, res, charger=self._charger, kernel=self._inor_kernel
            )
            generation_seconds = time.perf_counter() - t0
            proposals: Tuple[ArrayConfiguration, ...] = (proposal.config,)
        else:
            generation_seconds = float(compute_seconds)
            proposals = tuple(candidates)
            if not proposals:
                raise ConfigurationError(
                    "plan_batch needs at least one candidate (or None to "
                    "run INOR)"
                )

        if current is None:
            # Nothing to keep: adopt the instantaneously best proposal
            # (with a single INOR candidate this is INOR's own pick,
            # mirroring plan()).
            best = self._best_instantaneous(emf, res, proposals)
            return DNORDecision(
                switch=True,
                config=best,
                candidate=best,
                energy_old_j=0.0,
                energy_new_j=0.0,
                energy_overhead_j=0.0,
                inor_seconds=generation_seconds,
                predict_seconds=0.0,
                used_fallback_forecast=False,
            )

        distinct = [
            config
            for config in proposals
            if not np.array_equal(config.starts, current.starts)
        ]
        if not distinct:
            # Every proposal is the current configuration: keeping it
            # is free and optimal.
            return DNORDecision(
                switch=False,
                config=current,
                candidate=current,
                energy_old_j=0.0,
                energy_new_j=0.0,
                energy_overhead_j=0.0,
                inor_seconds=generation_seconds,
                predict_seconds=0.0,
                used_fallback_forecast=False,
            )

        horizon_rows, predict_seconds, used_fallback = self._forecast_horizon(
            history, temps_now
        )
        predict_seconds += absorb_seconds
        energies = self._horizon_energy_multi(
            (current, *distinct), horizon_rows, ambient_c
        )
        energy_old = float(energies[0])

        power_now = self._charger.delivered_at_mpp(
            array_mpp(emf, res, current.starts)
        )
        billed_compute_s = (
            generation_seconds
            if self._nominal_compute_s is None
            else self._nominal_compute_s
        )
        overheads = np.array(
            [
                self._overhead.event_energy_j(
                    power_w=max(power_now, 0.0),
                    compute_time_s=billed_compute_s,
                    toggles=current.switch_toggles_to(config),
                )
                for config in distinct
            ]
        )
        net = energies[1:] - overheads
        best_index = int(np.argmax(net))
        candidate = distinct[best_index]
        energy_new = float(energies[1 + best_index])
        energy_overhead = float(overheads[best_index])

        switch = energy_old <= energy_new - energy_overhead
        return DNORDecision(
            switch=switch,
            config=candidate if switch else current,
            candidate=candidate,
            energy_old_j=energy_old,
            energy_new_j=energy_new,
            energy_overhead_j=energy_overhead,
            inor_seconds=generation_seconds,
            predict_seconds=predict_seconds,
            used_fallback_forecast=used_fallback,
        )

    def _best_instantaneous(
        self,
        emf: np.ndarray,
        res: np.ndarray,
        proposals: Sequence[ArrayConfiguration],
    ) -> ArrayConfiguration:
        """First-epoch pick: highest delivered power *right now*."""
        if len(proposals) == 1:
            return proposals[0]
        scores = [
            self._charger.delivered_at_mpp(array_mpp(emf, res, config.starts))
            for config in proposals
        ]
        return proposals[int(np.argmax(scores))]


def dnor_stack(
    planners: Sequence[DNORPlanner],
    histories: Sequence[np.ndarray],
    ambient_c,
    currents: Sequence[Optional[ArrayConfiguration]],
    time_s: float = 0.0,
    new_rows: Optional[Sequence[Optional[int]]] = None,
) -> Tuple[DNORDecision, ...]:
    """Run one Algorithm 2 epoch for a whole homogeneous case grid.

    The grid-stacked sibling of :meth:`DNORPlanner.plan`: lane ``k``
    carries its own planner (with its own predictor stream), its own
    temperature history and its own previous configuration, but all
    lanes share the module parameters, the charger's converter, the
    horizon geometry (``tp_seconds``, ``sample_dt_s``) and the batched
    INOR kernel — the homogeneous-grid precondition the caller
    (:mod:`repro.sim.gridstack` or the streaming hub) groups by.  The
    epoch then runs in two fused passes instead of ``K`` per-lane
    kernel invocations:

    * every lane's INOR proposal comes from **one**
      :func:`repro.core.inor.inor_stack`-style pass over the stacked
      ``(K, N)`` EMF matrix;
    * every scoring lane's ``(current, candidate)`` horizon energies
      come from **one** :func:`repro.teg.network.array_mpp_rows_multi_stack`
      pass over the stacked forecast horizons plus one batched charger
      call.

    Predictor fits and forecasts stay per-lane (each lane owns its
    regression state, and :class:`~repro.prediction.mlr.MLRPredictor`'s
    normal-equation solve must see exactly the per-lane matrices to
    stay bit-identical), as do the scalar switching-bill expressions.

    Decisions are **bit-identical** per lane to
    ``planners[k].plan(histories[k], ambient, currents[k], ...)`` —
    pinned in the DNOR suite — except the wall-clock diagnostic fields
    (``inor_seconds``, ``predict_seconds``), which report the *fused*
    cost split evenly across lanes.  Determinism of the decision
    sequence therefore requires ``nominal_compute_s`` to be set on
    every planner, which this kernel enforces.

    ``ambient_c`` may be a scalar (one trace driving every lane) or a
    per-lane vector (independent streaming sessions); ``new_rows``
    forwards per-lane incremental-refit row counts, exactly as
    :meth:`DNORPlanner.plan` accepts.
    """
    n_lanes = len(planners)
    if n_lanes == 0:
        return ()
    if len(histories) != n_lanes or len(currents) != n_lanes:
        raise ConfigurationError(
            f"dnor_stack needs one history and one current configuration "
            f"per planner, got {len(histories)} / {len(currents)} for "
            f"{n_lanes} planners"
        )
    ref = planners[0]
    mode, backend = parse_inor_kernel(ref.inor_kernel)
    if mode != "batched":
        raise ConfigurationError(
            "dnor_stack requires the batched INOR kernel; the scalar "
            "reference loop has no stacked form"
        )
    alpha = ref._module.emf_coefficient()
    internal_r = ref._module.internal_resistance()
    for planner in planners:
        if planner._nominal_compute_s is None:
            raise ConfigurationError(
                "dnor_stack requires nominal_compute_s on every planner: "
                "per-lane measured wall-clock has no deterministic fused "
                "equivalent"
            )
        if (
            planner._inor_kernel != ref._inor_kernel
            or planner._tp_seconds != ref._tp_seconds
            or planner._sample_dt_s != ref._sample_dt_s
            or planner._module.emf_coefficient() != alpha
            or planner._module.internal_resistance() != internal_r
        ):
            raise ConfigurationError(
                "dnor_stack lanes must share the module parameters, the "
                "horizon geometry (tp_seconds, sample_dt_s) and the INOR "
                "kernel spec"
            )
    if new_rows is None:
        new_rows = [None] * n_lanes
    ambients = np.broadcast_to(
        np.asarray(ambient_c, dtype=float), (n_lanes,)
    )

    # Per-lane stream absorption first (incremental refit only) — it
    # runs on every epoch in the serial path, including free keeps.
    absorb_seconds = np.zeros(n_lanes)
    lane_histories: list = []
    for k, planner in enumerate(planners):
        history = np.asarray(histories[k], dtype=float)
        if history.ndim != 2 or history.shape[0] < 1:
            raise ConfigurationError(
                f"history must be a non-empty (T, N) matrix, got "
                f"{history.shape} in lane {k}"
            )
        lane_histories.append(history)
        if planner._refit == "incremental":
            absorb_seconds[k] = planner._absorb_stream(history, new_rows[k])

    n_modules = lane_histories[0].shape[1]
    temps_now = np.stack([history[-1] for history in lane_histories])
    emf_rows = alpha * (temps_now - ambients[:, None])
    resistance = np.full(n_modules, internal_r)

    # Fused pass 1: every lane's INOR proposal from one stacked call
    # (bit-identical per lane to inor(), via the inor_stack parity pin).
    t0 = time.perf_counter()
    stack, _, _, _, _, winners, _, _ = _inor_stack_raw(
        emf_rows, resistance, ref._charger, 0.03, backend
    )
    generation_seconds = (time.perf_counter() - t0) / n_lanes
    proposals: list = []
    for k in range(n_lanes):
        best = int(winners[k])
        lo, hi = stack.offsets[best], stack.offsets[best + 1]
        proposals.append(
            ArrayConfiguration(
                starts=tuple(int(s) for s in stack.cat[lo:hi]),
                n_modules=n_modules,
            )
        )

    decisions: list = [None] * n_lanes
    score_lanes: list = []
    for k in range(n_lanes):
        if currents[k] is None:
            # Nothing to keep: adopt the proposal unconditionally.
            decisions[k] = DNORDecision(
                switch=True,
                config=proposals[k],
                candidate=proposals[k],
                energy_old_j=0.0,
                energy_new_j=0.0,
                energy_overhead_j=0.0,
                inor_seconds=generation_seconds,
                predict_seconds=0.0,
                used_fallback_forecast=False,
            )
        elif np.array_equal(proposals[k].starts, currents[k].starts):
            # The proposal is the current configuration: keeping it is
            # free and optimal — no forecast.
            decisions[k] = DNORDecision(
                switch=False,
                config=currents[k],
                candidate=currents[k],
                energy_old_j=0.0,
                energy_new_j=0.0,
                energy_overhead_j=0.0,
                inor_seconds=generation_seconds,
                predict_seconds=0.0,
                used_fallback_forecast=False,
            )
        else:
            score_lanes.append(k)

    if score_lanes:
        # Per-lane forecasts (sequential by design — regression state),
        # then one stacked horizon scoring pass over every lane's
        # (current, candidate) pair.  All lanes share tp/dt, so every
        # horizon has the same row count and stacks rectangularly.
        horizon_temps: list = []
        predict_secs: list = []
        fallbacks: list = []
        for k in score_lanes:
            rows, psec, used_fallback = planners[k]._forecast_horizon(
                lane_histories[k], temps_now[k]
            )
            horizon_temps.append(rows)
            predict_secs.append(psec + absorb_seconds[k])
            fallbacks.append(used_fallback)
        horizon_emf = alpha * (
            np.stack(horizon_temps)
            - ambients[score_lanes][:, None, None]
        )
        starts_list = []
        for k in score_lanes:
            starts_list.append(currents[k].starts)
            starts_list.append(proposals[k].starts)
        case_of_config = np.repeat(
            np.arange(len(score_lanes), dtype=np.int64), 2
        )
        power, voltage = array_mpp_rows_multi_stack(
            horizon_emf, resistance, starts_list, case_of_config
        )
        delivered = ref._charger.delivered_batch(power, voltage)
        energies = delivered.sum(axis=1) * ref._sample_dt_s

        for j, k in enumerate(score_lanes):
            planner = planners[k]
            current = currents[k]
            candidate = proposals[k]
            energy_old = float(energies[2 * j])
            energy_new = float(energies[2 * j + 1])
            # The scalar switching bill (kept per-lane verbatim): the
            # pre-switch power at the decision instant and the paper's
            # overhead inequality.
            power_now = planner._charger.delivered_at_mpp(
                array_mpp(emf_rows[k], resistance, current.starts)
            )
            energy_overhead = planner._overhead.event_energy_j(
                power_w=max(power_now, 0.0),
                compute_time_s=planner._nominal_compute_s,
                toggles=current.switch_toggles_to(candidate),
            )
            switch = energy_old <= energy_new - energy_overhead
            decisions[k] = DNORDecision(
                switch=switch,
                config=candidate if switch else current,
                candidate=candidate,
                energy_old_j=energy_old,
                energy_new_j=energy_new,
                energy_overhead_j=energy_overhead,
                inor_seconds=generation_seconds,
                predict_seconds=predict_secs[j],
                used_fallback_forecast=fallbacks[j],
            )
    return tuple(decisions)
