"""Asyncio front-end for the streaming decision service.

``repro serve`` exposes layer 6 over a line-delimited JSON TCP
protocol.  Each connected client multiplexes any number of vehicle
sessions; telemetry chunks from *all* connections land in one
:class:`~repro.serve.hub.SessionHub`, and a coalescing epoch task
resolves every pending decision across every session in one stacked
kernel pass — K concurrent vehicles cost ~1 INOR evaluation per epoch.

Protocol (one JSON object per line, requests → events):

* ``{"op": "open", "session": id, "scenario": name, "policy": name,
  "overrides": {...}}`` → ``{"event": "opened", ...}``.  Overrides may
  set ``duration_s``, ``n_modules`` and ``sensor_seed`` (distinct seeds
  give each vehicle its own sensor-noise stream).
* ``{"op": "feed", "session": id, "cols": {col: base64-f8, ...}}`` —
  telemetry columns as raw little-endian float64, loss-free.  Decisions
  arrive asynchronously as ``{"event": "decision", "session": id,
  "record": {...}}`` events.
* ``{"op": "close", "session": id}`` → drains the session's pending
  rows, emits the final decision events, then ``{"event": "closed",
  "session": id, "n_decisions": n}``.

Errors come back as ``{"event": "error", "message": ...}`` without
killing the connection.  The module also carries the self-contained
demo driver used by the CLI and CI smoke: K concurrent asyncio clients
streaming a registry trace in chunks, decision logs written as JSON
lines and byte-diffed against the offline batch reference.
"""

from __future__ import annotations

import asyncio
import base64
import json
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, TegkitError
from repro.serve.hub import SessionHub
from repro.serve.session import (
    DecisionRecord,
    StreamSession,
    offline_decision_log,
    write_decision_log,
)
from repro.sim.scenario import build_named_scenario

__all__ = [
    "StreamServer",
    "encode_column",
    "decode_column",
    "run_demo",
    "run_offline_reference",
    "serve_forever",
]

FEED_COLUMNS = (
    "time_s",
    "coolant_inlet_c",
    "coolant_flow_kg_s",
    "ambient_c",
    "air_flow_kg_s",
    "coolant_inlet_sensed_c",
    "coolant_flow_sensed_kg_s",
)


def encode_column(arr: np.ndarray) -> str:
    """Base64 of the raw little-endian float64 bytes — loss-free."""
    data = np.ascontiguousarray(arr, dtype="<f8")
    return base64.b64encode(data.tobytes()).decode("ascii")


def decode_column(text: str) -> np.ndarray:
    """Inverse of :func:`encode_column` (a fresh writable array)."""
    raw = base64.b64decode(text.encode("ascii"))
    return np.frombuffer(raw, dtype="<f8").astype(float)


def _build_session_scenario(scenario: str, overrides: Dict[str, object]):
    """Registry scenario with the per-session knobs applied."""
    allowed = {"duration_s", "n_modules", "sensor_seed"}
    unknown = set(overrides) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown scenario overrides {sorted(unknown)!r} "
            f"(allowed: {sorted(allowed)!r})"
        )
    kwargs = {}
    if "duration_s" in overrides:
        kwargs["duration_s"] = float(overrides["duration_s"])
    if "n_modules" in overrides:
        kwargs["n_modules"] = int(overrides["n_modules"])
    built = build_named_scenario(str(scenario), **kwargs)
    if "sensor_seed" in overrides:
        import dataclasses

        built = dataclasses.replace(
            built, sensor_seed=int(overrides["sensor_seed"])
        )
    return built


class StreamServer:
    """TCP JSON-lines server multiplexing vehicle sessions over one hub."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = int(port)
        self._hub = SessionHub()
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._epoch_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._conn_writers: set = set()

    # ------------------------------------------------------------------
    @property
    def hub(self) -> SessionHub:
        """The shared micro-batching hub (stats live here)."""
        return self._hub

    @property
    def port(self) -> int:
        """Bound port (useful when constructed with port 0)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    async def close(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._epoch_task is not None:
            try:
                await self._epoch_task
            except asyncio.CancelledError:
                pass
            self._epoch_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Nudge lingering clients off by closing their transports: each
        # handler's readline() then returns EOF and the task exits
        # normally.  Cancelling instead would leave 3.11's stream
        # done-callback retrieving CancelledError at loop teardown.
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )
        self._conn_tasks.clear()
        self._conn_writers.clear()

    # ------------------------------------------------------------------
    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: Dict) -> None:
        writer.write(
            (json.dumps(payload, separators=(",", ":")) + "\n").encode("ascii")
        )
        await writer.drain()

    async def _send_decisions(
        self, session_id: str, records: List[DecisionRecord]
    ) -> None:
        writer = self._writers.get(session_id)
        if writer is None:
            return
        for record in records:
            await self._send(
                writer,
                {
                    "event": "decision",
                    "session": session_id,
                    "record": json.loads(record.to_json_line()),
                },
            )

    def _schedule_epoch(self) -> None:
        """Coalesce one stacked epoch per ready-queue drain.

        The task first yields (``sleep(0)``), letting every connection
        whose feed is already queued on the loop deposit its pending
        rows — so concurrent vehicles genuinely share the stacked pass.
        """
        if self._epoch_task is not None and not self._epoch_task.done():
            return
        self._epoch_task = asyncio.get_running_loop().create_task(
            self._run_epoch()
        )

    async def _run_epoch(self) -> None:
        await asyncio.sleep(0)
        emitted = self._hub.run_epoch()
        for session_id, records in emitted.items():
            await self._send_decisions(session_id, records)

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        owned: List[str] = []
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    await self._handle_request(
                        json.loads(line.decode("ascii")), writer, owned
                    )
                except TegkitError as exc:
                    await self._send(
                        writer, {"event": "error", "message": str(exc)}
                    )
                except (ValueError, KeyError, TypeError) as exc:
                    await self._send(
                        writer,
                        {"event": "error", "message": f"bad request: {exc}"},
                    )
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished mid-exchange; clean up below
        finally:
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            for session_id in owned:
                self._writers.pop(session_id, None)
                try:
                    self._hub.remove(session_id)
                except TegkitError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self,
        request: Dict,
        writer: asyncio.StreamWriter,
        owned: List[str],
    ) -> None:
        op = request.get("op")
        if op == "open":
            session_id = str(request["session"])
            session = StreamSession(
                _build_session_scenario(
                    request.get("scenario", "porter-ii"),
                    dict(request.get("overrides") or {}),
                ),
                policy=str(request.get("policy", "INOR")),
                session_id=session_id,
                dnor_refit=str(request.get("dnor_refit", "full")),
            )
            self._hub.add(session)
            self._writers[session_id] = writer
            owned.append(session_id)
            await self._send(
                writer,
                {
                    "event": "opened",
                    "session": session_id,
                    "micro_batched": session.micro_batched,
                },
            )
        elif op == "feed":
            session = self._hub.get(str(request["session"]))
            cols = request["cols"]
            missing = [c for c in FEED_COLUMNS[:5] if c not in cols]
            if missing:
                raise ConfigurationError(
                    f"feed missing required columns {missing!r}"
                )
            decoded = {
                name: decode_column(cols[name])
                for name in FEED_COLUMNS
                if name in cols
            }
            inline_records = session.feed(
                decoded["time_s"],
                decoded["coolant_inlet_c"],
                decoded["coolant_flow_kg_s"],
                decoded["ambient_c"],
                decoded["air_flow_kg_s"],
                decoded.get("coolant_inlet_sensed_c"),
                decoded.get("coolant_flow_sensed_kg_s"),
            )
            await self._send_decisions(session.session_id, inline_records)
            if session.pending or session.pending_epochs:
                self._schedule_epoch()
        elif op == "close":
            session_id = str(request["session"])
            drained = self._hub.drain(session_id)
            await self._send_decisions(session_id, drained)
            session = self._hub.remove(session_id)
            self._writers.pop(session_id, None)
            if session_id in owned:
                owned.remove(session_id)
            await self._send(
                writer,
                {
                    "event": "closed",
                    "session": session_id,
                    "n_decisions": len(session.records),
                },
            )
        elif op == "stats":
            await self._send(
                writer,
                {"event": "stats", "hub": self._hub.stats.as_dict()},
            )
        else:
            raise ConfigurationError(f"unknown op {op!r}")


# ----------------------------------------------------------------------
# Demo driver + offline reference (CLI and CI smoke)


async def _drive_client(
    host: str,
    port: int,
    session_id: str,
    scenario_name: str,
    overrides: Dict[str, object],
    policy: str,
    chunk: int,
    out_path: Path,
) -> int:
    """One vehicle: open, stream the registry trace in chunks, close."""
    reader, writer = await asyncio.open_connection(host, port)
    records: List[Dict] = []
    done = asyncio.Event()

    async def read_events() -> None:
        while True:
            line = await reader.readline()
            if not line:
                break
            event = json.loads(line.decode("ascii"))
            kind = event.get("event")
            if kind == "decision":
                records.append(event["record"])
            elif kind == "closed":
                done.set()
                break
            elif kind == "error":
                raise TegkitError(f"server error: {event.get('message')}")

    reader_task = asyncio.create_task(read_events())

    async def send(payload: Dict) -> None:
        writer.write(
            (json.dumps(payload, separators=(",", ":")) + "\n").encode("ascii")
        )
        await writer.drain()

    await send(
        {
            "op": "open",
            "session": session_id,
            "scenario": scenario_name,
            "policy": policy,
            "overrides": overrides,
        }
    )
    trace = _build_session_scenario(scenario_name, overrides).trace
    n = trace.n_samples
    lo = 0
    while lo < n:
        hi = min(lo + chunk, n)
        cols = {
            name: encode_column(getattr(trace, name)[lo:hi])
            for name in FEED_COLUMNS
        }
        await send({"op": "feed", "session": session_id, "cols": cols})
        # Yield so feeds from the other demo vehicles interleave and the
        # server's coalescing epoch actually stacks across sessions.
        await asyncio.sleep(0)
        lo = hi
    await send({"op": "close", "session": session_id})
    await done.wait()
    await reader_task
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    with open(out_path, "w", encoding="ascii") as handle:
        for record in records:
            handle.write(
                json.dumps(record, separators=(",", ":"), allow_nan=False)
                + "\n"
            )
    return len(records)


def _session_overrides(
    index: int,
    duration_s: float,
    n_modules: int,
    sensor_seed_base: int,
) -> Dict[str, object]:
    return {
        "duration_s": duration_s,
        "n_modules": n_modules,
        "sensor_seed": sensor_seed_base + index,
    }


async def _run_demo_async(
    scenario_name: str,
    sessions: int,
    duration_s: float,
    n_modules: int,
    chunk: int,
    policy: str,
    out_dir: Path,
    sensor_seed_base: int,
) -> Dict[str, object]:
    server = StreamServer()
    await server.start()
    try:
        totals = await asyncio.gather(
            *(
                _drive_client(
                    "127.0.0.1",
                    server.port,
                    f"{scenario_name}-{k:02d}",
                    scenario_name,
                    _session_overrides(
                        k, duration_s, n_modules, sensor_seed_base
                    ),
                    policy,
                    chunk,
                    out_dir / f"{scenario_name}-{k:02d}.jsonl",
                )
                for k in range(sessions)
            )
        )
    finally:
        await server.close()
    stats = server.hub.stats.as_dict()
    stats["sessions"] = sessions
    stats["decisions_per_session"] = list(totals)
    return stats


def run_demo(
    scenario_name: str = "porter-ii",
    sessions: int = 4,
    duration_s: float = 30.0,
    n_modules: int = 16,
    chunk: int = 16,
    policy: str = "INOR",
    out_dir: str = ".",
    sensor_seed_base: int = 777,
) -> Dict[str, object]:
    """Run the self-contained concurrent-session demo; return hub stats.

    Writes one ``<scenario>-<k>.jsonl`` decision log per session into
    ``out_dir``, byte-comparable with :func:`run_offline_reference`.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    return asyncio.run(
        _run_demo_async(
            scenario_name,
            int(sessions),
            float(duration_s),
            int(n_modules),
            int(chunk),
            policy,
            out,
            int(sensor_seed_base),
        )
    )


def run_offline_reference(
    scenario_name: str = "porter-ii",
    sessions: int = 4,
    duration_s: float = 30.0,
    n_modules: int = 16,
    policy: str = "INOR",
    out_dir: str = ".",
    sensor_seed_base: int = 777,
) -> Dict[str, int]:
    """Offline batch reference logs for the same demo sessions.

    Produces files with the same names and (by the layer-6 parity
    guarantee) the same bytes as :func:`run_demo`.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    counts: Dict[str, int] = {}
    for k in range(int(sessions)):
        scenario = _build_session_scenario(
            scenario_name,
            _session_overrides(
                k, float(duration_s), int(n_modules), int(sensor_seed_base)
            ),
        )
        records = offline_decision_log(scenario, policy)
        name = f"{scenario_name}-{k:02d}"
        write_decision_log(records, out / f"{name}.jsonl")
        counts[name] = len(records)
    return counts


def serve_forever(host: str = "127.0.0.1", port: int = 7787) -> None:
    """Blocking entry point for ``repro serve --listen``."""

    async def _main() -> None:
        server = StreamServer(host, port)
        await server.start()
        print(f"repro serve listening on {host}:{server.port}")
        assert server._server is not None
        async with server._server:
            await server._server.serve_forever()

    asyncio.run(_main())
